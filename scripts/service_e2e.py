#!/usr/bin/env python
"""CI end-to-end gate for the synthesis job service.

One scripted pass through every headline guarantee, against real server
processes (no pytest, no mocks), driven by the resilient
:class:`repro.service.client.ServiceClient` — the same SDK users get, so
the gate also certifies the client's retry/deadline discipline:

1. start a server whose chaos plan SIGKILLs each task's first worker,
   submit a (restricted) Table-1 job;
2. SIGKILL the whole server mid-job;
3. restart on the same data dir with a trace recorder and assert the job
   completes — crash recovery requeued it, the sweep journal spared the
   finished tasks (the client rides out the dead-server window on its
   own backoff; no hand-rolled polling here);
4. fetch the Verilog artifact over HTTP and assert it is byte-for-byte
   identical to a direct ``python -m repro.eval export`` run;
5. scrape the live ``/metrics`` endpoint through
   ``scripts/check_trace.py`` (service series vocabulary);
6. SIGTERM the server, assert a clean drain (exit 0), and validate the
   recorded trace's ``service.request``/``service.job`` spans;
7. merge the client's, the killed server's, and the drained server's
   trace files and assert end-to-end trace continuity per job — one
   trace id from the client attempt to every ``sweep.task``, parent and
   link edges resolvable even across the SIGKILL;
8. feed the merged trace to the analysis CLI: the Chrome export must
   round-trip through ``json.load`` and the traced job must yield a
   non-empty critical path.

With ``--netchaos`` every request additionally crosses a
:class:`repro.robust.netchaos.NetChaosProxy` injecting seeded connection
resets, truncations, hangs, garbage and 5xx bursts — the wire itself
becomes hostile and the guarantees must still hold.

Exit code 0 when every step holds; 1 with a diagnostic otherwise.

Usage::

    python scripts/service_e2e.py [--work-dir DIR] [--timeout SECONDS]
                                  [--netchaos] [--netchaos-seed N]
"""

from __future__ import annotations

import argparse
import json
import os
import shutil
import signal
import subprocess
import sys
import tempfile
import time
from pathlib import Path

REPO = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO / "src"))
sys.path.insert(0, str(REPO / "scripts"))

from check_trace import check_metrics_url, check_trace  # noqa: E402

from repro import obs  # noqa: E402
from repro.errors import ClientError  # noqa: E402
from repro.robust.netchaos import NetChaosProxy, NetFaultPlan  # noqa: E402
from repro.service.client import ServiceClient  # noqa: E402

#: A restricted slice of the paper's Table 1: real synthesis, CI-sized.
JOB_SPEC = {"experiments": ["table1"], "filters": [0, 1], "wordlengths": [8]}


def _env():
    env = dict(os.environ)
    env["PYTHONPATH"] = (
        str(REPO / "src") + os.pathsep + env.get("PYTHONPATH", "")
    )
    return env


def _start_server(data_dir: Path, extra_args, log_path: Path):
    log = open(log_path, "a", encoding="utf-8")
    proc = subprocess.Popen(
        [
            sys.executable, "-m", "repro.eval", "serve",
            "--data-dir", str(data_dir), "--port", "0", "--jobs", "2",
            *extra_args,
        ],
        env=_env(), stdout=subprocess.PIPE, stderr=log, text=True,
    )
    banner = proc.stdout.readline()
    if "serving on" not in banner:
        proc.kill()
        raise SystemExit(f"service_e2e: server never came up: {banner!r}")
    port = int(banner.rsplit(":", 1)[1].rstrip("]\n"))
    return proc, port


def _make_client(port: int, proxy, timeout_s: float) -> ServiceClient:
    """A client aimed at the proxy (when chaos is on) or the server."""
    base = proxy.base_url if proxy is not None else f"http://127.0.0.1:{port}"
    return ServiceClient(
        base,
        request_timeout_s=10.0,
        deadline_s=timeout_s,
        max_attempts=64,
        backoff_cap_s=2.0,
        breaker_cooldown_s=0.5,
        seed=0,
    )


def _series_value(exposition: str, series: str):
    """The value of one exact series line in a Prometheus exposition."""
    import re
    match = re.search(
        rf"^{re.escape(series)} ([0-9.eE+-]+)$", exposition, re.MULTILINE
    )
    return match.group(1) if match else None


def _merge_traces(paths, merged_path: Path):
    """Concatenate per-process trace files into one strictly-parseable file.

    The phase-1 server died by SIGKILL, so its file may end in a torn
    line; the merge tolerates exactly that and re-serializes, so every
    downstream consumer (check_trace, export-chrome, critical-path) reads
    the merged file *strictly*.
    """
    from repro.obs import load_traces
    records = load_traces(
        [str(p) for p in paths if p.exists()], allow_torn_tail=True
    )
    with open(merged_path, "w", encoding="utf-8") as fh:
        for rec in records:
            fh.write(json.dumps(rec, sort_keys=True) + "\n")
    return records


def _wait_mid_job(client: ServiceClient, job_id: str, journal_dir: Path,
                  timeout_s: float):
    """Until the job is mid-flight with one task outcome durably journaled."""
    deadline = time.monotonic() + timeout_s
    view = None
    while time.monotonic() < deadline:
        try:
            view = client.status(job_id, budget_s=15.0)
        except ClientError:
            view = None
        journals = list(journal_dir.glob("sweep-*.wal"))
        if (
            view is not None
            and view["state"] in ("running", "completed")
            and journals
            and journals[0].read_bytes().count(b"\n") >= 2
        ):
            return view
        time.sleep(0.1)
    raise SystemExit(
        f"service_e2e: timed out waiting for job to reach mid-flight: {view}"
    )


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--work-dir", default=None)
    parser.add_argument("--timeout", type=float, default=600.0)
    parser.add_argument(
        "--netchaos", action="store_true",
        help="route every request through a fault-injecting TCP proxy",
    )
    parser.add_argument("--netchaos-seed", type=int, default=3)
    args = parser.parse_args(argv)

    work = Path(args.work_dir or tempfile.mkdtemp(prefix="service-e2e-"))
    work.mkdir(parents=True, exist_ok=True)
    data_dir = work / "data"
    log_path = work / "server.log"
    trace_path = work / "service-trace.jsonl"
    server1_trace_path = work / "server1-trace.jsonl"
    client_trace_path = work / "client-trace.jsonl"
    merged_trace_path = work / "merged-trace.jsonl"

    # Client-side tracing in this process: every ServiceClient attempt
    # emits a client.request span and stamps its context into the
    # traceparent header, so the servers' spans join *our* trace.
    obs.configure(trace_path=str(client_trace_path))

    # Phase 1: chaos server — every task's first worker is SIGKILLed.
    # It records a trace too: the per-request flush makes its request
    # spans durable, so they survive the SIGKILL in phase 2 (modulo one
    # torn final line, which the merge below tolerates explicitly).
    proc, port = _start_server(
        data_dir,
        [
            "--chaos-seed", "7", "--chaos-kill-rate", "1.0",
            "--trace", str(server1_trace_path),
        ],
        log_path,
    )
    proxy = None
    if args.netchaos:
        proxy = NetChaosProxy(
            port, NetFaultPlan.storm(seed=args.netchaos_seed, rate=0.15)
        ).start()
        print(f"service_e2e: netchaos proxy on {proxy.base_url} "
              f"(seed {args.netchaos_seed})")
    client = _make_client(port, proxy, args.timeout)
    job_id = None
    try:
        view = client.submit(dict(JOB_SPEC), tenant="e2e")
        job_id = view["job_id"]
        print(f"service_e2e: submitted {job_id} ({view['state']})")

        # Phase 2: SIGKILL the server once the job is mid-flight with at
        # least one task outcome durably journaled.
        _wait_mid_job(client, job_id, data_dir / "journals", args.timeout)
    finally:
        proc.kill()
        proc.wait(timeout=30)
        proc.stdout.close()
    print("service_e2e: server SIGKILLed mid-job")

    # Phase 3: restart, no chaos, trace recorded; the job must complete.
    # The client needs no special handling for the restart: the proxy is
    # retargeted at the new port and the retry loop rides out the gap.
    proc, port = _start_server(
        data_dir, ["--trace", str(trace_path)], log_path
    )
    if proxy is not None:
        proxy.retarget(port)
    else:
        client = _make_client(port, None, args.timeout)
    traced_job_id = None
    first_job_resumed = False
    try:
        final = client.wait_for(job_id, budget_s=args.timeout)
        first_job_resumed = bool(final.get("resumed"))
        if final["state"] != "completed":
            raise SystemExit(
                f"service_e2e: recovered job failed: {final.get('error')}"
            )
        print(f"service_e2e: job completed after restart "
              f"(resumed={final.get('resumed')}, "
              f"attempts={final.get('attempts')})")
        if not json.loads(client.result(job_id))["sweep"]:
            raise SystemExit("service_e2e: completed job served empty sweep")

        # The traced server must execute at least one job itself: under
        # netchaos, submit retries can delay phase 1 long enough that the
        # first job completes *before* the SIGKILL, leaving the restarted
        # server nothing to resume — submit a distinct spec so the trace
        # always carries a service.job span.
        traced, _ = client.submit_and_wait(
            {"experiments": ["fig6"], "filters": [1], "wordlengths": [9]},
            tenant="e2e", budget_s=args.timeout, fetch_result=False,
        )
        if traced["state"] != "completed":
            raise SystemExit(
                f"service_e2e: traced job failed: {traced.get('error')}"
            )
        traced_job_id = traced["job_id"]
        print(f"service_e2e: traced job {traced_job_id} completed")

        # Phase 4: served artifact must equal the direct CLI export bytes.
        served = client.artifact("verilog", 0, 8)
        direct_path = work / "direct.v"
        subprocess.run(
            [
                sys.executable, "-m", "repro.eval", "export",
                "--format", "verilog", "--filters", "0",
                "--wordlengths", "8", "--output", str(direct_path),
            ],
            env=_env(), check=True, timeout=args.timeout,
            stdout=subprocess.DEVNULL,
        )
        direct = direct_path.read_text(encoding="utf-8")
        if served != direct:
            raise SystemExit(
                "service_e2e: served Verilog differs from direct CLI export "
                f"({len(served)} vs {len(direct)} chars)"
            )
        print(f"service_e2e: artifact byte-identity holds "
              f"({len(served)} chars)")

        # Phase 5: scrape the live /metrics endpoint (directly — the
        # vocabulary check should not be confounded by injected faults).
        metrics_url = f"http://127.0.0.1:{port}/metrics"
        problems = check_metrics_url(metrics_url)
        if problems:
            for p in problems:
                print(f"service_e2e: {p}", file=sys.stderr)
            raise SystemExit("service_e2e: live /metrics scrape failed")
        # The SLO histograms must have *observed* something by now — this
        # server ran at least the resumed job and the traced job.
        import urllib.request
        with urllib.request.urlopen(metrics_url, timeout=10) as resp:
            exposition = resp.read().decode("utf-8")
        for series in (
            "repro_service_queue_wait_seconds_count",
            "repro_service_run_seconds_count",
            'repro_http_request_seconds_count{method="POST",route="/v1/jobs"}',
        ):
            value = _series_value(exposition, series)
            if not value or float(value) <= 0:
                raise SystemExit(
                    f"service_e2e: {series} is {value!r} after e2e traffic, "
                    "wanted > 0"
                )
        print("service_e2e: live /metrics carries the service vocabulary "
              "and nonzero SLO histograms")

        # Phase 6: graceful drain must exit 0.
        proc.send_signal(signal.SIGTERM)
        code = proc.wait(timeout=60)
        if code != 0:
            raise SystemExit(f"service_e2e: drain exited {code}, wanted 0")
        print("service_e2e: SIGTERM drain exited 0")
    finally:
        if proxy is not None:
            fired = proxy.faults_fired()
            print(f"service_e2e: netchaos injected "
                  f"{len(proxy.injections)} faults over "
                  f"{proxy.connections} connections: "
                  f"{', '.join(fired) or 'none'}")
            proxy.stop()
            if not fired:
                # A chaos pass that never injected anything certified
                # nothing; the seed matrix must guarantee real faults.
                raise SystemExit(
                    "service_e2e: --netchaos fired no faults; pick a "
                    "seed/rate with early activity"
                )
        if proc.poll() is None:
            proc.kill()
            proc.wait(timeout=30)
        proc.stdout.close()

    # The finalized trace must hold well-tagged service spans.
    problems = check_trace(
        str(trace_path), require_spans=["service.request", "service.job"],
        min_spans=2,
    )
    if problems:
        for p in problems:
            print(f"service_e2e: {p}", file=sys.stderr)
        raise SystemExit("service_e2e: trace validation failed")
    print("service_e2e: trace spans validated")

    # Phase 7: the distributed-trace story.  Flush this process's
    # client.request spans, merge all three per-process files, and demand
    # end-to-end continuity: one trace id from client attempt through
    # queue wait to every sweep.task, with resolvable parent/link edges.
    for kind, path in sorted(obs.finalize().items()):
        print(f"service_e2e: [{kind} written to {path}]")
    require_jobs = [traced_job_id]
    if first_job_resumed:
        # The SIGKILL'd-and-resumed job must *also* read as one trace —
        # its spans straddle both server processes.
        require_jobs.append(job_id)
    _merge_traces(
        [client_trace_path, server1_trace_path, trace_path],
        merged_trace_path,
    )
    problems = check_trace(
        str(merged_trace_path),
        require_spans=["client.request", "service.request", "service.job",
                       "sweep.task"],
        min_spans=4,
        require_job_trace=require_jobs,
    )
    if problems:
        for p in problems:
            print(f"service_e2e: {p}", file=sys.stderr)
        raise SystemExit("service_e2e: merged-trace continuity failed")
    print(f"service_e2e: trace continuity holds for {require_jobs} "
          f"across {3 if first_job_resumed else 2}+ processes")

    # Phase 8: the analysis CLI must digest the merged trace — Chrome
    # export round-trips through json.load and the traced job yields a
    # non-empty critical path.
    chrome_path = work / "chrome-trace.json"
    subprocess.run(
        [
            sys.executable, "-m", "repro.eval", "export-chrome",
            "--trace", str(merged_trace_path), "--output", str(chrome_path),
        ],
        env=_env(), check=True, timeout=args.timeout,
        stdout=subprocess.DEVNULL,
    )
    with open(chrome_path, encoding="utf-8") as fh:
        chrome = json.load(fh)
    if not chrome.get("traceEvents"):
        raise SystemExit("service_e2e: Chrome export holds no events")
    print(f"service_e2e: Chrome export round-trips "
          f"({len(chrome['traceEvents'])} events)")
    cp = subprocess.run(
        [
            sys.executable, "-m", "repro.eval", "critical-path",
            "--trace", str(merged_trace_path), "--job", traced_job_id,
        ],
        env=_env(), timeout=args.timeout, capture_output=True, text=True,
    )
    if cp.returncode != 0 or not cp.stdout.strip():
        print(cp.stdout, file=sys.stderr)
        print(cp.stderr, file=sys.stderr)
        raise SystemExit(
            f"service_e2e: critical-path exited {cp.returncode} "
            "or printed nothing"
        )
    print("service_e2e: critical path is non-empty — all phases OK")

    if args.work_dir is None:
        shutil.rmtree(work, ignore_errors=True)
    return 0


if __name__ == "__main__":
    sys.exit(main())
