#!/usr/bin/env python
"""CI end-to-end gate for the synthesis job service.

One scripted pass through every headline guarantee, against real server
processes (no pytest, no mocks):

1. start a server whose chaos plan SIGKILLs each task's first worker,
   submit a (restricted) Table-1 job;
2. SIGKILL the whole server mid-job;
3. restart on the same data dir with a trace recorder and assert the job
   completes — crash recovery requeued it, the sweep journal spared the
   finished tasks;
4. fetch the Verilog artifact over HTTP and assert it is byte-for-byte
   identical to a direct ``python -m repro.eval export`` run;
5. scrape the live ``/metrics`` endpoint through
   ``scripts/check_trace.py`` (service series vocabulary);
6. SIGTERM the server, assert a clean drain (exit 0), and validate the
   recorded trace's ``service.request``/``service.job`` spans.

Exit code 0 when every step holds; 1 with a diagnostic otherwise.

Usage::

    python scripts/service_e2e.py [--work-dir DIR] [--timeout SECONDS]
"""

from __future__ import annotations

import argparse
import json
import os
import shutil
import signal
import subprocess
import sys
import tempfile
import time
import urllib.error
import urllib.request
from pathlib import Path

REPO = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO / "src"))
sys.path.insert(0, str(REPO / "scripts"))

from check_trace import check_metrics_url, check_trace  # noqa: E402

#: A restricted slice of the paper's Table 1: real synthesis, CI-sized.
JOB_SPEC = {"experiments": ["table1"], "filters": [0, 1], "wordlengths": [8]}
ARTIFACT_QUERY = "/v1/artifacts/verilog?filter=0&wordlength=8"


def _env():
    env = dict(os.environ)
    env["PYTHONPATH"] = (
        str(REPO / "src") + os.pathsep + env.get("PYTHONPATH", "")
    )
    return env


def _start_server(data_dir: Path, extra_args, log_path: Path):
    log = open(log_path, "a", encoding="utf-8")
    proc = subprocess.Popen(
        [
            sys.executable, "-m", "repro.eval", "serve",
            "--data-dir", str(data_dir), "--port", "0", "--jobs", "2",
            *extra_args,
        ],
        env=_env(), stdout=subprocess.PIPE, stderr=log, text=True,
    )
    banner = proc.stdout.readline()
    if "serving on" not in banner:
        proc.kill()
        raise SystemExit(f"service_e2e: server never came up: {banner!r}")
    port = int(banner.rsplit(":", 1)[1].rstrip("]\n"))
    return proc, port


def _request(port, method, path, body=None):
    url = f"http://127.0.0.1:{port}{path}"
    data = json.dumps(body).encode() if body is not None else None
    req = urllib.request.Request(url, data=data, method=method)
    with urllib.request.urlopen(req, timeout=30) as resp:
        return resp.status, resp.read().decode("utf-8")


def _poll(port, path, predicate, timeout_s, what):
    deadline = time.monotonic() + timeout_s
    last = None
    while time.monotonic() < deadline:
        try:
            _, raw = _request(port, "GET", path)
            last = json.loads(raw)
            if predicate(last):
                return last
        except (urllib.error.URLError, OSError):
            pass  # server mid-restart
        time.sleep(0.1)
    raise SystemExit(f"service_e2e: timed out waiting for {what}: {last}")


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--work-dir", default=None)
    parser.add_argument("--timeout", type=float, default=600.0)
    args = parser.parse_args(argv)

    work = Path(args.work_dir or tempfile.mkdtemp(prefix="service-e2e-"))
    work.mkdir(parents=True, exist_ok=True)
    data_dir = work / "data"
    log_path = work / "server.log"
    trace_path = work / "service-trace.jsonl"

    # Phase 1: chaos server — every task's first worker is SIGKILLed.
    proc, port = _start_server(
        data_dir, ["--chaos-seed", "7", "--chaos-kill-rate", "1.0"], log_path
    )
    job_id = None
    try:
        status, raw = _request(port, "POST", "/v1/jobs", JOB_SPEC)
        view = json.loads(raw)
        job_id = view["job_id"]
        print(f"service_e2e: submitted {job_id} ({status})")

        # Phase 2: SIGKILL the server once the job is mid-flight with at
        # least one task outcome durably journaled.
        journal_dir = data_dir / "journals"

        def mid_job(_view):
            journals = list(journal_dir.glob("sweep-*.wal"))
            return (
                _view["state"] in ("running", "completed")
                and journals
                and journals[0].read_bytes().count(b"\n") >= 2
            )

        _poll(port, f"/v1/jobs/{job_id}", mid_job, args.timeout,
              "job to reach mid-flight")
    finally:
        proc.kill()
        proc.wait(timeout=30)
        proc.stdout.close()
    print("service_e2e: server SIGKILLed mid-job")

    # Phase 3: restart, no chaos, trace recorded; the job must complete.
    proc, port = _start_server(
        data_dir, ["--trace", str(trace_path)], log_path
    )
    try:
        final = _poll(
            port, f"/v1/jobs/{job_id}",
            lambda v: v["state"] in ("completed", "failed"),
            args.timeout, "recovered job to finish",
        )
        if final["state"] != "completed":
            raise SystemExit(
                f"service_e2e: recovered job failed: {final.get('error')}"
            )
        print(f"service_e2e: job completed after restart "
              f"(resumed={final.get('resumed')})")
        _, result = _request(port, "GET", f"/v1/jobs/{job_id}/result")
        if not json.loads(result)["sweep"]:
            raise SystemExit("service_e2e: completed job served empty sweep")

        # Phase 4: served artifact must equal the direct CLI export bytes.
        _, served = _request(port, "GET", ARTIFACT_QUERY)
        direct_path = work / "direct.v"
        subprocess.run(
            [
                sys.executable, "-m", "repro.eval", "export",
                "--format", "verilog", "--filters", "0",
                "--wordlengths", "8", "--output", str(direct_path),
            ],
            env=_env(), check=True, timeout=args.timeout,
            stdout=subprocess.DEVNULL,
        )
        direct = direct_path.read_text(encoding="utf-8")
        if served != direct:
            raise SystemExit(
                "service_e2e: served Verilog differs from direct CLI export "
                f"({len(served)} vs {len(direct)} chars)"
            )
        print(f"service_e2e: artifact byte-identity holds "
              f"({len(served)} chars)")

        # Phase 5: scrape the live /metrics endpoint.
        problems = check_metrics_url(f"http://127.0.0.1:{port}/metrics")
        if problems:
            for p in problems:
                print(f"service_e2e: {p}", file=sys.stderr)
            raise SystemExit("service_e2e: live /metrics scrape failed")
        print("service_e2e: live /metrics carries the service vocabulary")

        # Phase 6: graceful drain must exit 0.
        proc.send_signal(signal.SIGTERM)
        code = proc.wait(timeout=60)
        if code != 0:
            raise SystemExit(f"service_e2e: drain exited {code}, wanted 0")
        print("service_e2e: SIGTERM drain exited 0")
    finally:
        if proc.poll() is None:
            proc.kill()
            proc.wait(timeout=30)
        proc.stdout.close()

    # The finalized trace must hold well-tagged service spans.
    problems = check_trace(
        str(trace_path), require_spans=["service.request", "service.job"],
        min_spans=2,
    )
    if problems:
        for p in problems:
            print(f"service_e2e: {p}", file=sys.stderr)
        raise SystemExit("service_e2e: trace validation failed")
    print("service_e2e: trace spans validated — all phases OK")

    if args.work_dir is None:
        shutil.rmtree(work, ignore_errors=True)
    return 0


if __name__ == "__main__":
    sys.exit(main())
