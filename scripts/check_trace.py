#!/usr/bin/env python
"""CI gate: validate a JSONL trace and scrape a metrics exposition.

Usage::

    python scripts/check_trace.py TRACE.jsonl [--metrics METRICS.prom]
        [--require-span NAME ...] [--min-spans N] [--allow-torn-tail]
        [--require-job-trace JOB_ID ...]
    python scripts/check_trace.py --metrics-url http://127.0.0.1:8177/metrics
        [--require-series SERIES ...]

Exit codes: 0 when the trace parses, passes the schema check, and (when
``--metrics``/``--metrics-url`` is given) every required metric series is
present in the exposition; 1 otherwise, with one line per problem on
stderr.

The trace argument is optional when only a metrics source is checked, so
the CI service job can scrape a live ``/metrics`` endpoint without
recording a trace first.  ``service.request`` spans additionally must
carry ``route`` and ``method`` tags — a span without them cannot be
aggregated per endpoint, which is the whole point of request tracing.

Kept dependency-free (stdlib + repro.obs) so the CI job needs nothing
beyond the package itself.
"""

from __future__ import annotations

import argparse
import re
import sys
import urllib.request
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.obs import load_trace, validate_trace  # noqa: E402
from repro.obs.report import job_trace_continuity  # noqa: E402

#: Series every traced sweep must expose (predeclared at configure time, so
#: they exist at 0 even when nothing failed).
REQUIRED_SERIES = (
    'repro_tasks_total{status="ok"}',
    'repro_tasks_total{status="failed"}',
    'repro_tasks_total{status="quarantined"}',
    "repro_task_retries_total",
    "repro_pool_rebuilds_total",
    "repro_tasks_resumed_total",
    "repro_tasks_precached_total",
    "repro_cache_put_errors_total",
    "repro_cache_quarantined_total",
)

#: Series a live job service must expose on /metrics.
SERVICE_SERIES = (
    "repro_service_admitted_total",
    'repro_service_rejected_total{reason="queue_full"}',
    'repro_service_rejected_total{reason="tenant_full"}',
    "repro_service_breaker_trips_total",
    'repro_service_jobs_total{status="completed"}',
    'repro_service_jobs_total{status="failed"}',
    "repro_service_jobs_expired_total",
    "repro_service_jobs_resumed_total",
    # SLO telemetry (PR 9): latency histograms + per-tenant counters are
    # predeclared, so the _count series exist even before traffic.
    "repro_service_queue_wait_seconds_count",
    "repro_service_run_seconds_count",
    'repro_http_request_seconds_count{method="POST",route="/v1/jobs"}',
    'repro_http_request_seconds_count{method="GET",route="/metrics"}',
    'repro_service_tenant_admitted_total{tenant="default"}',
)

#: Tags that must be present on every span of the given name (spans missing
#: them cannot be aggregated the way their dashboards assume).
SPAN_TAG_REQUIREMENTS = {
    "service.request": ("route", "method"),
    "service.job": ("job_id", "tenant"),
}


def check_trace(path: str, require_spans, min_spans: int,
                allow_torn_tail: bool = False, require_job_trace=()):
    problems = []
    try:
        records = load_trace(path, allow_torn_tail=allow_torn_tail)
    except (OSError, ValueError) as exc:
        return [f"trace unreadable: {exc}"]
    problems.extend(validate_trace(records))
    for job_id in require_job_trace:
        problems.extend(job_trace_continuity(records, job_id))
    spans = [r for r in records if r.get("kind") == "span"]
    if len(spans) < min_spans:
        problems.append(
            f"trace has {len(spans)} spans, expected at least {min_spans}"
        )
    names = {s.get("name") for s in spans}
    for name in require_spans:
        if name not in names:
            problems.append(f"required span {name!r} absent from trace")
    for span in spans:
        required_tags = SPAN_TAG_REQUIREMENTS.get(span.get("name"))
        if required_tags is None:
            continue
        tags = span.get("tags") or {}
        missing = [t for t in required_tags if t not in tags]
        if missing:
            problems.append(
                f"span {span.get('name')!r} is missing required tags "
                f"{missing} (has {sorted(tags)})"
            )
    return problems


def _check_exposition(text: str, required) -> list:
    problems = []
    for series in required:
        # A series line is "<name>[{labels}] <value>".
        pattern = re.compile(
            rf"^{re.escape(series)} [0-9.eE+-]+$", re.MULTILINE
        )
        if not pattern.search(text):
            problems.append(f"required metric series {series!r} absent")
    return problems


def check_metrics(path: str, extra_series=(), allow_missing: bool = False):
    try:
        text = Path(path).read_text(encoding="utf-8")
    except FileNotFoundError as exc:
        if allow_missing:
            # Worker metrics snapshots are best-effort by design (see
            # repro.obs.worker_checkpoint): a crash can legally leave no
            # file at all, it just can never leave a torn one.
            print(f"check_trace: metrics {path} missing (allowed)")
            return []
        return [f"metrics unreadable: {exc}"]
    except OSError as exc:
        return [f"metrics unreadable: {exc}"]
    return _check_exposition(text, tuple(REQUIRED_SERIES) + tuple(extra_series))


def check_metrics_url(url: str, extra_series=()):
    """Scrape a live /metrics endpoint and validate the service vocabulary."""
    try:
        with urllib.request.urlopen(url, timeout=10) as resp:
            text = resp.read().decode("utf-8")
    except OSError as exc:
        return [f"metrics endpoint {url} unreachable: {exc}"]
    return _check_exposition(
        text, tuple(SERVICE_SERIES) + tuple(extra_series)
    )


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "trace", nargs="?", default=None,
        help="JSONL trace file to validate (optional when only a metrics "
             "source is being checked)",
    )
    parser.add_argument(
        "--metrics", default=None,
        help="Prometheus exposition file to scrape for required series",
    )
    parser.add_argument(
        "--metrics-url", default=None, metavar="URL",
        help="live /metrics endpoint to scrape (validates the service "
             "series vocabulary)",
    )
    parser.add_argument(
        "--require-series", action="append", default=[], metavar="SERIES",
        help="additionally require this exact series line (repeatable; "
             "label form must match, e.g. 'foo_total{status=\"ok\"}')",
    )
    parser.add_argument(
        "--require-span", action="append", default=[], metavar="NAME",
        help="fail unless a span with this name appears (repeatable)",
    )
    parser.add_argument(
        "--min-spans", type=int, default=1, metavar="N",
        help="fail when the trace holds fewer than N spans (default 1)",
    )
    parser.add_argument(
        "--allow-torn-tail", action="store_true",
        help="tolerate one torn final line (a SIGKILL'd process's partial "
             "write); CI stays strict without this flag",
    )
    parser.add_argument(
        "--allow-missing-metrics", action="store_true",
        help="tolerate a --metrics file that does not exist (a crash can "
             "legally lose a best-effort snapshot, never tear one)",
    )
    parser.add_argument(
        "--require-job-trace", action="append", default=[],
        metavar="JOB_ID",
        help="fail unless this job's spans form one continuous trace: a "
             "single trace id, resolvable parent/link references, and no "
             "duplicate (pid, span) pairs (repeatable)",
    )
    args = parser.parse_args(argv)

    if args.trace is None and args.metrics is None and args.metrics_url is None:
        parser.error("nothing to check: give a trace, --metrics, or "
                     "--metrics-url")

    problems = []
    if args.trace is not None:
        problems.extend(
            check_trace(
                args.trace, args.require_span, args.min_spans,
                allow_torn_tail=args.allow_torn_tail,
                require_job_trace=args.require_job_trace,
            )
        )
    if args.metrics is not None:
        problems.extend(
            check_metrics(
                args.metrics, args.require_series,
                allow_missing=args.allow_missing_metrics,
            )
        )
    if args.metrics_url is not None:
        problems.extend(
            check_metrics_url(args.metrics_url, args.require_series)
        )
    for problem in problems:
        print(f"check_trace: {problem}", file=sys.stderr)
    if not problems:
        checked = args.trace or args.metrics or args.metrics_url
        print(f"check_trace: {checked} OK")
    return 1 if problems else 0


if __name__ == "__main__":
    sys.exit(main())
