#!/usr/bin/env python
"""CI gate: validate a JSONL trace and scrape a metrics exposition.

Usage::

    python scripts/check_trace.py TRACE.jsonl [--metrics METRICS.prom]
        [--require-span NAME ...] [--min-spans N]

Exit codes: 0 when the trace parses, passes the schema check, and (when
``--metrics`` is given) every required metric series is present in the
exposition; 1 otherwise, with one line per problem on stderr.

Kept dependency-free (stdlib + repro.obs) so the CI job needs nothing
beyond the package itself.
"""

from __future__ import annotations

import argparse
import re
import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.obs import load_trace, validate_trace  # noqa: E402

#: Series every traced sweep must expose (predeclared at configure time, so
#: they exist at 0 even when nothing failed).
REQUIRED_SERIES = (
    'repro_tasks_total{status="ok"}',
    'repro_tasks_total{status="failed"}',
    'repro_tasks_total{status="quarantined"}',
    "repro_task_retries_total",
    "repro_pool_rebuilds_total",
    "repro_tasks_resumed_total",
    "repro_tasks_precached_total",
    "repro_cache_put_errors_total",
    "repro_cache_quarantined_total",
)


def check_trace(path: str, require_spans, min_spans: int):
    problems = []
    try:
        records = load_trace(path)
    except (OSError, ValueError) as exc:
        return [f"trace unreadable: {exc}"]
    problems.extend(validate_trace(records))
    spans = [r for r in records if r.get("kind") == "span"]
    if len(spans) < min_spans:
        problems.append(
            f"trace has {len(spans)} spans, expected at least {min_spans}"
        )
    names = {s.get("name") for s in spans}
    for name in require_spans:
        if name not in names:
            problems.append(f"required span {name!r} absent from trace")
    return problems


def check_metrics(path: str):
    problems = []
    try:
        text = Path(path).read_text(encoding="utf-8")
    except OSError as exc:
        return [f"metrics unreadable: {exc}"]
    for series in REQUIRED_SERIES:
        # A series line is "<name>[{labels}] <value>".
        pattern = re.compile(
            rf"^{re.escape(series)} [0-9.eE+-]+$", re.MULTILINE
        )
        if not pattern.search(text):
            problems.append(f"required metric series {series!r} absent")
    return problems


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("trace", help="JSONL trace file to validate")
    parser.add_argument(
        "--metrics", default=None,
        help="Prometheus exposition to scrape for required series",
    )
    parser.add_argument(
        "--require-span", action="append", default=[], metavar="NAME",
        help="fail unless a span with this name appears (repeatable)",
    )
    parser.add_argument(
        "--min-spans", type=int, default=1, metavar="N",
        help="fail when the trace holds fewer than N spans (default 1)",
    )
    args = parser.parse_args(argv)

    problems = check_trace(args.trace, args.require_span, args.min_spans)
    if args.metrics is not None:
        problems.extend(check_metrics(args.metrics))
    for problem in problems:
        print(f"check_trace: {problem}", file=sys.stderr)
    if not problems:
        print(f"check_trace: {args.trace} OK")
    return 1 if problems else 0


if __name__ == "__main__":
    sys.exit(main())
