"""Service-level fault injection: the guarantees that survive real crashes.

The claims under test, each against a real server:

* a job whose **workers** are SIGKILLed mid-sweep still completes, and its
  served result is byte-identical to an undisturbed serial run;
* SIGTERM to an idle ``serve`` process drains cleanly and exits 0;
* SIGKILL of the **whole server** mid-job loses nothing: a restart on the
  same data dir requeues the interrupted job (``resumed`` is recorded),
  finishes it via the sweep journal, and serves the same bytes;
* a request **flood** against a tiny queue is shed with 429 + Retry-After,
  and every job that was accepted still completes — load shedding never
  turns into job loss.
"""

from __future__ import annotations

import http.client
import json
import os
import signal
import subprocess
import sys
import time
from pathlib import Path
from threading import Thread

import pytest

from repro.eval import cache as disk_cache
from repro.eval.experiments import clear_cache
from repro.eval.export import sweep_to_json
from repro.eval.harness import run_sweep
from repro.robust import ProcessFaultPlan
from repro.robust.chaos import ServiceFaultPlan
from repro.service.app import ServiceConfig, SynthesisService, make_server
from repro.service.store import JobState

SPEC = {"experiments": ["fig6"], "filters": [0], "wordlengths": [8]}

SRC_DIR = str(Path(__file__).resolve().parents[1] / "src")


@pytest.fixture(autouse=True)
def _pristine_caches():
    clear_cache()
    disk_cache.configure(None)
    yield
    clear_cache()
    disk_cache.configure(None)


def _serial_json(filters, wordlengths):
    clear_cache()
    disk_cache.configure(None)
    outcomes = run_sweep(
        ["fig6"], filter_indices=filters, wordlengths=wordlengths
    )
    text = sweep_to_json(outcomes)
    clear_cache()
    return text


def request_json(port, method, path, body=None):
    conn = http.client.HTTPConnection("127.0.0.1", port, timeout=30)
    try:
        payload = json.dumps(body) if body is not None else None
        conn.request(method, path, body=payload)
        resp = conn.getresponse()
        raw = resp.read()
        return resp.status, dict(resp.getheaders()), json.loads(raw)
    finally:
        conn.close()


def _serve(config):
    """Start a server+engine; returns (server, service, port, stop)."""
    server, service = make_server(config)
    thread = Thread(target=server.serve_forever, daemon=True)
    thread.start()

    def stop():
        server.shutdown()
        server.server_close()
        service.drain(grace_s=60.0)

    return server, service, server.server_address[1], stop


def _wait_store_state(service, job_id, states, timeout_s=120.0):
    deadline = time.monotonic() + timeout_s
    while time.monotonic() < deadline:
        record = service.store.get(job_id)
        if record.state in states:
            return record
        time.sleep(0.05)
    raise AssertionError(
        f"job {job_id} stuck in {record.state} after {timeout_s}s "
        f"(error: {record.error})"
    )


class TestWorkerKill:
    def test_worker_sigkill_mid_job_serves_identical_bytes(self, tmp_path):
        want = _serial_json([0], [8])
        # Every task's first attempt SIGKILLs its worker: each sweep sees
        # real BrokenProcessPool rebuilds and must still finish.
        chaos = ProcessFaultPlan(seed=7, kill_rate=1.0, kills_per_task=1)
        config = ServiceConfig(
            data_dir=tmp_path / "data", port=0, sweep_jobs=2,
            max_retries=2, chaos=chaos,
            # Rebuilds are expected here; keep the breaker out of the way.
            breaker_threshold=1000,
        )
        _, service, port, stop = _serve(config)
        try:
            status, _, view = request_json(port, "POST", "/v1/jobs", dict(SPEC))
            assert status == 201
            record = _wait_store_state(
                service, view["job_id"], {JobState.COMPLETED, JobState.FAILED}
            )
            assert record.state == JobState.COMPLETED, record.error
            assert record.pool_rebuilds >= 1
            status, _, result = request_json(
                port, "GET", f"/v1/jobs/{record.job_id}/result"
            )
            assert status == 200
            assert json.dumps(result, indent=2, sort_keys=True) == want
        finally:
            stop()

    def test_repeated_rebuilds_trip_the_breaker(self, tmp_path):
        chaos = ProcessFaultPlan(seed=7, kill_rate=1.0, kills_per_task=1)
        config = ServiceConfig(
            data_dir=tmp_path / "data", port=0, sweep_jobs=2,
            max_retries=2, chaos=chaos, breaker_threshold=1,
            breaker_cooldown_s=3600.0,
        )
        _, service, port, stop = _serve(config)
        try:
            status, _, view = request_json(port, "POST", "/v1/jobs", dict(SPEC))
            assert status == 201
            _wait_store_state(service, view["job_id"], {JobState.COMPLETED})
            # The completed job's rebuild count tripped the breaker; new
            # work is refused with 503 until the cooldown.
            assert service.breaker.state == "open"
            status, headers, body = request_json(
                port, "POST", "/v1/jobs",
                {"experiments": ["fig6"], "filters": [1], "wordlengths": [8]},
            )
            assert status == 503
            assert body["error"] == "CircuitOpen"
            assert "Retry-After" in headers
            # Existing results stay observable while the breaker is open.
            status, _, _ = request_json(
                port, "GET", f"/v1/jobs/{view['job_id']}/result"
            )
            assert status == 200
        finally:
            stop()


_CRASH_DRIVER = """
import sys
from repro.robust import ProcessFaultPlan
from repro.service.app import ServiceConfig, make_server

# Slow every task so the server is reliably mid-job when SIGKILLed.
config = ServiceConfig(
    data_dir=sys.argv[1], port=0, sweep_jobs=1,
    chaos=ProcessFaultPlan(seed=0, slow_rate=1.0, slow_s=0.5),
)
server, service = make_server(config)
print(f"PORT {server.server_address[1]}", flush=True)
server.serve_forever()
"""


class TestServerCrashRecovery:
    def test_server_sigkill_mid_job_restart_completes(self, tmp_path):
        want = _serial_json([0, 1], [8])
        spec = {"experiments": ["fig6"], "filters": [0, 1], "wordlengths": [8]}
        data_dir = tmp_path / "data"

        env = dict(os.environ)
        env["PYTHONPATH"] = SRC_DIR + os.pathsep + env.get("PYTHONPATH", "")
        proc = subprocess.Popen(
            [sys.executable, "-c", _CRASH_DRIVER, str(data_dir)],
            env=env, stdout=subprocess.PIPE, stderr=subprocess.PIPE,
            text=True,
        )
        try:
            line = proc.stdout.readline()
            assert line.startswith("PORT "), line
            port = int(line.split()[1])
            status, _, view = request_json(port, "POST", "/v1/jobs", spec)
            assert status == 201
            job_id = view["job_id"]
            # Wait until the job is running and at least one task outcome
            # is durably journaled, then SIGKILL the whole server.
            journal_dir = data_dir / "journals"
            deadline = time.monotonic() + 120.0
            while time.monotonic() < deadline:
                _, _, current = request_json(port, "GET", f"/v1/jobs/{job_id}")
                journals = list(journal_dir.glob("sweep-*.wal"))
                if current["state"] == "running" and journals and (
                    journals[0].read_bytes().count(b"\n") >= 2
                ):
                    break
                time.sleep(0.01)
            else:
                pytest.fail("server never journaled a task outcome")
        finally:
            proc.kill()  # SIGKILL: no drain, no atexit, no flushes
            proc.wait(timeout=30)
            proc.stdout.close()
            proc.stderr.close()

        # Restart on the same data dir, chaos disabled: recovery must
        # requeue the interrupted job and the sweep journal must spare the
        # tasks that already landed.
        clear_cache()
        disk_cache.configure(None)
        service = SynthesisService(
            ServiceConfig(data_dir=data_dir, port=0, sweep_jobs=1)
        )
        try:
            record = service.store.get(job_id)
            assert record.state == JobState.QUEUED
            assert record.resumed is True
            service.start()
            record = _wait_store_state(
                service, job_id, {JobState.COMPLETED, JobState.FAILED}
            )
            assert record.state == JobState.COMPLETED, record.error
            assert record.resumed is True
            assert service.store.read_result(job_id) == want
        finally:
            service.drain(grace_s=60.0)


class TestRunningJobTermination:
    """The job deadline and cancellation bind *running* sweeps, not just
    queued ones: a multi-task sweep must stop within about one task budget
    of the deadline/cancel instead of occupying the dispatcher for
    N_tasks x task_deadline_s."""

    def test_job_deadline_expires_a_running_multitask_sweep(self, tmp_path):
        # Every task sleeps 1s and the job deadline is 1.2s, so the sweep
        # (several tasks, serial) cannot finish in time; the supervisor
        # must abort and the job must end expired — promptly.
        chaos = ProcessFaultPlan(seed=0, slow_rate=1.0, slow_s=1.0)
        config = ServiceConfig(
            data_dir=tmp_path / "data", port=0, sweep_jobs=1, chaos=chaos,
        )
        _, service, port, stop = _serve(config)
        try:
            spec = dict(
                SPEC, filters=[0, 1], deadline_s=1.2, tenant="deadline"
            )
            status, _, view = request_json(port, "POST", "/v1/jobs", spec)
            assert status == 201
            started = time.monotonic()
            record = _wait_store_state(
                service, view["job_id"],
                {JobState.COMPLETED, JobState.FAILED, JobState.EXPIRED},
                timeout_s=60.0,
            )
            assert record.state == JobState.EXPIRED, record.error
            # Well under the ~N_tasks x task_deadline_s worst case.
            assert time.monotonic() - started < 30.0
        finally:
            stop()

    def test_cancel_stops_a_running_sweep_and_frees_the_dispatcher(
        self, tmp_path
    ):
        chaos = ProcessFaultPlan(seed=0, slow_rate=1.0, slow_s=1.0)
        config = ServiceConfig(
            data_dir=tmp_path / "data", port=0, sweep_jobs=1, chaos=chaos,
        )
        _, service, port, stop = _serve(config)
        try:
            big = dict(SPEC, filters=[0, 1], tenant="cancel")
            _, _, view = request_json(port, "POST", "/v1/jobs", big)
            _wait_store_state(service, view["job_id"], {JobState.RUNNING})
            status, _, cancelled = request_json(
                port, "DELETE", f"/v1/jobs/{view['job_id']}"
            )
            assert status == 200 and cancelled["state"] == "cancelled"
            # The abort must free the (single) dispatcher: a small job
            # submitted after the cancel still completes.
            _, _, other = request_json(
                port, "POST", "/v1/jobs",
                dict(SPEC, filters=[2], tenant="after"),
            )
            record = _wait_store_state(
                service, other["job_id"],
                {JobState.COMPLETED, JobState.FAILED},
            )
            assert record.state == JobState.COMPLETED, record.error
            # The cancelled job stayed cancelled (the dispatcher's abort
            # transition lost cleanly to the client's cancel).
            assert service.store.get(view["job_id"]).state == (
                JobState.CANCELLED
            )
        finally:
            stop()


class TestDrain:
    def test_sigterm_drains_and_exits_zero(self, tmp_path):
        env = dict(os.environ)
        env["PYTHONPATH"] = SRC_DIR + os.pathsep + env.get("PYTHONPATH", "")
        proc = subprocess.Popen(
            [
                sys.executable, "-m", "repro.eval", "serve",
                "--data-dir", str(tmp_path / "data"), "--port", "0",
                "--drain-grace", "30",
            ],
            env=env, stdout=subprocess.PIPE, stderr=subprocess.PIPE,
            text=True,
        )
        try:
            line = proc.stdout.readline()
            assert "serving on" in line, line
            proc.send_signal(signal.SIGTERM)
            assert proc.wait(timeout=60) == 0
        finally:
            if proc.poll() is None:
                proc.kill()
                proc.wait(timeout=30)
            proc.stdout.close()
            proc.stderr.close()


class TestFlood:
    def test_flood_sheds_with_429_and_loses_no_accepted_job(self, tmp_path):
        plan = ServiceFaultPlan(seed=3, flood_jobs=8, flood_tenants=2)
        config = ServiceConfig(
            data_dir=tmp_path / "data", port=0, sweep_jobs=1,
            max_queue_depth=3, max_queue_depth_per_tenant=2,
        )
        _, service, port, stop = _serve(config)
        accepted, shed = [], 0
        try:
            for spec in plan.flood_specs():
                status, headers, view = request_json(
                    port, "POST", "/v1/jobs", dict(spec)
                )
                if status in (200, 201):
                    accepted.append(view["job_id"])
                else:
                    assert status == 429
                    assert int(headers["Retry-After"]) >= 1
                    shed += 1
            # A queue of 3 (2 per tenant) cannot hold an 8-job burst.
            assert shed >= 1
            assert accepted
            for job_id in accepted:
                record = _wait_store_state(
                    service, job_id, {JobState.COMPLETED, JobState.FAILED}
                )
                assert record.state == JobState.COMPLETED, record.error
        finally:
            stop()

    def test_flood_specs_are_deterministic_and_distinct(self):
        plan = ServiceFaultPlan(seed=3, flood_jobs=8, flood_tenants=2)
        first = plan.flood_specs()
        second = ServiceFaultPlan(seed=3, flood_jobs=8, flood_tenants=2)
        assert first == second.flood_specs()
        points = {
            (s["filters"][0], s["wordlengths"][0]) for s in first
        }
        assert len(points) == 8  # idempotent collapse cannot shrink a flood
        assert ServiceFaultPlan(seed=4).flood_specs() != first
