"""Unit + property tests for the Bull-Horrocks-Modified MCM baseline."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.baselines import simple_adder_count, synthesize_bhm
from repro.errors import SynthesisError

COEFFS = st.lists(
    st.integers(min_value=-(2**12), max_value=2**12), min_size=1, max_size=12
).filter(lambda cs: any(cs))
SAMPLES = [1, -1, 3, 255, -128, 12345, -999]


class TestBhmBasics:
    def test_empty_rejected(self):
        with pytest.raises(SynthesisError):
            synthesize_bhm([])

    def test_free_taps_cost_nothing(self):
        arch = synthesize_bhm([0, 1, -2, 64])
        assert arch.adder_count == 0
        arch.verify(SAMPLES)

    def test_single_constant(self):
        arch = synthesize_bhm([45])
        arch.verify(SAMPLES)
        assert arch.adder_count <= simple_adder_count([45])

    def test_paper_example(self, paper_coefficients):
        arch = synthesize_bhm(paper_coefficients)
        arch.verify(SAMPLES)
        assert arch.adder_count <= simple_adder_count(paper_coefficients)

    def test_fundamentals_contain_targets(self):
        arch = synthesize_bhm([7, 23, 45])
        for odd in (7, 23, 45):
            assert odd in arch.fundamentals

    def test_fundamental_reuse_across_targets(self):
        """45 = 5*9 and 2565 = 45*57: shared structure must help."""
        together = synthesize_bhm([45, 2565]).adder_count
        separate = (
            synthesize_bhm([45]).adder_count + synthesize_bhm([2565]).adder_count
        )
        assert together <= separate


class TestBhmProperties:
    @given(COEFFS)
    @settings(max_examples=60, deadline=None)
    def test_bit_exact(self, coeffs):
        arch = synthesize_bhm(coeffs)
        arch.verify(SAMPLES)

    @given(COEFFS)
    @settings(max_examples=40, deadline=None)
    def test_never_worse_than_simple(self, coeffs):
        """Fundamental sharing can only improve on per-tap chains."""
        arch = synthesize_bhm(coeffs)
        assert arch.adder_count <= simple_adder_count(coeffs)

    @given(st.integers(min_value=3, max_value=2**14).filter(lambda n: n % 2 == 1))
    @settings(max_examples=80, deadline=None)
    def test_single_odd_target_exact(self, target):
        arch = synthesize_bhm([target])
        assert arch.netlist.output_values()["tap0"] == target
