"""The durability-ordering linter: every ack must already be covered.

The linter is the *structural* half of the certification — it catches a
deleted fsync without needing the enumerator to materialize the losing
state.  These tests pin the coverage rules one at a time: file fsync,
directory-entry fsync, ancestor-directory fsync, and the ordering of the
ack relative to all three.
"""

from __future__ import annotations

from repro.robust.crashsim.fabric import IoOp
from repro.robust.crashsim.lint import lint_durability


def oplog(*specs):
    return [
        IoOp(index=i, kind=kind, **kwargs)
        for i, (kind, kwargs) in enumerate(specs)
    ]


def ack(path="f", label="wal.append", **extra):
    info = dict(extra)
    info["path"] = path
    return ("ack", {"label": label, "info": tuple(sorted(info.items()))})


class TestCoveredAcks:
    def test_fully_covered_ack_is_clean(self):
        violations = lint_durability(oplog(
            ("create", {"path": "f"}),
            ("write", {"path": "f", "data": b"rec"}),
            ("fsync", {"path": "f"}),
            ("fsync_dir", {"path": "."}),
            ack(),
        ))
        assert violations == []

    def test_ack_on_preexisting_file_is_clean(self):
        violations = lint_durability(oplog(
            ("exists", {"path": "old", "data": b"seed"}),
            ack(path="old"),
        ))
        assert violations == []

    def test_non_path_info_keys_ignored(self):
        violations = lint_durability(oplog(
            ("create", {"path": "f"}),
            ("write", {"path": "f", "data": b"rec"}),
            ("fsync", {"path": "f"}),
            ("fsync_dir", {"path": "."}),
            ack(job_id="job-1", state="queued"),
        ))
        assert violations == []

    def test_out_of_sandbox_path_values_ignored(self):
        violations = lint_durability(oplog(
            ack(path="not-a-recorded-file"),
        ))
        assert violations == []


class TestUncoveredAcks:
    def test_missing_file_fsync_flagged(self):
        violations = lint_durability(oplog(
            ("create", {"path": "f"}),
            ("write", {"path": "f", "data": b"rec"}),
            ("fsync_dir", {"path": "."}),
            ack(),
        ))
        assert len(violations) == 1
        assert "missing file fsync" in violations[0].reason
        assert violations[0].path == "f"

    def test_missing_dir_fsync_flagged(self):
        violations = lint_durability(oplog(
            ("create", {"path": "f"}),
            ("write", {"path": "f", "data": b"rec"}),
            ("fsync", {"path": "f"}),
            ack(),
        ))
        assert len(violations) == 1
        assert "directory entry not durable" in violations[0].reason

    def test_missing_ancestor_dir_fsync_flagged(self):
        violations = lint_durability(oplog(
            ("mkdir", {"path": "d"}),
            ("create", {"path": "d/f"}),
            ("write", {"path": "d/f", "data": b"rec"}),
            ("fsync", {"path": "d/f"}),
            ("fsync_dir", {"path": "d"}),
            # d's own entry in "." was never fsync'd.
            ack(path="d/f"),
        ))
        assert len(violations) == 1
        assert "ancestor directory 'd'" in violations[0].reason

    def test_ack_before_fsync_is_a_violation_even_if_fsynced_later(self):
        # Ordering matters: the promise was reachable before the covering
        # fsync ran, so a crash in between loses acknowledged data.
        violations = lint_durability(oplog(
            ("create", {"path": "f"}),
            ("write", {"path": "f", "data": b"rec"}),
            ack(),
            ("fsync", {"path": "f"}),
            ("fsync_dir", {"path": "."}),
        ))
        assert len(violations) == 1
        assert violations[0].index == 2

    def test_every_uncovered_ack_reported(self):
        violations = lint_durability(oplog(
            ("create", {"path": "f"}),
            ("write", {"path": "f", "data": b"a"}),
            ack(),
            ("write", {"path": "f", "data": b"b"}),
            ack(),
        ))
        assert len(violations) == 2

    def test_violation_str_names_op_label_and_reason(self):
        (violation,) = lint_durability(oplog(
            ("create", {"path": "f"}),
            ("write", {"path": "f", "data": b"rec"}),
            ack(),
        ))
        text = str(violation)
        assert "wal.append" in text and "'f'" in text and "op[2]" in text
