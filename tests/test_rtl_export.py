"""Unit tests for Verilog RTL emission and Graphviz export."""

import re

import pytest

from repro.arch import Ref, ShiftAddNetlist, emit_verilog, to_dot
from repro.core import synthesize_mrpf


@pytest.fixture(scope="module")
def paper_arch():
    return synthesize_mrpf([7, 66, 17, 9, 27, 41, 56, 11], wordlength=7)


class TestVerilog:
    def test_module_header_and_ports(self, paper_arch):
        text = emit_verilog(paper_arch.netlist, paper_arch.tap_names,
                            module_name="mrpf8", input_bits=12)
        assert "module mrpf8 #(" in text
        assert "parameter IN_W = 12" in text
        assert "input  wire signed [IN_W-1:0] x" in text
        assert "output wire signed [OUT_W-1:0] y" in text
        assert text.rstrip().endswith("endmodule")

    def test_one_wire_per_adder(self, paper_arch):
        text = emit_verilog(paper_arch.netlist, paper_arch.tap_names)
        adder_wires = re.findall(r"wire signed \[\d+:0\] n\d+ = .* \+ .*;", text)
        assert len(adder_wires) == paper_arch.adder_count

    def test_one_product_per_tap(self, paper_arch):
        text = emit_verilog(paper_arch.netlist, paper_arch.tap_names)
        products = re.findall(r"wire signed \[OUT_W-1:0\] p\d+ = ", text)
        assert len(products) == len(paper_arch.tap_names)

    def test_register_chain_length(self, paper_arch):
        text = emit_verilog(paper_arch.netlist, paper_arch.tap_names)
        registers = re.findall(r"reg signed \[OUT_W-1:0\] r\d+;", text)
        assert len(registers) == len(paper_arch.tap_names) - 1

    def test_coefficients_in_comments(self, paper_arch):
        text = emit_verilog(paper_arch.netlist, paper_arch.tap_names)
        for coefficient in paper_arch.coefficients:
            assert f"coefficient {coefficient}" in text

    def test_zero_tap_emitted_as_zero(self):
        nl = ShiftAddNetlist()
        nl.mark_output("tap0", nl.ensure_constant(5))
        nl.mark_output("tap1", None)
        text = emit_verilog(nl, ["tap0", "tap1"])
        assert "zero tap" in text

    def test_single_tap_no_registers(self):
        nl = ShiftAddNetlist()
        nl.mark_output("tap0", nl.ensure_constant(5))
        text = emit_verilog(nl, ["tap0"])
        assert "reg signed" not in text
        assert "assign y = p0;" in text

    def test_shift_rendered_arithmetic(self, paper_arch):
        text = emit_verilog(paper_arch.netlist, paper_arch.tap_names)
        assert "<<<" in text

    def test_out_width_covers_accumulation(self, paper_arch):
        text = emit_verilog(paper_arch.netlist, paper_arch.tap_names,
                            input_bits=12)
        match = re.search(r"parameter OUT_W = (\d+)", text)
        out_w = int(match.group(1))
        acc = sum(abs(c) for c in paper_arch.coefficients)
        assert out_w >= acc.bit_length() + 12


class TestDot:
    def test_digraph_structure(self, paper_arch):
        text = to_dot(paper_arch.netlist, paper_arch.tap_names, "g")
        assert text.startswith("digraph g {")
        assert text.rstrip().endswith("}")

    def test_input_node_present(self, paper_arch):
        assert 'n0 [label="x(n)"' in to_dot(paper_arch.netlist)

    def test_one_box_per_adder(self, paper_arch):
        text = to_dot(paper_arch.netlist)
        assert text.count("shape=box") == paper_arch.adder_count

    def test_outputs_rendered(self, paper_arch):
        text = to_dot(paper_arch.netlist, paper_arch.tap_names)
        for name in paper_arch.tap_names:
            assert f'out_{name} [label="{name}"' in text

    def test_zero_outputs_skipped(self):
        nl = ShiftAddNetlist()
        nl.mark_output("tap0", None)
        text = to_dot(nl, ["tap0"])
        assert "out_tap0" not in text

    def test_edge_labels_show_shift(self):
        nl = ShiftAddNetlist()
        nl.add(Ref(node=0, shift=3), Ref(node=0, sign=-1))
        text = to_dot(nl)
        assert "<<3" in text
