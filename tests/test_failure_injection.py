"""Failure-injection tests: the validators must catch corrupted structures.

A reproduction whose checkers cannot catch a broken architecture proves
nothing when they pass.  These tests corrupt netlists, forests and CSE
networks on purpose and assert the validation layer rejects each corruption.
"""

import pytest

from repro.arch import Node, Ref, ShiftAddNetlist
from repro.arch.simulate import verify_against_convolution
from repro.core import synthesize_mrpf
from repro.cse import Pattern, Term, eliminate
from repro.cse.hartley import CseNetwork
from repro.errors import NetlistError, SimulationError, SynthesisError
from repro.graph import SpanningForest, TreeAssignment


class TestNetlistCorruption:
    def test_tampered_node_value_caught(self):
        nl = ShiftAddNetlist()
        nl.ensure_constant(45)
        # Corrupt a node's declared fundamental behind the API's back.
        victim = nl._nodes[1]
        nl._nodes[1] = Node.__new__(Node)
        object.__setattr__(nl._nodes[1], "id", victim.id)
        object.__setattr__(nl._nodes[1], "value", victim.value + 1)
        object.__setattr__(nl._nodes[1], "a", victim.a)
        object.__setattr__(nl._nodes[1], "b", victim.b)
        object.__setattr__(nl._nodes[1], "label", victim.label)
        with pytest.raises(NetlistError):
            nl.validate()

    def test_non_dense_ids_caught(self):
        nl = ShiftAddNetlist()
        nl.ensure_constant(45)
        nl._nodes.pop(1)
        with pytest.raises(NetlistError):
            nl.validate()

    def test_dangling_output_caught(self):
        nl = ShiftAddNetlist()
        nl._outputs["ghost"] = Ref(node=57)
        with pytest.raises(NetlistError):
            nl.validate()


class TestSimulationMismatch:
    def test_wrong_coefficient_vector_caught(self, paper_coefficients):
        arch = synthesize_mrpf(paper_coefficients, 7)
        wrong = list(paper_coefficients)
        wrong[3] += 1
        with pytest.raises(SimulationError):
            verify_against_convolution(
                arch.netlist, arch.tap_names, wrong, [1, 2, 3]
            )

    def test_swapped_tap_order_caught(self, paper_coefficients):
        arch = synthesize_mrpf(paper_coefficients, 7)
        names = list(arch.tap_names)
        names[0], names[1] = names[1], names[0]
        with pytest.raises(SimulationError):
            verify_against_convolution(
                arch.netlist, names, list(paper_coefficients), [1, 2, 3]
            )


class TestForestCorruption:
    def test_wrong_child_depth_caught(self):
        root = TreeAssignment(vertex=3, kind="root", depth=0)
        from repro.graph import ColorEdge

        edge = ColorEdge(src=3, dst=11, shift=2, src_sign=1,
                         color=1, color_shift=0, color_sign=-1, weight=1)
        child = TreeAssignment(vertex=11, kind="child", depth=2,
                               parent=3, edge=edge)
        with pytest.raises(Exception):
            SpanningForest(assignments=(root, child))


class TestCseCorruption:
    def test_tampered_terms_caught(self):
        network = eliminate([45, 89])
        broken_terms = list(network.constant_terms)
        broken_terms[0] = broken_terms[0] + (Term(pos=9, sign=1),)
        broken = CseNetwork(
            constants=network.constants,
            subexpressions=network.subexpressions,
            symbol_values=network.symbol_values,
            constant_terms=tuple(broken_terms),
        )
        with pytest.raises(SynthesisError):
            broken.validate()

    def test_tampered_symbol_value_caught(self):
        network = eliminate([0b101, 0b10100, 0b1010000], )
        if not network.subexpressions:
            pytest.skip("no subexpression extracted for this input")
        symbol = next(iter(network.subexpressions))
        values = dict(network.symbol_values)
        values[symbol] += 2
        broken = CseNetwork(
            constants=network.constants,
            subexpressions=network.subexpressions,
            symbol_values=values,
            constant_terms=network.constant_terms,
        )
        with pytest.raises(SynthesisError):
            broken.validate()
