"""The abstract crash model: replay semantics and state enumeration.

Each test builds a tiny op log by hand and checks the model derives
exactly the durable/pending split and the crash states the POSIX
crash-consistency literature says are legal: unsynced writes may vanish,
the final write may tear at any byte, an un-fsync'd rename may roll
back, and a directory entry never fsync'd into its parent may take the
whole subtree with it.
"""

from __future__ import annotations

from repro.robust.crashsim.fabric import IoOp, SimDisk
from repro.robust.crashsim.model import (
    CrashState,
    enumerate_states,
    replay,
)


def oplog(*specs):
    """Build an op log from (kind, kwargs) tuples with auto indices."""
    return [
        IoOp(index=i, kind=kind, **kwargs)
        for i, (kind, kwargs) in enumerate(specs)
    ]


def trees(states):
    """The set of materialized file trees across ``states``."""
    return {s.files for s in states}


class TestReplaySemantics:
    def test_unsynced_write_is_pending(self):
        state = replay(oplog(
            ("create", {"path": "f"}),
            ("write", {"path": "f", "data": b"abc"}),
        ))
        durable, reason = state.is_durable("f")
        assert not durable
        assert "not durable" in reason

    def test_fsync_folds_pending_into_durable(self):
        state = replay(oplog(
            ("create", {"path": "f"}),
            ("write", {"path": "f", "data": b"abc"}),
            ("fsync", {"path": "f"}),
            ("fsync_dir", {"path": "."}),
        ))
        assert state.is_durable("f") == (True, "")
        assert state.durable_ns["f"].durable == b"abc"

    def test_file_fsync_without_dir_fsync_is_not_durable(self):
        state = replay(oplog(
            ("create", {"path": "f"}),
            ("write", {"path": "f", "data": b"abc"}),
            ("fsync", {"path": "f"}),
        ))
        durable, reason = state.is_durable("f")
        assert not durable
        assert "directory entry" in reason

    def test_truncate_pads_with_zeros(self):
        state = replay(oplog(
            ("create", {"path": "f"}),
            ("write", {"path": "f", "data": b"ab"}),
            ("truncate", {"path": "f", "size": 4}),
        ))
        inode = state.live_ns["f"]
        assert inode.content(len(inode.pending)) == b"ab\x00\x00"

    def test_replace_moves_inode_identity(self):
        state = replay(oplog(
            ("create", {"path": "tmp"}),
            ("write", {"path": "tmp", "data": b"v"}),
            ("fsync", {"path": "tmp"}),
            ("replace", {"path": "tmp", "dst": "final"}),
        ))
        assert "tmp" not in state.live_ns
        assert "final" in state.live_ns
        # The rename itself is still pending in the directory.
        durable, reason = state.is_durable("final")
        assert not durable and "directory entry" in reason

    def test_mkdir_pending_until_parent_fsync(self):
        state = replay(oplog(
            ("mkdir", {"path": "d"}),
            ("create", {"path": "d/f"}),
            ("write", {"path": "d/f", "data": b"x"}),
            ("fsync", {"path": "d/f"}),
            ("fsync_dir", {"path": "d"}),
        ))
        durable, reason = state.is_durable("d/f")
        # d/f's entry is durable in d, but d itself never reached its parent.
        assert not durable
        assert "ancestor directory 'd'" in reason

    def test_exists_imports_fully_durable(self):
        state = replay(oplog(("exists", {"path": "old", "data": b"seed"})))
        assert state.is_durable("old") == (True, "")


class TestEnumerateStates:
    def test_unsynced_write_may_be_lost_or_torn(self):
        ops = oplog(
            ("create", {"path": "f"}),
            ("fsync_dir", {"path": "."}),
            ("write", {"path": "f", "data": b"abcdef"}),
        )
        # States dedup by content across cuts, so the "write lost" tree is
        # represented once (at its earliest cut) — scan all states.
        contents = {dict(s.files).get("f") for s in enumerate_states(ops)}
        # Lost entirely, fully present, and torn at 0/middle/last byte.
        assert b"" in contents
        assert b"abcdef" in contents
        assert b"abc" in contents and b"abcde" in contents

    def test_fsynced_data_survives_every_state(self):
        ops = oplog(
            ("create", {"path": "f"}),
            ("write", {"path": "f", "data": b"safe"}),
            ("fsync", {"path": "f"}),
            ("fsync_dir", {"path": "."}),
        )
        final = enumerate_states(ops, cuts=[len(ops)])
        assert final
        for state in final:
            assert dict(state.files)["f"] == b"safe"

    def test_unsynced_rename_can_roll_back(self):
        ops = oplog(
            ("create", {"path": "dst"}),
            ("write", {"path": "dst", "data": b"old"}),
            ("fsync", {"path": "dst"}),
            ("fsync_dir", {"path": "."}),
            ("create", {"path": "tmp"}),
            ("write", {"path": "tmp", "data": b"new"}),
            ("fsync", {"path": "tmp"}),
            ("replace", {"path": "tmp", "dst": "dst"}),
        )
        final = enumerate_states(ops, cuts=[len(ops)])
        contents = {dict(s.files).get("dst") for s in final}
        # Both sides of the un-fsync'd rename are legal outcomes...
        assert {b"old", b"new"} <= contents
        # ...but a half-old-half-new destination is not.
        assert all(c in (b"old", b"new") for c in contents)

    def test_torn_rename_exposes_partial_source_data(self):
        # os.replace applied while the source's data was never fsync'd:
        # the destination may hold any prefix of the new bytes.
        ops = oplog(
            ("create", {"path": "tmp"}),
            ("write", {"path": "tmp", "data": b"newdata"}),
            ("replace", {"path": "tmp", "dst": "dst"}),
            ("fsync_dir", {"path": "."}),
        )
        final = enumerate_states(ops, cuts=[len(ops)])
        contents = {dict(s.files).get("dst") for s in final}
        assert b"" in contents  # rename durable, data lost
        assert b"newdata" in contents

    def test_vanished_directory_takes_children_with_it(self):
        ops = oplog(
            ("mkdir", {"path": "d"}),
            ("create", {"path": "d/f"}),
            ("write", {"path": "d/f", "data": b"x"}),
            ("fsync", {"path": "d/f"}),
            ("fsync_dir", {"path": "d"}),
            # "." never fsync'd: d's own entry is still pending.
        )
        final = enumerate_states(ops, cuts=[len(ops)])
        assert any("d" not in s.dirs and not dict(s.files) for s in final)
        assert any(dict(s.files).get("d/f") == b"x" for s in final)

    def test_states_deduplicated_by_content_and_acks(self):
        ops = oplog(
            ("create", {"path": "f"}),
            ("write", {"path": "f", "data": b"v"}),
            ("fsync", {"path": "f"}),
            ("fsync_dir", {"path": "."}),
        )
        states = enumerate_states(ops)
        assert len({s.digest for s in states}) == len(states)

    def test_same_tree_different_acks_are_distinct_states(self):
        base = oplog(
            ("create", {"path": "f"}),
            ("write", {"path": "f", "data": b"v"}),
        )
        acked = base + [IoOp(index=2, kind="ack", label="promise",
                             info=(("path", "f"),))]
        plain_trees = trees(enumerate_states(base))
        acked_states = enumerate_states(acked)
        # The post-ack cut re-emits the same trees with the ack attached —
        # they must NOT dedup away, or the checker never sees the broken
        # promise.
        assert any(
            s.acks and s.files in plain_trees for s in acked_states
        )

    def test_explicit_cuts_restrict_enumeration(self):
        ops = oplog(
            ("create", {"path": "f"}),
            ("write", {"path": "f", "data": b"v"}),
        )
        states = enumerate_states(ops, cuts=[0])
        assert {s.cut for s in states} == {0}
        assert trees(states) == {()}


class TestMaterialize:
    def test_round_trip_to_disk(self, tmp_path):
        state = CrashState.build(
            cut=3,
            variant="corner:meta=all,data=all",
            files={"d/f": b"bytes", "top": b""},
            dirs={".", "d", "empty"},
        )
        target = tmp_path / "state"
        state.materialize(target)
        assert (target / "d" / "f").read_bytes() == b"bytes"
        assert (target / "top").read_bytes() == b""
        assert (target / "empty").is_dir()

    def test_recorded_workload_states_materialize_faithfully(self, tmp_path):
        root = tmp_path / "rec"
        root.mkdir()
        sim = SimDisk(root)
        with sim.open(root / "f", "w") as fh:
            fh.write("payload")
            sim.fsync(fh)
        sim.fsync_dir(root)
        final = enumerate_states(sim.ops, cuts=[len(sim.ops)])
        for i, state in enumerate(final):
            out = tmp_path / f"state-{i}"
            state.materialize(out)
            assert (out / "f").read_bytes() == b"payload"
