"""Tests for the MSD-aware CSE representation search."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cse import choose_encodings, cse_adder_count, eliminate, eliminate_msd
from repro.errors import SynthesisError
from repro.numrep import encode_csd, minimal_nonzero_count

CONSTS = st.lists(
    st.integers(min_value=-(2**12), max_value=2**12).filter(lambda n: n != 0),
    min_size=1, max_size=8,
)


class TestChooseEncodings:
    def test_one_encoding_per_constant(self):
        constants = [45, 89, 173]
        encodings = choose_encodings(constants)
        assert len(encodings) == 3
        for c, e in zip(constants, encodings):
            assert e.value == c

    def test_encodings_are_minimal(self):
        for c, e in zip([45, 89, 173], choose_encodings([45, 89, 173])):
            assert e.nonzero_count == minimal_nonzero_count(c)

    def test_single_constant_gets_csd(self):
        """With no pool to overlap, ties break to the canonical form."""
        assert choose_encodings([45]) == [encode_csd(45)]

    @given(CONSTS)
    @settings(max_examples=60, deadline=None)
    def test_values_and_minimality_preserved(self, constants):
        encodings = choose_encodings(constants)
        for c, e in zip(constants, encodings):
            assert e.value == c
            assert e.nonzero_count == minimal_nonzero_count(c)


class TestEliminateMsd:
    def test_zero_rejected(self):
        with pytest.raises(SynthesisError):
            eliminate_msd([5, 0])

    def test_reconstruction_exact(self):
        network = eliminate_msd([45, 89, 173, 205])
        network.validate()

    @given(CONSTS)
    @settings(max_examples=50, deadline=None)
    def test_never_worse_than_csd_cse(self, constants):
        """The CSD assignment is in the search space, so MSD-CSE >= CSD-CSE
        never happens (in adder count)."""
        msd = eliminate_msd(constants)
        csd = eliminate(constants)
        assert msd.adder_count <= csd.adder_count

    @given(CONSTS)
    @settings(max_examples=40, deadline=None)
    def test_constants_reconstruct(self, constants):
        network = eliminate_msd(constants)
        for i, c in enumerate(constants):
            assert network.reconstruct(i) == c

    def test_finds_cross_representation_sharing(self):
        """A case where a non-canonical form exposes sharing CSD hides:
        23 = 10111b has CSD 10N00N (pattern deltas {3,5,...}); choosing
        3 = 11b's non-canonical form can align with other constants."""
        constants = [23, 46, 92, 184, 368]  # shifts: one odd fundamental
        msd = eliminate_msd(constants)
        assert msd.adder_count <= cse_adder_count(constants) + len(constants)
