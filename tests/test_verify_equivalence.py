"""Equivalence proving: exhaustive sweeps, corner vectors, differential diff."""

import shutil

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.arch import ShiftAddNetlist
from repro.baselines import synthesize_simple
from repro.core import synthesize_mrpf
from repro.errors import EquivalenceViolation, VerificationError
from repro.robust.chaos import NetlistMutator
from repro.verify import (
    EXHAUSTIVE_MAX_BITS,
    cmodel_equivalence,
    corner_vectors,
    differential_equivalence,
    exhaustive_equivalence,
    golden_convolution,
)

COEFFS = st.lists(
    st.integers(min_value=-(2**8), max_value=2**8), min_size=1, max_size=6
).filter(lambda cs: any(cs))


def build_filter(constants):
    nl = ShiftAddNetlist()
    names = []
    for i, c in enumerate(constants):
        name = f"tap{i}"
        nl.mark_output(name, nl.ensure_constant(c) if c else None)
        names.append(name)
    return nl, names


class TestGoldenConvolution:
    @given(COEFFS, st.lists(st.integers(-1000, 1000), min_size=1, max_size=20))
    @settings(max_examples=40)
    def test_matches_definition(self, coeffs, samples):
        got = golden_convolution(coeffs, samples)
        assert len(got) == len(samples)
        for n, y in enumerate(got):
            assert y == sum(
                c * samples[n - i]
                for i, c in enumerate(coeffs) if n - i >= 0
            )


class TestCornerVectors:
    def test_shapes_and_extremes(self):
        vectors = corner_vectors(5, input_bits=8)
        assert set(vectors) == {
            "impulse", "negative_impulse", "step", "alternating",
            "max_magnitude",
        }
        for stimulus in vectors.values():
            assert len(stimulus) == 9
            assert all(-128 <= x <= 127 for x in stimulus)
        assert vectors["impulse"][0] == 127
        assert vectors["negative_impulse"][0] == -128
        assert vectors["max_magnitude"] == [-128] * 9

    def test_rejects_degenerate(self):
        with pytest.raises(VerificationError):
            corner_vectors(0)
        with pytest.raises(VerificationError):
            corner_vectors(3, input_bits=0)


class TestExhaustive:
    def test_complete_sweep_on_paper_example(self, paper_coefficients):
        arch = synthesize_mrpf(paper_coefficients, 7)
        swept = exhaustive_equivalence(
            arch.netlist, arch.tap_names, paper_coefficients, input_bits=8
        )
        assert swept == 256

    def test_refuses_oversized_sweep(self, paper_coefficients):
        arch = synthesize_mrpf(paper_coefficients, 7)
        with pytest.raises(VerificationError):
            exhaustive_equivalence(
                arch.netlist, arch.tap_names, paper_coefficients,
                input_bits=EXHAUSTIVE_MAX_BITS + 1,
            )

    def test_catches_wrong_coefficient_claim(self, paper_coefficients):
        arch = synthesize_mrpf(paper_coefficients, 7)
        wrong = list(paper_coefficients)
        wrong[0] += 1
        with pytest.raises(EquivalenceViolation):
            exhaustive_equivalence(
                arch.netlist, arch.tap_names, wrong, input_bits=6
            )


class TestDifferential:
    def test_green_on_synthesized(self, paper_coefficients):
        arch = synthesize_mrpf(paper_coefficients, 7)
        cycles = differential_equivalence(
            arch.netlist, arch.tap_names, paper_coefficients
        )
        assert cycles > 0

    @given(COEFFS)
    @settings(max_examples=15, deadline=None)
    def test_green_on_random_simple_filters(self, coeffs):
        arch = synthesize_simple([c for c in coeffs] or [1])
        differential_equivalence(
            arch.netlist, arch.tap_names, list(coeffs),
            input_bits=12, random_blocks=1, block_len=16,
        )

    def test_deterministic_given_seed(self, paper_coefficients):
        arch = synthesize_mrpf(paper_coefficients, 7)
        a = differential_equivalence(
            arch.netlist, arch.tap_names, paper_coefficients, seed=3
        )
        b = differential_equivalence(
            arch.netlist, arch.tap_names, paper_coefficients, seed=3
        )
        assert a == b

    def test_extra_vectors_are_exercised(self, paper_coefficients):
        arch = synthesize_mrpf(paper_coefficients, 7)
        base = differential_equivalence(
            arch.netlist, arch.tap_names, paper_coefficients
        )
        extended = differential_equivalence(
            arch.netlist, arch.tap_names, paper_coefficients,
            extra_vectors={"regression": [5, 4, 3, 2, 1]},
        )
        assert extended == base + 5

    def test_catches_output_mutants(self, paper_coefficients):
        """Every output_* mutant is structurally valid; only the functional
        diff can catch it — and must."""
        arch = synthesize_mrpf(paper_coefficients, 7)
        mutator = NetlistMutator(
            seed=11, operators=("output_shift", "output_sign", "output_rewire")
        )
        for description, mutant in mutator.mutants(arch.netlist, 15):
            with pytest.raises(EquivalenceViolation):
                differential_equivalence(
                    mutant, arch.tap_names, paper_coefficients,
                    random_blocks=1, block_len=16,
                )


@pytest.mark.skipif(
    shutil.which("gcc") is None and shutil.which("cc") is None,
    reason="no C compiler available",
)
class TestCModel:
    def test_green_on_paper_example(self, paper_coefficients, tmp_path):
        arch = synthesize_mrpf(paper_coefficients, 7)
        cycles = cmodel_equivalence(
            arch.netlist, arch.tap_names, paper_coefficients,
            workdir=tmp_path,
        )
        assert cycles is not None and cycles > 0
