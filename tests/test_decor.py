"""Tests for the DECOR (decorrelating transform) baseline."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.baselines import (
    difference_coefficients,
    simple_adder_count,
    synthesize_decor,
)
from repro.errors import SynthesisError
from repro.filters import BandType, DesignMethod, FilterSpec, design_fir
from repro.quantize import quantize_uniform

COEFFS = st.lists(
    st.integers(min_value=-(2**12), max_value=2**12), min_size=1, max_size=12
).filter(lambda cs: any(cs))
SAMPLES = [1, -1, 3, 255, -128, 999, -777, 0, 64, 5]


class TestDifferencing:
    def test_order_zero_identity(self):
        assert difference_coefficients([3, 5, 7], 0) == (3, 5, 7)

    def test_first_order(self):
        # d = [c0, c1-c0, c2-c1, -c2]
        assert difference_coefficients([3, 5, 7], 1) == (3, 2, 2, -7)

    def test_length_grows_by_order(self):
        for order in range(4):
            assert len(difference_coefficients([1, 2, 3], order)) == 3 + order

    def test_negative_order_rejected(self):
        with pytest.raises(SynthesisError):
            difference_coefficients([1], -1)

    @given(COEFFS, st.integers(min_value=0, max_value=3))
    @settings(max_examples=60)
    def test_differences_telescope_to_zero_sum_shift(self, coeffs, order):
        """Summing k-th differences k times recovers the original sequence."""
        d = list(difference_coefficients(coeffs, order))
        for _ in range(order):
            acc = 0
            summed = []
            for v in d:
                acc += v
                summed.append(acc)
            d = summed
        assert d[: len(coeffs)] == list(coeffs)
        assert all(v == 0 for v in d[len(coeffs):])


class TestDecorArchitecture:
    def test_empty_rejected(self):
        with pytest.raises(SynthesisError):
            synthesize_decor([])

    def test_adder_count_includes_integrators(self):
        arch = synthesize_decor([3, 5, 7], order=2)
        assert arch.adder_count == arch.multiplier_adders + 2

    @given(COEFFS, st.integers(min_value=0, max_value=2))
    @settings(max_examples=40, deadline=None)
    def test_exact_equivalence_any_order(self, coeffs, order):
        arch = synthesize_decor(coeffs, order=order)
        arch.verify(SAMPLES)

    def test_narrowband_filter_shrinks_coefficients(self):
        """DECOR's sweet spot: adjacent taps of a very narrowband low-pass
        are nearly equal, so differences lose several bits of magnitude."""
        spec = FilterSpec(
            name="narrow", band=BandType.LOWPASS,
            method=DesignMethod.PARKS_MCCLELLAN, numtaps=61,
            passband=(0.0, 0.04), stopband=(0.12, 1.0),
            ripple_db=1.0, atten_db=35.0,
        )
        taps = design_fir(spec)
        q = quantize_uniform(taps, 14)
        differenced = difference_coefficients(q.integers, 1)
        peak_before = max(abs(v) for v in q.integers)
        peak_after = max(abs(v) for v in differenced)
        assert peak_after < peak_before / 2

    def test_weak_correlation_does_not_help(self):
        """The paper's criticism: on a band-stop (weakly correlated taps)
        DECOR does not reduce the adder count."""
        from repro.filters import benchmark_filter

        designed = benchmark_filter(4)  # PM band-stop
        q = quantize_uniform(designed.folded, 16)
        arch = synthesize_decor(q.integers, order=1)
        assert arch.adder_count >= simple_adder_count(q.integers)
