"""Tests for the exception hierarchy and the public API surface."""

import pytest

import repro
from repro import errors


class TestExceptionHierarchy:
    @pytest.mark.parametrize(
        "exc",
        [
            errors.EncodingError,
            errors.QuantizationError,
            errors.FilterDesignError,
            errors.GraphError,
            errors.SynthesisError,
            errors.NetlistError,
            errors.SimulationError,
        ],
    )
    def test_all_derive_from_repro_error(self, exc):
        assert issubclass(exc, errors.ReproError)
        assert issubclass(exc, Exception)

    def test_single_catch_site(self):
        """A caller can catch everything the library raises with one clause."""
        with pytest.raises(errors.ReproError):
            repro.quantize([], 8)
        with pytest.raises(errors.ReproError):
            repro.optimize([], 8)
        with pytest.raises(errors.ReproError):
            repro.synthesize_simple([])


class TestPublicApi:
    def test_all_exports_resolve(self):
        for name in repro.__all__:
            assert hasattr(repro, name), name

    def test_version(self):
        assert repro.__version__ == "1.0.0"

    def test_subpackage_all_exports_resolve(self):
        import importlib

        for subpackage in (
            "arch", "baselines", "core", "cse", "eval", "filters", "graph",
            "hwcost", "numrep", "quantize",
        ):
            module = importlib.import_module(f"repro.{subpackage}")
            for name in module.__all__:
                assert hasattr(module, name), (module.__name__, name)

    def test_docstring_quickstart_runs(self):
        """The package docstring's example must actually work."""
        from repro import synthesize_mrpf, quantize, ScalingScheme, design_fir
        from repro.filters import FilterSpec, BandType, DesignMethod

        spec = FilterSpec(
            "lp", BandType.LOWPASS, DesignMethod.PARKS_MCCLELLAN,
            numtaps=25, passband=(0.0, 0.2), stopband=(0.3, 1.0),
        )
        taps = design_fir(spec)
        q = quantize(taps, wordlength=12, scheme=ScalingScheme.UNIFORM)
        arch = synthesize_mrpf(q.integers, wordlength=12)
        assert arch.adder_count > 0
        assert arch.plan.seed


class TestCliEntryPoint:
    def test_main_runs_restricted_experiment(self, capsys):
        from repro.eval.__main__ import main

        code = main(["fig6", "--filters", "0", "--wordlengths", "8"])
        captured = capsys.readouterr()
        assert code == 0
        assert "Figure 6" in captured.out
        assert "paper vs measured" in captured.out

    def test_main_rejects_unknown(self):
        from repro.eval.__main__ import main

        with pytest.raises(SystemExit):
            main(["fig99"])
