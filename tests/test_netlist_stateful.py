"""Stateful property testing of the netlist builder.

Hypothesis drives random sequences of builder operations (adds with random
wiring, constant materialization, output marking) against a parallel Python
model; after every step the netlist must validate structurally, all declared
fundamentals must be reachable/reusable, and a final simulation must agree
with the model.  This hunts for interaction bugs that the scenario tests
can't reach.
"""

from hypothesis import settings
from hypothesis import strategies as st
from hypothesis.stateful import (
    RuleBasedStateMachine,
    initialize,
    invariant,
    rule,
)

from repro.arch import ShiftAddNetlist, Ref, evaluate_nodes
from repro.numrep import Representation, oddpart


class NetlistMachine(RuleBasedStateMachine):
    """Build a random shift-add DAG; mirror expected values in a dict."""

    @initialize()
    def fresh(self):
        self.netlist = ShiftAddNetlist()
        self.expected = {0: 1}  # node id -> integer fundamental
        self.outputs = {}

    @rule(
        data=st.data(),
        shift_a=st.integers(0, 6),
        shift_b=st.integers(0, 6),
        sign_a=st.sampled_from([1, -1]),
        sign_b=st.sampled_from([1, -1]),
    )
    def add_node(self, data, shift_a, shift_b, sign_a, sign_b):
        ids = sorted(self.expected)
        a = data.draw(st.sampled_from(ids))
        b = data.draw(st.sampled_from(ids))
        value = sign_a * (self.expected[a] << shift_a) + sign_b * (
            self.expected[b] << shift_b
        )
        if value == 0:
            return  # builder rejects useless nodes; nothing to model
        ref = self.netlist.add(
            Ref(node=a, shift=shift_a, sign=sign_a),
            Ref(node=b, shift=shift_b, sign=sign_b),
        )
        self.expected[ref.node] = value

    @rule(value=st.integers(min_value=-4096, max_value=4096).filter(bool),
          rep=st.sampled_from(list(Representation)))
    def materialize_constant(self, value, rep):
        before = self.netlist.adder_count
        ref = self.netlist.ensure_constant(value, rep)
        assert self.netlist.ref_value(ref) == value
        for node in self.netlist.nodes[before + 1:]:
            self.expected[node.id] = node.value

    @rule(data=st.data(), shift=st.integers(0, 4),
          sign=st.sampled_from([1, -1]))
    def mark_output(self, data, shift, sign):
        name = f"out{len(self.outputs)}"
        node = data.draw(st.sampled_from(sorted(self.expected)))
        ref = Ref(node=node, shift=shift, sign=sign)
        self.netlist.mark_output(name, ref)
        self.outputs[name] = sign * (self.expected[node] << shift)

    @invariant()
    def structurally_valid(self):
        if hasattr(self, "netlist"):
            self.netlist.validate()

    @invariant()
    def declared_values_match_model(self):
        if not hasattr(self, "netlist"):
            return
        for node_id, value in self.expected.items():
            assert self.netlist.value_of(node_id) == value

    @invariant()
    def fundamentals_table_sound(self):
        if not hasattr(self, "netlist"):
            return
        for odd, node_id in self.netlist.fundamentals().items():
            node_value = self.netlist.value_of(node_id)
            assert abs(oddpart(node_value)) == odd or node_value == odd

    @invariant()
    def simulation_is_linear(self):
        if not hasattr(self, "netlist") or len(self.netlist) > 60:
            return
        for x in (1, -3, 17):
            outputs = evaluate_nodes(self.netlist, x, check_linearity=True)
            for name, value in self.outputs.items():
                ref = self.netlist.outputs[name]
                assert ref.value(outputs[ref.node]) == value * x


NetlistMachine.TestCase.settings = settings(
    max_examples=30, stateful_step_count=25, deadline=None
)
TestNetlistStateful = NetlistMachine.TestCase
