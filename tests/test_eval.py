"""Tests for the evaluation harness (experiments, registry, reporting).

Experiments are run on restricted (filter, wordlength) subsets so the suite
stays fast; the full-figure runs live in benchmarks/.
"""

import pytest

from repro.errors import ReproError
from repro.eval import (
    EXPERIMENTS,
    PAPER_CLAIMS,
    best_mrpf,
    format_experiment,
    format_table,
    paper_comparison,
    run_experiment,
    run_figure6,
    run_figure8,
    run_table1,
)
from repro.quantize import ScalingScheme

FAST = dict(filter_indices=[0, 1], wordlengths=[8, 12])


class TestRegistry:
    def test_all_experiments_registered(self):
        assert set(EXPERIMENTS) == {
            "fig6", "fig7", "fig8a", "fig8b", "table1", "summary"
        }

    def test_unknown_experiment_raises(self):
        with pytest.raises(ReproError):
            run_experiment("fig99")

    def test_descriptions_nonempty(self):
        for registered in EXPERIMENTS.values():
            assert registered.description


class TestFigureRuns:
    def test_fig6_rows_and_summary(self):
        result = run_figure6(**FAST)
        assert result.experiment_id == "fig6"
        assert len(result.rows) == 4  # 2 filters x 2 wordlengths
        for row in result.rows:
            assert row.scaling == "uniform"
            assert 0.0 < row.normalized("mrpf", "simple") <= 1.0
        assert 0.0 <= result.summary["mean_reduction"] < 1.0

    def test_fig6_mrpf_never_loses(self):
        result = run_figure6(**FAST)
        for row in result.rows:
            assert row.results["mrpf"].adders <= row.results["simple"].adders

    def test_fig7_via_dispatcher(self):
        result = run_experiment("fig7", **FAST)
        assert all(row.scaling == "maximal" for row in result.rows)

    def test_fig8_has_three_methods(self):
        result = run_figure8(ScalingScheme.UNIFORM, **FAST)
        for row in result.rows:
            assert set(row.results) == {"simple", "cse", "mrpf_cse"}

    def test_fig8_ids_differ_by_scaling(self):
        a = run_figure8(ScalingScheme.UNIFORM, **FAST)
        b = run_figure8(ScalingScheme.MAXIMAL, **FAST)
        assert a.experiment_id == "fig8a" and b.experiment_id == "fig8b"

    def test_adders_per_tap_accessor(self):
        result = run_figure6(**FAST)
        row = result.rows[0]
        assert row.adders_per_tap("mrpf") == pytest.approx(
            row.results["mrpf"].adders / row.num_unique_taps
        )

    def test_cache_stability(self):
        first = run_figure6(**FAST)
        second = run_figure6(**FAST)
        for a, b in zip(first.rows, second.rows):
            assert a.results["mrpf"].adders == b.results["mrpf"].adders


class TestTable1:
    def test_restricted_run(self):
        result = run_table1(filter_indices=[0])
        assert len(result.table1_rows) == 1
        row = result.table1_rows[0]
        assert row.filter_name == "ex01"
        assert row.method == "BW" and row.band == "LP"
        roots, solution = row.seed_spt
        assert roots >= 0 and solution >= 0

    def test_seed_sizes_differ_by_representation_sometimes(self):
        result = run_table1(filter_indices=[0, 1])
        assert all(r.seed_sm is not None for r in result.table1_rows)


class TestBestMrpf:
    def test_returns_cheapest_of_sweep(self, small_quantized_uniform):
        q = small_quantized_uniform
        arch = best_mrpf(q.integers, q.wordlength)
        from repro.baselines import simple_adder_count

        assert arch.adder_count <= simple_adder_count(q.integers)
        arch.verify()

    def test_depth_limit_forwarded(self, small_quantized_maximal):
        q = small_quantized_maximal
        arch = best_mrpf(q.integers, q.wordlength, depth_limit=2)
        assert arch.plan.tree_height <= 2


class TestReporting:
    def test_format_table_alignment(self):
        text = format_table(["a", "long_header"], [["1", "2"], ["333", "4"]])
        lines = text.splitlines()
        assert len(lines) == 4
        assert all(len(line) == len(lines[0]) for line in lines[:2])

    def test_format_experiment_figure(self):
        result = run_figure6(**FAST)
        text = format_experiment(result)
        assert result.title in text
        assert "normalized" in text
        assert "mean_reduction" in text

    def test_format_experiment_table1(self):
        result = run_table1(filter_indices=[0])
        text = format_experiment(result)
        assert "SEED SPT" in text and "ex01" in text

    def test_paper_comparison_pairs(self):
        result = run_figure6(**FAST)
        rows = paper_comparison(result)
        assert rows
        for metric, paper_value, measured in rows:
            assert metric in PAPER_CLAIMS["fig6"]
            assert isinstance(paper_value, float)
            assert isinstance(measured, float)
