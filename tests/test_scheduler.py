"""Unit + property tests for resource-constrained netlist scheduling."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.arch import ShiftAddNetlist
from repro.arch.scheduler import alap_schedule, asap_schedule, list_schedule
from repro.core import synthesize_mrpf
from repro.errors import SynthesisError

COEFFS = st.lists(
    st.integers(min_value=-(2**10), max_value=2**10), min_size=1, max_size=10
).filter(lambda cs: any(cs))


@pytest.fixture(scope="module")
def arch(request):
    return synthesize_mrpf([7, 66, 17, 9, 27, 41, 56, 11], 7)


class TestAsapAlap:
    def test_asap_makespan_is_depth(self, arch):
        schedule = asap_schedule(arch.netlist)
        depths = arch.netlist.depths()
        assert schedule.makespan == max(depths)
        schedule_depths = schedule.cycle_of_node
        assert list(schedule_depths) == depths

    def test_alap_default_meets_asap_makespan(self, arch):
        asap = asap_schedule(arch.netlist)
        alap = alap_schedule(arch.netlist)
        assert alap.makespan <= asap.makespan
        alap.validate(arch.netlist)

    def test_alap_with_extra_latency(self, arch):
        asap = asap_schedule(arch.netlist)
        alap = alap_schedule(arch.netlist, latency=asap.makespan + 3)
        alap.validate(arch.netlist)

    def test_alap_below_critical_path_rejected(self, arch):
        asap = asap_schedule(arch.netlist)
        with pytest.raises(SynthesisError):
            alap_schedule(arch.netlist, latency=asap.makespan - 1)

    def test_slack_nonnegative(self, arch):
        asap = asap_schedule(arch.netlist)
        alap = alap_schedule(arch.netlist)
        for a, l in zip(asap.cycle_of_node, alap.cycle_of_node):
            assert l >= a

    def test_empty_netlist(self):
        nl = ShiftAddNetlist()
        assert asap_schedule(nl).makespan == 0


class TestListScheduling:
    def test_budget_validated(self, arch):
        with pytest.raises(SynthesisError):
            list_schedule(arch.netlist, 0)

    def test_single_adder_serializes(self, arch):
        schedule = list_schedule(arch.netlist, 1)
        assert schedule.makespan >= arch.netlist.adder_count
        for cycle in range(1, schedule.makespan + 1):
            assert schedule.adders_busy(cycle) <= 1

    def test_unbounded_budget_reaches_critical_path(self, arch):
        schedule = list_schedule(arch.netlist, arch.netlist.adder_count)
        assert schedule.makespan == asap_schedule(arch.netlist).makespan

    def test_makespan_monotone_in_budget(self, arch):
        spans = [
            list_schedule(arch.netlist, k).makespan for k in (1, 2, 4, 8)
        ]
        assert spans == sorted(spans, reverse=True)

    def test_lower_bounds(self, arch):
        """makespan >= max(ceil(adders/k), critical path)."""
        adders = arch.netlist.adder_count
        depth = arch.netlist.max_depth
        for k in (1, 2, 3):
            schedule = list_schedule(arch.netlist, k)
            assert schedule.makespan >= max(-(-adders // k), depth)

    @given(COEFFS, st.integers(min_value=1, max_value=4))
    @settings(max_examples=40, deadline=None)
    def test_schedules_always_valid(self, coeffs, budget):
        netlist = synthesize_mrpf(coeffs, 11, verify=False).netlist
        schedule = list_schedule(netlist, budget)
        schedule.validate(netlist)  # dependencies + resource budget

    @given(COEFFS)
    @settings(max_examples=30, deadline=None)
    def test_asap_always_valid(self, coeffs):
        netlist = synthesize_mrpf(coeffs, 11, verify=False).netlist
        asap_schedule(netlist).validate(netlist)
