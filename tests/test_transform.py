"""Unit + property tests for MRPF synthesis (plan lowering) and baselines.

The central invariant of the whole library lives here: every synthesized
architecture — MRPF in all compression modes, simple, CSE, MST — computes
*bit-exactly* the same filter as direct convolution by its coefficients.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.baselines import (
    simple_adder_count,
    synthesize_cse_filter,
    synthesize_mst_diff,
    synthesize_simple,
)
from repro.core import MrpOptions, lower_plan, optimize, synthesize_mrpf, trivial_plan
from repro.errors import SynthesisError
from repro.numrep import Representation

COEFFS = st.lists(
    st.integers(min_value=-(2**10), max_value=2**10), min_size=1, max_size=12
).filter(lambda cs: any(cs))
SAMPLES = [1, -1, 3, 255, -128, 12345, -999, 0, 77]


class TestSynthesizeMrpf:
    def test_bad_compression_mode(self):
        with pytest.raises(SynthesisError):
            synthesize_mrpf([3, 5], 8, seed_compression="zip")

    def test_paper_example_verified(self, paper_coefficients):
        arch = synthesize_mrpf(paper_coefficients, 7)
        assert arch.coefficients == tuple(paper_coefficients)
        assert arch.adder_count <= 9
        arch.verify(SAMPLES)

    @pytest.mark.parametrize("mode", ["none", "cse", "recursive"])
    def test_all_modes_verified(self, paper_coefficients, mode):
        arch = synthesize_mrpf(paper_coefficients, 7, seed_compression=mode)
        arch.verify(SAMPLES)

    def test_stats(self, paper_coefficients):
        arch = synthesize_mrpf(paper_coefficients, 7)
        stats = arch.stats(input_bits=12)
        assert stats.adders == arch.adder_count
        assert stats.num_outputs == len(paper_coefficients)
        assert stats.adders_per_tap == pytest.approx(
            arch.adder_count / len(paper_coefficients)
        )

    def test_zero_and_free_taps(self):
        arch = synthesize_mrpf([0, 4, -1, 6], 6)
        arch.verify(SAMPLES)
        values = arch.netlist.output_values()
        assert values["tap0"] == 0
        assert values["tap1"] == 4
        assert values["tap2"] == -1

    @given(COEFFS, st.sampled_from(["none", "cse", "recursive"]))
    @settings(max_examples=60, deadline=None)
    def test_synthesis_always_bit_exact(self, coeffs, mode):
        """THE invariant: MRPF output == convolution, for any taps, any mode."""
        arch = synthesize_mrpf(coeffs, 11, seed_compression=mode, verify=False)
        arch.verify(SAMPLES)

    @given(COEFFS, st.sampled_from(list(Representation)),
           st.sampled_from([None, 2, 3]))
    @settings(max_examples=40, deadline=None)
    def test_options_bit_exact(self, coeffs, rep, depth):
        arch = synthesize_mrpf(
            coeffs, 11,
            MrpOptions(representation=rep, depth_limit=depth),
            verify=False,
        )
        arch.verify(SAMPLES)

    @given(COEFFS)
    @settings(max_examples=30, deadline=None)
    def test_cse_compression_never_hurts(self, coeffs):
        plan = optimize(coeffs, 11)
        plain = lower_plan(plan, "none")
        compressed = lower_plan(plan, "cse")
        assert compressed.adder_count <= plain.adder_count


class TestTrivialPlanLowering:
    def test_trivial_plan_is_simple_with_sharing(self, paper_coefficients):
        arch = lower_plan(trivial_plan(paper_coefficients))
        arch.verify(SAMPLES)
        assert arch.adder_count <= simple_adder_count(paper_coefficients)

    def test_empty_rejected(self):
        with pytest.raises(SynthesisError):
            trivial_plan([])


class TestSimpleBaseline:
    def test_empty_rejected(self):
        with pytest.raises(SynthesisError):
            synthesize_simple([])

    def test_adder_count_formula(self, paper_coefficients):
        arch = synthesize_simple(paper_coefficients)
        assert arch.adder_count == simple_adder_count(paper_coefficients)

    def test_no_sharing_even_for_duplicates(self):
        arch = synthesize_simple([7, 7])
        assert arch.adder_count == 2  # each 7 = 8-1 built privately

    @given(COEFFS, st.sampled_from(list(Representation)))
    @settings(max_examples=60, deadline=None)
    def test_simple_bit_exact(self, coeffs, rep):
        arch = synthesize_simple(coeffs, rep)
        arch.verify(SAMPLES)


class TestCseBaseline:
    def test_empty_rejected(self):
        with pytest.raises(SynthesisError):
            synthesize_cse_filter([])

    def test_all_free_taps(self):
        arch = synthesize_cse_filter([0, 1, -8])
        assert arch.adder_count == 0
        arch.verify(SAMPLES)

    @given(COEFFS)
    @settings(max_examples=60, deadline=None)
    def test_cse_bit_exact(self, coeffs):
        arch = synthesize_cse_filter(coeffs)
        arch.verify(SAMPLES)

    @given(COEFFS)
    @settings(max_examples=40, deadline=None)
    def test_cse_never_worse_than_simple_on_unique_odds(self, coeffs):
        """CSE shares fundamentals, so it beats the per-tap baseline."""
        arch = synthesize_cse_filter(coeffs)
        assert arch.adder_count <= simple_adder_count(coeffs)


class TestMstDiffBaseline:
    def test_shift_range_pinned(self, paper_coefficients):
        arch = synthesize_mst_diff(paper_coefficients, 7)
        assert arch.plan.options.max_shift == 0

    def test_options_propagated(self, paper_coefficients):
        arch = synthesize_mst_diff(
            paper_coefficients, 7, MrpOptions(beta=0.3, depth_limit=2)
        )
        assert arch.plan.options.beta == 0.3
        assert arch.plan.options.depth_limit == 2
        assert arch.plan.options.max_shift == 0

    @given(COEFFS)
    @settings(max_examples=40, deadline=None)
    def test_mst_bit_exact(self, coeffs):
        arch = synthesize_mst_diff(coeffs, 11, verify=False)
        arch.verify(SAMPLES)
