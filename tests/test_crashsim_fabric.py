"""The IO fabric: recording fidelity, determinism, and fault wrappers.

The crash-state enumerator and the durability linter are only as good as
the op log they consume, so this file pins the recording contract hard:
every durable-relevant operation inside the sandbox is journaled in
order, out-of-sandbox IO passes through invisibly, temp names are
deterministic, and the two fault wrappers (swallowed fsync, one-shot
ENOSPC) behave exactly as the certification story assumes.
"""

from __future__ import annotations

import errno

import pytest

from repro.robust.crashsim import fabric as iofabric
from repro.robust.crashsim.fabric import (
    BrokenFsyncFabric,
    FaultPointFabric,
    RealIo,
    SimDisk,
)


def kinds(fab):
    return [op.kind for op in fab.ops]


class TestActiveFabric:
    def test_default_is_passthrough(self):
        assert isinstance(iofabric.active(), RealIo)

    def test_scope_installs_and_restores(self, tmp_path):
        sim = SimDisk(tmp_path)
        with iofabric.scope(sim) as active:
            assert active is sim
            assert iofabric.active() is sim
        assert iofabric.active() is not sim

    def test_scope_restores_on_exception(self, tmp_path):
        sim = SimDisk(tmp_path)
        with pytest.raises(RuntimeError):
            with iofabric.scope(sim):
                raise RuntimeError("boom")
        assert iofabric.active() is not sim

    def test_install_none_restores_default(self, tmp_path):
        previous = iofabric.install(SimDisk(tmp_path))
        try:
            iofabric.install(None)
            assert isinstance(iofabric.active(), RealIo)
        finally:
            iofabric.install(previous)


class TestRealIo:
    def test_open_write_fsync_roundtrip(self, tmp_path):
        fab = RealIo()
        path = tmp_path / "f.txt"
        with fab.open(path, "w") as fh:
            fh.write("hello")
            fab.fsync(fh)
        assert path.read_text(encoding="utf-8") == "hello"

    def test_mkstemp_creates_real_temp(self, tmp_path):
        fab = RealIo()
        fh, name = fab.mkstemp(tmp_path, prefix=".t-", suffix=".tmp")
        with fh:
            fh.write("x")
        assert name.endswith(".tmp")
        fab.replace(name, tmp_path / "final")
        assert (tmp_path / "final").read_text(encoding="utf-8") == "x"

    def test_fsync_dir_tolerates_missing_directory(self, tmp_path):
        RealIo().fsync_dir(tmp_path / "nope")  # must not raise

    def test_makedirs_durable_creates_all_levels(self, tmp_path):
        fab = RealIo()
        fab.makedirs_durable(tmp_path / "a" / "b" / "c")
        assert (tmp_path / "a" / "b" / "c").is_dir()


class TestSimDiskRecording:
    def test_create_write_fsync_sequence(self, tmp_path):
        sim = SimDisk(tmp_path)
        with sim.open(tmp_path / "log", "w") as fh:
            fh.write("line\n")
            sim.fsync(fh)
        sim.fsync_dir(tmp_path)
        assert kinds(sim) == ["create", "write", "fsync", "fsync_dir"]
        assert sim.ops[1].data == b"line\n"
        assert sim.ops[0].path == "log"
        # The sandbox root itself is recorded as ".".
        assert sim.ops[3].path == "."

    def test_out_of_root_io_is_unrecorded(self, tmp_path):
        inner = tmp_path / "root"
        inner.mkdir()
        sim = SimDisk(inner)
        outside = tmp_path / "outside.txt"
        with sim.open(outside, "w") as fh:
            fh.write("invisible")
        assert sim.ops == []
        assert outside.read_text(encoding="utf-8") == "invisible"

    def test_w_mode_reopen_of_existing_file_marks_existed(self, tmp_path):
        sim = SimDisk(tmp_path)
        with sim.open(tmp_path / "f", "w") as fh:
            fh.write("one")
        with sim.open(tmp_path / "f", "w") as fh:
            fh.write("two")
        creates = [op for op in sim.ops if op.kind == "create"]
        assert [op.existed for op in creates] == [False, True]

    def test_preexisting_file_imported_as_durable_exists(self, tmp_path):
        (tmp_path / "old").write_bytes(b"ancient")
        sim = SimDisk(tmp_path)
        with sim.open(tmp_path / "old", "a") as fh:
            fh.write("+new")
        assert kinds(sim)[0] == "exists"
        assert sim.ops[0].data == b"ancient"

    def test_mkstemp_names_are_deterministic(self, tmp_path):
        names = []
        for attempt in range(2):
            root = tmp_path / f"run{attempt}"
            root.mkdir()
            sim = SimDisk(root)
            fh, name = sim.mkstemp(root, prefix=".t-", suffix=".tmp")
            fh.close()
            names.append(name.split("/")[-1])
        assert names[0] == names[1] == ".t-sim0001.tmp"

    def test_replace_and_unlink_are_recorded(self, tmp_path):
        sim = SimDisk(tmp_path)
        with sim.open(tmp_path / "tmp", "w") as fh:
            fh.write("v")
        sim.replace(tmp_path / "tmp", tmp_path / "final")
        sim.unlink(tmp_path / "final")
        assert kinds(sim) == ["create", "write", "replace", "unlink"]
        assert (sim.ops[2].path, sim.ops[2].dst) == ("tmp", "final")

    def test_identical_workload_identical_oplog(self, tmp_path):
        def run(root):
            sim = SimDisk(root)
            sim.makedirs_durable(root / "d")
            with sim.open(root / "d" / "f", "w") as fh:
                fh.write("payload")
                sim.fsync(fh)
            sim.fsync_dir(root / "d")
            sim.ack("done", path=str(root / "d" / "f"))
            return [
                (op.kind, op.path, op.data, op.dst, op.label, op.info)
                for op in sim.ops
            ]

        (tmp_path / "a").mkdir()
        (tmp_path / "b").mkdir()
        assert run(tmp_path / "a") == run(tmp_path / "b")

    def test_ack_normalizes_in_root_paths(self, tmp_path):
        sim = SimDisk(tmp_path)
        sim.ack("l", path=str(tmp_path / "sub" / "f"), job_id="job-1")
        (ack,) = sim.ops
        assert dict(ack.info) == {"path": "sub/f", "job_id": "job-1"}


class TestBrokenFsyncFabric:
    def test_matching_fsync_swallowed_and_unrecorded(self, tmp_path):
        sim = SimDisk(tmp_path)
        broken = BrokenFsyncFabric(sim, match="victim")
        with broken.open(tmp_path / "victim.log", "w") as fh:
            fh.write("x")
            broken.fsync(fh)
        with broken.open(tmp_path / "healthy.log", "w") as fh:
            fh.write("y")
            broken.fsync(fh)
        assert broken.swallowed == 1
        fsyncs = [op.path for op in sim.ops if op.kind == "fsync"]
        assert fsyncs == ["healthy.log"]

    def test_dir_fsyncs_swallowed_only_when_enabled(self, tmp_path):
        sim = SimDisk(tmp_path)
        keep = BrokenFsyncFabric(sim, match=str(tmp_path))
        keep.fsync_dir(tmp_path)
        assert [op.kind for op in sim.ops] == ["fsync_dir"]
        drop = BrokenFsyncFabric(SimDisk(tmp_path), match=str(tmp_path),
                                 dirs=True)
        drop.fsync_dir(tmp_path)
        assert drop.swallowed == 1 and drop.inner.ops == []


class TestFaultPointFabric:
    def test_fires_once_then_recovers(self, tmp_path):
        fab = FaultPointFabric(
            RealIo(), lambda kind, path: kind == "open" and "target" in path
        )
        with pytest.raises(OSError) as excinfo:
            fab.open(tmp_path / "target", "w")
        assert excinfo.value.errno == errno.ENOSPC
        assert fab.fired
        with fab.open(tmp_path / "target", "w") as fh:  # second try succeeds
            fh.write("ok")
        assert (tmp_path / "target").read_text(encoding="utf-8") == "ok"

    def test_replace_fault_leaves_destination_untouched(self, tmp_path):
        (tmp_path / "dst").write_text("old", encoding="utf-8")
        (tmp_path / "src").write_text("new", encoding="utf-8")
        fab = FaultPointFabric(
            RealIo(), lambda kind, path: kind == "replace"
        )
        with pytest.raises(OSError):
            fab.replace(tmp_path / "src", tmp_path / "dst")
        assert (tmp_path / "dst").read_text(encoding="utf-8") == "old"

    def test_fsync_fault_sees_fabric_path(self, tmp_path):
        sim = SimDisk(tmp_path)
        fab = FaultPointFabric(
            sim, lambda kind, path: kind == "fsync" and path.endswith("wal")
        )
        with fab.open(tmp_path / "wal", "w") as fh:
            fh.write("rec")
            with pytest.raises(OSError):
                fab.fsync(fh)
        assert fab.fired
