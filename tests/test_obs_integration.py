"""Integration tests: observability threaded through the sweep engine.

Covers the acceptance contract of the tracing layer: a supervised parallel
sweep with tracing enabled produces a valid nested trace covering every
executed design point plus a merged metrics snapshot whose task counters
equal the report's totals — and a run without the flags stays byte-identical
to one that never imported the tracer.
"""

from __future__ import annotations

import time

import pytest

from repro import obs
from repro.eval import cache_info, to_json
from repro.eval.experiments import clear_cache
from repro.eval.harness import run_experiment
from repro.eval.supervisor import run_sweep_supervised
from repro.obs import load_trace, validate_trace
from repro.obs.metrics import DEFAULT_REGISTRY

SMALL = dict(experiment_ids=["fig6"], filter_indices=[0], wordlengths=[8])


@pytest.fixture(autouse=True)
def _clean_obs():
    obs.reset()
    clear_cache()
    yield
    obs.reset()
    clear_cache()


def _run_traced_sweep(tmp_path, jobs=2):
    obs.configure(
        trace_path=tmp_path / "trace.jsonl",
        metrics_path=tmp_path / "metrics.prom",
    )
    report = run_sweep_supervised(
        jobs=jobs, cache_dir=tmp_path / "cache",
        journal_dir=tmp_path / "wal", **SMALL,
    )
    return report, obs.finalize()


def test_supervised_sweep_trace_covers_every_design_point(tmp_path):
    report, written = _run_traced_sweep(tmp_path)
    records = load_trace(written["trace"])
    assert validate_trace(records) == []

    spans = [r for r in records if r["kind"] == "span"]
    task_spans = [s for s in spans if s["name"] == "sweep.task"]
    executed = {
        (o.task.filter_index, o.task.wordlength, o.task.method)
        for o in report.tasks
    }
    traced = {
        (s["tags"]["filter_index"], s["tags"]["wordlength"],
         s["tags"]["method"])
        for s in task_spans
    }
    assert executed and traced == executed

    # Nesting: the parent-side phases form a hierarchy in the parent pid,
    # and worker task spans carry their own pid with synthesis spans nested
    # beneath them.
    names = {s["name"] for s in spans}
    assert {"sweep.precompute", "sweep.replay", "graph.build"} <= names
    by_pid_id = {(s["pid"], s["id"]): s for s in spans}
    for span in spans:
        if span["parent"] is not None:
            assert (span["pid"], span["parent"]) in by_pid_id


def test_merged_metrics_equal_report_totals(tmp_path):
    report, written = _run_traced_sweep(tmp_path)
    stats = report.stats()
    ok = stats["tasks_computed"] - stats["tasks_failed"]
    assert DEFAULT_REGISTRY.counter_value(
        "repro_tasks_total", status="ok") == ok
    assert DEFAULT_REGISTRY.counter_value(
        "repro_tasks_total", status="quarantined"
    ) == stats["tasks_quarantined"]
    assert DEFAULT_REGISTRY.counter_value(
        "repro_task_retries_total") == stats["retries"]
    assert DEFAULT_REGISTRY.counter_value(
        "repro_pool_rebuilds_total") == stats["pool_rebuilds"]
    assert DEFAULT_REGISTRY.counter_value(
        "repro_tasks_resumed_total") == stats["tasks_resumed"]

    text = (tmp_path / "metrics.prom").read_text()
    assert f'repro_tasks_total{{status="ok"}} {ok}' in text
    # Worker-side synthesis work reached the merged registry.
    assert DEFAULT_REGISTRY.counter_value(
        "repro_cache_stores_total", layer="disk") > 0


def test_task_outcomes_carry_tracer_durations(tmp_path):
    report, _ = _run_traced_sweep(tmp_path)
    assert report.tasks
    for outcome in report.tasks:
        assert outcome.duration_s > 0.0
        assert outcome.duration_s == pytest.approx(
            outcome.elapsed_s, rel=0.5, abs=0.05
        )


def test_exports_are_byte_identical_with_and_without_obs(tmp_path):
    result = run_experiment("fig6", filter_indices=[0], wordlengths=[8])
    baseline = to_json(result)

    clear_cache()
    obs.configure(
        trace_path=tmp_path / "t.jsonl", metrics_path=tmp_path / "m.prom"
    )
    traced = to_json(
        run_experiment("fig6", filter_indices=[0], wordlengths=[8])
    )
    obs.finalize()
    assert traced == baseline

    clear_cache()
    assert to_json(
        run_experiment("fig6", filter_indices=[0], wordlengths=[8])
    ) == baseline


def test_cache_info_exposes_uniform_failure_keys(tmp_path):
    info = cache_info()
    assert info["put_errors"] == 0 and info["quarantined"] == 0

    from repro.eval import cache as disk_cache

    try:
        disk_cache.configure(tmp_path / "cache")
        active = disk_cache.active_cache()
        active.stats.put_errors += 3
        active.stats.quarantined += 2
        info = cache_info()
        assert info["put_errors"] == 3
        assert info["quarantined"] == 2
        assert info["disk"]["put_errors"] == 3
    finally:
        disk_cache.configure(None)


def test_report_stats_surface_cache_failure_counters(tmp_path):
    report, _ = _run_traced_sweep(tmp_path)
    stats = report.stats()
    assert stats["cache_put_errors"] == stats["cache"]["put_errors"]
    assert stats["cache_quarantined"] == stats["cache"]["quarantined"]


def test_disabled_tracer_overhead_is_negligible():
    """No-op fast path: projected span overhead under 3% of synthesis time.

    A direct A/B timing of the instrumented pipeline is too noisy for CI, so
    this bounds the overhead analytically: (number of spans a traced run
    emits) x (measured cost of one disabled span) must stay far below 3% of
    the measured synthesis wall time.
    """
    import sys

    from benchmarks.bench_synthesis_speed import stage_operations

    ops = stage_operations()
    synth = ops["full_synthesis"]
    synth()  # warm caches (lru_cache'd digit recurrences etc.)
    t0 = time.perf_counter()
    synth()
    synth_s = time.perf_counter() - t0

    obs.reset()
    iterations = 20_000
    t0 = time.perf_counter()
    for _ in range(iterations):
        # One span plus the trace-context propagation ops the service and
        # client run per request even when tracing is off: the no-trace
        # fast path must absorb all of them inside the same 3% bound.
        with obs.trace_context(None):
            with obs.span("noop", a=1, b="x"):
                obs.current_traceparent()
                obs.current_context()
    per_span_s = (time.perf_counter() - t0) / iterations

    import tempfile

    with tempfile.TemporaryDirectory() as tmp:
        obs.configure(trace_path=f"{tmp}/t.jsonl")
        synth()
        trace_path = obs.finalize()["trace"]
        span_count = sum(
            1 for r in load_trace(trace_path) if r["kind"] == "span"
        )

    assert span_count > 0
    projected = span_count * per_span_s
    print(
        f"spans={span_count} per_span={per_span_s * 1e9:.0f}ns "
        f"synth={synth_s * 1e3:.1f}ms projected={projected / synth_s:.5%}",
        file=sys.stderr,
    )
    assert projected < 0.03 * synth_s
