"""The certification sweep end to end — including the planted-bug probes.

The headline guarantees pinned here:

* the full four-layer sweep enumerates the coverage floor (500+ states)
  and reports **zero** invariant violations — the repo's durability
  layers genuinely recover from every legal crash state;
* a deliberately broken fsync on the live service submit path is caught
  by BOTH independent checks: the durability-ordering linter flags the
  uncovered ack, and the crash-state enumerator produces a state where
  an acknowledged job is gone;
* capped runs are a deterministic function of the seed, so CI reruns
  check the same subset.
"""

from __future__ import annotations

import pytest

from repro.robust.crashsim import fabric as iofabric
from repro.robust.crashsim.certify import (
    certify_layer,
    format_report,
    run_certification,
)
from repro.robust.crashsim.fabric import BrokenFsyncFabric, SimDisk
from repro.robust.crashsim.lint import lint_durability
from repro.robust.crashsim.model import enumerate_states
from repro.robust.crashsim.workloads import WORKLOADS
from repro.service.store import JobSpec, JobStore


def make_spec():
    return JobSpec.from_dict(
        {"experiments": ["fig6"], "filters": [0], "wordlengths": [8]}
    )


class TestFullCertification:
    def test_all_layers_clean_and_above_coverage_floor(self, tmp_path):
        report = run_certification(tmp_path / "scratch")
        assert report.ok, "\n".join(report.violations)
        assert report.states_enumerated >= 500
        assert report.states_checked == report.states_enumerated
        assert sorted(layer.name for layer in report.layers) == sorted(
            WORKLOADS
        )
        for layer in report.layers:
            assert layer.states_enumerated > 0
            assert layer.acks > 0 or layer.name == "cache"

    def test_unknown_layer_rejected(self, tmp_path):
        with pytest.raises(ValueError, match="unknown crashsim layers"):
            run_certification(tmp_path, layers=["wal", "bogus"])

    def test_capped_run_is_deterministic(self, tmp_path):
        first = certify_layer("wal", tmp_path / "a", seed=7, cap=20)
        second = certify_layer("wal", tmp_path / "b", seed=7, cap=20)
        assert first.as_dict() == second.as_dict()
        assert first.capped and first.states_checked == 20

    def test_different_seeds_pick_different_subsets(self, tmp_path):
        # Not a hard guarantee for tiny caps, but wal has 70+ states — two
        # seeds agreeing on the exact 5-subset would be a 1-in-millions
        # accident worth hearing about.
        base = certify_layer("wal", tmp_path / "s0", seed=0, cap=5)
        other = certify_layer("wal", tmp_path / "s1", seed=1, cap=5)
        assert base.ok and other.ok

    def test_format_report_summarizes_verdict(self, tmp_path):
        report = run_certification(tmp_path / "scratch", layers=["journal"])
        text = format_report(report)
        assert "journal" in text
        assert "zero invariant violations" in text
        assert "VIOLATIONS" not in text


class TestBrokenFsyncIsCaught:
    """The acceptance probe: delete one fsync, both checks must fire.

    The fsyncs of the service job store's WAL are swallowed by
    :class:`BrokenFsyncFabric` while a real ``JobStore`` accepts a job on
    the live submit path — exactly what shipping a layer with a deleted
    fsync call would look like.
    """

    def _record_submit(self, root, broken: bool):
        sim = SimDisk(root)
        fab = BrokenFsyncFabric(sim, match="jobs.wal") if broken else sim
        with iofabric.scope(fab):
            store = JobStore(root / "store", clock=lambda: 100.0)
            record, fresh = store.submit(make_spec(), "default", 60.0, 120.0)
            assert fresh
            store.close()
        if broken:
            assert fab.swallowed > 0, "probe never removed an fsync"
        return sim, record.job_id

    @staticmethod
    def _acked_but_lost(states, job_id):
        """States where the submit was acknowledged but the WAL lost it."""
        lost = []
        for state in states:
            acked = any(
                ("job_id", job_id) in info for _, info in state.acks
            )
            if not acked:
                continue
            wal = dict(state.files).get("store/jobs.wal", b"")
            if job_id.encode() not in wal:
                lost.append(state)
        return lost

    def test_healthy_submit_passes_both_checks(self, tmp_path):
        sim, job_id = self._record_submit(tmp_path, broken=False)
        assert lint_durability(sim.ops) == []
        assert self._acked_but_lost(enumerate_states(sim.ops), job_id) == []

    def test_linter_flags_the_uncovered_ack(self, tmp_path):
        sim, _ = self._record_submit(tmp_path, broken=True)
        violations = lint_durability(sim.ops)
        assert violations, "linter missed the deleted fsync"
        assert any("jobs.wal" in v.path for v in violations)
        assert any("missing file fsync" in v.reason for v in violations)

    def test_enumerator_finds_the_acked_but_lost_state(self, tmp_path):
        sim, job_id = self._record_submit(tmp_path, broken=True)
        lost = self._acked_but_lost(enumerate_states(sim.ops), job_id)
        assert lost, "enumerator never materialized a losing state"
