"""Error-path coverage for pipelining and resource-constrained scheduling.

Asserts exact exception types *and* messages so a refactor cannot silently
swap a meaningful failure for a generic one.
"""

import pytest

from repro.arch import ShiftAddNetlist
from repro.arch.scheduler import Schedule, alap_schedule, list_schedule
from repro.core import schedule_pipeline
from repro.core.pipeline import PipelineSchedule
from repro.errors import SynthesisError


def two_independent_adders() -> ShiftAddNetlist:
    """Input + two adders that do not depend on each other."""
    netlist = ShiftAddNetlist()
    netlist.ensure_constant(3)
    netlist.ensure_constant(5)
    assert len(netlist) == 3
    return netlist


class TestPipelineErrorPaths:
    def test_invalid_max_stage_depth(self):
        netlist = two_independent_adders()
        with pytest.raises(
            SynthesisError, match=r"max_stage_depth must be >= 1, got 0"
        ):
            schedule_pipeline(netlist, max_stage_depth=0)
        with pytest.raises(
            SynthesisError, match=r"max_stage_depth must be >= 1, got -3"
        ):
            schedule_pipeline(netlist, max_stage_depth=-3)

    def test_zero_clock_with_nonzero_path_raises(self):
        """Satellite fix: a zero-delay schedule is an error, not speedup 1.0."""
        schedule = PipelineSchedule(
            stage_of_node=(0,),
            num_stages=1,
            max_stage_depth=1,
            register_bits=0,
            clock_period_ns=0.0,
        )
        object.__setattr__(schedule, "_unpipelined_ns", 5.0)
        with pytest.raises(
            SynthesisError,
            match=r"zero clock period but a nonzero unpipelined critical path",
        ):
            schedule.throughput_speedup

    def test_zero_clock_with_zero_path_is_unit_speedup(self):
        schedule = PipelineSchedule(
            stage_of_node=(0,),
            num_stages=1,
            max_stage_depth=1,
            register_bits=0,
            clock_period_ns=0.0,
        )
        assert schedule.throughput_speedup == 1.0

    def test_real_schedule_speedup_still_works(self):
        netlist = two_independent_adders()
        schedule = schedule_pipeline(netlist, max_stage_depth=1)
        assert schedule.throughput_speedup >= 1.0


class TestSchedulerErrorPaths:
    def test_list_schedule_needs_an_adder(self):
        netlist = two_independent_adders()
        with pytest.raises(
            SynthesisError, match=r"need at least one adder, got 0"
        ):
            list_schedule(netlist, num_adders=0)

    def test_alap_latency_below_critical_path(self):
        netlist = two_independent_adders()
        with pytest.raises(
            SynthesisError, match=r"latency 0 below the critical path 1"
        ):
            alap_schedule(netlist, latency=0)

    def test_over_budget_cycle_usage(self):
        """A schedule packing more adders into a cycle than the budget."""
        netlist = two_independent_adders()
        schedule = Schedule(cycle_of_node=(0, 1, 1), num_adders=1)
        with pytest.raises(
            SynthesisError, match=r"cycle 1 uses 2 adders, budget 1"
        ):
            schedule.validate(netlist)

    def test_over_budget_is_fine_with_larger_budget(self):
        netlist = two_independent_adders()
        Schedule(cycle_of_node=(0, 1, 1), num_adders=2).validate(netlist)

    def test_input_must_be_cycle_zero(self):
        netlist = two_independent_adders()
        schedule = Schedule(cycle_of_node=(1, 2, 2), num_adders=None)
        with pytest.raises(
            SynthesisError, match=r"input must be scheduled at cycle 0"
        ):
            schedule.validate(netlist)

    def test_adder_before_cycle_one(self):
        netlist = two_independent_adders()
        schedule = Schedule(cycle_of_node=(0, 0, 1), num_adders=None)
        with pytest.raises(
            SynthesisError, match=r"adder 1 scheduled before cycle 1"
        ):
            schedule.validate(netlist)

    def test_schedule_length_mismatch(self):
        netlist = two_independent_adders()
        schedule = Schedule(cycle_of_node=(0, 1), num_adders=None)
        with pytest.raises(
            SynthesisError, match=r"schedule length != netlist length"
        ):
            schedule.validate(netlist)

    def test_dependency_violation(self):
        netlist = ShiftAddNetlist()
        netlist.ensure_constant(45)  # builds a dependent adder chain
        assert len(netlist) >= 3
        cycles = [0] * len(netlist)
        cycles[1] = 2  # producer...
        cycles[2] = 1  # ...after its consumer
        schedule = Schedule(cycle_of_node=tuple(cycles), num_adders=None)
        with pytest.raises(SynthesisError, match=r"depends on node"):
            schedule.validate(netlist)
