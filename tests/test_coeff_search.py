"""Tests for the Samueli-style coefficient local search."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import QuantizationError
from repro.filters import benchmark_filter, measure_response, unfold_symmetric
from repro.quantize import (
    ScalingScheme,
    csd_digit_cost,
    quantize,
    quantize_uniform,
    search_coefficients,
)

TAPS = st.lists(
    st.floats(min_value=-1.0, max_value=1.0, allow_nan=False, width=32),
    min_size=2, max_size=12,
).filter(lambda t: max(abs(v) for v in t) > 1e-3)


def always(reconstructed: np.ndarray) -> bool:
    return True


def never(reconstructed: np.ndarray) -> bool:
    return False


class TestValidation:
    def test_bad_delta(self):
        q = quantize_uniform([1.0, 0.5], 8)
        with pytest.raises(QuantizationError):
            search_coefficients(q, always, max_delta=0)

    def test_bad_passes(self):
        q = quantize_uniform([1.0, 0.5], 8)
        with pytest.raises(QuantizationError):
            search_coefficients(q, always, max_passes=0)

    def test_infeasible_start_rejected(self):
        q = quantize_uniform([1.0, 0.5], 8)
        with pytest.raises(QuantizationError):
            search_coefficients(q, never)


class TestSearchBehaviour:
    def test_known_win(self):
        """127 = CSD 8 digits? no — 127 = 128-1 (2 digits); use 0.695 whose
        rounding lands on a digit-rich value while a neighbour is cheap."""
        # 89 = 64+16+8+1 (CSD 10N0N100N? -> several digits); 88 = 96-8 cheaper.
        q = quantize_uniform([1.0, 89 / 127], 8)
        result = search_coefficients(q, always)
        assert result.improved_cost <= result.original_cost

    def test_cost_never_increases(self):
        q = quantize_uniform([0.9, 0.33, -0.61], 10)
        result = search_coefficients(q, always)
        assert result.improved_cost <= result.original_cost

    def test_predicate_constrains_moves(self):
        """A predicate pinning the taps exactly forbids every move."""
        q = quantize_uniform([0.9, 0.33], 10)
        reference = q.reconstruct()

        def frozen(reconstructed):
            return bool(np.allclose(reconstructed, reference))

        result = search_coefficients(q, frozen)
        assert result.num_changes == 0
        assert result.improved == q.integers

    def test_respects_wordlength_limit(self):
        q = quantize_uniform([1.0, -1.0], 8)
        result = search_coefficients(q, always, max_delta=2)
        limit = (1 << 7) - 1
        assert all(abs(v) <= limit for v in result.improved)

    @given(TAPS, st.integers(min_value=6, max_value=14))
    @settings(max_examples=40, deadline=None)
    def test_invariants(self, taps, wordlength):
        q = quantize_uniform(taps, wordlength)
        result = search_coefficients(q, always, max_passes=2)
        assert result.improved_cost <= result.original_cost
        assert result.original_cost == csd_digit_cost(q.integers)
        assert result.improved_cost == csd_digit_cost(result.improved)
        limit = (1 << (wordlength - 1)) - 1
        assert all(abs(v) <= limit for v in result.improved)

    def test_custom_cost_function(self):
        """Minimizing the count of *distinct* odd fundamentals, not digits."""
        from repro.numrep import oddpart

        def distinct_odds(integers):
            return float(len({abs(oddpart(v)) for v in integers if v}))

        q = quantize_uniform([0.9, 0.33, -0.61, 0.27], 10)
        result = search_coefficients(q, always, cost_fn=distinct_odds)
        assert distinct_odds(result.improved) <= distinct_odds(q.integers)


class TestOnRealFilter:
    def test_spec_preserved_and_cost_reduced(self):
        designed = benchmark_filter(1)
        q = quantize(designed.folded, 14, ScalingScheme.UNIFORM)

        def meets(reconstructed):
            full = unfold_symmetric(reconstructed, designed.spec.numtaps)
            return measure_response(full, designed.spec).satisfies(designed.spec)

        result = search_coefficients(q, meets)
        assert result.improved_cost <= result.original_cost
        # The improved taps really do still meet the spec.
        ints = np.asarray(result.improved, dtype=float)
        reconstructed = ints / q.scale
        full = unfold_symmetric(reconstructed, designed.spec.numtaps)
        assert measure_response(full, designed.spec).satisfies(designed.spec)
