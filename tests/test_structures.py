"""Unit + property tests for FIR filter structures (DF/TDF/folding)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import FilterDesignError
from repro.filters import (
    TransposedDirectForm,
    direct_form_output,
    fold_symmetric,
    is_symmetric,
    transposed_direct_form_output,
    unfold_symmetric,
)

INT_TAPS = st.lists(st.integers(min_value=-255, max_value=255), min_size=1, max_size=12)
INT_SAMPLES = st.lists(st.integers(min_value=-(2**15), max_value=2**15), min_size=1, max_size=30)


class TestSymmetry:
    def test_symmetric_detected(self):
        assert is_symmetric([1.0, 2.0, 3.0, 2.0, 1.0])

    def test_asymmetric_detected(self):
        assert not is_symmetric([1.0, 2.0, 3.0])

    def test_empty_not_symmetric(self):
        assert not is_symmetric([])

    def test_fold_odd_length(self):
        folded, n = fold_symmetric([1.0, 2.0, 3.0, 2.0, 1.0])
        assert list(folded) == [1.0, 2.0, 3.0]
        assert n == 5

    def test_fold_even_length(self):
        folded, n = fold_symmetric([1.0, 2.0, 2.0, 1.0])
        assert list(folded) == [1.0, 2.0]
        assert n == 4

    def test_fold_rejects_asymmetric(self):
        with pytest.raises(FilterDesignError):
            fold_symmetric([1.0, 2.0, 3.0])

    def test_unfold_roundtrip_odd(self):
        taps = [1.0, -2.0, 5.0, -2.0, 1.0]
        folded, n = fold_symmetric(taps)
        assert np.allclose(unfold_symmetric(folded, n), taps)

    def test_unfold_roundtrip_even(self):
        taps = [3.0, 7.0, 7.0, 3.0]
        folded, n = fold_symmetric(taps)
        assert np.allclose(unfold_symmetric(folded, n), taps)

    def test_unfold_wrong_size_rejected(self):
        with pytest.raises(FilterDesignError):
            unfold_symmetric([1.0, 2.0], 7)

    @given(st.lists(st.integers(min_value=-100, max_value=100), min_size=1, max_size=8))
    def test_fold_unfold_identity(self, half):
        taps = half + half[::-1]
        folded, n = fold_symmetric([float(t) for t in taps])
        assert list(unfold_symmetric(folded, n)) == [float(t) for t in taps]


class TestStructuralIdentity:
    def test_impulse_response_recovers_taps(self):
        taps = [3, -1, 4, 1, -5]
        impulse = [1, 0, 0, 0, 0]
        assert direct_form_output(taps, impulse) == taps

    def test_known_convolution(self):
        assert direct_form_output([1, 2], [1, 1, 1]) == [1, 3, 3]

    @given(INT_TAPS, INT_SAMPLES)
    @settings(max_examples=60)
    def test_tdf_equals_direct_form(self, taps, samples):
        """Structural identity: register-level TDF == direct convolution."""
        assert transposed_direct_form_output(taps, samples) == direct_form_output(
            taps, samples
        )

    @given(INT_TAPS, INT_SAMPLES)
    @settings(max_examples=30)
    def test_tdf_matches_numpy(self, taps, samples):
        expected = np.convolve(taps, samples)[: len(samples)]
        got = transposed_direct_form_output(taps, samples)
        assert got == list(expected)


class TestStreamingEngine:
    def test_needs_taps(self):
        with pytest.raises(FilterDesignError):
            TransposedDirectForm([])

    def test_step_matches_block(self):
        taps = [2, -3, 1]
        samples = [5, 7, -2, 0, 9]
        engine = TransposedDirectForm(taps)
        stepped = [engine.step(x) for x in samples]
        assert stepped == direct_form_output(taps, samples)

    def test_process_block(self):
        engine = TransposedDirectForm([1, 1])
        assert engine.process([1, 2, 3]) == [1, 3, 5]

    def test_reset_clears_state(self):
        engine = TransposedDirectForm([1, 1])
        engine.process([10, 20])
        engine.reset()
        assert engine.process([1, 2, 3]) == [1, 3, 5]

    def test_single_tap(self):
        engine = TransposedDirectForm([5])
        assert engine.process([1, -2]) == [5, -10]

    def test_taps_accessor_copies(self):
        engine = TransposedDirectForm([1, 2])
        taps = engine.taps
        taps.append(99)
        assert engine.taps == [1, 2]
