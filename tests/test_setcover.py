"""Unit + property tests for the greedy weighted minimum set cover."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import GraphError
from repro.graph import benefit, greedy_weighted_set_cover


class TestBenefitFunction:
    def test_neutral_beta(self):
        assert benefit(4, 2, 0.5) == pytest.approx(1.0)

    def test_beta_one_ignores_cost(self):
        assert benefit(4, 100, 1.0) == pytest.approx(4.0)

    def test_beta_zero_ignores_frequency(self):
        assert benefit(100, 3, 0.0) == pytest.approx(-3.0)


class TestGreedyCover:
    def test_trivial_single_set(self):
        sol = greedy_weighted_set_cover({1, 2}, {"a": frozenset({1, 2})}, {"a": 1.0})
        assert sol.colors == ("a",)
        assert sol.covered_by == {1: "a", 2: "a"}

    def test_unreachable_element_raises(self):
        with pytest.raises(GraphError):
            greedy_weighted_set_cover({1, 2}, {"a": frozenset({1})}, {"a": 1.0})

    def test_invalid_beta_raises(self):
        with pytest.raises(GraphError):
            greedy_weighted_set_cover({1}, {"a": frozenset({1})}, {"a": 1.0}, beta=2.0)

    def test_invalid_strategy_raises(self):
        with pytest.raises(GraphError):
            greedy_weighted_set_cover(
                {1}, {"a": frozenset({1})}, {"a": 1.0}, strategy="bogus"
            )

    def test_prefers_high_frequency_at_equal_cost(self):
        sets = {"big": frozenset({1, 2, 3}), "small": frozenset({1})}
        costs = {"big": 1.0, "small": 1.0}
        sol = greedy_weighted_set_cover({1, 2, 3}, sets, costs)
        assert sol.colors == ("big",)

    def test_beta_skews_toward_cheap_sets(self):
        """Low beta picks two cheap sets over one expensive covering set."""
        universe = {1, 2}
        sets = {"both": frozenset({1, 2}), "c1": frozenset({1}), "c2": frozenset({2})}
        costs = {"both": 10.0, "c1": 1.0, "c2": 1.0}
        low = greedy_weighted_set_cover(universe, sets, costs, beta=0.1)
        assert "both" not in low.colors
        high = greedy_weighted_set_cover(universe, sets, costs, beta=1.0)
        assert high.colors == ("both",)

    def test_second_pick_uses_updated_frequency(self):
        """Paper step 5c: frequencies are recomputed after each selection."""
        universe = {1, 2, 3, 4}
        sets = {
            "a": frozenset({1, 2, 3}),
            "b": frozenset({2, 3, 4}),
            "c": frozenset({4}),
        }
        costs = {"a": 1.0, "b": 1.0, "c": 0.5}
        sol = greedy_weighted_set_cover(universe, sets, costs, beta=0.5)
        # 'a' first (freq 3); then 'b' has residual freq 1 == 'c' but higher cost
        assert sol.colors[0] == "a"
        assert sol.colors[1] == "c"

    def test_steps_record_newly_covered(self):
        sets = {"a": frozenset({1, 2}), "b": frozenset({2, 3})}
        costs = {"a": 1.0, "b": 1.0}
        sol = greedy_weighted_set_cover({1, 2, 3}, sets, costs)
        union = set()
        for step in sol.steps:
            assert not (step.newly_covered & union)  # disjoint increments
            union |= step.newly_covered
        assert union == {1, 2, 3}

    def test_total_cost(self):
        sets = {"a": frozenset({1}), "b": frozenset({2})}
        costs = {"a": 1.5, "b": 2.5}
        sol = greedy_weighted_set_cover({1, 2}, sets, costs)
        assert sol.total_cost == pytest.approx(4.0)

    def test_savings_strategy_uses_weights(self):
        """With savings weights, covering heavy elements wins despite cost."""
        universe = {1, 2}
        sets = {"heavy": frozenset({1}), "light": frozenset({2}),
                "both": frozenset({1, 2})}
        costs = {"heavy": 1.0, "light": 1.0, "both": 3.0}
        weights = {1: 10.0, 2: 10.0}
        sol = greedy_weighted_set_cover(
            universe, sets, costs, element_weights=weights, strategy="savings"
        )
        assert sol.colors == ("both",)

    def test_deterministic_tiebreak(self):
        sets = {"x": frozenset({1}), "y": frozenset({1})}
        costs = {"x": 1.0, "y": 1.0}
        first = greedy_weighted_set_cover({1}, sets, costs)
        second = greedy_weighted_set_cover({1}, sets, costs)
        assert first.colors == second.colors


@st.composite
def cover_instances(draw):
    universe = draw(st.sets(st.integers(0, 20), min_size=1, max_size=12))
    num_sets = draw(st.integers(min_value=1, max_value=8))
    sets = {}
    for i in range(num_sets):
        members = draw(
            st.sets(st.sampled_from(sorted(universe)), min_size=1, max_size=8)
        )
        sets[f"s{i}"] = frozenset(members)
    # Guarantee feasibility with one catch-all set.
    sets["all"] = frozenset(universe)
    costs = {k: float(draw(st.integers(1, 6))) for k in sets}
    beta = draw(st.sampled_from([0.0, 0.3, 0.5, 0.8, 1.0]))
    return universe, sets, costs, beta


class TestGreedyCoverProperties:
    @given(cover_instances())
    @settings(max_examples=80, deadline=None)
    def test_always_produces_a_cover(self, instance):
        universe, sets, costs, beta = instance
        sol = greedy_weighted_set_cover(universe, sets, costs, beta=beta)
        covered = set()
        for step in sol.steps:
            covered |= step.newly_covered
        assert covered == universe

    @given(cover_instances())
    @settings(max_examples=50, deadline=None)
    def test_covered_by_maps_into_selected(self, instance):
        universe, sets, costs, beta = instance
        sol = greedy_weighted_set_cover(universe, sets, costs, beta=beta)
        selected = set(sol.colors)
        for element, key in sol.covered_by.items():
            assert key in selected
            assert element in sets[key]

    @given(cover_instances())
    @settings(max_examples=50, deadline=None)
    def test_no_selection_is_useless(self, instance):
        universe, sets, costs, beta = instance
        sol = greedy_weighted_set_cover(universe, sets, costs, beta=beta)
        for step in sol.steps:
            assert step.newly_covered  # every pick makes progress
