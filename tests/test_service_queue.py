"""Fair queue, admission control, budgets, and the deadline reaper.

All pure-unit: fake clocks instead of sleeps, no sweeps, no sockets.
"""

from __future__ import annotations

import threading

import pytest

from repro.errors import AdmissionRejected, CircuitOpen, ServiceError, SpecError
from repro.service.admission import (
    AdmissionController,
    CircuitBreaker,
    DurationEwma,
)
from repro.service.budgets import BudgetPolicy, Reaper
from repro.service.queue import FairQueue, QueueFull


class FakeClock:
    def __init__(self, now: float = 0.0) -> None:
        self.now = now

    def __call__(self) -> float:
        return self.now

    def advance(self, dt: float) -> None:
        self.now += dt


class TestFairQueue:
    def test_fifo_within_one_tenant(self):
        q = FairQueue(max_depth=8)
        for i in range(3):
            q.push("a", f"job-{i}")
        assert [q.pop(0.0) for _ in range(3)] == ["job-0", "job-1", "job-2"]

    def test_round_robin_across_tenants(self):
        # Tenant "a" floods first; tenant "b"'s single job must not wait
        # behind a's whole backlog.
        q = FairQueue(max_depth=8)
        for i in range(3):
            q.push("a", f"a-{i}")
        q.push("b", "b-0")
        order = [q.pop(0.0) for _ in range(4)]
        assert order == ["a-0", "b-0", "a-1", "a-2"]

    def test_total_depth_cap(self):
        q = FairQueue(max_depth=2)
        q.push("a", "1")
        q.push("b", "2")
        with pytest.raises(QueueFull) as exc:
            q.push("c", "3")
        assert exc.value.scope == "total"

    def test_per_tenant_cap_leaves_room_for_others(self):
        q = FairQueue(max_depth=8, max_depth_per_tenant=2)
        q.push("a", "1")
        q.push("a", "2")
        with pytest.raises(QueueFull) as exc:
            q.push("a", "3")
        assert exc.value.scope == "tenant"
        q.push("b", "4")  # other tenants unaffected

    def test_pop_timeout_returns_none(self):
        q = FairQueue(max_depth=2)
        assert q.pop(timeout=0.01) is None

    def test_depth_per_tenant(self):
        q = FairQueue(max_depth=8)
        q.push("a", "1")
        q.push("a", "2")
        q.push("b", "3")
        assert q.depth() == 3
        assert q.depth("a") == 2 and q.depth("b") == 1 and q.depth("c") == 0

    def test_closed_queue_rejects_push_and_stops_dispensing(self):
        q = FairQueue(max_depth=2)
        q.push("a", "1")
        q.close()
        with pytest.raises(QueueFull, match="closed"):
            q.push("a", "2")
        # A closed queue dispenses nothing, even with work still queued:
        # starting a new job after SIGTERM would defeat the drain grace
        # period.  The job stays durably queued for the next start.
        assert q.pop(timeout=30.0) is None
        assert q.depth() == 1

    def test_close_wakes_blocked_consumer(self):
        q = FairQueue(max_depth=2)
        got = []
        t = threading.Thread(target=lambda: got.append(q.pop(timeout=30.0)))
        t.start()
        q.close()
        t.join(timeout=5.0)
        assert not t.is_alive() and got == [None]

    def test_invalid_bounds_rejected(self):
        with pytest.raises(ServiceError):
            FairQueue(max_depth=0)
        with pytest.raises(ServiceError):
            FairQueue(max_depth=4, max_depth_per_tenant=0)


class TestDurationEwma:
    def test_first_observation_replaces_prior(self):
        ewma = DurationEwma(alpha=0.5, initial=1.0)
        ewma.observe(9.0)
        assert ewma.value == 9.0

    def test_smooths_after_first(self):
        ewma = DurationEwma(alpha=0.5, initial=1.0)
        ewma.observe(8.0)
        ewma.observe(4.0)
        assert ewma.value == pytest.approx(6.0)

    def test_invalid_alpha(self):
        with pytest.raises(ServiceError):
            DurationEwma(alpha=0.0)
        with pytest.raises(ServiceError):
            DurationEwma(alpha=1.5)


class TestCircuitBreaker:
    def test_closed_until_threshold(self):
        clock = FakeClock()
        b = CircuitBreaker(threshold=3, window_s=60, cooldown_s=30, clock=clock)
        b.record_rebuilds(2)
        assert b.state == "closed"
        b.allow()  # no raise

    def test_trips_when_window_total_crosses_threshold(self):
        clock = FakeClock()
        b = CircuitBreaker(threshold=3, window_s=60, cooldown_s=30, clock=clock)
        b.record_rebuilds(2)
        b.record_rebuilds(1)
        assert b.state == "open"
        with pytest.raises(CircuitOpen) as exc:
            b.allow()
        assert exc.value.retry_after_s >= 1.0

    def test_old_events_age_out_of_window(self):
        clock = FakeClock()
        b = CircuitBreaker(threshold=3, window_s=60, cooldown_s=30, clock=clock)
        b.record_rebuilds(2)
        clock.advance(61.0)
        b.record_rebuilds(1)  # the earlier 2 aged out; total is 1
        assert b.state == "closed"

    def test_cooldown_then_half_open_probe_closes_on_success(self):
        clock = FakeClock()
        b = CircuitBreaker(threshold=1, window_s=60, cooldown_s=30, clock=clock)
        b.record_rebuilds(1)
        assert b.state == "open"
        clock.advance(31.0)
        assert b.state == "half-open"
        b.allow()  # admits the probe
        b.record_success()
        assert b.state == "closed"

    def test_rebuild_during_probe_reopens(self):
        clock = FakeClock()
        b = CircuitBreaker(threshold=2, window_s=60, cooldown_s=30, clock=clock)
        b.record_rebuilds(2)
        clock.advance(31.0)
        b.allow()  # half-open probe admitted
        b.record_rebuilds(1)  # probe job also had to rebuild the pool
        assert b.state == "open"
        with pytest.raises(CircuitOpen):
            b.allow()

    def test_success_while_closed_is_noop(self):
        b = CircuitBreaker(clock=FakeClock())
        b.record_success()
        assert b.state == "closed"


class TestAdmissionController:
    def _controller(self, max_depth=2, per_tenant=None, max_inflight=1):
        queue = FairQueue(max_depth, max_depth_per_tenant=per_tenant)
        breaker = CircuitBreaker(clock=FakeClock())
        return AdmissionController(queue, breaker, max_inflight=max_inflight)

    def test_admits_when_room(self):
        ctrl = self._controller()
        ctrl.admit("a")  # no raise

    def test_sheds_on_full_queue_with_retry_after(self):
        ctrl = self._controller(max_depth=1)
        ctrl.queue.push("a", "job-1")
        with pytest.raises(AdmissionRejected) as exc:
            ctrl.admit("b")
        assert exc.value.retry_after_s >= 1.0

    def test_sheds_on_tenant_cap(self):
        ctrl = self._controller(max_depth=8, per_tenant=1)
        ctrl.queue.push("a", "job-1")
        with pytest.raises(AdmissionRejected, match="tenant"):
            ctrl.admit("a")
        ctrl.admit("b")  # other tenants still fine

    def test_open_breaker_blocks_admission(self):
        ctrl = self._controller()
        ctrl.breaker.record_rebuilds(ctrl.breaker.threshold)
        with pytest.raises(CircuitOpen):
            ctrl.admit("a")

    def test_retry_after_scales_with_backlog(self):
        ctrl = self._controller(max_depth=8)
        ctrl.durations.observe(10.0)
        empty = ctrl.retry_after_s()
        ctrl.queue.push("a", "1")
        ctrl.queue.push("a", "2")
        assert ctrl.retry_after_s() > empty

    def test_retry_after_clamped(self):
        ctrl = self._controller(max_depth=8)
        ctrl.durations.observe(10_000.0)
        assert ctrl.retry_after_s() == AdmissionController.MAX_RETRY_AFTER_S

    def test_inflight_bookkeeping(self):
        ctrl = self._controller()
        ctrl.job_started()
        assert ctrl.inflight == 1
        ctrl.job_finished(duration_s=2.0, pool_rebuilds=0)
        assert ctrl.inflight == 0
        assert ctrl.durations.value == 2.0

    def test_job_finished_feeds_breaker(self):
        ctrl = self._controller()
        ctrl.job_started()
        ctrl.job_finished(duration_s=1.0, pool_rebuilds=ctrl.breaker.threshold)
        assert ctrl.breaker.state == "open"

    def test_translate_queue_full(self):
        ctrl = self._controller()
        rejected = ctrl.translate_queue_full(QueueFull("race"))
        assert isinstance(rejected, AdmissionRejected)
        assert rejected.retry_after_s >= 1.0


class TestBudgetPolicy:
    def test_defaults_when_unspecified(self):
        policy = BudgetPolicy()
        task, job, clamped = policy.resolve(None, None)
        assert task == policy.default_task_deadline_s
        assert job == policy.default_job_deadline_s
        assert clamped is False

    def test_requests_below_ceiling_pass_through(self):
        task, job, clamped = BudgetPolicy().resolve(5.0, 60.0)
        assert (task, job, clamped) == (5.0, 60.0, False)

    def test_over_ceiling_clamped_not_rejected(self):
        policy = BudgetPolicy(
            max_task_deadline_s=120.0, max_job_deadline_s=1800.0
        )
        task, job, clamped = policy.resolve(999.0, 99999.0)
        assert task == 120.0 and job == 1800.0 and clamped is True

    def test_non_positive_rejected(self):
        with pytest.raises(SpecError):
            BudgetPolicy().resolve(0.0, None)
        with pytest.raises(SpecError):
            BudgetPolicy().resolve(None, -1.0)

    def test_default_above_ceiling_is_a_config_error(self):
        with pytest.raises(SpecError):
            BudgetPolicy(default_task_deadline_s=200.0, max_task_deadline_s=100.0)


class _FakeRecord:
    def __init__(self, job_id, expires_at):
        self.job_id = job_id
        self.expires_at = expires_at


class TestReaper:
    def test_expires_only_overdue_jobs(self):
        clock = FakeClock(now=100.0)
        records = [
            _FakeRecord("job-late", expires_at=90.0),
            _FakeRecord("job-fine", expires_at=110.0),
            _FakeRecord("job-nodeadline", expires_at=None),
        ]
        expired = []
        reaper = Reaper(
            sweep=lambda: records, expire=expired.append, clock=clock
        )
        assert reaper.reap_once() == 1
        assert expired == ["job-late"]

    def test_lost_race_is_swallowed(self):
        from repro.errors import JobStateError

        clock = FakeClock(now=100.0)

        def expire(job_id):
            raise JobStateError("completed first")

        reaper = Reaper(
            sweep=lambda: [_FakeRecord("job-1", 50.0)],
            expire=expire,
            clock=clock,
        )
        assert reaper.reap_once() == 0

    def test_thread_start_stop(self):
        reaper = Reaper(sweep=lambda: [], expire=lambda _: None,
                        interval_s=0.05)
        reaper.start()
        reaper.start()  # idempotent
        reaper.stop()
        assert reaper._thread is None
