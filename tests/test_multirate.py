"""Tests for the multirate subpackage: polyphase structures, half-band design."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import FilterDesignError, SynthesisError
from repro.filters import measure_response, FilterSpec, BandType, DesignMethod
from repro.multirate import (
    decimate_reference,
    design_halfband,
    interpolate_reference,
    is_halfband,
    polyphase_decompose,
    synthesize_polyphase_decimator,
    synthesize_polyphase_interpolator,
)
from repro.quantize import quantize_uniform

TAPS = st.lists(st.integers(min_value=-255, max_value=255), min_size=1, max_size=16)
SAMPLES = st.lists(st.integers(min_value=-(2**12), max_value=2**12),
                   min_size=1, max_size=24)
FACTORS = st.integers(min_value=1, max_value=4)


class TestDecomposition:
    def test_round_trip_partition(self):
        taps = list(range(10))
        parts = polyphase_decompose(taps, 3)
        assert parts == [[0, 3, 6, 9], [1, 4, 7], [2, 5, 8]]

    def test_bad_factor(self):
        with pytest.raises(SynthesisError):
            polyphase_decompose([1, 2], 0)

    @given(TAPS, FACTORS)
    def test_decomposition_covers_all_taps(self, taps, factor):
        parts = polyphase_decompose(taps, factor)
        assert sorted(t for part in parts for t in part) == sorted(taps)


class TestReferences:
    def test_decimate_identity_factor(self):
        taps = [1]
        xs = [5, -2, 7]
        assert decimate_reference(taps, 1, xs) == xs

    def test_interpolate_identity_factor(self):
        assert interpolate_reference([1], 1, [5, -2]) == [5, -2]

    def test_interpolate_length(self):
        assert len(interpolate_reference([1, 0], 3, [1, 2])) == 6


class TestPolyphaseDecimator:
    @given(TAPS.filter(lambda t: any(t)), FACTORS, SAMPLES)
    @settings(max_examples=40, deadline=None)
    def test_structure_equals_golden_model(self, taps, factor, samples):
        dec = synthesize_polyphase_decimator(taps, factor, 10)
        dec.verify(samples)

    def test_halfband_branch_degenerates(self):
        """One branch of a quantized half-band is a single center tap."""
        taps = design_halfband(15, 0.12)
        q = quantize_uniform(taps, 12)
        dec = synthesize_polyphase_decimator(q.integers, 2, 12)
        # Branch 1 holds the odd-indexed taps: all zero except the center.
        parts = polyphase_decompose(q.integers, 2)
        sparse = min(parts, key=lambda p: sum(1 for v in p if v))
        assert sum(1 for v in sparse if v) == 1
        dec.verify([3, -1, 400, 0, -250, 99, 123, -67])

    def test_adder_count_sums_branches(self):
        dec = synthesize_polyphase_decimator([3, 5, 7, 9], 2, 8)
        assert dec.adder_count == sum(b.adder_count for b in dec.branches)


class TestPolyphaseInterpolator:
    @given(TAPS.filter(lambda t: any(t)), FACTORS, SAMPLES)
    @settings(max_examples=40, deadline=None)
    def test_structure_equals_golden_model(self, taps, factor, samples):
        interp = synthesize_polyphase_interpolator(taps, factor, 10)
        interp.verify(samples)

    def test_zero_taps_rejected(self):
        with pytest.raises(SynthesisError):
            synthesize_polyphase_interpolator([0, 0], 2, 8)

    def test_joint_sharing_beats_per_branch(self):
        """The interpolator's joint scaler shares across branches, so it can
        never need more adders than the per-branch decimator split."""
        taps = quantize_uniform(design_halfband(19, 0.1), 14).integers
        interp = synthesize_polyphase_interpolator(taps, 2, 14)
        dec = synthesize_polyphase_decimator(taps, 2, 14)
        assert interp.adder_count <= dec.adder_count + 2


class TestHalfband:
    def test_length_constraint(self):
        with pytest.raises(FilterDesignError):
            design_halfband(16)
        with pytest.raises(FilterDesignError):
            design_halfband(17)

    def test_transition_constraint(self):
        with pytest.raises(FilterDesignError):
            design_halfband(19, 0.6)

    @pytest.mark.parametrize("numtaps", [7, 11, 15, 19, 31])
    def test_structure(self, numtaps):
        taps = design_halfband(numtaps, 0.12)
        assert is_halfband(taps)
        assert taps[numtaps // 2] == pytest.approx(0.5)

    def test_symmetric(self):
        taps = design_halfband(19, 0.1)
        assert np.allclose(taps, taps[::-1])

    def test_frequency_response(self):
        """Passband at DC, ~ -6 dB point at fs/4, stopband at Nyquist."""
        taps = design_halfband(31, 0.08)
        spec = FilterSpec(
            name="hb", band=BandType.LOWPASS,
            method=DesignMethod.PARKS_MCCLELLAN, numtaps=31,
            passband=(0.0, 0.40), stopband=(0.60, 1.0),
            ripple_db=0.5, atten_db=35.0,
        )
        report = measure_response(taps, spec)
        assert report.satisfies(spec, margin_db=1.0)

    def test_is_halfband_rejects_dense(self):
        assert not is_halfband(np.ones(11))

    def test_is_halfband_rejects_even_length(self):
        assert not is_halfband(np.zeros(10))
