"""Cross-method property tests: all syntheses agree, and orderings hold.

The strongest system-level statement the library can make: for ANY integer
coefficient vector, every synthesis method — simple, CSE, MSD-CSE-backed CSE
filter, BHM, Hcub, MST(L=0), MRPF (all compression modes), and the optimized
netlists — produces *exactly* the same filter, differing only in cost.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.arch import optimize_netlist, simulate_tdf_filter
from repro.baselines import (
    simple_adder_count,
    synthesize_bhm,
    synthesize_cse_filter,
    synthesize_hcub,
    synthesize_mst_diff,
    synthesize_simple,
)
from repro.core import synthesize_mrpf

COEFFS = st.lists(
    st.integers(min_value=-(2**9), max_value=2**9), min_size=1, max_size=8
).filter(lambda cs: any(cs))
SAMPLES = [1, -1, 3, 255, -128, 999, -777, 0, 64]


def reference_output(coeffs):
    out = []
    for n in range(len(SAMPLES)):
        acc = 0
        for i, c in enumerate(coeffs):
            if n - i >= 0:
                acc += c * SAMPLES[n - i]
        out.append(acc)
    return out


class TestAllMethodsAgree:
    @given(COEFFS)
    @settings(max_examples=25, deadline=None)
    def test_every_method_computes_the_same_filter(self, coeffs):
        want = reference_output(coeffs)
        architectures = [
            synthesize_simple(coeffs),
            synthesize_cse_filter(coeffs),
            synthesize_bhm(coeffs),
            synthesize_hcub(coeffs),
            synthesize_mst_diff(coeffs, 10, verify=False),
            synthesize_mrpf(coeffs, 10, verify=False),
            synthesize_mrpf(coeffs, 10, seed_compression="cse", verify=False),
        ]
        for arch in architectures:
            got = simulate_tdf_filter(arch.netlist, arch.tap_names, SAMPLES)
            assert got == want

    @given(COEFFS)
    @settings(max_examples=20, deadline=None)
    def test_optimized_netlists_agree_too(self, coeffs):
        want = reference_output(coeffs)
        arch = synthesize_mrpf(coeffs, 10, verify=False)
        for dedup in (True, False):
            optimized = optimize_netlist(arch.netlist, dedup=dedup)
            got = simulate_tdf_filter(optimized, arch.tap_names, SAMPLES)
            assert got == want


class TestCostOrderings:
    @given(COEFFS)
    @settings(max_examples=20, deadline=None)
    def test_sharing_methods_never_lose_to_simple(self, coeffs):
        simple = simple_adder_count(coeffs)
        assert synthesize_cse_filter(coeffs).adder_count <= simple
        assert synthesize_bhm(coeffs).adder_count <= simple
        assert synthesize_hcub(coeffs).adder_count <= simple

    @given(COEFFS)
    @settings(max_examples=15, deadline=None)
    def test_best_mrpf_floor_holds(self, coeffs):
        from repro.eval import best_mrpf

        assert best_mrpf(coeffs, 10).adder_count <= simple_adder_count(coeffs)
