"""Unit + property tests for coefficient quantization (uniform/maximal)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import QuantizationError
from repro.quantize import (
    QuantizedTaps,
    ScalingScheme,
    error_bounded_wordlength,
    quantize,
    quantize_maximal,
    quantize_uniform,
    search_wordlength,
)

TAP_LISTS = st.lists(
    st.floats(min_value=-1.0, max_value=1.0, allow_nan=False, width=32),
    min_size=1,
    max_size=24,
).filter(lambda taps: max(abs(t) for t in taps) > 1e-6)

WORDLENGTHS = st.integers(min_value=4, max_value=20)


class TestValidation:
    def test_empty_rejected(self):
        with pytest.raises(QuantizationError):
            quantize_uniform([], 8)

    def test_all_zero_rejected(self):
        with pytest.raises(QuantizationError):
            quantize_uniform([0.0, 0.0], 8)

    def test_nan_rejected(self):
        with pytest.raises(QuantizationError):
            quantize_uniform([0.5, float("nan")], 8)

    def test_tiny_wordlength_rejected(self):
        with pytest.raises(QuantizationError):
            quantize_uniform([0.5], 1)

    def test_unknown_scheme_rejected(self):
        with pytest.raises(QuantizationError):
            quantize([0.5], 8, "bogus")  # type: ignore[arg-type]


class TestUniform:
    def test_largest_tap_hits_limit(self):
        q = quantize_uniform([0.25, -1.0, 0.5], 8)
        assert max(abs(v) for v in q.integers) == 127

    def test_shifts_all_zero(self):
        q = quantize_uniform([0.25, -1.0, 0.5], 8)
        assert q.shifts == (0, 0, 0)

    def test_scheme_recorded(self):
        q = quantize_uniform([1.0], 8)
        assert q.scheme is ScalingScheme.UNIFORM

    def test_sign_preserved(self):
        q = quantize_uniform([-0.7, 0.7], 10)
        assert q.integers[0] == -q.integers[1]

    @given(TAP_LISTS, WORDLENGTHS)
    @settings(max_examples=50)
    def test_integers_fit_wordlength(self, taps, w):
        q = quantize_uniform(taps, w)
        limit = (1 << (w - 1)) - 1
        assert all(abs(v) <= limit for v in q.integers)

    @given(TAP_LISTS, WORDLENGTHS)
    @settings(max_examples=50)
    def test_reconstruction_error_bounded(self, taps, w):
        q = quantize_uniform(taps, w)
        # Rounding error is at most half an LSB of the shared scale.
        assert q.quantization_error() <= 0.5 / q.scale + 1e-12


class TestMaximal:
    def test_scheme_recorded(self):
        q = quantize_maximal([0.5, 0.01], 8)
        assert q.scheme is ScalingScheme.MAXIMAL

    def test_small_taps_get_large_shifts(self):
        q = quantize_maximal([1.0, 0.001], 12)
        assert q.shifts[1] > q.shifts[0]

    def test_zero_tap_untouched(self):
        q = quantize_maximal([1.0, 0.0], 8)
        assert q.integers[1] == 0
        assert q.shifts[1] == 0

    def test_mantissas_msb_aligned(self):
        """Every nonzero mantissa occupies the top half of the word."""
        q = quantize_maximal([1.0, 0.3, 0.07, 0.004], 12)
        limit = (1 << 11) - 1
        for v in q.integers:
            if v:
                assert limit // 2 <= abs(v) <= limit

    @given(TAP_LISTS, WORDLENGTHS)
    @settings(max_examples=50)
    def test_integers_fit_wordlength(self, taps, w):
        q = quantize_maximal(taps, w)
        limit = (1 << (w - 1)) - 1
        assert all(abs(v) <= limit for v in q.integers)

    @given(TAP_LISTS, WORDLENGTHS)
    @settings(max_examples=50)
    def test_maximal_at_least_as_precise_as_uniform(self, taps, w):
        qu = quantize_uniform(taps, w)
        qm = quantize_maximal(taps, w)
        assert qm.quantization_error() <= qu.quantization_error() + 1e-12


class TestAlignedIntegers:
    def test_uniform_alignment_is_identity(self):
        q = quantize_uniform([0.5, 1.0], 8)
        assert q.aligned_integers() == q.integers

    def test_maximal_alignment_restores_ratios(self):
        q = quantize_maximal([1.0, 0.25], 10)
        aligned = q.aligned_integers()
        # After alignment, the values must represent the same common scale:
        # aligned[i] / 2**max_shift == integers[i] / 2**shifts[i]
        for a, v, s in zip(aligned, q.integers, q.shifts):
            assert a == v << (q.max_shift - s)

    @given(TAP_LISTS, WORDLENGTHS)
    @settings(max_examples=50)
    def test_aligned_reconstruction_matches(self, taps, w):
        q = quantize_maximal(taps, w)
        aligned = q.aligned_integers()
        scale = q.scale * (2.0**q.max_shift)
        rec = np.array(aligned, dtype=float) / scale
        assert np.allclose(rec, q.reconstruct())


class TestWordlengthSearch:
    def test_finds_minimal_width(self):
        taps = [1.0, -0.5, 0.25]
        w = error_bounded_wordlength(taps, max_abs_error=1e-3)
        assert 4 <= w <= 24
        # One bit fewer must violate the bound (minimality), unless at floor.
        if w > 4:
            q = quantize(taps, w - 1)
            assert q.quantization_error() > 1e-3

    def test_impossible_bound_raises(self):
        with pytest.raises(QuantizationError):
            error_bounded_wordlength([1.0, 0.333], 0.0, max_wordlength=8)

    def test_bad_range_raises(self):
        with pytest.raises(QuantizationError):
            search_wordlength([1.0], lambda t: True, 8, 4)

    def test_predicate_receives_reconstruction(self):
        seen = []

        def predicate(taps):
            seen.append(taps.copy())
            return True

        w = search_wordlength([1.0, 0.5], predicate, 6, 8)
        assert w == 6
        assert len(seen) == 1
        assert seen[0].shape == (2,)


class TestDerivedValueMemoStaysFresh:
    """Regression: the per-instance memo must never leak across instances.

    ``_cached`` used to be an ``init`` field, so ``dataclasses.replace``
    carried the donor's populated memo into the new instance — a replaced
    QuantizedTaps with different integers/shifts could serve the donor's
    stale ``aligned_integers``.
    """

    def test_replace_does_not_inherit_stale_entries(self):
        import dataclasses

        q = quantize([0.9, 0.1, 0.45], 8, ScalingScheme.MAXIMAL)
        original_aligned = q.aligned_integers()  # populate the memo
        doubled = dataclasses.replace(
            q, integers=tuple(i * 2 for i in q.integers)
        )
        assert doubled.aligned_integers() == tuple(
            a * 2 for a in original_aligned
        )
        # The donor's memo is untouched by the replacement.
        assert q.aligned_integers() == original_aligned

    def test_memo_returns_consistent_values(self):
        q = quantize([0.5, -0.25, 0.125], 10, ScalingScheme.MAXIMAL)
        assert q.aligned_integers() == q.aligned_integers()
        assert q.quantization_error() == q.quantization_error()
        # Cached values match a fresh computation of the same image.
        fresh = quantize([0.5, -0.25, 0.125], 10, ScalingScheme.MAXIMAL)
        assert q.aligned_integers() == fresh.aligned_integers()
        assert q.quantization_error() == fresh.quantization_error()
