"""Tests for MRP plan visualization (paper Figures 2/3 as Graphviz)."""

import pytest

from repro.core import cover_to_dot, optimize, plan_to_dot, trivial_plan


@pytest.fixture(scope="module")
def plan(paper_coefficients):
    return optimize(paper_coefficients, 7)


class TestPlanToDot:
    def test_digraph_structure(self, plan):
        text = plan_to_dot(plan, "p")
        assert text.startswith("digraph p {")
        assert text.rstrip().endswith("}")

    def test_every_vertex_rendered(self, plan):
        text = plan_to_dot(plan)
        for vertex in plan.vertices:
            assert f"v{vertex} [" in text

    def test_roots_doublecircled(self, plan):
        text = plan_to_dot(plan)
        for root in plan.roots:
            assert f'v{root} [label="{root}", shape=doublecircle];' in text

    def test_one_edge_per_child(self, plan):
        text = plan_to_dot(plan)
        assert text.count(" -> ") == len(plan.forest.children)

    def test_edge_labels_carry_sidc_identity(self, plan):
        text = plan_to_dot(plan)
        for child in plan.forest.children:
            assert f"v{child.parent} -> v{child.vertex}" in text

    def test_seed_in_label(self, plan):
        assert "SEED" in plan_to_dot(plan)

    def test_trivial_plan_renders(self, paper_coefficients):
        text = plan_to_dot(trivial_plan(paper_coefficients))
        assert "doublecircle" in text
        assert " -> " not in text  # all roots, no tree edges


class TestCoverToDot:
    def test_colors_clustered(self, plan):
        text = cover_to_dot(plan)
        assert "cluster_colors" in text
        for color in plan.solution_colors:
            assert f'c{color} [label="{color}", shape=box];' in text

    def test_every_vertex_covered_once(self, plan):
        text = cover_to_dot(plan)
        count = sum(
            text.count(f"-> v{vertex};") for vertex in plan.vertices
        )
        assert count == len(plan.vertices)

    def test_trivial_plan_no_cover_edges(self, paper_coefficients):
        text = cover_to_dot(trivial_plan(paper_coefficients))
        assert "-> v" not in text
