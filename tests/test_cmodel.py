"""Compiled cross-verification: the emitted C model vs the Python simulator.

These tests require a system C compiler (gcc/cc); they are skipped cleanly
when none is available.
"""

import shutil
import subprocess

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.arch import emit_c_model, simulate_tdf_filter
from repro.baselines import synthesize_cse_filter, synthesize_simple
from repro.core import synthesize_mrpf
from repro.errors import NetlistError

CC = shutil.which("gcc") or shutil.which("cc")
needs_cc = pytest.mark.skipif(CC is None, reason="no C compiler available")

COEFFS = st.lists(
    st.integers(min_value=-(2**10), max_value=2**10), min_size=1, max_size=10
).filter(lambda cs: any(cs))
STIMULUS = [1, -1, 255, -256, 1000, -999, 0, 7, -7, 12345, -12345, 3, 3, 3]


def compile_and_run(source: str, stimulus, tmp_path):
    c_file = tmp_path / "filter.c"
    binary = tmp_path / "filter"
    c_file.write_text(source)
    subprocess.run(
        [CC, "-O2", "-o", str(binary), str(c_file)],
        check=True, capture_output=True,
    )
    result = subprocess.run(
        [str(binary)],
        input=" ".join(str(x) for x in stimulus),
        capture_output=True, text=True, check=True,
    )
    return [int(line) for line in result.stdout.split()]


class TestEmission:
    def test_structure(self, paper_coefficients):
        arch = synthesize_mrpf(paper_coefficients, 7)
        source = emit_c_model(arch.netlist, arch.tap_names, input_bits=12)
        assert "#include <stdint.h>" in source
        assert "filter_step" in source
        assert source.count("const int64_t n") == arch.adder_count + 1

    def test_overflow_guard(self):
        arch = synthesize_mrpf([32767] * 40, 16)
        with pytest.raises(NetlistError):
            emit_c_model(arch.netlist, arch.tap_names, input_bits=48)


@needs_cc
class TestCompiledEquivalence:
    def test_paper_example(self, paper_coefficients, tmp_path):
        arch = synthesize_mrpf(paper_coefficients, 7)
        source = emit_c_model(arch.netlist, arch.tap_names, input_bits=16)
        got = compile_and_run(source, STIMULUS, tmp_path)
        want = simulate_tdf_filter(arch.netlist, arch.tap_names, STIMULUS)
        assert got == want

    def test_all_methods_compile_and_match(self, tmp_path,
                                           small_quantized_uniform):
        q = small_quantized_uniform
        for builder in (
            lambda: synthesize_mrpf(q.integers, q.wordlength, verify=False),
            lambda: synthesize_simple(q.integers),
            lambda: synthesize_cse_filter(q.integers),
        ):
            arch = builder()
            source = emit_c_model(arch.netlist, arch.tap_names, input_bits=16)
            got = compile_and_run(source, STIMULUS, tmp_path)
            want = simulate_tdf_filter(arch.netlist, arch.tap_names, STIMULUS)
            assert got == want

    @given(COEFFS)
    @settings(max_examples=8, deadline=None)
    def test_random_filters_match(self, tmp_path_factory, coeffs):
        arch = synthesize_mrpf(coeffs, 11, verify=False)
        source = emit_c_model(arch.netlist, arch.tap_names, input_bits=16)
        tmp = tmp_path_factory.mktemp("cmodel")
        got = compile_and_run(source, STIMULUS, tmp)
        want = simulate_tdf_filter(arch.netlist, arch.tap_names, STIMULUS)
        assert got == want

    def test_corner_vectors_on_benchmark(self, tmp_path,
                                         small_quantized_maximal):
        """Three-way corner agreement on a Table-1 design: compiled C model
        vs Python simulator vs golden convolution."""
        from repro.verify import corner_vectors, golden_convolution

        q = small_quantized_maximal
        arch = synthesize_mrpf(q.integers, q.wordlength, verify=False)
        stimulus = []
        for vector in corner_vectors(len(arch.tap_names),
                                     input_bits=12).values():
            stimulus.extend(vector)
            stimulus.extend([0] * len(arch.tap_names))  # flush between vectors
        source = emit_c_model(arch.netlist, arch.tap_names, input_bits=16)
        got = compile_and_run(source, stimulus, tmp_path)
        want = simulate_tdf_filter(arch.netlist, arch.tap_names, stimulus)
        golden = golden_convolution(arch.coefficients, stimulus)
        assert got == want == golden
