"""Unit + property tests for the exact branch-and-bound set cover."""

import itertools

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import GraphError
from repro.graph import greedy_weighted_set_cover
from repro.graph.exact_cover import exact_weighted_set_cover, prune_dominated_sets


def brute_force_optimum(universe, sets, costs):
    """Reference: try every subset of sets (exponential, tests only)."""
    best = None
    keys = list(sets)
    for r in range(1, len(keys) + 1):
        for combo in itertools.combinations(keys, r):
            covered = set()
            for k in combo:
                covered |= sets[k]
            if universe <= covered:
                cost = sum(costs[k] for k in combo)
                if best is None or cost < best:
                    best = cost
        if best is not None and r >= 2:
            # keep scanning — a larger combo of cheap sets may still win
            continue
    return best


class TestDominancePruning:
    def test_subset_at_higher_cost_pruned(self):
        sets = {"big": frozenset({1, 2, 3}), "small": frozenset({1, 2})}
        costs = {"big": 1.0, "small": 2.0}
        assert prune_dominated_sets(sets, costs) == ["big"]

    def test_subset_at_lower_cost_kept(self):
        sets = {"big": frozenset({1, 2, 3}), "small": frozenset({1, 2})}
        costs = {"big": 5.0, "small": 1.0}
        survivors = prune_dominated_sets(sets, costs)
        assert set(survivors) == {"big", "small"}

    def test_duplicates_collapse(self):
        sets = {"a": frozenset({1}), "b": frozenset({1})}
        costs = {"a": 1.0, "b": 1.0}
        assert len(prune_dominated_sets(sets, costs)) == 1


class TestExactCover:
    def test_guard_on_universe_size(self):
        universe = set(range(30))
        sets = {"all": frozenset(universe)}
        with pytest.raises(GraphError):
            exact_weighted_set_cover(universe, sets, {"all": 1.0})

    def test_unreachable_element(self):
        with pytest.raises(GraphError):
            exact_weighted_set_cover({1, 2}, {"a": frozenset({1})}, {"a": 1.0})

    def test_beats_greedy_on_adversarial_instance(self):
        """The classic greedy trap: one covering set vs log-many partials."""
        universe = {1, 2, 3, 4, 5, 6}
        sets = {
            "half1": frozenset({1, 2, 3}),
            "half2": frozenset({4, 5, 6}),
            "trap": frozenset({1, 4}),
            "trap2": frozenset({2, 5}),
            "trap3": frozenset({3, 6}),
        }
        costs = {"half1": 2.0, "half2": 2.0, "trap": 1.0, "trap2": 1.0,
                 "trap3": 1.0}
        exact = exact_weighted_set_cover(universe, sets, costs)
        assert exact.total_cost == pytest.approx(3.0)  # the three traps

    def test_solution_is_a_cover(self):
        universe = {1, 2, 3, 4}
        sets = {"a": frozenset({1, 2}), "b": frozenset({3}), "c": frozenset({3, 4})}
        costs = {"a": 1.0, "b": 1.0, "c": 1.5}
        solution = exact_weighted_set_cover(universe, sets, costs)
        covered = set()
        for step in solution.steps:
            covered |= step.newly_covered
        assert covered == universe

    @given(st.data())
    @settings(max_examples=40, deadline=None)
    def test_matches_brute_force(self, data):
        universe = data.draw(st.sets(st.integers(0, 7), min_size=1, max_size=6))
        num_sets = data.draw(st.integers(2, 6))
        sets = {}
        for i in range(num_sets):
            members = data.draw(
                st.sets(st.sampled_from(sorted(universe)), min_size=1, max_size=5)
            )
            sets[f"s{i}"] = frozenset(members)
        sets["all"] = frozenset(universe)
        costs = {k: float(data.draw(st.integers(1, 5))) for k in sets}
        exact = exact_weighted_set_cover(universe, sets, costs)
        assert exact.total_cost == pytest.approx(
            brute_force_optimum(universe, sets, costs)
        )

    @given(st.data())
    @settings(max_examples=40, deadline=None)
    def test_greedy_never_beats_exact(self, data):
        universe = data.draw(st.sets(st.integers(0, 9), min_size=1, max_size=8))
        num_sets = data.draw(st.integers(1, 7))
        sets = {"all": frozenset(universe)}
        for i in range(num_sets):
            members = data.draw(
                st.sets(st.sampled_from(sorted(universe)), min_size=1, max_size=6)
            )
            sets[f"s{i}"] = frozenset(members)
        costs = {k: float(data.draw(st.integers(1, 6))) for k in sets}
        exact = exact_weighted_set_cover(universe, sets, costs)
        greedy = greedy_weighted_set_cover(universe, sets, costs, beta=0.5)
        assert exact.total_cost <= greedy.total_cost + 1e-9
