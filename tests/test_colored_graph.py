"""Unit + property tests for the SIDC colored multigraph."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import GraphError
from repro.graph import ColorEdge, build_colored_graph
from repro.numrep import Representation, digit_cost, oddpart

ODD_VERTEX = st.integers(min_value=1, max_value=1023).map(lambda n: 2 * n + 1)
VERTEX_SETS = st.sets(ODD_VERTEX, min_size=2, max_size=6)


class TestColorEdge:
    def test_valid_edge(self):
        # 11 = 1*(3<<2) - 1*(1<<0): color 1, shift 0, negative
        edge = ColorEdge(src=3, dst=11, shift=2, src_sign=1,
                         color=1, color_shift=0, color_sign=-1, weight=1)
        assert edge.dst == 11

    def test_inconsistent_edge_rejected(self):
        with pytest.raises(GraphError):
            ColorEdge(src=3, dst=11, shift=2, src_sign=1,
                      color=5, color_shift=0, color_sign=-1, weight=2)


class TestGraphConstruction:
    def test_vertices_must_be_odd_positive(self):
        with pytest.raises(GraphError):
            build_colored_graph([3, 6], max_shift=2)
        with pytest.raises(GraphError):
            build_colored_graph([-3, 5], max_shift=2)

    def test_negative_max_shift_rejected(self):
        with pytest.raises(GraphError):
            build_colored_graph([3, 5], max_shift=-1)

    def test_edge_count_upper_bound(self):
        """Paper §3.1: at most 2(W+1)M(M-1) distinct edges."""
        vertices = [3, 5, 7]
        w = 4
        graph = build_colored_graph(vertices, w)
        assert graph.num_edges <= 2 * (w + 1) * len(vertices) * (len(vertices) - 1)

    def test_paper_example_color_exists(self):
        """In the paper's example, 5 covers several vertices via SIDC."""
        vertices = sorted({oddpart(c) for c in (7, 66, 17, 9, 27, 41, 56, 11)})
        graph = build_colored_graph(vertices, 7)
        assert 5 in graph.colors
        assert 3 in graph.colors
        # e.g. 17 = (3<<2) + 5 : color 5 reaches vertex 17 from 3.
        assert 17 in graph.color_set(5)

    def test_colors_are_odd_positive(self):
        graph = build_colored_graph([3, 5, 11], 4)
        for color in graph.colors:
            assert color > 0 and color % 2 == 1

    def test_color_cost_matches_representation(self):
        for rep in Representation:
            graph = build_colored_graph([3, 5, 11], 3, rep)
            for color in graph.colors:
                assert graph.color_cost(color) == digit_cost(color, rep)

    def test_frequency_equals_color_set_size(self):
        graph = build_colored_graph([3, 5, 11, 13], 3)
        for color in graph.colors:
            assert graph.color_frequency(color) == len(graph.color_set(color))

    def test_edges_into_filters_by_color(self):
        graph = build_colored_graph([3, 5, 11], 4)
        edges = graph.edges_into(11, {1})
        assert edges
        assert all(e.dst == 11 and e.color == 1 for e in edges)

    def test_edges_into_empty_for_unused_color(self):
        graph = build_colored_graph([3, 5], 2)
        # pick a color not present at all
        missing = max(graph.colors) * 2 + 1
        assert graph.edges_into(5, {missing}) == []

    def test_colors_of_vertex_reverse_index(self):
        graph = build_colored_graph([3, 5, 11], 3)
        for vertex in graph.vertices:
            for color in graph.colors_of_vertex(vertex):
                assert vertex in graph.color_set(color)

    @given(VERTEX_SETS, st.integers(min_value=0, max_value=6))
    @settings(max_examples=30, deadline=None)
    def test_every_edge_reconstructs(self, vertices, max_shift):
        """Invariant: every edge satisfies its SIDC identity (checked in
        ColorEdge.__post_init__, so construction succeeding is the assertion),
        and every vertex is coverable when there are >= 2 vertices."""
        graph = build_colored_graph(vertices, max_shift)
        covered = set()
        for color in graph.colors:
            covered |= graph.color_set(color)
        assert covered == set(graph.vertices)

    @given(VERTEX_SETS)
    @settings(max_examples=20, deadline=None)
    def test_larger_shift_range_never_loses_colors(self, vertices):
        small = build_colored_graph(vertices, 1)
        large = build_colored_graph(vertices, 5)
        assert set(small.colors) <= set(large.colors)
