"""End-to-end integration tests: spec -> design -> quantize -> synthesize ->
simulate -> verify, across methods, scalings and representations.

These are the "does the whole reproduction hang together" tests: every path a
user of the library would take, exercised on real benchmark filters with
bit-exact verification at the end.
"""

import numpy as np
import pytest

from repro import (
    MrpOptions,
    Representation,
    ScalingScheme,
    quantize,
    synthesize_cse_filter,
    synthesize_mrpf,
    synthesize_mst_diff,
    synthesize_simple,
)
from repro.arch import emit_verilog, simulate_tdf_filter
from repro.core import schedule_pipeline, simulate_pipelined
from repro.eval import best_mrpf
from repro.filters import benchmark_filter, measure_response, unfold_symmetric
from repro.hwcost import estimate_power, netlist_area


SCALINGS = [ScalingScheme.UNIFORM, ScalingScheme.MAXIMAL]


@pytest.fixture(scope="module", params=[0, 1])
def designed(request):
    return benchmark_filter(request.param)


@pytest.fixture(scope="module", params=SCALINGS, ids=["uniform", "maximal"])
def quantized(request, designed):
    return quantize(designed.folded, 12, request.param)


class TestFullFlow:
    def test_all_methods_bit_exact(self, quantized, verify_samples):
        w = quantized.wordlength
        integers = quantized.integers
        synthesize_simple(integers).verify(verify_samples)
        synthesize_cse_filter(integers).verify(verify_samples)
        synthesize_mst_diff(integers, w, verify=False).verify(verify_samples)
        for mode in ("none", "cse", "recursive"):
            synthesize_mrpf(
                integers, w, seed_compression=mode, verify=False
            ).verify(verify_samples)

    def test_method_ordering(self, quantized):
        """The expected complexity ordering on real filters:
        best MRPF+CSE <= CSE-or-MRPF <= simple."""
        w = quantized.wordlength
        integers = quantized.integers
        simple = synthesize_simple(integers).adder_count
        cse = synthesize_cse_filter(integers).adder_count
        mrpf = best_mrpf(integers, w).adder_count
        mrpf_cse = best_mrpf(integers, w, seed_compression="cse").adder_count
        assert mrpf <= simple
        assert cse <= simple
        assert mrpf_cse <= simple

    def test_quantized_filter_still_meets_spec(self, designed):
        """12-bit uniform quantization must not destroy the response."""
        q = quantize(designed.folded, 12, ScalingScheme.UNIFORM)
        full = unfold_symmetric(q.reconstruct(), designed.spec.numtaps)
        report = measure_response(full, designed.spec)
        assert report.satisfies(designed.spec, margin_db=1.0)

    def test_netlist_filter_matches_float_filter_scaled(self, designed):
        """The integer netlist output, rescaled, approximates the float
        filter output to quantization accuracy."""
        q = quantize(designed.folded, 14, ScalingScheme.UNIFORM)
        arch = synthesize_mrpf(q.integers, 14, verify=False)
        rng_samples = [((i * 37) % 201) - 100 for i in range(60)]
        got = simulate_tdf_filter(arch.netlist, arch.tap_names, rng_samples)
        reference = np.convolve(
            np.asarray(designed.folded), np.asarray(rng_samples, dtype=float)
        )[: len(rng_samples)]
        rescaled = np.asarray(got, dtype=float) / q.scale
        tolerance = len(q.integers) * 100 * (0.5 / q.scale)
        assert np.max(np.abs(rescaled - reference)) <= tolerance + 1e-9

    def test_maximal_scaling_alignment_end_to_end(self, designed):
        """Aligned integers from maximal scaling synthesize and verify."""
        q = quantize(designed.folded, 10, ScalingScheme.MAXIMAL)
        aligned = q.aligned_integers()
        arch = synthesize_mrpf(aligned, 10 + q.max_shift, verify=False)
        arch.verify([3, -7, 100, 0, 55])


class TestPipelineIntegration:
    def test_pipelined_benchmark_filter(self, designed):
        q = quantize(designed.folded, 12, ScalingScheme.UNIFORM)
        arch = best_mrpf(q.integers, 12)
        schedule = schedule_pipeline(arch.netlist, max_stage_depth=2)
        samples = list(range(-10, 30))
        flat = simulate_tdf_filter(arch.netlist, arch.tap_names, samples)
        piped = simulate_pipelined(arch.netlist, arch.tap_names, samples, schedule)
        k = schedule.latency
        assert piped[k:] == flat[: len(flat) - k]


class TestCostIntegration:
    def test_mrpf_cheaper_in_area_and_power(self, quantized):
        integers = quantized.integers
        w = quantized.wordlength
        simple = synthesize_simple(integers)
        mrpf = best_mrpf(integers, w)
        assert netlist_area(mrpf.netlist, 16) <= netlist_area(simple.netlist, 16)
        p_simple = estimate_power(simple.netlist, 12, 48).total_toggles
        p_mrpf = estimate_power(mrpf.netlist, 12, 48).total_toggles
        assert p_mrpf <= p_simple

    def test_verilog_emission_for_benchmark(self, quantized):
        integers = quantized.integers
        arch = synthesize_mrpf(integers, quantized.wordlength, verify=False)
        text = emit_verilog(arch.netlist, arch.tap_names, input_bits=16)
        assert text.count("wire signed") >= arch.adder_count
        assert "endmodule" in text


class TestRepresentationMatrix:
    @pytest.mark.parametrize("rep", list(Representation))
    @pytest.mark.parametrize("scaling", SCALINGS)
    def test_all_rep_scaling_combinations(self, designed, rep, scaling, verify_samples):
        q = quantize(designed.folded, 10, scaling)
        arch = synthesize_mrpf(
            q.integers, 10, MrpOptions(representation=rep), verify=False
        )
        arch.verify(verify_samples)
