"""End-to-end trace-context propagation: client → service → pool workers.

The claims under test:

* a supervised parallel sweep run under an adopted trace context emits
  worker ``sweep.task`` spans that all share the job's trace id, stay
  ``(pid, id)``-unique after the spill merge, and link back to a span
  that exists in the merged trace;
* a job submitted through the real :class:`ServiceClient` over real HTTP
  yields one connected trace — ``client.request`` through
  ``service.request`` and ``service.job`` down to every ``sweep.task``;
* the trace identity is *durable*: WAL replay after a crash requeues an
  interrupted job with its ``trace_id``/``trace_link`` intact, so the
  resumed run continues the same logical trace.
"""

from __future__ import annotations

import pytest

from repro import obs
from repro.eval import cache as disk_cache
from repro.eval.experiments import clear_cache
from repro.obs import load_trace, validate_trace
from repro.obs.report import job_trace_continuity, trace_id_for_job
from repro.service.client import ServiceClient
from repro.service.store import JobState, JobStore

SPEC = {"experiments": ["fig6"], "filters": [0], "wordlengths": [8]}


@pytest.fixture(autouse=True)
def _pristine(tmp_path):
    obs.reset()
    clear_cache()
    disk_cache.configure(None)
    yield
    obs.reset()
    clear_cache()
    disk_cache.configure(None)


def test_pool_workers_continue_the_adopted_trace(tmp_path):
    """Satellite: trace context survives the pool-worker spill merge."""
    from repro.eval.supervisor import run_sweep_supervised

    obs.configure(trace_path=tmp_path / "trace.jsonl")
    job_trace = "ab" * 8
    with obs.trace_context((job_trace, None)):
        with obs.span("service.job", job_id="job-t", tenant="t"):
            run_sweep_supervised(
                experiment_ids=["fig6"], filter_indices=[0, 1],
                wordlengths=[8], jobs=2,
                cache_dir=tmp_path / "cache", journal_dir=tmp_path / "wal",
            )
    records = load_trace(obs.finalize()["trace"])
    assert validate_trace(records) == []

    spans = [r for r in records if r["kind"] == "span"]
    tasks = [s for s in spans if s["name"] == "sweep.task"]
    assert tasks, "the sweep must have executed tasks"
    # Every span of the run — parent phases and worker tasks alike —
    # carries the adopted trace id.
    assert {s["trace"] for s in spans} == {job_trace}
    # The multi-process merge keeps (pid, id) unique.
    keys = [(s["pid"], s["id"]) for s in spans]
    assert len(keys) == len(set(keys))
    # Worker roots link to a span that exists in the merged trace (the
    # wave/precompute span whose worker_args() snapshot they inherited).
    by_key = {(s["pid"], s["id"]): s for s in spans}
    for task in tasks:
        assert task["parent"] is not None or task["link"] is not None
        if task["parent"] is None:
            assert tuple(task["link"]) in by_key


def test_service_client_job_is_one_connected_trace(tmp_path):
    """Acceptance: a traced ServiceClient job merges into one story."""
    from repro.service.app import ServiceConfig, make_server
    from threading import Thread

    obs.configure(trace_path=tmp_path / "trace.jsonl")
    server, service = make_server(
        ServiceConfig(data_dir=tmp_path / "data", port=0, sweep_jobs=2)
    )
    thread = Thread(target=server.serve_forever, daemon=True)
    thread.start()
    try:
        client = ServiceClient(
            f"http://127.0.0.1:{server.server_address[1]}",
            request_timeout_s=30.0, deadline_s=240.0, seed=0,
        )
        view, _ = client.submit_and_wait(
            dict(SPEC), budget_s=240.0, fetch_result=False
        )
        assert view["state"] == "completed", view.get("error")
        job_id = view["job_id"]
    finally:
        server.shutdown()
        server.server_close()
        service.drain(grace_s=60.0)

    records = load_trace(obs.finalize()["trace"])
    assert validate_trace(records) == []
    assert job_trace_continuity(records, job_id) == []
    # The whole job shares the client process's trace id.
    trace_id = trace_id_for_job(records, job_id)
    job_spans = [
        r for r in records
        if r["kind"] == "span" and r.get("trace") == trace_id
    ]
    names = {s["name"] for s in job_spans}
    assert {"client.request", "service.request", "service.job",
            "sweep.task"} <= names


def test_crash_recovery_preserves_trace_identity(tmp_path):
    """Satellite: WAL replay requeues an interrupted job on the same trace."""
    from repro.service.store import JobSpec

    store = JobStore(tmp_path)
    record, _ = store.submit(
        JobSpec.from_dict(SPEC), tenant="t",
        task_deadline_s=60.0, deadline_s=600.0,
        trace_id="cd" * 8, trace_link=[4242, 17],
    )
    store.transition(record.job_id, JobState.RUNNING)
    store.close()

    # A new store on the same directory is the crashed-server restart.
    reopened = JobStore(tmp_path)
    try:
        revived = reopened.get(record.job_id)
        assert revived.state == JobState.QUEUED
        assert revived.resumed is True
        assert revived.trace_id == "cd" * 8
        assert revived.trace_link == [4242, 17]
    finally:
        reopened.close()


def test_submit_without_context_leaves_trace_unset(tmp_path):
    from repro.service.store import JobSpec

    store = JobStore(tmp_path)
    try:
        record, _ = store.submit(
            JobSpec.from_dict(SPEC), tenant="t",
            task_deadline_s=60.0, deadline_s=600.0,
        )
        assert record.trace_id is None and record.trace_link is None
    finally:
        store.close()
