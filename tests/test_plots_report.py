"""Tests for ASCII chart rendering and the consolidated cost report."""

import pytest

from repro.baselines import synthesize_simple
from repro.core import synthesize_mrpf
from repro.eval import ascii_bar_chart, figure_chart, run_figure6
from repro.hwcost import CARRY_LOOKAHEAD, RIPPLE_CARRY, compare_costs, cost_report


class TestAsciiBarChart:
    def test_basic_render(self):
        text = ascii_bar_chart(["a", "bb"], [0.5, 1.0], width=10, title="t")
        lines = text.splitlines()
        assert lines[0] == "t"
        assert lines[1].startswith(" a |")
        assert lines[2].count("#") == 10  # full bar for the max

    def test_proportionality(self):
        text = ascii_bar_chart(["x", "y"], [1.0, 0.5], width=20)
        bars = [line.count("#") for line in text.splitlines()]
        assert bars[0] == 2 * bars[1]

    def test_explicit_max(self):
        text = ascii_bar_chart(["x"], [0.5], width=10, max_value=1.0)
        assert text.count("#") == 5

    def test_mismatched_lengths(self):
        with pytest.raises(ValueError):
            ascii_bar_chart(["a"], [1.0, 2.0])

    def test_empty(self):
        assert ascii_bar_chart([], [], title="empty") == "empty"


class TestFigureChart:
    def test_renders_groups_per_wordlength(self):
        result = run_figure6(filter_indices=[0, 1], wordlengths=[8, 12])
        chart = figure_chart(result)
        assert "W = 8" in chart and "W = 12" in chart
        assert "ex01" in chart and "ex02" in chart
        assert result.title in chart

    def test_bars_bounded_by_one(self):
        """Normalized complexity <= 1 (MRPF never loses), so no bar exceeds
        the full width."""
        result = run_figure6(filter_indices=[0], wordlengths=[8])
        chart = figure_chart(result, width=40)
        for line in chart.splitlines():
            assert line.count("#") <= 40


class TestCostReport:
    @pytest.fixture(scope="class")
    def arch(self, paper_coefficients):
        return synthesize_mrpf(paper_coefficients, 7)

    def test_fields_populated(self, arch):
        report = cost_report(arch.netlist, arch.tap_names, input_bits=12)
        data = report.as_dict()
        assert data["adders"] == arch.adder_count
        assert data["area_um2"] > 0
        assert data["critical_path_ns"] > 0
        assert data["energy_pj"] > 0
        assert data["register_bits_tdf"] > 0

    def test_model_changes_costs(self, arch):
        cla = cost_report(arch.netlist, arch.tap_names, 12, CARRY_LOOKAHEAD)
        rca = cost_report(arch.netlist, arch.tap_names, 12, RIPPLE_CARRY)
        assert cla.area_um2 > rca.area_um2          # CLA area premium
        assert cla.critical_path_ns < rca.critical_path_ns  # CLA speed win
        assert cla.adders == rca.adders             # structure unchanged

    def test_compare_costs_labels(self, arch, paper_coefficients):
        simple = synthesize_simple(paper_coefficients)
        reports = compare_costs({
            "mrpf": (arch.netlist, arch.tap_names),
            "simple": (simple.netlist, simple.tap_names),
        }, input_bits=12)
        assert set(reports) == {"mrpf", "simple"}
        assert reports["mrpf"].adders < reports["simple"].adders
        assert reports["mrpf"].area_um2 < reports["simple"].area_um2
