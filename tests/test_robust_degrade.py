"""The degradation cascade: tiers, perturbation retries, quarantine, deadline."""

import time

import pytest

from repro.arch.simulate import verify_against_convolution
from repro.errors import DegradationError, ReproError, SynthesisError
from repro.robust import (
    ChaosHarness,
    RobustConfig,
    SolverBudget,
    synthesize,
)
from repro.robust.degrade import _exact_cover_fn, _perturbations
from repro.core.mrp import MrpOptions
from repro.numrep import Representation

COEFFS = [5, 22, 45, 89, 45, 22, 5]
WORDLENGTH = 7


def assert_released_architecture_correct(result, coefficients):
    """Re-verify the released architecture independently of the cascade."""
    verify_against_convolution(
        result.architecture.netlist,
        result.architecture.tap_names,
        list(coefficients),
        [1, -1, 3, 255, -777, 12345],
    )
    assert tuple(result.architecture.coefficients) == tuple(coefficients)


class TestHappyPath:
    def test_exact_tier_wins_clean(self, paper_coefficients):
        result = synthesize(paper_coefficients, 7)
        assert result.tier == "exact"
        assert result.num_attempts == 1
        assert not result.degraded
        assert result.attempts[0].outcome == "ok"
        assert result.attempts[0].stage == "done"
        assert_released_architecture_correct(result, paper_coefficients)

    def test_large_filter_skips_exact_tier(self):
        coeffs = [3, 11, 23, 45, 77, 89, 101, 115, 13, 57, 119, 121,
                  33, 67, 99, 71, 43, 85, 29, 39, 51]
        result = synthesize(coeffs, 8)
        assert result.tier == "greedy"
        assert any("exact_max_universe" in w for w in result.warnings)
        assert_released_architecture_correct(result, coeffs)

    def test_single_tier_config(self):
        result = synthesize(
            COEFFS, WORDLENGTH, config=RobustConfig(tiers=("trivial",))
        )
        assert result.tier == "trivial"
        assert_released_architecture_correct(result, COEFFS)

    def test_exact_tier_no_worse_than_greedy(self, paper_coefficients):
        exact = synthesize(
            paper_coefficients, 7, config=RobustConfig(tiers=("exact",))
        )
        greedy = synthesize(
            paper_coefficients, 7, config=RobustConfig(tiers=("greedy",))
        )
        assert exact.architecture.plan.cover.total_cost \
            <= greedy.architecture.plan.cover.total_cost


class TestRetryWithPerturbation:
    def test_schedule_starts_with_base_and_varies_knobs(self):
        base = MrpOptions(beta=0.5)
        schedule = list(_perturbations(base, 12, max_retries=4))
        assert schedule[0] == base
        assert len(schedule) == 5
        betas = {opts.beta for opts in schedule}
        assert len(betas) > 1  # beta is actually perturbed
        for opts in schedule:  # every variant is a valid configuration
            MrpOptions(beta=opts.beta, max_shift=opts.max_shift,
                       representation=opts.representation)

    def test_zero_retries(self):
        schedule = list(_perturbations(MrpOptions(), 12, max_retries=0))
        assert len(schedule) == 1

    def test_representation_and_shift_perturbed(self):
        base = MrpOptions(beta=0.5, max_shift=8)
        schedule = list(_perturbations(base, 12, max_retries=6))
        assert any(o.representation == Representation.SM for o in schedule)
        assert any(o.max_shift == 4 for o in schedule)

    def test_failed_attempt_triggers_retry(self):
        chaos = ChaosHarness(
            seed=1, stages=("plan",), faults=("exception",), max_injections=1
        )
        result = synthesize(COEFFS, WORDLENGTH, chaos=chaos)
        assert result.degraded
        assert result.num_attempts == 2
        assert result.attempts[0].outcome == "failed"
        assert result.attempts[1].outcome == "ok"
        # Retry happened inside the same tier, with perturbed options.
        assert result.attempts[0].tier == result.attempts[1].tier
        assert (result.attempts[0].beta, result.attempts[0].representation) \
            != (result.attempts[1].beta, result.attempts[1].representation) or \
            result.attempts[0].max_shift != result.attempts[1].max_shift
        assert_released_architecture_correct(result, COEFFS)


class TestIncumbentReuse:
    def test_exact_cover_fn_reuses_incumbent(self):
        """Satellite: the budget error's partial cover is reused, not wasted."""
        universe = {1, 2, 3, 4, 5, 6}
        sets = {
            "half1": frozenset({1, 2, 3}),
            "half2": frozenset({4, 5, 6}),
            "trap1": frozenset({1, 4}),
            "trap2": frozenset({2, 5}),
            "trap3": frozenset({3, 6}),
        }
        costs = {"half1": 2.0, "half2": 2.0, "trap1": 1.0, "trap2": 1.0,
                 "trap3": 1.0}
        warnings = []
        cover = _exact_cover_fn(
            RobustConfig(), SolverBudget(max_nodes=4), warnings
        )
        solution = cover(universe, sets, costs, MrpOptions())
        covered = set()
        for step in solution.steps:
            covered |= step.newly_covered
        assert covered == universe
        assert any("incumbent" in w for w in warnings)


class TestExhaustion:
    def test_all_tiers_fail_raises_typed_error_with_history(self):
        chaos = ChaosHarness(seed=11, rate=1.0)  # unlimited faults
        with pytest.raises(DegradationError) as info:
            synthesize(COEFFS, WORDLENGTH, chaos=chaos)
        error = info.value
        assert isinstance(error, ReproError)
        assert {a.tier for a in error.attempts} == {"exact", "greedy", "trivial"}
        assert all(a.outcome in ("failed", "quarantined") for a in error.attempts)
        assert all(a.error_type is not None for a in error.attempts)

    def test_config_validation(self):
        with pytest.raises(SynthesisError):
            RobustConfig(tiers=())
        with pytest.raises(SynthesisError):
            RobustConfig(tiers=("exact", "bogus"))
        with pytest.raises(SynthesisError):
            RobustConfig(max_retries=-1)
        with pytest.raises(SynthesisError):
            RobustConfig(deadline_s=-0.5)


class TestDeadline:
    def test_expired_deadline_still_returns_verified_trivial(self):
        result = synthesize(
            COEFFS, WORDLENGTH, config=RobustConfig(deadline_s=0.0)
        )
        assert result.tier == "trivial"
        assert any("skipping tier" in w for w in result.warnings)
        assert_released_architecture_correct(result, COEFFS)

    def test_completes_within_twice_the_budget(self):
        """Acceptance: a deadline-bound run finishes within 2x the budget."""
        import random

        rng = random.Random(42)
        coeffs = [rng.randrange(3, 1 << 14) | 1 for _ in range(40)]
        deadline = 1.0
        started = time.monotonic()
        result = synthesize(
            coeffs, 14, config=RobustConfig(deadline_s=deadline)
        )
        elapsed = time.monotonic() - started
        assert elapsed < 2.0 * deadline
        assert_released_architecture_correct(result, coeffs)
