"""Unit tests for the hardware cost models (adders, power, interconnect)."""

import pytest

from repro.arch import Ref, ShiftAddNetlist
from repro.baselines import synthesize_simple
from repro.core import synthesize_mrpf
from repro.hwcost import (
    ADDER_MODELS,
    CARRY_LOOKAHEAD,
    CARRY_SAVE,
    RIPPLE_CARRY,
    estimate_power,
    fanout_counts,
    interconnect_cost,
    lcg_stream,
    netlist_area,
    netlist_critical_path,
    recommended_beta,
    toggle_activity,
    weighted_adder_cost,
)


class TestAdderModels:
    def test_registry_complete(self):
        assert set(ADDER_MODELS) == {"ripple_carry", "carry_lookahead", "carry_save"}

    def test_ripple_delay_linear(self):
        assert RIPPLE_CARRY.delay(32) == pytest.approx(2 * RIPPLE_CARRY.delay(16))

    def test_cla_delay_logarithmic(self):
        """Doubling width adds one lookahead level, not double delay."""
        d16, d32 = CARRY_LOOKAHEAD.delay(16), CARRY_LOOKAHEAD.delay(32)
        assert d32 > d16
        assert d32 < 1.5 * d16

    def test_cla_faster_than_ripple_at_width(self):
        assert CARRY_LOOKAHEAD.delay(32) < RIPPLE_CARRY.delay(32)

    def test_cla_area_premium(self):
        assert CARRY_LOOKAHEAD.area(16) > RIPPLE_CARRY.area(16)

    def test_carry_save_constant_delay(self):
        assert CARRY_SAVE.delay(8) == CARRY_SAVE.delay(64)

    def test_zero_width_clamped(self):
        assert RIPPLE_CARRY.area(0) == RIPPLE_CARRY.area(1)


class TestNetlistCosts:
    def test_empty_netlist_zero_area(self):
        assert netlist_area(ShiftAddNetlist(), 16) == 0.0

    def test_area_grows_with_adders(self, paper_coefficients):
        simple = synthesize_simple(paper_coefficients)
        mrpf = synthesize_mrpf(paper_coefficients, 7)
        assert netlist_area(mrpf.netlist, 16) < netlist_area(simple.netlist, 16)

    def test_critical_path_positive(self, paper_coefficients):
        arch = synthesize_mrpf(paper_coefficients, 7)
        assert netlist_critical_path(arch.netlist, 16) > 0

    def test_critical_path_monotone_in_depth(self):
        nl = ShiftAddNetlist()
        a = nl.add(Ref(node=0, shift=1), Ref(node=0))
        shallow = netlist_critical_path(nl, 16)
        nl.add(a, Ref(node=0, shift=5))
        assert netlist_critical_path(nl, 16) > shallow

    def test_weighted_cost_normalized(self):
        """One input-width adder weighs ~1."""
        nl = ShiftAddNetlist()
        nl.add(Ref(node=0, shift=1), Ref(node=0))
        cost = weighted_adder_cost(nl, 16)
        assert 0.9 < cost < 1.5


class TestPower:
    def test_lcg_deterministic(self):
        assert lcg_stream(10) == lcg_stream(10)

    def test_lcg_spans_width(self):
        samples = lcg_stream(200, input_bits=8)
        assert all(-128 <= s < 128 for s in samples)
        assert min(samples) < 0 < max(samples)

    def test_toggle_activity_zero_for_constant_input(self):
        nl = ShiftAddNetlist()
        nl.ensure_constant(45)
        toggles = toggle_activity(nl, [7, 7, 7], input_bits=8)
        assert sum(toggles) == 0

    def test_toggle_activity_positive_for_changing_input(self):
        nl = ShiftAddNetlist()
        nl.ensure_constant(45)
        toggles = toggle_activity(nl, [0, -1, 0, -1], input_bits=8)
        assert sum(toggles) > 0

    def test_estimate_power_report(self, paper_coefficients):
        arch = synthesize_mrpf(paper_coefficients, 7)
        report = estimate_power(arch.netlist, input_bits=10, num_samples=64)
        assert report.total_toggles > 0
        assert report.energy_pj > 0
        assert report.toggles_per_sample > 0
        assert len(report.toggles_per_node) == len(arch.netlist)

    def test_fewer_adders_less_power(self, paper_coefficients):
        simple = synthesize_simple(paper_coefficients)
        mrpf = synthesize_mrpf(paper_coefficients, 7)
        p_simple = estimate_power(simple.netlist, 12, 64).total_toggles
        p_mrpf = estimate_power(mrpf.netlist, 12, 64).total_toggles
        assert p_mrpf < p_simple


class TestInterconnect:
    def test_fanout_counts(self):
        nl = ShiftAddNetlist()
        nl.add(Ref(node=0, shift=1), Ref(node=0))  # input used twice
        report = fanout_counts(nl)
        assert report.fanout[0] == 2
        assert report.max_fanout == 2

    def test_outputs_count_as_fanout(self):
        nl = ShiftAddNetlist()
        ref = nl.add(Ref(node=0, shift=1), Ref(node=0))
        nl.mark_output("y", ref)
        report = fanout_counts(nl)
        assert report.fanout[ref.node] == 1

    def test_interconnect_cost_matches_fanout_formula(self):
        nl = ShiftAddNetlist()
        hub = nl.add(Ref(node=0, shift=1), Ref(node=0))
        nl.add(hub, Ref(node=0, shift=6))
        report = fanout_counts(nl)
        expected = sum(f**1.5 for f in report.fanout if f > 0)
        assert interconnect_cost(nl) == pytest.approx(expected)

    def test_interconnect_cost_convex_in_fanout(self):
        """Each extra consumer of the same hub costs more than the last."""
        increments = []
        nl = ShiftAddNetlist()
        hub = nl.add(Ref(node=0, shift=1), Ref(node=0))
        previous = interconnect_cost(nl)
        for k in range(3):
            nl.add(hub, Ref(node=0, shift=6 + k))
            now = interconnect_cost(nl)
            increments.append(now - previous)
            previous = now
        assert increments[0] < increments[1] < increments[2]

    def test_recommended_beta_range(self):
        assert recommended_beta(0.0) == 0.5
        assert recommended_beta(1.0) == 0.25
        assert recommended_beta(10.0) == 0.25
        assert 0.25 <= recommended_beta(0.5) <= 0.5

    def test_recommended_beta_rejects_negative(self):
        with pytest.raises(ValueError):
            recommended_beta(-0.1)
