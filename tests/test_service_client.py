"""Unit tests for the resilient service client (scripted stub servers).

Every test drives the real :class:`repro.service.client.ServiceClient`
against a one-shot stub server whose behavior per connection is scripted
exactly — a canned 503 with Retry-After, a truncated body, garbage bytes,
a refused port — so each retry-discipline rule is pinned in isolation,
without a live synthesis service or timing luck.  The live-wire story
(real server, real faults) lives in ``test_service_netchaos.py``.
"""

from __future__ import annotations

import json
import socket
import threading
import time

import pytest

from repro.errors import (
    ClientCircuitOpen,
    ClientDeadlineError,
    ClientError,
    ReproError,
    ServerRejected,
)
from repro.robust.netchaos import _recv_http_message
from repro.service.client import (
    ClientConfig,
    ServiceClient,
    TERMINAL_STATES,
    _ClientBreaker,
)


# -- scripted stub server -----------------------------------------------------


def _http(status, body, headers=()):
    """Encode one canned HTTP response (json body unless bytes given)."""
    if isinstance(body, bytes):
        payload = body
        content_type = "application/octet-stream"
    else:
        payload = json.dumps(body).encode("utf-8")
        content_type = "application/json"
    reason = {200: "OK", 201: "Created", 400: "Bad Request",
              404: "Not Found", 429: "Too Many", 503: "Unavailable"}
    lines = [f"HTTP/1.1 {status} {reason.get(status, 'X')}"]
    lines.append(f"Content-Type: {content_type}")
    lines.append(f"Content-Length: {len(payload)}")
    for name, value in headers:
        lines.append(f"{name}: {value}")
    lines.append("Connection: close")
    head = ("\r\n".join(lines) + "\r\n\r\n").encode("ascii")
    return head + payload


def respond(status, body, headers=()):
    """Script step: read the request, send a canned response."""
    encoded = _http(status, body, headers)

    def step(conn, request):
        conn.sendall(encoded)

    return step


def respond_raw(data):
    """Script step: read the request, send raw bytes (maybe not HTTP)."""

    def step(conn, request):
        conn.sendall(data)

    return step


class StubServer:
    """Serves one scripted step per connection, records each request."""

    def __init__(self, script):
        self.script = list(script)
        self.requests = []
        self._listener = socket.create_server(("127.0.0.1", 0))
        self._listener.settimeout(0.1)
        self.port = self._listener.getsockname()[1]
        self._closing = threading.Event()
        self._thread = threading.Thread(target=self._loop, daemon=True)
        self._thread.start()

    @property
    def base_url(self):
        return f"http://127.0.0.1:{self.port}"

    def _loop(self):
        while not self._closing.is_set():
            try:
                conn, _ = self._listener.accept()
            except socket.timeout:
                continue
            except OSError:
                return
            try:
                conn.settimeout(5.0)
                request = _recv_http_message(conn)
                self.requests.append(request.decode("latin-1"))
                if self.script:
                    self.script.pop(0)(conn, request)
                else:
                    conn.sendall(_http(404, {"error": "ScriptExhausted",
                                             "message": "no step left"}))
            except OSError:
                pass
            finally:
                try:
                    conn.close()
                except OSError:
                    pass

    def close(self):
        self._closing.set()
        try:
            self._listener.close()
        except OSError:
            pass
        self._thread.join(timeout=5.0)


@pytest.fixture
def stub():
    servers = []

    def make(script):
        server = StubServer(script)
        servers.append(server)
        return server

    yield make
    for server in servers:
        server.close()


def _client(server, **overrides):
    options = dict(
        request_timeout_s=2.0,
        deadline_s=30.0,
        max_attempts=6,
        backoff_base_s=0.01,
        backoff_cap_s=0.05,
        breaker_threshold=3,
        breaker_cooldown_s=0.1,
        seed=7,
    )
    options.update(overrides)
    return ServiceClient(server.base_url, **options)


_VIEW = {"job_id": "job-x", "state": "queued", "revision": 1,
         "attempts": 0, "error": None}


# -- config validation --------------------------------------------------------


class TestClientConfig:
    def test_rejects_non_http_url(self):
        with pytest.raises(ReproError):
            ClientConfig(base_url="ftp://host:1")

    def test_rejects_nonpositive_attempts(self):
        with pytest.raises(ReproError):
            ClientConfig(base_url="http://h:1", max_attempts=0)

    def test_rejects_negative_deadline(self):
        with pytest.raises(ReproError):
            ClientConfig(base_url="http://h:1", deadline_s=-1.0)

    def test_host_port_parsed(self):
        config = ClientConfig(base_url="http://127.0.0.1:8177")
        assert (config.host, config.port) == ("127.0.0.1", 8177)


# -- retry discipline ---------------------------------------------------------


class TestRetries:
    def test_retry_after_is_honored(self, stub):
        server = stub([
            respond(503, {"error": "Busy", "message": "later"},
                    headers=[("Retry-After", "0.3")]),
            respond(200, _VIEW),
        ])
        client = _client(server)
        started = time.monotonic()
        view = client.status("job-x")
        elapsed = time.monotonic() - started
        assert view["job_id"] == "job-x"
        assert len(server.requests) == 2
        # The backoff floor is the server's Retry-After, not the (tiny)
        # jittered exponential schedule.
        assert elapsed >= 0.29

    def test_retry_after_beyond_budget_fails_fast(self, stub):
        server = stub([
            respond(503, {"error": "Busy", "message": "later"},
                    headers=[("Retry-After", "60")]),
        ])
        client = _client(server, deadline_s=1.0)
        started = time.monotonic()
        with pytest.raises(ClientDeadlineError):
            client.status("job-x")
        # Failed fast: nowhere near the 60s the server asked for, and no
        # second request was ever attempted.
        assert time.monotonic() - started < 5.0
        assert len(server.requests) == 1

    def test_deadline_error_carries_last_server_state(self, stub):
        # A stub answers polls instantly (no server-side hold), so the
        # wait loop spins; script enough identical steps to outlast the
        # budget no matter how fast the loop runs.
        stuck = dict(_VIEW, state="running", revision=4)
        server = stub([respond(200, stuck)] * 5000)
        client = _client(server, deadline_s=0.6)
        with pytest.raises(ClientDeadlineError) as excinfo:
            client.wait_for("job-x", poll_wait_s=0.05)
        assert excinfo.value.last_state is not None
        assert excinfo.value.last_state["state"] == "running"
        assert excinfo.value.elapsed_s > 0.0

    def test_truncated_body_is_retried(self, stub):
        good = _http(200, _VIEW)
        server = stub([respond_raw(good[:-10]), respond_raw(good)])
        client = _client(server)
        assert client.status("job-x")["job_id"] == "job-x"
        assert len(server.requests) == 2

    def test_garbage_response_is_retried(self, stub):
        server = stub([
            respond_raw(b"\x00\xffnot http at all\r\n\r\n"),
            respond(200, _VIEW),
        ])
        client = _client(server)
        assert client.status("job-x")["state"] == "queued"
        assert len(server.requests) == 2

    def test_json_mislabeled_as_html_is_retried(self, stub):
        bad = (
            b"HTTP/1.1 200 OK\r\nContent-Type: text/html\r\n"
            b"Content-Length: 6\r\nConnection: close\r\n\r\n<html>"
        )
        server = stub([respond_raw(bad), respond(200, _VIEW)])
        client = _client(server)
        assert client.status("job-x")["job_id"] == "job-x"
        assert len(server.requests) == 2

    def test_rejection_is_not_retried(self, stub):
        server = stub([
            respond(400, {"error": "SpecError", "message": "bad spec"}),
        ])
        client = _client(server)
        with pytest.raises(ServerRejected) as excinfo:
            client.submit({"experiments": ["nope"]})
        assert excinfo.value.status == 400
        assert excinfo.value.error_type == "SpecError"
        assert len(server.requests) == 1

    def test_attempts_exhausted_raises_client_error(self, stub):
        server = stub([
            respond(503, {"error": "Busy", "message": "later"}),
        ] * 10)
        client = _client(server, max_attempts=3, deadline_s=None)
        with pytest.raises(ClientError):
            client.status("job-x")
        assert len(server.requests) == 3


# -- circuit breaker ----------------------------------------------------------


class TestClientBreaker:
    def test_opens_after_threshold_and_reprobes(self):
        clock = [0.0]
        breaker = _ClientBreaker(3, 10.0, clock=lambda: clock[0])
        for _ in range(3):
            breaker.allow()
            breaker.record_failure()
        with pytest.raises(ClientCircuitOpen) as excinfo:
            breaker.allow()
        assert excinfo.value.retry_after_s <= 10.0
        clock[0] = 10.5  # cooldown over: exactly one probe goes through
        breaker.allow()
        assert breaker.state == "half-open"
        breaker.record_failure()  # failed probe re-opens immediately
        with pytest.raises(ClientCircuitOpen):
            breaker.allow()
        clock[0] = 21.0
        breaker.allow()
        breaker.record_success()
        assert breaker.state == "closed"

    def test_success_resets_failure_streak(self):
        breaker = _ClientBreaker(3, 10.0)
        breaker.record_failure()
        breaker.record_failure()
        breaker.record_success()
        breaker.record_failure()
        breaker.record_failure()
        breaker.allow()  # still closed: the streak never hit 3

    def test_breaker_opens_against_dead_port(self, stub):
        # Allocate-and-release a port so connects are refused.
        probe = socket.create_server(("127.0.0.1", 0))
        port = probe.getsockname()[1]
        probe.close()
        client = ServiceClient(
            f"http://127.0.0.1:{port}",
            request_timeout_s=0.2, deadline_s=1.0, max_attempts=10,
            backoff_base_s=0.01, backoff_cap_s=0.02,
            breaker_threshold=2, breaker_cooldown_s=5.0, seed=1,
        )
        with pytest.raises((ClientDeadlineError, ClientError)):
            client.status("job-x")
        assert client.breaker.state in ("open", "half-open")


# -- long-poll and pagination plumbing ---------------------------------------


class TestWaitFor:
    def test_passes_etag_from_previous_view(self, stub):
        running = dict(_VIEW, state="running", revision=7)
        done = dict(_VIEW, state="completed", revision=9)
        server = stub([respond(200, running), respond(200, done)])
        client = _client(server)
        view = client.wait_for("job-x", poll_wait_s=0.05)
        assert view["state"] == "completed"
        first, second = server.requests
        assert "etag" not in first
        assert "etag=7" in second

    def test_custom_target_states(self, stub):
        running = dict(_VIEW, state="running", revision=2)
        server = stub([respond(200, running)])
        client = _client(server)
        view = client.wait_for(
            "job-x", target_states=frozenset({"running"}),
        )
        assert view["state"] == "running"
        assert len(server.requests) == 1

    def test_terminal_states_cover_the_store_vocabulary(self):
        assert {"completed", "failed", "cancelled", "expired"} == set(
            TERMINAL_STATES
        )


class TestPagination:
    def test_iter_jobs_walks_every_page(self, stub):
        page1 = {"jobs": [{"job_id": "job-a"}, {"job_id": "job-b"}],
                 "next_cursor": "job-b"}
        page2 = {"jobs": [{"job_id": "job-c"}], "next_cursor": None}
        server = stub([respond(200, page1), respond(200, page2)])
        client = _client(server)
        ids = [v["job_id"] for v in client.iter_jobs(page_size=2)]
        assert ids == ["job-a", "job-b", "job-c"]
        assert "limit=2" in server.requests[0]
        assert "cursor=job-b" in server.requests[1]
