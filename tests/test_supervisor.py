"""Supervised sweep layer: journaling, worker-loss recovery, resume.

The headline guarantees under test:

* a sweep interrupted by SIGKILL — of a worker (chaos-injected, a real
  ``BrokenProcessPool``) or of the parent (a driver subprocess killed
  mid-sweep) — resumes via the journal and exports **byte-identical**
  results to an uninterrupted serial run;
* a poison task that repeatedly kills workers is quarantined after a
  bounded number of retries instead of aborting the sweep or retrying
  forever, and is attributed precisely (innocent pool-mates survive);
* the write-ahead log is crash-safe: checksummed lines, torn tails
  truncated on resume, cross-version/cross-sweep journals rejected.
"""

from __future__ import annotations

import os
import signal
import subprocess
import sys
import time
from pathlib import Path

import pytest

from repro.errors import JournalError, SupervisorError, SweepAborted
from repro.eval import cache as disk_cache
from repro.eval.experiments import clear_cache
from repro.eval.export import sweep_to_json
from repro.eval.harness import run_sweep
from repro.eval.parallel import SweepTask, TaskOutcome, plan_tasks
from repro.eval.supervisor import (
    SweepJournal,
    run_sweep_supervised,
    sweep_signature,
    task_key,
)
from repro.robust import ProcessFaultPlan

IDS = ["fig6"]
RESTRICT = dict(filter_indices=[0, 1], wordlengths=[8])


@pytest.fixture(autouse=True)
def _pristine_caches():
    clear_cache()
    disk_cache.configure(None)
    disk_cache.install_fault_injector(None)
    yield
    clear_cache()
    disk_cache.configure(None)
    disk_cache.install_fault_injector(None)


def _serial_json():
    clear_cache()
    disk_cache.configure(None)
    outcomes = run_sweep(IDS, **RESTRICT)
    text = sweep_to_json(outcomes)
    clear_cache()
    return text


def _outcome(task: SweepTask, **kw) -> TaskOutcome:
    defaults = dict(
        payload={"method": task.method, "adders": 1, "depth": 1,
                 "cla_weighted": 1.0, "seed_size": None},
        error_type=None, error=None, elapsed_s=0.25,
    )
    defaults.update(kw)
    return TaskOutcome(task=task, **defaults)


class TestJournal:
    SIG = "ab" * 32

    def test_create_append_resume_roundtrip(self, tmp_path):
        task = SweepTask(0, 8, "uniform", "csd", "mrpf")
        journal = SweepJournal.create(tmp_path, self.SIG)
        journal.append(_outcome(task))
        journal.append(_outcome(task, payload=None, error_type="ValueError",
                                error="boom", traceback="Traceback ..."))
        journal.close()
        reopened, outcomes = SweepJournal.resume(tmp_path, self.SIG)
        reopened.close()
        assert len(outcomes) == 2
        assert outcomes[0].task == task and outcomes[0].ok
        assert not outcomes[1].ok
        assert outcomes[1].traceback == "Traceback ..."

    def test_append_after_close_raises(self, tmp_path):
        journal = SweepJournal.create(tmp_path, self.SIG)
        journal.close()
        with pytest.raises(JournalError):
            journal.append(_outcome(SweepTask(0, 8, "uniform", "csd", "mrpf")))

    def test_missing_journal_resumes_fresh(self, tmp_path):
        journal, outcomes = SweepJournal.resume(tmp_path, self.SIG)
        journal.close()
        assert outcomes == []
        assert SweepJournal.path_for(tmp_path, self.SIG).exists()

    def test_torn_tail_is_discarded_and_truncated(self, tmp_path):
        task = SweepTask(0, 8, "uniform", "csd", "mrpf")
        journal = SweepJournal.create(tmp_path, self.SIG)
        journal.append(_outcome(task))
        journal.close()
        path = SweepJournal.path_for(tmp_path, self.SIG)
        intact = path.stat().st_size
        with open(path, "a", encoding="utf-8") as fh:
            fh.write('deadbeef {"kind":"outcome","tr')  # torn mid-write
        reopened, outcomes = SweepJournal.resume(tmp_path, self.SIG)
        reopened.close()
        assert len(outcomes) == 1
        assert path.stat().st_size == intact

    def test_corrupted_middle_line_stops_replay(self, tmp_path):
        task = SweepTask(0, 8, "uniform", "csd", "mrpf")
        journal = SweepJournal.create(tmp_path, self.SIG)
        journal.append(_outcome(task))
        journal.append(_outcome(task, elapsed_s=9.0))
        journal.close()
        path = SweepJournal.path_for(tmp_path, self.SIG)
        lines = path.read_bytes().splitlines(keepends=True)
        lines[1] = b"0" * 8 + lines[1][8:]  # break the checksum
        path.write_bytes(b"".join(lines))
        reopened, outcomes = SweepJournal.resume(tmp_path, self.SIG)
        reopened.close()
        assert outcomes == []  # everything after the bad line is suspect

    def test_wrong_signature_rejected(self, tmp_path):
        journal = SweepJournal.create(tmp_path, self.SIG)
        journal.close()
        other = "cd" * 32
        # Force the same path for a different signature to hit the check.
        path = SweepJournal.path_for(tmp_path, self.SIG)
        path.rename(SweepJournal.path_for(tmp_path, other))
        with pytest.raises(JournalError):
            SweepJournal.resume(tmp_path, other)

    def test_headerless_journal_rejected(self, tmp_path):
        path = SweepJournal.path_for(tmp_path, self.SIG)
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text("not a journal\n", encoding="utf-8")
        with pytest.raises(JournalError):
            SweepJournal.resume(tmp_path, self.SIG)

    def test_signature_depends_on_shape_and_version(self, monkeypatch):
        a = sweep_signature(["fig6"], [0, 1], [8])
        assert a == sweep_signature(["fig6"], [0, 1], [8])
        assert a != sweep_signature(["fig7"], [0, 1], [8])
        assert a != sweep_signature(["fig6"], [0], [8])
        monkeypatch.setattr(disk_cache, "CACHE_SCHEMA_VERSION", 999)
        assert a != sweep_signature(["fig6"], [0, 1], [8])

    def test_task_key_is_stable_and_distinct(self):
        tasks = plan_tasks(["fig6", "table1"], [0, 1], [8])
        keys = [task_key(t) for t in tasks]
        assert len(set(keys)) == len(tasks)


class TestSupervisedEquivalence:
    def test_supervised_matches_serial(self, tmp_path):
        want = _serial_json()
        report = run_sweep_supervised(
            IDS, jobs=2, cache_dir=tmp_path / "cache",
            journal_dir=tmp_path / "journal", **RESTRICT
        )
        assert sweep_to_json(report.outcomes) == want
        assert report.journal_path is not None
        assert not report.failed_tasks and not report.quarantined_tasks

    def test_journal_resume_without_disk_cache(self, tmp_path):
        # The journal alone (no disk cache) must be able to warm a resume.
        want = _serial_json()
        run_sweep_supervised(
            IDS, jobs=1, journal_dir=tmp_path, replay=False, **RESTRICT
        )
        clear_cache()
        report = run_sweep_supervised(
            IDS, jobs=1, journal_dir=tmp_path, resume=True, **RESTRICT
        )
        assert report.tasks_resumed == report.tasks_planned
        assert len(report.tasks) == 0
        assert sweep_to_json(report.outcomes) == want

    def test_resume_requires_journal_dir(self):
        with pytest.raises(SupervisorError):
            run_sweep_supervised(IDS, jobs=1, resume=True, **RESTRICT)

    def test_negative_max_retries_rejected(self):
        with pytest.raises(SupervisorError):
            run_sweep_supervised(IDS, jobs=1, max_retries=-1, **RESTRICT)


class TestWorkerLossRecovery:
    def test_worker_sigkill_recovers_byte_identical(self, tmp_path):
        # Every task's first attempt SIGKILLs its worker — a real
        # BrokenProcessPool — and the supervisor must recover them all.
        want = _serial_json()
        chaos = ProcessFaultPlan(seed=7, kill_rate=1.0, kills_per_task=1)
        report = run_sweep_supervised(
            IDS, jobs=2, journal_dir=tmp_path, chaos=chaos,
            max_retries=2, **RESTRICT
        )
        assert report.pool_rebuilds >= 1
        assert report.retries >= 1
        assert not report.quarantined_tasks
        assert sweep_to_json(report.outcomes) == want

    def test_fault_sequence_is_deterministic(self, tmp_path):
        chaos = ProcessFaultPlan(seed=7, kill_rate=1.0, kills_per_task=1)

        def run(sub):
            clear_cache()
            disk_cache.configure(None)
            report = run_sweep_supervised(
                IDS, jobs=2, journal_dir=tmp_path / sub, chaos=chaos,
                max_retries=2, replay=False, **RESTRICT
            )
            return (
                report.pool_rebuilds, report.retries,
                tuple(sorted(
                    (task_key(t.task), t.attempts) for t in report.tasks
                )),
            )

        assert run("a") == run("b")

    def test_poison_task_quarantined_innocents_survive(self, tmp_path):
        want = _serial_json()
        tasks = sorted(plan_tasks(IDS, **RESTRICT))
        poison = task_key(tasks[-1])
        chaos = ProcessFaultPlan(seed=1, poison_tasks=(poison,))
        report = run_sweep_supervised(
            IDS, jobs=2, journal_dir=tmp_path, chaos=chaos,
            max_retries=2, **RESTRICT
        )
        quarantined = report.quarantined_tasks
        assert [task_key(t.task) for t in quarantined] == [poison]
        assert quarantined[0].attempts == 3  # max_retries + 1 strikes
        assert quarantined[0].error_type == "WorkerLost"
        # Every innocent design point completed despite sharing pools.
        completed = {task_key(t.task) for t in report.tasks if t.ok}
        assert completed == {task_key(t) for t in tasks} - {poison}
        # The replay recomputes the quarantined point inline: full results.
        assert sweep_to_json(report.outcomes) == want

    def test_slow_task_injection_still_identical(self, tmp_path):
        want = _serial_json()
        chaos = ProcessFaultPlan(seed=5, slow_rate=1.0, slow_s=0.05)
        report = run_sweep_supervised(
            IDS, jobs=2, journal_dir=tmp_path, chaos=chaos, **RESTRICT
        )
        assert not report.failed_tasks
        assert sweep_to_json(report.outcomes) == want


class TestCacheChaos:
    def test_truncated_cache_writes_quarantined_on_read(self, tmp_path):
        want = _serial_json()
        cache_dir = tmp_path / "cache"
        chaos = ProcessFaultPlan(seed=3, cache_truncate_rate=1.0)
        first = run_sweep_supervised(
            IDS, jobs=1, cache_dir=cache_dir, chaos=chaos, **RESTRICT
        )
        assert sweep_to_json(first.outcomes) == want
        clear_cache()
        # Second run hits only corrupt entries: each is quarantined (not
        # unlinked), recomputed, and the sweep still matches serial bytes.
        second = run_sweep_supervised(
            IDS, jobs=1, cache_dir=cache_dir, **RESTRICT
        )
        active = disk_cache.active_cache()
        assert active.stats.quarantined > 0
        assert active.quarantined_entries() == active.stats.quarantined
        assert sweep_to_json(second.outcomes) == want

    def test_enospc_faults_do_not_fail_the_sweep(self, tmp_path):
        want = _serial_json()
        chaos = ProcessFaultPlan(seed=3, cache_enospc_rate=1.0)
        report = run_sweep_supervised(
            IDS, jobs=1, cache_dir=tmp_path / "cache", chaos=chaos, **RESTRICT
        )
        assert not report.failed_tasks
        assert disk_cache.active_cache().stats.put_errors > 0
        assert sweep_to_json(report.outcomes) == want


_PARENT_DRIVER = """
import sys
from repro.eval.supervisor import run_sweep_supervised
from repro.robust import ProcessFaultPlan

# Slow every task so the parent is reliably mid-sweep when killed.
chaos = ProcessFaultPlan(seed=0, slow_rate=1.0, slow_s=0.5)
run_sweep_supervised(
    ["fig6"], jobs=1, journal_dir=sys.argv[1], chaos=chaos, replay=False,
    filter_indices=[0, 1], wordlengths=[8],
)
print("DRIVER-COMPLETED")
"""


class TestParentKillResume:
    def test_parent_sigkill_then_resume_byte_identical(self, tmp_path):
        want = _serial_json()
        signature = sweep_signature(sorted(IDS), [0, 1], [8])
        journal_path = SweepJournal.path_for(tmp_path, signature)

        env = dict(os.environ)
        src = str(Path(__file__).resolve().parents[1] / "src")
        env["PYTHONPATH"] = src + os.pathsep + env.get("PYTHONPATH", "")
        proc = subprocess.Popen(
            [sys.executable, "-c", _PARENT_DRIVER, str(tmp_path)],
            env=env, stdout=subprocess.PIPE, stderr=subprocess.PIPE,
        )
        try:
            # Wait until at least one outcome is durably journaled, then
            # SIGKILL the parent mid-sweep.
            deadline = time.monotonic() + 120.0
            while time.monotonic() < deadline:
                if proc.poll() is not None:
                    break  # finished before we could kill it — still valid
                if journal_path.exists():
                    lines = journal_path.read_bytes().count(b"\n")
                    if lines >= 2:  # header + >= 1 outcome
                        break
                time.sleep(0.01)
            else:
                pytest.fail("driver never journaled an outcome")
        finally:
            if proc.poll() is None:
                proc.send_signal(signal.SIGKILL)
            proc.wait(timeout=30)
            proc.stdout.close()
            proc.stderr.close()

        clear_cache()
        disk_cache.configure(None)
        report = run_sweep_supervised(
            IDS, jobs=1, journal_dir=tmp_path, resume=True, **RESTRICT
        )
        assert report.tasks_resumed >= 1
        assert report.tasks_resumed + len(report.tasks) == report.tasks_planned
        assert sweep_to_json(report.outcomes) == want


class TestSweepAbort:
    def test_past_deadline_aborts_before_any_task(self, tmp_path):
        with pytest.raises(SweepAborted, match="deadline"):
            run_sweep_supervised(
                IDS, jobs=1, journal_dir=tmp_path, replay=False,
                deadline_at=time.time() - 1.0, **RESTRICT
            )

    def test_should_stop_aborts_between_tasks_and_keeps_journal(
        self, tmp_path
    ):
        polls = []

        def should_stop():
            polls.append(1)
            return "caller asked to stop" if len(polls) > 1 else None

        with pytest.raises(SweepAborted, match="caller asked"):
            run_sweep_supervised(
                IDS, jobs=1, journal_dir=tmp_path, replay=False,
                should_stop=should_stop, **RESTRICT
            )
        # The task completed before the abort is durably journaled: a
        # resumed run skips it — aborting loses time, never results.
        clear_cache()
        report = run_sweep_supervised(
            IDS, jobs=1, journal_dir=tmp_path, resume=True, replay=False,
            **RESTRICT
        )
        assert report.tasks_resumed >= 1
        assert report.tasks_resumed + len(report.tasks) == (
            report.tasks_planned
        )

    def test_abort_interrupts_a_running_pool_wave(self, tmp_path):
        # Tasks are slowed so the wave is reliably in flight when the
        # stop signal lands; the supervisor must notice between
        # completion polls instead of draining the whole batch.
        chaos = ProcessFaultPlan(seed=0, slow_rate=1.0, slow_s=0.5)
        polls = []

        def should_stop():
            polls.append(1)
            return "stop now" if len(polls) >= 2 else None

        with pytest.raises(SweepAborted, match="stop now"):
            run_sweep_supervised(
                IDS, jobs=2, journal_dir=tmp_path, chaos=chaos,
                should_stop=should_stop, replay=False, **RESTRICT
            )


class TestDecorrelatedBackoff:
    def test_draws_stay_inside_the_window(self):
        import random

        from repro.eval.supervisor import decorrelated_backoff

        rng = random.Random(0)
        previous = 0.5
        for _ in range(200):
            delay = decorrelated_backoff(
                previous, base_s=0.5, factor=3.0, cap_s=30.0, rng=rng
            )
            assert 0.5 <= delay <= min(30.0, max(0.5, previous * 3.0))
            previous = delay

    def test_cap_bounds_the_envelope(self):
        import random

        from repro.eval.supervisor import decorrelated_backoff

        rng = random.Random(1)
        delay = decorrelated_backoff(
            previous_s=1000.0, base_s=0.5, factor=3.0, cap_s=30.0, rng=rng
        )
        assert delay <= 30.0

    def test_zero_base_disables_backoff(self):
        import random

        from repro.eval.supervisor import decorrelated_backoff

        assert decorrelated_backoff(
            5.0, base_s=0.0, factor=3.0, cap_s=30.0, rng=random.Random(2)
        ) == 0.0

    def test_identical_histories_diverge(self):
        # The whole point of the jitter: two supervisors with the same
        # rebuild history must not restart their pools in lockstep.
        import random

        from repro.eval.supervisor import decorrelated_backoff

        a = [
            decorrelated_backoff(0.5, 0.5, 3.0, 30.0, random.Random(10))
        ]
        b = [
            decorrelated_backoff(0.5, 0.5, 3.0, 30.0, random.Random(11))
        ]
        assert a != b

    def test_degenerate_window_returns_lower_bound(self):
        import random

        from repro.eval.supervisor import decorrelated_backoff

        # previous * factor below base: the window collapses to base_s.
        assert decorrelated_backoff(
            0.01, base_s=0.5, factor=3.0, cap_s=30.0, rng=random.Random(3)
        ) == 0.5
