"""Unit + property tests for the depth-bounded spanning forest."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import GraphError
from repro.graph import (
    SpanningForest,
    TreeAssignment,
    build_colored_graph,
    build_spanning_forest,
    greedy_weighted_set_cover,
)

ODD_VERTEX = st.integers(min_value=1, max_value=511).map(lambda n: 2 * n + 1)
VERTEX_SETS = st.sets(ODD_VERTEX, min_size=2, max_size=7)


def cover_and_forest(vertices, max_shift, depth_limit=None, beta=0.5):
    graph = build_colored_graph(sorted(vertices), max_shift)
    sets = {c: graph.color_set(c) for c in graph.colors}
    costs = {c: float(graph.color_cost(c)) for c in graph.colors}
    cover = greedy_weighted_set_cover(set(vertices), sets, costs, beta=beta)
    forest = build_spanning_forest(graph, cover.colors, depth_limit)
    return graph, cover, forest


class TestTreeAssignment:
    def test_child_needs_parent(self):
        with pytest.raises(GraphError):
            TreeAssignment(vertex=5, kind="child", depth=1)

    def test_root_depth_must_be_zero(self):
        with pytest.raises(GraphError):
            TreeAssignment(vertex=5, kind="root", depth=1)

    def test_unknown_kind(self):
        with pytest.raises(GraphError):
            TreeAssignment(vertex=5, kind="branch", depth=0)


class TestForestValidation:
    def test_duplicate_vertex_rejected(self):
        a = TreeAssignment(vertex=5, kind="root", depth=0)
        with pytest.raises(GraphError):
            SpanningForest(assignments=(a, a))

    def test_unknown_parent_rejected(self):
        graph, cover, forest = cover_and_forest({3, 5, 11}, 3)
        child = next(a for a in forest.assignments if a.kind == "child")
        bogus = TreeAssignment(
            vertex=child.vertex, kind="child", depth=1,
            parent=999, edge=child.edge,
        )
        others = tuple(a for a in forest.assignments if a.vertex != child.vertex)
        with pytest.raises(GraphError):
            SpanningForest(assignments=others + (bogus,))


class TestForestConstruction:
    def test_depth_limit_validated(self):
        graph, cover, _ = cover_and_forest({3, 5, 11}, 3)
        with pytest.raises(GraphError):
            build_spanning_forest(graph, cover.colors, depth_limit=0)

    def test_all_vertices_assigned(self):
        graph, cover, forest = cover_and_forest({3, 5, 11, 23, 45}, 4)
        assigned = {a.vertex for a in forest.assignments}
        assert assigned == set(graph.vertices)

    def test_at_least_one_root_or_alias(self):
        graph, cover, forest = cover_and_forest({3, 5, 11}, 3)
        assert forest.roots or forest.aliases

    def test_alias_when_vertex_equals_color(self):
        """Paper step 6: a vertex equal to a solution color needs no parent."""
        graph, cover, forest = cover_and_forest({3, 5, 11, 13}, 4)
        for alias in forest.aliases:
            assert alias in cover.colors

    def test_children_use_solution_colors_only(self):
        graph, cover, forest = cover_and_forest({3, 5, 11, 23}, 4)
        solution = set(cover.colors)
        for child in forest.children:
            assert child.edge.color in solution

    def test_depth_limit_respected(self):
        graph, cover, forest = cover_and_forest({3, 5, 11, 23, 45, 91}, 4,
                                                depth_limit=1)
        assert forest.max_depth <= 1

    def test_tighter_depth_never_fewer_total_vertices(self):
        vertices = {3, 5, 11, 23, 45, 91, 179}
        _, _, loose = cover_and_forest(vertices, 4, depth_limit=None)
        _, _, tight = cover_and_forest(vertices, 4, depth_limit=1)
        assert len(tight.assignments) == len(loose.assignments)
        assert len(tight.roots) >= len(loose.roots)

    def test_topological_order_parents_first(self):
        graph, cover, forest = cover_and_forest({3, 5, 11, 23, 45}, 4)
        seen = set()
        for assignment in forest.topological_order():
            if assignment.kind == "child":
                assert assignment.parent in seen
            seen.add(assignment.vertex)

    def test_overhead_adders_counts_children(self):
        graph, cover, forest = cover_and_forest({3, 5, 11, 23}, 4)
        assert forest.overhead_adders == len(forest.children)

    def test_assignment_lookup(self):
        graph, cover, forest = cover_and_forest({3, 5, 11}, 3)
        a = forest.assignment(5)
        assert a.vertex == 5
        with pytest.raises(KeyError):
            forest.assignment(9999)


class TestForestProperties:
    @given(VERTEX_SETS, st.integers(min_value=1, max_value=5),
           st.sampled_from([None, 1, 2, 3]))
    @settings(max_examples=40, deadline=None)
    def test_forest_invariants(self, vertices, max_shift, depth_limit):
        graph, cover, forest = cover_and_forest(vertices, max_shift, depth_limit)
        assigned = {a.vertex for a in forest.assignments}
        assert assigned == set(vertices)
        if depth_limit is not None:
            assert forest.max_depth <= depth_limit
        # Reconstruction identity holds for every child (via ColorEdge).
        for child in forest.children:
            e = child.edge
            assert (
                e.src_sign * (e.src << e.shift)
                + e.color_sign * (e.color << e.color_shift)
                == child.vertex
            )

    @given(VERTEX_SETS)
    @settings(max_examples=25, deadline=None)
    def test_roots_aliases_children_partition(self, vertices):
        _, _, forest = cover_and_forest(vertices, 3)
        roots = set(forest.roots)
        aliases = set(forest.aliases)
        children = {c.vertex for c in forest.children}
        assert roots | aliases | children == set(vertices)
        assert not roots & aliases
        assert not roots & children
        assert not aliases & children
