"""Unit tests for filter specifications and design backends."""

import numpy as np
import pytest

from repro.errors import FilterDesignError
from repro.filters import (
    BandType,
    DesignMethod,
    FilterSpec,
    design_fir,
    firls_bands,
    measure_response,
    meets_spec,
    remez_bands,
)


def lp_spec(**overrides):
    base = dict(
        name="lp",
        band=BandType.LOWPASS,
        method=DesignMethod.PARKS_MCCLELLAN,
        numtaps=25,
        passband=(0.0, 0.2),
        stopband=(0.3, 1.0),
        ripple_db=0.5,
        atten_db=40.0,
    )
    base.update(overrides)
    return FilterSpec(**base)


class TestSpecValidation:
    def test_valid_lowpass(self):
        spec = lp_spec()
        assert spec.order == 24

    def test_even_numtaps_rejected(self):
        with pytest.raises(FilterDesignError):
            lp_spec(numtaps=24)

    def test_tiny_numtaps_rejected(self):
        with pytest.raises(FilterDesignError):
            lp_spec(numtaps=1)

    def test_band_edges_out_of_range(self):
        with pytest.raises(FilterDesignError):
            lp_spec(passband=(0.0, 1.5))

    def test_reversed_edges_rejected(self):
        with pytest.raises(FilterDesignError):
            lp_spec(passband=(0.4, 0.2))

    def test_lowpass_order_violation(self):
        with pytest.raises(FilterDesignError):
            lp_spec(passband=(0.0, 0.5), stopband=(0.3, 1.0))

    def test_bandpass_order_violation(self):
        with pytest.raises(FilterDesignError):
            FilterSpec(
                name="bp", band=BandType.BANDPASS,
                method=DesignMethod.PARKS_MCCLELLAN, numtaps=31,
                passband=(0.1, 0.6), stopband=(0.2, 0.5),
            )

    def test_bandstop_order_violation(self):
        with pytest.raises(FilterDesignError):
            FilterSpec(
                name="bs", band=BandType.BANDSTOP,
                method=DesignMethod.PARKS_MCCLELLAN, numtaps=31,
                passband=(0.3, 0.5), stopband=(0.2, 0.6),
            )

    def test_negative_ripple_rejected(self):
        with pytest.raises(FilterDesignError):
            lp_spec(ripple_db=-1.0)

    def test_deltas_positive(self):
        spec = lp_spec()
        assert 0 < spec.passband_delta < 1
        assert 0 < spec.stopband_delta < 1

    def test_describe_mentions_method_and_band(self):
        text = lp_spec().describe()
        assert "PM" in text and "LP" in text

    def test_abbreviations(self):
        assert BandType.BANDSTOP.abbreviation == "BS"
        assert DesignMethod.BUTTERWORTH.abbreviation == "BW"


class TestBandConstruction:
    def test_remez_lowpass_bands(self):
        bands, desired, weights = remez_bands(lp_spec())
        assert bands == pytest.approx([0.0, 0.2, 0.3, 1.0 - 1e-6])
        assert desired == [1.0, 0.0]
        assert weights[0] < weights[1]  # stopband weighted harder (Rs >> Rp)

    def test_remez_bandstop_bands(self):
        spec = FilterSpec(
            name="bs", band=BandType.BANDSTOP,
            method=DesignMethod.PARKS_MCCLELLAN, numtaps=31,
            passband=(0.2, 0.7), stopband=(0.3, 0.6),
        )
        bands, desired, _ = remez_bands(spec)
        assert desired == [1.0, 0.0, 1.0]
        assert len(bands) == 6

    def test_firls_doubles_desired(self):
        bands, desired, weights = firls_bands(lp_spec())
        assert desired == [1.0, 1.0, 0.0, 0.0]
        assert len(weights) == 2


class TestDesign:
    @pytest.mark.parametrize("method", list(DesignMethod))
    def test_lowpass_all_methods(self, method):
        spec = lp_spec(method=method, ripple_db=3.0, atten_db=20.0)
        taps = design_fir(spec)
        assert taps.shape == (25,)
        assert np.allclose(taps, taps[::-1])  # symmetric

    def test_bandpass_design(self):
        spec = FilterSpec(
            name="bp", band=BandType.BANDPASS,
            method=DesignMethod.PARKS_MCCLELLAN, numtaps=41,
            passband=(0.3, 0.5), stopband=(0.2, 0.6), atten_db=40.0,
        )
        taps = design_fir(spec)
        report = measure_response(taps, spec)
        assert report.stopband_atten_db > 30.0

    def test_highpass_design(self):
        spec = FilterSpec(
            name="hp", band=BandType.HIGHPASS,
            method=DesignMethod.PARKS_MCCLELLAN, numtaps=41,
            passband=(0.5, 1.0), stopband=(0.0, 0.35), atten_db=40.0,
        )
        taps = design_fir(spec)
        assert meets_spec(taps, spec, margin_db=3.0)

    def test_pm_lowpass_meets_spec(self):
        spec = lp_spec(numtaps=41)
        taps = design_fir(spec)
        assert meets_spec(taps, spec, margin_db=0.1)

    def test_butterworth_monotone_passband_tendency(self):
        """BW passband ripple is smooth — far smaller than the stop deviation."""
        spec = lp_spec(method=DesignMethod.BUTTERWORTH, numtaps=41,
                       ripple_db=3.0, atten_db=25.0)
        taps = design_fir(spec)
        report = measure_response(taps, spec)
        assert report.stopband_atten_db > 15.0
