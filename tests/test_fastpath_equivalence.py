"""Equivalence lockdown for the fast-path synthesis kernels.

Every fast path in :mod:`repro.fastpath` replaces a reference implementation
that stays in the tree; this suite holds the two ends of each pair to
element-identical output — same edges in the same order, same enumerations,
same costs, same budget charging — under hypothesis-randomized coefficient
sets, wordlengths, and shift ranges.  The graph comparisons run the numpy
and pure-python kernels against the reference loop, and the numpy-absent
world is simulated by monkeypatching the capability probe, so the fallback
is exercised even on hosts with a capable numpy installed.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import fastpath
from repro.errors import BudgetExceeded, GraphError
from repro.fastpath.digitcost import csd_cost_fast, fast_cost_fn, sm_cost_fast
from repro.fastpath.graphbuild import build_graph_fast
from repro.fastpath import msdtables
from repro.graph.colored import _build_edges, build_colored_graph
from repro.numrep import (
    Representation,
    csd_nonzero_count,
    digit_cost,
    enumerate_msd,
    msd_count,
    oddpart,
)
from repro.numrep import msd as msd_module
from repro.robust.budget import SolverBudget

pytestmark = pytest.mark.filterwarnings("ignore::DeprecationWarning")

NUMPY_KERNEL = fastpath.numpy_usable()

# Odd positive vertex mantissas in the range real quantized coefficients
# occupy (<= 24-bit wordlengths).
ODD_VERTEX = st.integers(min_value=0, max_value=(1 << 22) - 1).map(
    lambda n: 2 * n + 1
)
VERTEX_SETS = st.lists(ODD_VERTEX, min_size=1, max_size=8, unique=True)
SHIFTS = st.integers(min_value=0, max_value=10)
REPRESENTATIONS = st.sampled_from([Representation.CSD, Representation.SM])
MSD_VALUES = st.integers(min_value=-(2**12), max_value=2**12)


@pytest.fixture(autouse=True)
def _pristine_fastpath():
    """Each test starts with default mode and empty MSD tables."""
    fastpath.set_mode(None)
    msdtables.clear_tables()
    yield
    fastpath.set_mode(None)
    msdtables.clear_tables()


def assert_graphs_identical(reference, candidate):
    """Element-identical: same indices, same edges, same *order* per color.

    Order matters because downstream spanning-tree tie-breaking walks each
    color's edge list in sequence; equality as sets would not pin exported
    artifacts.
    """
    assert candidate.vertices == reference.vertices
    assert candidate.representation is reference.representation
    assert candidate.max_shift == reference.max_shift
    assert candidate.num_edges == reference.num_edges
    assert candidate.colors == reference.colors
    for color in reference.colors:
        assert candidate.edges_of_color(color) == reference.edges_of_color(color)
        assert candidate.color_set(color) == reference.color_set(color)
        assert candidate.color_cost(color) == reference.color_cost(color)
    for vertex in reference.vertices:
        assert candidate.colors_of_vertex(vertex) == (
            reference.colors_of_vertex(vertex)
        )
        assert candidate.edges_into(vertex, reference.colors) == (
            reference.edges_into(vertex, reference.colors)
        )


class TestDigitCostKernels:
    @given(st.integers(min_value=-(2**40), max_value=2**40))
    def test_csd_popcount_identity(self, value):
        assert csd_cost_fast(value) == csd_nonzero_count(value)

    @given(st.integers(min_value=-(2**40), max_value=2**40))
    def test_sm_cost(self, value):
        assert sm_cost_fast(value) == digit_cost(value, Representation.SM)

    @given(st.integers(min_value=1, max_value=2**40), REPRESENTATIONS)
    def test_dispatch_matches_reference(self, value, representation):
        assert fast_cost_fn(representation)(value) == (
            digit_cost(value, representation)
        )


class TestGraphKernelEquivalence:
    @given(VERTEX_SETS, SHIFTS, REPRESENTATIONS)
    @settings(max_examples=40)
    def test_python_kernel_matches_reference(self, vertices, max_shift, rep):
        vertex_list = sorted(set(vertices))
        reference = _build_edges(vertex_list, max_shift, rep, None)
        fast = build_graph_fast(vertex_list, max_shift, rep, None, "python")
        assert_graphs_identical(reference, fast)

    @pytest.mark.skipif(not NUMPY_KERNEL, reason="needs numpy >= 2.0")
    @given(VERTEX_SETS, SHIFTS, REPRESENTATIONS)
    @settings(max_examples=40)
    def test_numpy_kernel_matches_reference(self, vertices, max_shift, rep):
        vertex_list = sorted(set(vertices))
        reference = _build_edges(vertex_list, max_shift, rep, None)
        fast = build_graph_fast(vertex_list, max_shift, rep, None, "numpy")
        assert_graphs_identical(reference, fast)

    def test_numpy_kernel_drops_to_python_past_int64(self):
        # (max_v << max_shift) + max_v would overflow 3*xi in int64; the
        # dispatcher must pick the bignum-safe python kernel, silently.
        huge = [(1 << 61) + 1, 3]
        reference = _build_edges(sorted(huge), 2, Representation.CSD, None)
        fast = build_graph_fast(sorted(huge), 2, Representation.CSD, None, "numpy")
        assert_graphs_identical(reference, fast)

    def test_build_colored_graph_modes_agree(self):
        vertices = [3, 7, 11, 23, 45]
        graphs = {}
        for mode in ("off", "python", "auto"):
            fastpath.set_mode(mode)
            graphs[mode] = build_colored_graph(vertices, 6)
        assert_graphs_identical(graphs["off"], graphs["python"])
        assert_graphs_identical(graphs["off"], graphs["auto"])

    def test_fallback_when_numpy_unusable(self, monkeypatch):
        # Simulate a numpy-less host: auto must resolve to the python
        # kernel and still build the identical graph.
        monkeypatch.setattr(fastpath, "_NUMPY_USABLE", False)
        assert fastpath.graph_kernel() == "python"
        fastpath.set_mode("off")
        reference = build_colored_graph([3, 5, 9], 4)
        fastpath.set_mode("auto")
        assert_graphs_identical(reference, build_colored_graph([3, 5, 9], 4))

    @pytest.mark.parametrize("kernel", ["python", "numpy"])
    def test_rejects_invalid_vertices(self, kernel):
        with pytest.raises(GraphError):
            build_graph_fast([4], 2, Representation.CSD, None, kernel)
        with pytest.raises(GraphError):
            build_graph_fast([-3, 5], 2, Representation.CSD, None, kernel)


class TestGraphBudgetEquivalence:
    VERTICES = [3, 5, 7, 9, 11]

    def _spent_at_failure(self, builder):
        budget = SolverBudget(max_nodes=4).start()
        with pytest.raises(BudgetExceeded):
            builder(budget)
        return budget.nodes_used

    def test_kernels_charge_budget_like_reference(self):
        reference = self._spent_at_failure(
            lambda b: _build_edges(self.VERTICES, 4, Representation.CSD, b)
        )
        for kernel in ("python", "numpy") if NUMPY_KERNEL else ("python",):
            fast = self._spent_at_failure(
                lambda b: build_graph_fast(
                    self.VERTICES, 4, Representation.CSD, b, kernel
                )
            )
            assert fast == reference

    def test_sufficient_budget_builds_identical_graph(self):
        def build(kernel):
            budget = SolverBudget(max_nodes=10_000).start()
            if kernel == "off":
                return _build_edges(self.VERTICES, 4, Representation.CSD, budget)
            return build_graph_fast(
                self.VERTICES, 4, Representation.CSD, budget, kernel
            )

        reference = build("off")
        assert_graphs_identical(reference, build("python"))
        if NUMPY_KERNEL:
            assert_graphs_identical(reference, build("numpy"))


class TestMsdTableEquivalence:
    @given(MSD_VALUES)
    @settings(max_examples=40)
    def test_memoized_matches_reference(self, value):
        fastpath.set_mode("off")
        reference = enumerate_msd(value)
        fastpath.set_mode("auto")
        msdtables.clear_tables()
        assert enumerate_msd(value) == reference  # miss populates the table
        assert enumerate_msd(value) == reference  # hit serves from it

    @given(MSD_VALUES)
    @settings(max_examples=40)
    def test_snapshot_restore_roundtrip(self, value):
        expected = enumerate_msd(value)
        snapshot = msdtables.table_snapshot()
        msdtables.clear_tables()
        assert msdtables.restore_tables(snapshot) == len(snapshot)
        assert enumerate_msd(value) == expected
        assert msdtables.table_stats()["misses"] == 0

    def test_table_hit_still_charges_budget(self):
        enumerate_msd(45)  # warm
        budget = SolverBudget(max_nodes=1).start()
        enumerate_msd(45, budget=budget)
        assert budget.nodes_used == 1
        with pytest.raises(BudgetExceeded):
            enumerate_msd(45, budget=budget)

    def test_msd_count_uses_table(self):
        before = msdtables.table_stats()["hits"]
        assert msd_count(363) == msd_count(363)
        assert msdtables.table_stats()["hits"] > before

    def test_off_mode_bypasses_table(self):
        fastpath.set_mode("off")
        enumerate_msd(99)
        assert msdtables.table_stats() == {"entries": 0, "hits": 0, "misses": 0}

    def test_warm_msd_tables_counts_new_entries(self):
        values = [3, 7, 11, 45]
        assert msdtables.warm_msd_tables(values) == len(values)
        assert msdtables.warm_msd_tables(values) == 0

    def test_snapshot_truncates_at_ceiling(self):
        for value in range(1, 40, 2):
            enumerate_msd(value)
        snapshot = msdtables.table_snapshot(max_entries=5)
        assert len(snapshot) == 5

    def test_cached_result_is_a_fresh_list(self):
        first = enumerate_msd(23)
        first.append("sentinel")
        assert "sentinel" not in enumerate_msd(23)


class TestModeMachinery:
    def test_set_mode_rejects_unknown(self):
        with pytest.raises(ValueError):
            fastpath.set_mode("turbo")

    def test_env_selects_mode(self, monkeypatch):
        monkeypatch.setenv("REPRO_FASTPATH", "off")
        assert fastpath.resolve_mode() == "off"
        assert fastpath.graph_kernel() == "off"
        assert not fastpath.msd_tables_enabled()

    def test_override_beats_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_FASTPATH", "off")
        fastpath.set_mode("python")
        assert fastpath.graph_kernel() == "python"

    def test_info_is_json_friendly(self):
        import json

        info = fastpath.fastpath_info()
        assert json.loads(json.dumps(info)) == info
        assert info["kernel_version"] == fastpath.KERNEL_VERSION


class TestOddpartAgreement:
    @given(st.integers(min_value=1, max_value=2**48))
    def test_low_bit_trick_matches_oddpart(self, magnitude):
        color_shift = (magnitude & -magnitude).bit_length() - 1
        assert magnitude >> color_shift == abs(oddpart(magnitude))
        assert magnitude % (1 << color_shift) == 0
