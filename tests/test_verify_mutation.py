"""Mutation campaign: the verifier's own ≥95% kill-rate release gate."""

import pytest

from repro.core import synthesize_mrpf
from repro.errors import MutationGateError, VerificationError
from repro.robust import (
    MUTATION_OPERATORS,
    ChaosFault,
    NetlistMutator,
    clone_netlist,
)
from repro.verify import (
    MutantOutcome,
    MutationReport,
    assert_kill_rate,
    run_mutation_campaign,
)


class TestMutator:
    def test_original_never_touched(self, paper_coefficients):
        arch = synthesize_mrpf(paper_coefficients, 7)
        before = (arch.netlist.nodes, arch.netlist.outputs,
                  arch.netlist.fundamentals())
        mutator = NetlistMutator(seed=0)
        for _ in range(20):
            mutator.mutate(arch.netlist)
        assert (arch.netlist.nodes, arch.netlist.outputs,
                arch.netlist.fundamentals()) == before

    def test_same_seed_same_mutants(self, paper_coefficients):
        arch = synthesize_mrpf(paper_coefficients, 7)
        a = [d for d, _ in NetlistMutator(seed=5).mutants(arch.netlist, 10)]
        b = [d for d, _ in NetlistMutator(seed=5).mutants(arch.netlist, 10)]
        assert a == b

    def test_rejects_unknown_operator(self):
        with pytest.raises(Exception):
            NetlistMutator(operators=("bitflip",))

    def test_exhaustion_raises_chaos_fault(self):
        """A netlist too small for the requested operators fails loudly
        instead of looping forever."""
        from repro.arch import ShiftAddNetlist

        nl = ShiftAddNetlist()
        nl.mark_output("tap0", None)  # no adders, no live outputs
        mutator = NetlistMutator(seed=0, operators=("operand_shift",))
        with pytest.raises(ChaosFault):
            mutator.mutate(nl, max_tries=8)

    def test_clone_is_independent(self, paper_coefficients):
        arch = synthesize_mrpf(paper_coefficients, 7)
        clone = clone_netlist(arch.netlist)
        clone._fundamentals.clear()
        clone._outputs.clear()
        assert arch.netlist.fundamentals()
        assert arch.netlist.outputs


class TestCampaign:
    def test_kill_rate_gate_on_paper_example(self, paper_coefficients):
        """The acceptance criterion: ≥95% of seeded mutants are killed."""
        arch = synthesize_mrpf(paper_coefficients, 7)
        report = run_mutation_campaign(
            arch.netlist, arch.tap_names, paper_coefficients,
            mutants=60, seed=0,
        )
        assert report.total == 60
        assert report.kill_rate >= 0.95, [
            o.description for o in report.escaped
        ]
        assert_kill_rate(report)

    def test_both_audit_layers_contribute(self, paper_coefficients):
        """Structure-killable and equivalence-only mutants must both occur —
        otherwise one whole audit layer is untested."""
        arch = synthesize_mrpf(paper_coefficients, 7)
        report = run_mutation_campaign(
            arch.netlist, arch.tap_names, paper_coefficients,
            mutants=60, seed=0,
        )
        killers = {o.killed_by for o in report.outcomes if o.killed}
        assert "structure" in killers
        assert "equivalence" in killers

    def test_campaign_is_reproducible(self, paper_coefficients):
        arch = synthesize_mrpf(paper_coefficients, 7)
        runs = [
            run_mutation_campaign(
                arch.netlist, arch.tap_names, paper_coefficients,
                mutants=15, seed=9,
            )
            for _ in range(2)
        ]
        assert [o.description for o in runs[0].outcomes] == [
            o.description for o in runs[1].outcomes
        ]

    def test_broken_baseline_rejected(self, paper_coefficients):
        arch = synthesize_mrpf(paper_coefficients, 7)
        wrong = list(paper_coefficients)
        wrong[-1] += 2
        with pytest.raises(VerificationError):
            run_mutation_campaign(
                arch.netlist, arch.tap_names, wrong, mutants=5
            )

    def test_on_benchmark_filter(self, small_quantized_maximal):
        q = small_quantized_maximal
        arch = synthesize_mrpf(q.integers, q.wordlength, verify=False)
        report = run_mutation_campaign(
            arch.netlist, arch.tap_names, list(q.integers),
            mutants=30, seed=1,
        )
        assert report.kill_rate >= 0.95, [
            o.description for o in report.escaped
        ]


class TestGate:
    def _report(self, killed, escaped):
        outcomes = tuple(
            MutantOutcome(index=i, description=f"m{i}", killed=i < killed,
                          killed_by="structure" if i < killed else None)
            for i in range(killed + escaped)
        )
        return MutationReport(outcomes=outcomes, seed=0)

    def test_empty_campaign_passes(self):
        assert_kill_rate(self._report(0, 0))

    def test_below_threshold_raises_with_escapees(self):
        report = self._report(killed=8, escaped=2)
        with pytest.raises(MutationGateError) as excinfo:
            assert_kill_rate(report, threshold=0.95)
        assert len(excinfo.value.escaped) == 2

    def test_at_threshold_passes(self):
        assert_kill_rate(self._report(killed=19, escaped=1), threshold=0.95)

    def test_bad_threshold_rejected(self):
        with pytest.raises(VerificationError):
            assert_kill_rate(self._report(1, 0), threshold=1.5)

    def test_operator_vocabulary_is_frozen(self):
        """The campaign's fault model is part of the contract — adding or
        removing an operator must be a conscious, reviewed change."""
        assert MUTATION_OPERATORS == (
            "operand_shift", "operand_sign", "operand_rewire", "node_value",
            "fundamental_entry", "output_shift", "output_sign",
            "output_rewire", "consistent_shift", "consistent_sign",
        )
