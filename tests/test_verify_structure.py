"""The structural invariant auditor: typed violations from first principles."""

import pytest

from repro.arch import Ref, ShiftAddNetlist
from repro.core import synthesize_mrpf
from repro.errors import (
    AcyclicityViolation,
    AdderCountMismatch,
    DanglingRefViolation,
    DepthViolation,
    FundamentalViolation,
    NetlistError,
    StructureViolation,
    VerificationError,
)
from repro.robust.chaos import NetlistMutator, clone_netlist, _raw_node, _raw_ref
from repro.verify import audit_structure


def paper_arch(paper_coefficients):
    return synthesize_mrpf(paper_coefficients, 7)


class TestHappyPath:
    def test_reports_audited_facts(self, paper_coefficients):
        arch = paper_arch(paper_coefficients)
        report = audit_structure(
            arch.netlist, arch.tap_names,
            expected_adder_count=arch.adder_count,
        )
        assert report.num_adders == arch.adder_count
        assert report.max_output_depth == arch.adder_depth
        assert report.orphans == ()
        assert report.num_outputs == len(arch.tap_names)
        assert len(report.fanout) == len(arch.netlist)

    def test_depth_limit_enforced(self, paper_coefficients):
        arch = paper_arch(paper_coefficients)
        audit_structure(arch.netlist, arch.tap_names,
                        depth_limit=arch.adder_depth)
        with pytest.raises(DepthViolation):
            audit_structure(arch.netlist, arch.tap_names,
                            depth_limit=arch.adder_depth - 1)

    def test_bare_input_netlist(self):
        nl = ShiftAddNetlist()
        nl.mark_output("tap0", nl.input)
        report = audit_structure(nl, ["tap0"])
        assert report.num_adders == 0
        assert report.max_output_depth == 0

    def test_zero_tap_counted(self):
        nl = ShiftAddNetlist()
        nl.mark_output("tap0", nl.ensure_constant(5))
        nl.mark_output("tap1", None)
        report = audit_structure(nl, ["tap0", "tap1"])
        assert report.num_zero_outputs == 1


class TestViolations:
    def test_taxonomy_is_catchable_as_netlist_error(self, paper_coefficients):
        """Structure violations dual-inherit so legacy handlers still fire."""
        assert issubclass(StructureViolation, VerificationError)
        assert issubclass(StructureViolation, NetlistError)

    def test_unmarked_tap(self, paper_coefficients):
        arch = paper_arch(paper_coefficients)
        with pytest.raises(DanglingRefViolation):
            audit_structure(arch.netlist, list(arch.tap_names) + ["tap99"])

    def test_expected_adder_count_mismatch(self, paper_coefficients):
        arch = paper_arch(paper_coefficients)
        with pytest.raises(AdderCountMismatch):
            audit_structure(arch.netlist, arch.tap_names,
                            expected_adder_count=arch.adder_count + 1)

    def test_stale_declared_value(self, paper_coefficients):
        arch = paper_arch(paper_coefficients)
        clone = clone_netlist(arch.netlist)
        victim = clone._nodes[1]
        clone._nodes[1] = _raw_node(
            victim.id, victim.value + 1, victim.a, victim.b, victim.label
        )
        with pytest.raises(StructureViolation):
            audit_structure(clone, arch.tap_names)

    def test_forward_reference(self, paper_coefficients):
        arch = paper_arch(paper_coefficients)
        clone = clone_netlist(arch.netlist)
        last = clone._nodes[-1]
        bad = _raw_ref(last.id, last.a.shift, last.a.sign)  # self-reference
        clone._nodes[-1] = _raw_node(last.id, last.value, bad, last.b,
                                     last.label)
        with pytest.raises(AcyclicityViolation):
            audit_structure(clone, arch.tap_names)

    def test_out_of_range_output(self, paper_coefficients):
        arch = paper_arch(paper_coefficients)
        clone = clone_netlist(arch.netlist)
        name = arch.tap_names[0]
        clone._outputs[name] = _raw_ref(len(clone._nodes) + 7, 0, 1)
        with pytest.raises(DanglingRefViolation):
            audit_structure(clone, arch.tap_names)

    def test_corrupt_fundamental_table(self, paper_coefficients):
        arch = paper_arch(paper_coefficients)
        clone = clone_netlist(arch.netlist)
        odd = next(iter(k for k in clone._fundamentals if k != 1))
        clone._fundamentals[odd] = 0  # node 0 computes 1, not odd
        with pytest.raises(FundamentalViolation):
            audit_structure(clone, arch.tap_names)

    def test_bad_shift_and_sign(self, paper_coefficients):
        arch = paper_arch(paper_coefficients)
        clone = clone_netlist(arch.netlist)
        node = clone._nodes[1]
        clone._nodes[1] = _raw_node(
            node.id, node.value, _raw_ref(node.a.node, -2, node.a.sign),
            node.b, node.label,
        )
        with pytest.raises(StructureViolation):
            audit_structure(clone, arch.tap_names)

    def test_orphans_reported_not_fatal(self, paper_coefficients):
        """Dead nodes are accounted, not rejected — pruning is a separate
        optimization concern (`repro.arch.optimize`)."""
        nl = ShiftAddNetlist()
        nl.ensure_constant(23)  # never referenced by any output
        nl.mark_output("tap0", nl.input)
        report = audit_structure(nl, ["tap0"])
        assert len(report.orphans) > 0


class TestAgainstMutator:
    def test_every_stale_value_mutant_caught(self, paper_coefficients):
        """The operators that leave declared state stale must all be caught
        structurally (that is their whole design)."""
        arch = paper_arch(paper_coefficients)
        mutator = NetlistMutator(
            seed=7,
            operators=("operand_shift", "operand_sign", "operand_rewire",
                       "node_value", "fundamental_entry"),
        )
        for description, mutant in mutator.mutants(arch.netlist, 25):
            with pytest.raises(VerificationError):
                audit_structure(mutant, arch.tap_names)
