"""Unit + property tests for repro.numrep.digits."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.errors import EncodingError
from repro.numrep import (
    SignedDigits,
    is_power_of_two,
    odd_normalize,
    oddpart,
    shift_amount,
)


class TestOddNormalization:
    def test_oddpart_of_zero(self):
        assert oddpart(0) == 0

    def test_oddpart_of_odd_is_identity(self):
        assert oddpart(45) == 45

    def test_oddpart_strips_powers_of_two(self):
        assert oddpart(24) == 3
        assert oddpart(64) == 1

    def test_oddpart_preserves_sign(self):
        assert oddpart(-40) == -5

    def test_shift_amount_zero(self):
        assert shift_amount(0) == 0

    def test_shift_amount_odd(self):
        assert shift_amount(45) == 0

    def test_shift_amount_even(self):
        assert shift_amount(96) == 5

    @given(st.integers(min_value=-(2**24), max_value=2**24))
    def test_odd_normalize_reconstructs(self, n):
        odd, k = odd_normalize(n)
        assert odd << k == n

    @given(st.integers(min_value=1, max_value=2**24))
    def test_oddpart_is_odd(self, n):
        assert oddpart(n) % 2 == 1


class TestIsPowerOfTwo:
    @pytest.mark.parametrize("n", [1, 2, 4, 8, 1024, -2, -64])
    def test_powers(self, n):
        assert is_power_of_two(n)

    @pytest.mark.parametrize("n", [0, 3, 5, 6, 7, -9, 100])
    def test_non_powers(self, n):
        assert not is_power_of_two(n)


class TestSignedDigits:
    def test_empty_is_zero(self):
        assert SignedDigits(()).value == 0

    def test_value_lsb_first(self):
        # digits (1, 0, -1) = 1 - 4 = -3
        assert SignedDigits((1, 0, -1)).value == -3

    def test_invalid_digit_rejected(self):
        with pytest.raises(EncodingError):
            SignedDigits((2,))

    def test_trailing_zeros_trimmed(self):
        assert SignedDigits((1, 0, 0)).digits == (1,)

    def test_equal_after_trim(self):
        assert SignedDigits((1, 0, 0)) == SignedDigits((1,))

    def test_nonzero_count(self):
        assert SignedDigits((1, 0, -1, 1)).nonzero_count == 3

    def test_nonzero_positions(self):
        assert SignedDigits((1, 0, -1)).nonzero_positions == (0, 2)

    def test_terms(self):
        assert SignedDigits((0, -1, 1)).terms == ((1, -1), (2, 1))

    def test_shifted_multiplies_by_power_of_two(self):
        d = SignedDigits((1, 1))
        assert d.shifted(3).value == d.value << 3

    def test_negative_shift_rejected(self):
        with pytest.raises(EncodingError):
            SignedDigits((1,)).shifted(-1)

    def test_negated(self):
        d = SignedDigits((1, 0, -1))
        assert d.negated().value == -d.value

    def test_adjacent_nonzeros_detected(self):
        assert SignedDigits((1, 1)).has_adjacent_nonzeros()
        assert not SignedDigits((1, 0, 1)).has_adjacent_nonzeros()

    def test_str_msb_first(self):
        assert str(SignedDigits((1, 0, -1))) == "N01"

    def test_str_zero(self):
        assert str(SignedDigits(())) == "0"

    def test_len_and_iter(self):
        d = SignedDigits((1, 0, -1))
        assert len(d) == 3
        assert list(d) == [1, 0, -1]

    @given(st.lists(st.sampled_from([-1, 0, 1]), max_size=20))
    def test_from_iterable_value_consistent(self, digits):
        d = SignedDigits.from_iterable(digits)
        assert d.value == sum(x << k for k, x in enumerate(digits))

    @given(st.lists(st.sampled_from([-1, 0, 1]), max_size=20),
           st.integers(min_value=0, max_value=8))
    def test_shift_then_value(self, digits, k):
        d = SignedDigits.from_iterable(digits)
        assert d.shifted(k).value == d.value << k
