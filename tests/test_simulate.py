"""Unit + property tests for bit-accurate netlist/filter simulation."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.arch import (
    Ref,
    ShiftAddNetlist,
    evaluate_nodes,
    evaluate_ref,
    simulate_tdf_filter,
    tap_products,
    verify_against_convolution,
)
from repro.errors import SimulationError

SAMPLES = st.lists(st.integers(min_value=-(2**20), max_value=2**20),
                   min_size=1, max_size=40)
CONSTS = st.lists(
    st.integers(min_value=-(2**12), max_value=2**12).filter(lambda n: n != 0),
    min_size=1, max_size=8,
)


def build_filter(constants):
    nl = ShiftAddNetlist()
    names = []
    for i, c in enumerate(constants):
        name = f"tap{i}"
        nl.mark_output(name, nl.ensure_constant(c))
        names.append(name)
    return nl, names


class TestNodeEvaluation:
    def test_input_passthrough(self):
        nl = ShiftAddNetlist()
        assert evaluate_nodes(nl, 42) == [42]

    def test_adder_evaluation(self):
        nl = ShiftAddNetlist()
        nl.add(Ref(node=0, shift=2), Ref(node=0, sign=-1))  # 3x
        assert evaluate_nodes(nl, 10) == [10, 30]

    @given(st.integers(min_value=-(2**24), max_value=2**24), CONSTS)
    @settings(max_examples=80)
    def test_linearity(self, sample, constants):
        """Every node output equals fundamental * sample — checked inline."""
        nl, _ = build_filter(constants)
        evaluate_nodes(nl, sample, check_linearity=True)

    def test_evaluate_ref_zero(self):
        nl = ShiftAddNetlist()
        assert evaluate_ref(nl, None, [7]) == 0

    def test_evaluate_ref_wiring(self):
        nl = ShiftAddNetlist()
        outputs = evaluate_nodes(nl, 5)
        assert evaluate_ref(nl, Ref(node=0, shift=3, sign=-1), outputs) == -40


class TestTapProducts:
    @given(CONSTS, st.integers(min_value=-(2**16), max_value=2**16))
    @settings(max_examples=60)
    def test_products_are_coefficient_times_sample(self, constants, sample):
        nl, names = build_filter(constants)
        products = tap_products(nl, names, sample)
        assert products == [c * sample for c in constants]


class TestFilterSimulation:
    def test_needs_taps(self):
        nl = ShiftAddNetlist()
        with pytest.raises(SimulationError):
            simulate_tdf_filter(nl, [], [1, 2])

    def test_negative_latency_rejected(self):
        nl, names = build_filter([3])
        with pytest.raises(SimulationError):
            simulate_tdf_filter(nl, names, [1], pipeline_latency=-1)

    @given(CONSTS, SAMPLES)
    @settings(max_examples=60, deadline=None)
    def test_matches_exact_convolution(self, constants, samples):
        nl, names = build_filter(constants)
        got = simulate_tdf_filter(nl, names, samples)
        expected = []
        for n in range(len(samples)):
            acc = 0
            for i, c in enumerate(constants):
                if n - i >= 0:
                    acc += c * samples[n - i]
            expected.append(acc)
        assert got == expected

    @given(CONSTS, SAMPLES, st.integers(min_value=0, max_value=4))
    @settings(max_examples=40, deadline=None)
    def test_latency_shifts_output(self, constants, samples, latency):
        nl, names = build_filter(constants)
        flat = simulate_tdf_filter(nl, names, samples)
        piped = simulate_tdf_filter(nl, names, samples, pipeline_latency=latency)
        assert piped[:latency] == [0] * min(latency, len(samples))
        assert piped[latency:] == flat[: max(0, len(flat) - latency)]


class TestVerification:
    def test_passes_for_correct_filter(self):
        nl, names = build_filter([7, -3, 12])
        verify_against_convolution(nl, names, [7, -3, 12], [1, -5, 100, 3])

    def test_detects_wrong_declared_coefficient(self):
        nl, names = build_filter([7, -3])
        with pytest.raises(SimulationError):
            verify_against_convolution(nl, names, [7, 3], [1, 2, 3])

    def test_zero_tap_handled(self):
        nl = ShiftAddNetlist()
        nl.mark_output("tap0", nl.ensure_constant(5))
        nl.mark_output("tap1", None)
        verify_against_convolution(nl, ["tap0", "tap1"], [5, 0], [9, -9, 4])

    def test_wordlength_aware_mode(self):
        """The optional wordlength adds an overflow check on top of the
        exact comparison — see repro.verify.fixedpoint."""
        nl, names = build_filter([7, -3])
        verify_against_convolution(nl, names, [7, -3], [1, -5, 100],
                                   wordlength=8)


class TestCornerVectorsOnBenchmarks:
    """Table-1 designs driven by the named corner stimuli: the netlist, the
    golden convolution, and the declared coefficients must agree cycle by
    cycle at every corner of the input range."""

    def _corner_check(self, quantized):
        from repro.core import synthesize_mrpf
        from repro.verify import corner_vectors, golden_convolution

        arch = synthesize_mrpf(quantized.integers, quantized.wordlength,
                               verify=False)
        for name, stimulus in corner_vectors(
            len(arch.tap_names), input_bits=12
        ).items():
            got = simulate_tdf_filter(arch.netlist, arch.tap_names, stimulus)
            want = golden_convolution(arch.coefficients, stimulus)
            assert got == want, f"corner vector {name!r} diverged"

    def test_small_filter_corners(self, small_quantized_maximal):
        self._corner_check(small_quantized_maximal)

    def test_medium_filter_corners(self, medium_filter):
        from repro.quantize import ScalingScheme, quantize

        self._corner_check(quantize(medium_filter.folded, 10,
                                    ScalingScheme.MAXIMAL))
