"""Shared fixtures for the test suite."""

from __future__ import annotations

import pytest

from repro.filters import benchmark_filter
from repro.quantize import ScalingScheme, quantize

# The paper's §3.5 running example: asymmetric 8-tap filter.
PAPER_EXAMPLE = (7, 66, 17, 9, 27, 41, 56, 11)

VERIFY_SAMPLES = (1, -1, 2, 255, -256, 1023, -777, 12345, -54321, 0, 0, 99)


@pytest.fixture(scope="session")
def paper_coefficients():
    return list(PAPER_EXAMPLE)


@pytest.fixture(scope="session")
def small_filter():
    """The smallest benchmark filter (fast to synthesize)."""
    return benchmark_filter(0)


@pytest.fixture(scope="session")
def medium_filter():
    """A mid-size band-stop benchmark filter."""
    return benchmark_filter(4)


@pytest.fixture(scope="session")
def small_quantized_uniform(small_filter):
    return quantize(small_filter.folded, 12, ScalingScheme.UNIFORM)


@pytest.fixture(scope="session")
def small_quantized_maximal(small_filter):
    return quantize(small_filter.folded, 12, ScalingScheme.MAXIMAL)


@pytest.fixture(scope="session")
def verify_samples():
    return list(VERIFY_SAMPLES)
