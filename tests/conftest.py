"""Shared fixtures for the test suite."""

from __future__ import annotations

import os

import pytest
from hypothesis import HealthCheck, settings

from repro.filters import benchmark_filter
from repro.quantize import ScalingScheme, quantize

# Hypothesis profiles: "ci" (the default) is fully derandomized — a fixed
# seed per test — so tier-1 results are reproducible run to run and across
# the CI matrix; switch with HYPOTHESIS_PROFILE=dev for fresh randomness
# when hunting for new counterexamples locally.
settings.register_profile(
    "ci",
    derandomize=True,
    deadline=None,
    max_examples=60,
    suppress_health_check=[HealthCheck.too_slow, HealthCheck.filter_too_much],
)
settings.register_profile("dev", deadline=None)
settings.load_profile(os.environ.get("HYPOTHESIS_PROFILE", "ci"))

# The paper's §3.5 running example: asymmetric 8-tap filter.
PAPER_EXAMPLE = (7, 66, 17, 9, 27, 41, 56, 11)

VERIFY_SAMPLES = (1, -1, 2, 255, -256, 1023, -777, 12345, -54321, 0, 0, 99)


@pytest.fixture(scope="session")
def paper_coefficients():
    return list(PAPER_EXAMPLE)


@pytest.fixture(scope="session")
def small_filter():
    """The smallest benchmark filter (fast to synthesize)."""
    return benchmark_filter(0)


@pytest.fixture(scope="session")
def medium_filter():
    """A mid-size band-stop benchmark filter."""
    return benchmark_filter(4)


@pytest.fixture(scope="session")
def small_quantized_uniform(small_filter):
    return quantize(small_filter.folded, 12, ScalingScheme.UNIFORM)


@pytest.fixture(scope="session")
def small_quantized_maximal(small_filter):
    return quantize(small_filter.folded, 12, ScalingScheme.MAXIMAL)


@pytest.fixture(scope="session")
def verify_samples():
    return list(VERIFY_SAMPLES)
