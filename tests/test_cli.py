"""CLI argument parsing and the exit-code contract of ``python -m repro.eval``.

The exit codes are part of the tool's interface — schedulers retry on a
budget exhaustion (3), page on a degradation failure (4), and collect
forensics on a partial sweep (5) — so each mapping is pinned here.
"""

from __future__ import annotations

import pytest

from repro.errors import BudgetExceeded, DegradationError, ReproError
from repro.eval import cache as disk_cache
from repro.eval.__main__ import (
    EXIT_BUDGET,
    EXIT_DEGRADATION,
    EXIT_FAILURE,
    EXIT_OK,
    EXIT_PARTIAL,
    EXIT_USAGE,
    build_parser,
    main,
)
from repro.eval.experiments import clear_cache
from repro.eval.parallel import ParallelSweepReport, SweepTask, TaskOutcome


@pytest.fixture(autouse=True)
def _pristine_caches():
    clear_cache()
    disk_cache.configure(None)
    yield
    clear_cache()
    disk_cache.configure(None)


class TestParsing:
    def test_defaults(self):
        args = build_parser().parse_args(["fig6"])
        assert args.experiment == "fig6"
        assert args.jobs is None and args.cache_dir is None
        assert args.journal_dir is None and not args.resume
        assert args.max_retries is None

    def test_supervisor_flags(self):
        args = build_parser().parse_args([
            "all", "--jobs", "4", "--cache-dir", "c", "--journal-dir", "j",
            "--resume", "--max-retries", "7", "--task-deadline", "1.5",
        ])
        assert args.jobs == 4
        assert args.cache_dir == "c"
        assert args.journal_dir == "j"
        assert args.resume is True
        assert args.max_retries == 7
        assert args.task_deadline == 1.5

    def test_filters_and_wordlengths(self):
        args = build_parser().parse_args(
            ["table1", "--filters", "0", "3", "--wordlengths", "8", "12"]
        )
        assert args.filters == [0, 3]
        assert args.wordlengths == [8, 12]

    def test_unknown_experiment_is_usage_error(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            main(["not-an-experiment"])
        assert excinfo.value.code == EXIT_USAGE

    def test_resume_without_journal_dir_is_usage_error(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            main(["fig6", "--resume"])
        assert excinfo.value.code == EXIT_USAGE
        assert "--journal-dir" in capsys.readouterr().err


class TestExitCodes:
    def test_success_returns_zero(self, capsys):
        code = main(["fig6", "--filters", "0", "--wordlengths", "8"])
        assert code == EXIT_OK
        assert "Figure 6" in capsys.readouterr().out

    def test_supervised_success_returns_zero(self, tmp_path, capsys):
        code = main([
            "fig6", "--filters", "0", "--wordlengths", "8",
            "--jobs", "1", "--journal-dir", str(tmp_path),
        ])
        assert code == EXIT_OK
        out = capsys.readouterr().out
        assert "supervised:" in out

    def test_budget_exceeded_maps_to_3(self, monkeypatch, capsys):
        import repro.eval.__main__ as cli

        def boom(*a, **kw):
            raise BudgetExceeded("deadline passed")

        monkeypatch.setattr(cli, "run_experiment", boom)
        assert main(["fig6"]) == EXIT_BUDGET
        assert "budget" in capsys.readouterr().err

    def test_degradation_maps_to_4(self, monkeypatch, capsys):
        import repro.eval.__main__ as cli

        def boom(*a, **kw):
            raise DegradationError("all tiers failed")

        monkeypatch.setattr(cli, "run_experiment", boom)
        assert main(["fig6"]) == EXIT_DEGRADATION
        assert "degradation" in capsys.readouterr().err

    def test_other_repro_error_maps_to_1(self, monkeypatch, capsys):
        import repro.eval.__main__ as cli

        def boom(*a, **kw):
            raise ReproError("something structural")

        monkeypatch.setattr(cli, "run_experiment", boom)
        assert main(["fig6"]) == EXIT_FAILURE
        assert "something structural" in capsys.readouterr().err

    def test_quarantined_tasks_map_to_5(self, monkeypatch, capsys):
        import repro.eval.supervisor as supervisor

        task = SweepTask(0, 8, "uniform", "csd", "mrpf")
        report = ParallelSweepReport(
            outcomes=(),
            tasks=(TaskOutcome(
                task=task, payload=None, error_type="WorkerLost",
                error="poison", elapsed_s=0.0, attempts=3, quarantined=True,
            ),),
            jobs=2, tasks_planned=1, tasks_precached=0,
            precompute_s=0.0, replay_s=0.0, total_s=0.0,
            stage_timings={}, cache={},
        )
        monkeypatch.setattr(
            supervisor, "run_sweep_supervised", lambda *a, **kw: report
        )
        code = main([
            "fig6", "--filters", "0", "--wordlengths", "8",
            "--journal-dir", "unused",
        ])
        assert code == EXIT_PARTIAL
        captured = capsys.readouterr()
        assert "quarantined" in captured.out
        assert "poison" in captured.err


class TestExportSubcommand:
    def test_parsing_defaults(self):
        args = build_parser().parse_args(
            ["export", "--filters", "0", "--wordlengths", "8"]
        )
        assert args.experiment == "export"
        assert args.export_format == "verilog"
        assert args.scaling == "maximal"
        assert args.representation == "csd"

    def test_writes_verilog_to_file(self, tmp_path, capsys):
        out = tmp_path / "fir.v"
        code = main([
            "export", "--format", "verilog", "--filters", "0",
            "--wordlengths", "8", "--output", str(out),
        ])
        assert code == EXIT_OK
        text = out.read_text(encoding="utf-8")
        assert text.startswith("//") or text.startswith("module") or (
            "module" in text
        )
        assert str(out) in capsys.readouterr().out

    def test_dot_to_stdout(self, capsys):
        code = main([
            "export", "--format", "dot", "--filters", "0",
            "--wordlengths", "8",
        ])
        assert code == EXIT_OK
        assert "digraph" in capsys.readouterr().out

    def test_needs_exactly_one_design_point(self, capsys):
        assert main(["export", "--wordlengths", "8"]) == EXIT_FAILURE
        assert "exactly one --filters" in capsys.readouterr().err
        assert main([
            "export", "--filters", "0", "--wordlengths", "6", "8",
        ]) == EXIT_FAILURE
        assert "exactly one --wordlengths" in capsys.readouterr().err


class TestServeSubcommand:
    def test_parsing_defaults(self):
        args = build_parser().parse_args(["serve", "--data-dir", "state"])
        assert args.experiment == "serve"
        assert args.port == 8177
        assert args.max_queue_depth == 16
        assert args.max_tenant_depth == 8
        assert args.max_inflight == 1

    def test_serve_without_data_dir_fails(self, capsys):
        assert main(["serve"]) == EXIT_FAILURE
        assert "--data-dir" in capsys.readouterr().err


class TestCacheCounterSummary:
    def test_supervised_summary_surfaces_cache_counters(
        self, monkeypatch, capsys
    ):
        # Cache write failures and quarantined entries must be visible in
        # the end-of-run summary, not only in the metrics exposition.
        import repro.eval.supervisor as supervisor

        report = ParallelSweepReport(
            outcomes=(), tasks=(), jobs=2, tasks_planned=0,
            tasks_precached=0, precompute_s=0.0, replay_s=0.0, total_s=0.0,
            stage_timings={}, cache={"put_errors": 3, "quarantined": 1},
        )
        monkeypatch.setattr(
            supervisor, "run_sweep_supervised", lambda *a, **kw: report
        )
        code = main([
            "fig6", "--filters", "0", "--wordlengths", "8",
            "--journal-dir", "unused",
        ])
        assert code == EXIT_OK
        out = capsys.readouterr().out
        assert "[cache: 3 put errors, 1 quarantined entries]" in out


class TestCrashsimCommand:
    """The ``crashsim`` subcommand: report, JSON artifact, exit codes."""

    def test_single_layer_run_exits_ok_with_report(self, tmp_path, capsys):
        from repro.eval.__main__ import EXIT_CRASHSIM  # noqa: F401

        report_path = tmp_path / "report.json"
        code = main([
            "crashsim", "--layers", "wal", "--cap", "25",
            "--json", str(report_path),
        ])
        assert code == EXIT_OK
        out = capsys.readouterr().out
        assert "crash-consistency certification" in out
        assert "zero invariant violations" in out
        import json

        payload = json.loads(report_path.read_text(encoding="utf-8"))
        assert payload["ok"] is True
        assert payload["layers"][0]["name"] == "wal"
        assert payload["states_checked"] == 25

    def test_unmet_coverage_floor_exits_crashsim(self, tmp_path, capsys):
        from repro.eval.__main__ import EXIT_CRASHSIM

        code = main([
            "crashsim", "--layers", "wal", "--min-states", "10000",
        ])
        assert code == EXIT_CRASHSIM
        err = capsys.readouterr().err
        assert "below the --min-states floor" in err

    def test_unknown_layer_exits_failure(self, capsys):
        code = main(["crashsim", "--layers", "bogus"])
        assert code == EXIT_FAILURE
        assert "unknown crashsim layers" in capsys.readouterr().err

    def test_scratch_dir_is_kept_when_requested(self, tmp_path):
        scratch = tmp_path / "keep"
        code = main([
            "crashsim", "--layers", "journal", "--scratch", str(scratch),
        ])
        assert code == EXIT_OK
        assert scratch.is_dir()

    def test_capped_runs_are_seed_reproducible(self, tmp_path):
        import json

        reports = []
        for run in range(2):
            path = tmp_path / f"r{run}.json"
            assert main([
                "crashsim", "--layers", "store", "--cap", "15",
                "--seed", "42", "--json", str(path),
            ]) == EXIT_OK
            reports.append(json.loads(path.read_text(encoding="utf-8")))
        assert reports[0] == reports[1]
