"""Unit + property tests for the shift-add netlist IR."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.arch import INPUT_ID, Node, Ref, ShiftAddNetlist
from repro.errors import NetlistError
from repro.numrep import Representation, adder_cost, oddpart

NONZERO = st.integers(min_value=-(2**16), max_value=2**16).filter(lambda n: n != 0)


class TestRef:
    def test_negative_shift_rejected(self):
        with pytest.raises(NetlistError):
            Ref(node=0, shift=-1)

    def test_bad_sign_rejected(self):
        with pytest.raises(NetlistError):
            Ref(node=0, sign=0)

    def test_value(self):
        assert Ref(node=0, shift=3, sign=-1).value(5) == -40

    def test_shifted_and_negated(self):
        r = Ref(node=0, shift=1, sign=1)
        assert r.shifted(2).shift == 3
        assert r.negated().sign == -1


class TestNode:
    def test_input_node(self):
        n = Node(id=INPUT_ID, value=1)
        assert n.is_input and n.operands == ()

    def test_input_must_have_value_one(self):
        with pytest.raises(NetlistError):
            Node(id=INPUT_ID, value=3)

    def test_adder_needs_operands(self):
        with pytest.raises(NetlistError):
            Node(id=1, value=3)

    def test_forward_reference_rejected(self):
        with pytest.raises(NetlistError):
            Node(id=1, value=3, a=Ref(node=1), b=Ref(node=0, shift=1))

    def test_zero_value_rejected(self):
        with pytest.raises(NetlistError):
            Node(id=1, value=0, a=Ref(node=0), b=Ref(node=0, sign=-1))


class TestNetlistBuilder:
    def test_fresh_netlist(self):
        nl = ShiftAddNetlist()
        assert nl.adder_count == 0
        assert nl.value_of(0) == 1
        assert len(nl) == 1

    def test_add_computes_value(self):
        nl = ShiftAddNetlist()
        ref = nl.add(Ref(node=0, shift=2), Ref(node=0, sign=-1))  # 4x - x
        assert nl.ref_value(ref) == 3
        assert nl.adder_count == 1

    def test_add_zero_result_rejected(self):
        nl = ShiftAddNetlist()
        with pytest.raises(NetlistError):
            nl.add(Ref(node=0), Ref(node=0, sign=-1))

    def test_unknown_node_rejected(self):
        nl = ShiftAddNetlist()
        with pytest.raises(NetlistError):
            nl.node(5)

    def test_fundamental_registration(self):
        nl = ShiftAddNetlist()
        ref = nl.add(Ref(node=0, shift=2), Ref(node=0, sign=-1))
        assert nl.lookup_fundamental(3) == ref.node

    def test_ensure_constant_zero_rejected(self):
        with pytest.raises(NetlistError):
            ShiftAddNetlist().ensure_constant(0)

    def test_ensure_constant_power_of_two_is_wiring(self):
        nl = ShiftAddNetlist()
        ref = nl.ensure_constant(-16)
        assert nl.adder_count == 0
        assert nl.ref_value(ref) == -16

    def test_ensure_constant_reuses_fundamental(self):
        nl = ShiftAddNetlist()
        nl.ensure_constant(3)
        count = nl.adder_count
        ref = nl.ensure_constant(-24)  # -(3 << 3): same fundamental
        assert nl.adder_count == count
        assert nl.ref_value(ref) == -24

    def test_outputs_unique_names(self):
        nl = ShiftAddNetlist()
        nl.mark_output("y", nl.input)
        with pytest.raises(NetlistError):
            nl.mark_output("y", nl.input)

    def test_zero_output(self):
        nl = ShiftAddNetlist()
        nl.mark_output("z", None)
        assert nl.output_values() == {"z": 0}

    def test_tap_refs_order_and_missing(self):
        nl = ShiftAddNetlist()
        nl.mark_output("a", nl.input)
        nl.mark_output("b", None)
        refs = nl.tap_refs(["b", "a"])
        assert refs[0] is None and refs[1] is not None
        with pytest.raises(NetlistError):
            nl.tap_refs(["c"])

    def test_validate_clean(self):
        nl = ShiftAddNetlist()
        nl.ensure_constant(45)
        nl.mark_output("y", nl.ensure_constant(45))
        nl.validate()

    def test_validate_expected_outputs_satisfied(self):
        nl = ShiftAddNetlist()
        nl.mark_output("tap0", nl.ensure_constant(9))
        nl.mark_output("tap1", None)
        nl.validate(expected_outputs=["tap0", "tap1"])

    def test_validate_catches_unmarked_output(self):
        """Regression: a lowering that forgets to mark a tap must fail at
        validate() time, not when the simulator trips over the name later."""
        nl = ShiftAddNetlist()
        nl.mark_output("tap0", nl.ensure_constant(9))
        with pytest.raises(NetlistError, match="never marked"):
            nl.validate(expected_outputs=["tap0", "tap1"])

    def test_validate_catches_corrupt_fundamental_table(self):
        nl = ShiftAddNetlist()
        nl.ensure_constant(45)
        nl._fundamentals[45] = 0  # node 0 computes 1, not 45
        with pytest.raises(NetlistError, match="fundamental"):
            nl.validate()

    def test_validate_catches_out_of_range_fundamental(self):
        nl = ShiftAddNetlist()
        nl._fundamentals[7] = 99
        with pytest.raises(NetlistError, match="unknown node"):
            nl.validate()

    def test_depths(self):
        nl = ShiftAddNetlist()
        a = nl.add(Ref(node=0, shift=1), Ref(node=0))        # depth 1
        b = nl.add(a, Ref(node=0, shift=4))                  # depth 2
        assert nl.depths() == [0, 1, 2]
        assert nl.depth_of(b.node) == 2

    def test_max_depth_over_outputs_only(self):
        nl = ShiftAddNetlist()
        deep = nl.add(Ref(node=0, shift=1), Ref(node=0))
        deep = nl.add(deep, Ref(node=0, shift=5))
        shallow = nl.add(Ref(node=0, shift=2), Ref(node=0))
        nl.mark_output("y", shallow)
        assert nl.max_depth == 1  # the deep node feeds no output


class TestConstantChains:
    @given(NONZERO, st.sampled_from(list(Representation)))
    @settings(max_examples=150)
    def test_ensure_constant_exact(self, value, rep):
        nl = ShiftAddNetlist()
        ref = nl.ensure_constant(value, rep)
        assert nl.ref_value(ref) == value
        nl.validate()

    @given(NONZERO)
    @settings(max_examples=100)
    def test_chain_length_matches_adder_cost(self, value):
        nl = ShiftAddNetlist()
        nl.ensure_constant(value, Representation.CSD)
        assert nl.adder_count == adder_cost(value, Representation.CSD)

    @given(st.lists(NONZERO, min_size=1, max_size=10))
    @settings(max_examples=60)
    def test_many_constants_all_exact_and_valid(self, values):
        nl = ShiftAddNetlist()
        refs = [nl.ensure_constant(v) for v in values]
        for v, r in zip(values, refs):
            assert nl.ref_value(r) == v
        nl.validate()

    @given(NONZERO)
    @settings(max_examples=60)
    def test_shared_fundamentals_never_increase_cost(self, value):
        """Asking for v, 2v, -4v must cost exactly one chain."""
        nl = ShiftAddNetlist()
        nl.ensure_constant(value)
        base = nl.adder_count
        nl.ensure_constant(value * 2)
        nl.ensure_constant(value * -4)
        assert nl.adder_count == base

    def test_depth_is_linear_in_digits(self):
        """Plain digit chains have depth == adder count (no balancing)."""
        nl = ShiftAddNetlist()
        ref = nl.ensure_constant(0b101010101)
        assert nl.depth_of(ref.node) == nl.adder_count
