"""Tests for CSV/JSON experiment export."""

import csv
import io
import json

import pytest

from repro.eval import (
    result_records,
    run_figure6,
    run_table1,
    to_csv,
    to_json,
)
from repro.eval.experiments import ExperimentResult

FAST = dict(filter_indices=[0], wordlengths=[8])


@pytest.fixture(scope="module")
def fig6_result():
    return run_figure6(**FAST)


class TestRecords:
    def test_one_record_per_method(self, fig6_result):
        records = result_records(fig6_result)
        # 1 filter x 1 wordlength x 2 methods (simple, mrpf)
        assert len(records) == 2
        assert {r["method"] for r in records} == {"simple", "mrpf"}

    def test_record_fields(self, fig6_result):
        record = result_records(fig6_result)[0]
        for field in ("experiment", "filter", "wordlength", "scaling",
                      "method", "adders", "depth", "cla_weighted"):
            assert field in record

    def test_seed_size_only_on_mrp_records(self, fig6_result):
        records = {r["method"]: r for r in result_records(fig6_result)}
        assert "seed_roots" in records["mrpf"]
        assert "seed_roots" not in records["simple"]

    def test_table1_records(self):
        result = run_table1(filter_indices=[0])
        records = result_records(result)
        assert len(records) == 1
        assert records[0]["seed_spt_roots"] >= 0
        assert records[0]["band"] == "LP"


class TestCsv:
    def test_round_trips_through_csv_reader(self, fig6_result):
        text = to_csv(fig6_result)
        rows = list(csv.DictReader(io.StringIO(text)))
        assert len(rows) == 2
        assert rows[0]["experiment"] == "fig6"
        assert int(rows[0]["adders"]) >= 0

    def test_empty_result(self):
        empty = ExperimentResult(experiment_id="x", title="t")
        assert to_csv(empty) == ""

    def test_union_of_fieldnames(self, fig6_result):
        """Methods without seed sizes still share the same header row."""
        text = to_csv(fig6_result)
        header = text.splitlines()[0]
        assert "seed_roots" in header


class TestJson:
    def test_parses_and_matches(self, fig6_result):
        payload = json.loads(to_json(fig6_result))
        assert payload["experiment"] == "fig6"
        assert payload["title"] == fig6_result.title
        assert len(payload["records"]) == 2
        assert "mean_reduction" in payload["summary"]

    def test_summary_values_numeric(self, fig6_result):
        payload = json.loads(to_json(fig6_result))
        for value in payload["summary"].values():
            assert isinstance(value, (int, float))
