"""Unit + property tests for the Hcub-style MCM baseline."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.baselines import (
    simple_adder_count,
    synthesize_bhm,
    synthesize_hcub,
)
from repro.errors import SynthesisError

# Hcub's candidate search is heavier than BHM's; keep property inputs small.
COEFFS = st.lists(
    st.integers(min_value=-(2**8), max_value=2**8), min_size=1, max_size=6
).filter(lambda cs: any(cs))
SAMPLES = [1, -1, 3, 255, -128, 12345, -999]


class TestHcubBasics:
    def test_empty_rejected(self):
        with pytest.raises(SynthesisError):
            synthesize_hcub([])

    def test_free_taps_cost_nothing(self):
        arch = synthesize_hcub([0, 1, -2, 64])
        assert arch.adder_count == 0
        arch.verify(SAMPLES)

    def test_single_constant_optimal_cases(self):
        """Known 2-adder values that naive CSD needs 3+ adders for."""
        # 45 = 5 * 9 = (1+4)(1+8): two adders via the intermediate 5 or 9.
        arch = synthesize_hcub([45])
        arch.verify(SAMPLES)
        assert arch.adder_count <= 2

    def test_intermediate_fundamental_shared(self):
        """105 = 3*35 and 75 = 3*25: the 3 should be built once."""
        arch = synthesize_hcub([105, 75])
        arch.verify(SAMPLES)
        separate = (
            synthesize_hcub([105]).adder_count + synthesize_hcub([75]).adder_count
        )
        assert arch.adder_count <= separate

    def test_paper_example(self, paper_coefficients):
        arch = synthesize_hcub(paper_coefficients)
        arch.verify(SAMPLES)
        assert arch.adder_count <= simple_adder_count(paper_coefficients)

    def test_targets_in_fundamentals(self):
        arch = synthesize_hcub([7, 23, 45])
        for odd in (7, 23, 45):
            assert odd in arch.fundamentals


class TestHcubProperties:
    @given(COEFFS)
    @settings(max_examples=30, deadline=None)
    def test_bit_exact(self, coeffs):
        arch = synthesize_hcub(coeffs)
        arch.verify(SAMPLES)

    @given(COEFFS)
    @settings(max_examples=20, deadline=None)
    def test_never_worse_than_simple(self, coeffs):
        arch = synthesize_hcub(coeffs)
        assert arch.adder_count <= simple_adder_count(coeffs)

    @given(st.lists(st.integers(min_value=3, max_value=255)
                    .filter(lambda n: n % 2 == 1),
                    min_size=2, max_size=4, unique=True))
    @settings(max_examples=15, deadline=None)
    def test_competitive_with_bhm(self, targets):
        """Hcub's lookahead should not lose badly to BHM's greedy."""
        hcub = synthesize_hcub(targets).adder_count
        bhm = synthesize_bhm(targets).adder_count
        assert hcub <= bhm + 2
