"""SolverBudget semantics and its plumbing through every NP-hard search."""

import pytest

from repro.errors import BudgetExceeded, CoverBudgetError, GraphError, ReproError
from repro.graph import (
    build_colored_graph,
    exact_weighted_set_cover,
    greedy_weighted_set_cover,
)
from repro.numrep import enumerate_msd
from repro.quantize import quantize_uniform, search_coefficients
from repro.robust import SolverBudget

ADVERSARIAL_UNIVERSE = {1, 2, 3, 4, 5, 6}
ADVERSARIAL_SETS = {
    "half1": frozenset({1, 2, 3}),
    "half2": frozenset({4, 5, 6}),
    "trap1": frozenset({1, 4}),
    "trap2": frozenset({2, 5}),
    "trap3": frozenset({3, 6}),
}
ADVERSARIAL_COSTS = {
    "half1": 2.0, "half2": 2.0, "trap1": 1.0, "trap2": 1.0, "trap3": 1.0,
}


class FakeClock:
    def __init__(self):
        self.now = 0.0

    def __call__(self):
        return self.now


class TestSolverBudget:
    def test_unbounded_never_raises(self):
        budget = SolverBudget()
        budget.spend(10_000_000)
        assert not budget.exhausted
        assert budget.remaining_s is None
        assert budget.remaining_nodes is None

    def test_node_cap(self):
        budget = SolverBudget(max_nodes=3)
        budget.spend(3)
        assert not budget.exhausted
        with pytest.raises(BudgetExceeded, match="node budget"):
            budget.spend()
        assert budget.exhausted
        assert budget.nodes_used == 4

    def test_deadline_with_injected_clock(self):
        clock = FakeClock()
        budget = SolverBudget(deadline_s=10.0, clock=clock).start()
        budget.checkpoint()
        clock.now = 9.9
        budget.checkpoint()
        assert budget.remaining_s == pytest.approx(0.1)
        clock.now = 10.1
        with pytest.raises(BudgetExceeded, match="deadline"):
            budget.checkpoint()
        assert budget.remaining_s == 0.0

    def test_deadline_anchored_at_first_checkpoint(self):
        clock = FakeClock()
        clock.now = 100.0  # setup time before the budget is consulted
        budget = SolverBudget(deadline_s=5.0, clock=clock)
        budget.checkpoint()  # anchors here
        clock.now = 104.0
        budget.checkpoint()  # only 4s elapsed since the anchor

    def test_forced_exhaustion(self):
        budget = SolverBudget()
        budget.exhaust("test fault")
        with pytest.raises(BudgetExceeded, match="test fault"):
            budget.checkpoint()

    def test_partial_attached(self):
        budget = SolverBudget(max_nodes=0)
        with pytest.raises(BudgetExceeded) as info:
            budget.spend(partial="incumbent")
        assert info.value.partial == "incumbent"

    def test_invalid_limits(self):
        with pytest.raises(ReproError):
            SolverBudget(deadline_s=-1.0)
        with pytest.raises(ReproError):
            SolverBudget(max_nodes=-1)


class TestExactCoverBudget:
    def test_incumbent_carried_on_node_budget(self):
        """The budget error must carry the best complete cover found so far."""
        seen_incumbent = False
        for max_nodes in range(1, 40):
            try:
                exact_weighted_set_cover(
                    ADVERSARIAL_UNIVERSE, ADVERSARIAL_SETS, ADVERSARIAL_COSTS,
                    max_nodes=max_nodes,
                )
            except CoverBudgetError as exc:
                if exc.partial is None:
                    continue
                seen_incumbent = True
                covered = set()
                for step in exc.partial.steps:
                    covered |= step.newly_covered
                assert covered == ADVERSARIAL_UNIVERSE
                continue
            break  # search completed: larger budgets cannot raise
        assert seen_incumbent

    def test_budget_error_is_graph_and_budget_error(self):
        """Backwards compatibility: callers catching GraphError still work."""
        with pytest.raises(GraphError):
            exact_weighted_set_cover(
                ADVERSARIAL_UNIVERSE, ADVERSARIAL_SETS, ADVERSARIAL_COSTS,
                max_nodes=1,
            )
        with pytest.raises(BudgetExceeded):
            exact_weighted_set_cover(
                ADVERSARIAL_UNIVERSE, ADVERSARIAL_SETS, ADVERSARIAL_COSTS,
                max_nodes=1,
            )

    def test_solver_budget_interrupts(self):
        budget = SolverBudget(max_nodes=3)
        with pytest.raises(CoverBudgetError):
            exact_weighted_set_cover(
                ADVERSARIAL_UNIVERSE, ADVERSARIAL_SETS, ADVERSARIAL_COSTS,
                budget=budget,
            )
        assert budget.nodes_used == 4

    def test_unbudgeted_result_unchanged(self):
        solution = exact_weighted_set_cover(
            ADVERSARIAL_UNIVERSE, ADVERSARIAL_SETS, ADVERSARIAL_COSTS,
            budget=SolverBudget(),
        )
        assert solution.total_cost == pytest.approx(3.0)


class TestGreedyCoverBudget:
    def test_partial_cover_attached(self):
        budget = SolverBudget(max_nodes=5)  # one pick costs len(sets) = 5
        with pytest.raises(BudgetExceeded) as info:
            greedy_weighted_set_cover(
                ADVERSARIAL_UNIVERSE, ADVERSARIAL_SETS, ADVERSARIAL_COSTS,
                budget=budget,
            )
        partial = info.value.partial
        assert partial is not None
        assert len(partial.steps) <= 1

    def test_budget_large_enough_is_harmless(self):
        budgeted = greedy_weighted_set_cover(
            ADVERSARIAL_UNIVERSE, ADVERSARIAL_SETS, ADVERSARIAL_COSTS,
            budget=SolverBudget(max_nodes=10_000),
        )
        free = greedy_weighted_set_cover(
            ADVERSARIAL_UNIVERSE, ADVERSARIAL_SETS, ADVERSARIAL_COSTS
        )
        assert budgeted.colors == free.colors


class TestMsdBudget:
    def test_enumeration_interrupted(self):
        with pytest.raises(BudgetExceeded):
            enumerate_msd(0b101010101010101, budget=SolverBudget(max_nodes=3))

    def test_budget_large_enough_matches_unbudgeted(self):
        value = 45
        assert enumerate_msd(value, budget=SolverBudget(max_nodes=10_000)) \
            == enumerate_msd(value)


class TestCoefficientSearchBudget:
    def test_partial_result_attached(self):
        quantized = quantize_uniform([0.9, 0.496, 0.25, 0.124], 10)
        with pytest.raises(BudgetExceeded) as info:
            search_coefficients(
                quantized, lambda taps: True, budget=SolverBudget(max_nodes=2)
            )
        partial = info.value.partial
        assert partial is not None
        assert partial.original == quantized.integers
        assert partial.improved_cost <= partial.original_cost

    def test_budget_large_enough_matches_unbudgeted(self):
        quantized = quantize_uniform([0.9, 0.496, 0.25, 0.124], 10)
        free = search_coefficients(quantized, lambda taps: True)
        budgeted = search_coefficients(
            quantized, lambda taps: True, budget=SolverBudget(max_nodes=100_000)
        )
        assert budgeted.improved == free.improved


class TestGraphBuildBudget:
    def test_build_interrupted(self):
        vertices = [3, 5, 7, 9, 11, 13, 15, 17, 19, 21]
        with pytest.raises(BudgetExceeded):
            build_colored_graph(vertices, 10, budget=SolverBudget(max_nodes=4))
