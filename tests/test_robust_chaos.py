"""Chaos harness: every fault class at every stage is caught and rerouted.

Extends ``test_failure_injection.py``'s data-corruption philosophy to
control-flow faults: injected exceptions, forced deadline exhaustion, and
silently corrupted intermediate structures.  For every (stage, fault) pair
the robust cascade must either release a verified architecture or raise a
typed ReproError carrying the full attempt history — never hang, never
release an unverified result.
"""

import pytest

from repro.arch.simulate import verify_against_convolution
from repro.errors import BudgetExceeded, DegradationError, ReproError
from repro.robust import (
    FAULT_CLASSES,
    ChaosFault,
    ChaosHarness,
    RobustConfig,
    STAGES,
    synthesize,
)

COEFFS = [5, 22, 45, 89, 45, 22, 5]
WORDLENGTH = 7

MATRIX = [(stage, fault) for stage in STAGES for fault in FAULT_CLASSES]


class TestHarnessValidation:
    def test_unknown_stage_rejected(self):
        with pytest.raises(ReproError):
            ChaosHarness(stages=("quantize",))

    def test_unknown_fault_rejected(self):
        with pytest.raises(ReproError):
            ChaosHarness(faults=("bitflip",))

    def test_bad_rate_rejected(self):
        with pytest.raises(ReproError):
            ChaosHarness(rate=1.5)

    def test_determinism(self):
        def run(seed):
            chaos = ChaosHarness(seed=seed, rate=0.5)
            try:
                synthesize(COEFFS, WORDLENGTH, chaos=chaos)
            except DegradationError:
                pass
            return tuple(chaos.injections)

        assert run(123) == run(123)


class TestFaultMatrix:
    """The acceptance matrix: 3 fault classes x 3 wrapped stages."""

    @pytest.mark.parametrize("stage,fault", MATRIX)
    def test_single_fault_rerouted_to_verified_result(self, stage, fault):
        chaos = ChaosHarness(
            seed=7, stages=(stage,), faults=(fault,), rate=1.0,
            max_injections=1,
        )
        result = synthesize(COEFFS, WORDLENGTH, chaos=chaos)
        # The fault actually fired, where and what we asked.
        assert [(i.stage, i.fault) for i in chaos.injections] == [(stage, fault)]
        # The cascade rerouted: one failed/quarantined attempt, then success.
        assert result.num_attempts == 2
        failed, released = result.attempts
        assert failed.outcome in ("failed", "quarantined")
        assert failed.error_type is not None
        assert released.outcome == "ok"
        # The released architecture is genuinely correct.
        verify_against_convolution(
            result.architecture.netlist, result.architecture.tap_names,
            list(COEFFS), [1, -1, 3, 255, -777, 12345],
        )

    @pytest.mark.parametrize("stage", STAGES)
    def test_corruption_is_quarantined_not_released(self, stage):
        """A silent data fault must be caught by the convolution self-check."""
        chaos = ChaosHarness(
            seed=3, stages=(stage,), faults=("corruption",), rate=1.0,
            max_injections=1,
        )
        result = synthesize(COEFFS, WORDLENGTH, chaos=chaos)
        assert len(result.quarantined) == 1
        assert result.quarantined[0].stage == "verify"
        assert result.quarantined[0].error_type in (
            "SimulationError", "SynthesisError"
        )

    @pytest.mark.parametrize("fault", FAULT_CLASSES)
    def test_unlimited_faults_raise_typed_error_with_history(self, fault):
        chaos = ChaosHarness(seed=5, faults=(fault,), rate=1.0)
        with pytest.raises(DegradationError) as info:
            synthesize(COEFFS, WORDLENGTH, chaos=chaos)
        assert isinstance(info.value, ReproError)
        assert len(info.value.attempts) >= 3  # every tier was tried
        assert {a.tier for a in info.value.attempts} \
            == {"exact", "greedy", "trivial"}


class TestDeadlineFault:
    def test_budget_checkpoint_raises_after_forced_exhaustion(self):
        """The deadline fault fires through the solver's own checkpoint."""
        chaos = ChaosHarness(
            seed=9, stages=("plan",), faults=("deadline",), rate=1.0,
            max_injections=1,
        )
        result = synthesize(COEFFS, WORDLENGTH, chaos=chaos)
        assert result.attempts[0].error_type == "BudgetExceeded"
        assert "chaos-injected deadline" in result.attempts[0].error

    def test_chaos_fault_is_not_a_repro_error(self):
        """Injected exceptions are alien on purpose: the cascade must catch
        arbitrary exception types, not just its own hierarchy."""
        assert not issubclass(ChaosFault, ReproError)
        assert not issubclass(ChaosFault, BudgetExceeded)


class TestPartialChaos:
    def test_low_rate_usually_succeeds(self):
        """With a sub-1 rate and retries, most runs land a verified result."""
        released = 0
        for seed in range(6):
            chaos = ChaosHarness(seed=seed, rate=0.3)
            try:
                result = synthesize(COEFFS, WORDLENGTH, chaos=chaos)
            except DegradationError:
                continue
            released += 1
            verify_against_convolution(
                result.architecture.netlist, result.architecture.tap_names,
                list(COEFFS), [1, -1, 3],
            )
        assert released >= 3

    def test_chaos_with_deadline_still_bounded(self):
        """Chaos plus a deadline: the run stays within 2x the budget."""
        import time

        deadline = 1.0
        chaos = ChaosHarness(seed=2, rate=0.5)
        started = time.monotonic()
        try:
            synthesize(
                COEFFS, WORDLENGTH, chaos=chaos,
                config=RobustConfig(deadline_s=deadline),
            )
        except DegradationError:
            pass
        assert time.monotonic() - started < 2.0 * deadline


class TestProcessFaultPlan:
    """Process-level fault schedules: deterministic, validated, replayable."""

    def test_rates_validated(self):
        from repro.robust import ProcessFaultPlan

        with pytest.raises(ReproError):
            ProcessFaultPlan(kill_rate=1.5)
        with pytest.raises(ReproError):
            ProcessFaultPlan(slow_rate=-0.1)
        with pytest.raises(ReproError):
            ProcessFaultPlan(kills_per_task=-1)
        with pytest.raises(ReproError):
            ProcessFaultPlan(slow_s=-1.0)

    def test_kill_decisions_are_pure_functions(self):
        from repro.robust import ProcessFaultPlan

        plan = ProcessFaultPlan(seed=42, kill_rate=0.5, kills_per_task=2)
        keys = [f"task-{i}" for i in range(64)]
        first = [plan.should_kill(k, 0) for k in keys]
        assert first == [plan.should_kill(k, 0) for k in keys]
        # Same seed in a "different process" (fresh object): same decisions.
        clone = ProcessFaultPlan(seed=42, kill_rate=0.5, kills_per_task=2)
        assert first == [clone.should_kill(k, 0) for k in keys]
        # A different seed disagrees somewhere across 64 keys.
        other = ProcessFaultPlan(seed=43, kill_rate=0.5, kills_per_task=2)
        assert first != [other.should_kill(k, 0) for k in keys]

    def test_kills_stop_after_budget(self):
        from repro.robust import ProcessFaultPlan

        plan = ProcessFaultPlan(seed=0, kill_rate=1.0, kills_per_task=2)
        assert plan.should_kill("k", 0)
        assert plan.should_kill("k", 1)
        assert not plan.should_kill("k", 2)

    def test_poison_tasks_always_kill(self):
        from repro.robust import ProcessFaultPlan

        plan = ProcessFaultPlan(seed=0, poison_tasks=("bad",))
        for attempt in range(10):
            assert plan.should_kill("bad", attempt)
        assert not plan.should_kill("good", 0)

    def test_slow_delay_deterministic_and_gated(self):
        from repro.robust import ProcessFaultPlan

        always = ProcessFaultPlan(seed=9, slow_rate=1.0, slow_s=0.25)
        never = ProcessFaultPlan(seed=9, slow_rate=0.0, slow_s=0.25)
        assert always.slow_delay("k") == 0.25
        assert never.slow_delay("k") == 0.0

    def test_cache_injector_derivation(self):
        from repro.robust import CacheFaultInjector, ProcessFaultPlan

        assert ProcessFaultPlan(seed=1).cache_injector() is None
        injector = ProcessFaultPlan(
            seed=1, cache_truncate_rate=0.5, cache_enospc_rate=0.25
        ).cache_injector()
        assert isinstance(injector, CacheFaultInjector)
        assert injector.seed == 1

    def test_fault_classes_exported(self):
        from repro.robust import PROCESS_FAULT_CLASSES

        assert set(PROCESS_FAULT_CLASSES) == {
            "kill", "slow", "cache_truncate", "cache_enospc"
        }


class TestCacheFaultInjector:
    def test_draws_deterministic(self):
        from repro.robust import CacheFaultInjector

        injector = CacheFaultInjector(seed=5, truncate_rate=0.5,
                                      enospc_rate=0.25)
        keys = [f"{i:064x}" for i in range(64)]
        draws = [injector.draw_put(k) for k in keys]
        assert draws == [injector.draw_put(k) for k in keys]
        assert {"truncate", "enospc", None} >= set(draws)
        assert any(d is not None for d in draws)

    def test_rates_validated(self):
        from repro.robust import CacheFaultInjector

        with pytest.raises(ReproError):
            CacheFaultInjector(truncate_rate=2.0)

    def test_enospc_error_is_enospc(self):
        import errno

        from repro.robust import CacheFaultInjector

        injector = CacheFaultInjector(seed=0, enospc_rate=1.0)
        assert injector.draw_put("aa") == "enospc"
        assert injector.enospc_error("aa").errno == errno.ENOSPC
