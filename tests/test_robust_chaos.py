"""Chaos harness: every fault class at every stage is caught and rerouted.

Extends ``test_failure_injection.py``'s data-corruption philosophy to
control-flow faults: injected exceptions, forced deadline exhaustion, and
silently corrupted intermediate structures.  For every (stage, fault) pair
the robust cascade must either release a verified architecture or raise a
typed ReproError carrying the full attempt history — never hang, never
release an unverified result.
"""

import pytest

from repro.arch.simulate import verify_against_convolution
from repro.errors import BudgetExceeded, DegradationError, ReproError
from repro.robust import (
    FAULT_CLASSES,
    ChaosFault,
    ChaosHarness,
    RobustConfig,
    STAGES,
    synthesize,
)

COEFFS = [5, 22, 45, 89, 45, 22, 5]
WORDLENGTH = 7

MATRIX = [(stage, fault) for stage in STAGES for fault in FAULT_CLASSES]


class TestHarnessValidation:
    def test_unknown_stage_rejected(self):
        with pytest.raises(ReproError):
            ChaosHarness(stages=("quantize",))

    def test_unknown_fault_rejected(self):
        with pytest.raises(ReproError):
            ChaosHarness(faults=("bitflip",))

    def test_bad_rate_rejected(self):
        with pytest.raises(ReproError):
            ChaosHarness(rate=1.5)

    def test_determinism(self):
        def run(seed):
            chaos = ChaosHarness(seed=seed, rate=0.5)
            try:
                synthesize(COEFFS, WORDLENGTH, chaos=chaos)
            except DegradationError:
                pass
            return tuple(chaos.injections)

        assert run(123) == run(123)


class TestFaultMatrix:
    """The acceptance matrix: 3 fault classes x 3 wrapped stages."""

    @pytest.mark.parametrize("stage,fault", MATRIX)
    def test_single_fault_rerouted_to_verified_result(self, stage, fault):
        chaos = ChaosHarness(
            seed=7, stages=(stage,), faults=(fault,), rate=1.0,
            max_injections=1,
        )
        result = synthesize(COEFFS, WORDLENGTH, chaos=chaos)
        # The fault actually fired, where and what we asked.
        assert [(i.stage, i.fault) for i in chaos.injections] == [(stage, fault)]
        # The cascade rerouted: one failed/quarantined attempt, then success.
        assert result.num_attempts == 2
        failed, released = result.attempts
        assert failed.outcome in ("failed", "quarantined")
        assert failed.error_type is not None
        assert released.outcome == "ok"
        # The released architecture is genuinely correct.
        verify_against_convolution(
            result.architecture.netlist, result.architecture.tap_names,
            list(COEFFS), [1, -1, 3, 255, -777, 12345],
        )

    @pytest.mark.parametrize("stage", STAGES)
    def test_corruption_is_quarantined_not_released(self, stage):
        """A silent data fault must be caught by the convolution self-check."""
        chaos = ChaosHarness(
            seed=3, stages=(stage,), faults=("corruption",), rate=1.0,
            max_injections=1,
        )
        result = synthesize(COEFFS, WORDLENGTH, chaos=chaos)
        assert len(result.quarantined) == 1
        assert result.quarantined[0].stage == "verify"
        assert result.quarantined[0].error_type in (
            "SimulationError", "SynthesisError"
        )

    @pytest.mark.parametrize("fault", FAULT_CLASSES)
    def test_unlimited_faults_raise_typed_error_with_history(self, fault):
        chaos = ChaosHarness(seed=5, faults=(fault,), rate=1.0)
        with pytest.raises(DegradationError) as info:
            synthesize(COEFFS, WORDLENGTH, chaos=chaos)
        assert isinstance(info.value, ReproError)
        assert len(info.value.attempts) >= 3  # every tier was tried
        assert {a.tier for a in info.value.attempts} \
            == {"exact", "greedy", "trivial"}


class TestDeadlineFault:
    def test_budget_checkpoint_raises_after_forced_exhaustion(self):
        """The deadline fault fires through the solver's own checkpoint."""
        chaos = ChaosHarness(
            seed=9, stages=("plan",), faults=("deadline",), rate=1.0,
            max_injections=1,
        )
        result = synthesize(COEFFS, WORDLENGTH, chaos=chaos)
        assert result.attempts[0].error_type == "BudgetExceeded"
        assert "chaos-injected deadline" in result.attempts[0].error

    def test_chaos_fault_is_not_a_repro_error(self):
        """Injected exceptions are alien on purpose: the cascade must catch
        arbitrary exception types, not just its own hierarchy."""
        assert not issubclass(ChaosFault, ReproError)
        assert not issubclass(ChaosFault, BudgetExceeded)


class TestPartialChaos:
    def test_low_rate_usually_succeeds(self):
        """With a sub-1 rate and retries, most runs land a verified result."""
        released = 0
        for seed in range(6):
            chaos = ChaosHarness(seed=seed, rate=0.3)
            try:
                result = synthesize(COEFFS, WORDLENGTH, chaos=chaos)
            except DegradationError:
                continue
            released += 1
            verify_against_convolution(
                result.architecture.netlist, result.architecture.tap_names,
                list(COEFFS), [1, -1, 3],
            )
        assert released >= 3

    def test_chaos_with_deadline_still_bounded(self):
        """Chaos plus a deadline: the run stays within 2x the budget."""
        import time

        deadline = 1.0
        chaos = ChaosHarness(seed=2, rate=0.5)
        started = time.monotonic()
        try:
            synthesize(
                COEFFS, WORDLENGTH, chaos=chaos,
                config=RobustConfig(deadline_s=deadline),
            )
        except DegradationError:
            pass
        assert time.monotonic() - started < 2.0 * deadline
