"""Durable job store: spec validation, idempotent identity, WAL recovery.

The store is the piece the service's "no accepted job is ever lost"
guarantee rests on, so its contract is pinned tightly: every lifecycle
change is a durable WAL append, recovery folds last-record-wins and flips
interrupted ``running`` jobs back to ``queued``, illegal transitions
raise instead of silently corrupting history, and the same spec always
maps to the same job id.
"""

from __future__ import annotations

import threading

import pytest

from repro.errors import JobStateError, SpecError
from repro.eval.wal import ChecksumLog, checksum
from repro.service.store import JobSpec, JobState, JobStore


def make_spec(**overrides):
    payload = {"experiments": ["fig6"], "filters": [0], "wordlengths": [8]}
    payload.update(overrides)
    return JobSpec.from_dict(payload)


class FakeClock:
    def __init__(self, now: float = 0.0) -> None:
        self.now = now

    def __call__(self) -> float:
        return self.now


class TestJobSpec:
    def test_canonicalizes_experiments_sorted(self):
        spec = JobSpec.from_dict({"experiments": ["table1", "fig6"]})
        assert spec.experiments == ("fig6", "table1")

    def test_same_content_same_signature(self):
        assert make_spec().signature() == make_spec().signature()

    def test_different_content_different_signature(self):
        assert (
            make_spec(filters=[0]).signature()
            != make_spec(filters=[1]).signature()
        )

    def test_none_axes_accepted(self):
        spec = JobSpec.from_dict({"experiments": ["fig6"]})
        assert spec.filters is None and spec.wordlengths is None

    def test_unknown_experiment_rejected(self):
        with pytest.raises(SpecError, match="unknown experiments"):
            JobSpec.from_dict({"experiments": ["nope"]})

    def test_unknown_keys_rejected(self):
        with pytest.raises(SpecError, match="unknown spec keys"):
            JobSpec.from_dict({"experiments": ["fig6"], "bogus": 1})

    def test_duplicate_filters_rejected_not_deduped(self):
        # run_sweep(filter_indices=[0, 0]) produces duplicate result rows;
        # silently deduplicating would change what the job computes.
        with pytest.raises(SpecError, match="duplicates"):
            make_spec(filters=[0, 0])

    def test_duplicate_wordlengths_rejected(self):
        with pytest.raises(SpecError, match="duplicates"):
            make_spec(wordlengths=[8, 8])

    def test_out_of_range_filter_rejected(self):
        with pytest.raises(SpecError, match="out of range"):
            make_spec(filters=[99])

    def test_non_integer_axis_rejected(self):
        with pytest.raises(SpecError, match="integers"):
            make_spec(filters=["0"])
        with pytest.raises(SpecError, match="integers"):
            make_spec(wordlengths=[True])

    def test_tiny_wordlength_rejected(self):
        with pytest.raises(SpecError, match=">= 2"):
            make_spec(wordlengths=[1])

    def test_roundtrips_through_dict(self):
        spec = make_spec()
        assert JobSpec.from_dict(spec.as_dict()) == spec


class TestSubmitIdempotence:
    def test_submit_twice_same_job(self, tmp_path):
        store = JobStore(tmp_path)
        first, enqueue1 = store.submit(make_spec(), "t", 30.0, 300.0)
        second, enqueue2 = store.submit(make_spec(), "t", 30.0, 300.0)
        assert enqueue1 and not enqueue2
        assert first.job_id == second.job_id
        assert len(store.list_jobs()) == 1

    def test_completed_job_not_requeued(self, tmp_path):
        store = JobStore(tmp_path)
        record, _ = store.submit(make_spec(), "t", 30.0, 300.0)
        store.transition(record.job_id, JobState.RUNNING)
        store.transition(record.job_id, JobState.COMPLETED)
        again, enqueue = store.submit(make_spec(), "t", 30.0, 300.0)
        assert not enqueue
        assert again.state == JobState.COMPLETED

    def test_failed_job_requeued_with_fresh_budgets(self, tmp_path):
        store = JobStore(tmp_path)
        record, _ = store.submit(make_spec(), "t", 30.0, 300.0)
        store.transition(record.job_id, JobState.RUNNING)
        store.transition(
            record.job_id, JobState.FAILED, error="boom", error_type="X"
        )
        again, enqueue = store.submit(make_spec(), "t", 5.0, 50.0)
        assert enqueue
        assert again.state == JobState.QUEUED
        assert again.error is None and again.error_type is None
        assert again.task_deadline_s == 5.0 and again.deadline_s == 50.0

    def test_cancelled_and_expired_jobs_requeue(self, tmp_path):
        store = JobStore(tmp_path)
        for terminal in (JobState.CANCELLED, JobState.EXPIRED):
            record, _ = store.submit(make_spec(), "t", 30.0, 300.0)
            store.transition(record.job_id, terminal)
            again, enqueue = store.submit(make_spec(), "t", 30.0, 300.0)
            assert enqueue and again.state == JobState.QUEUED


class TestDeadlineClock:
    def test_expires_at_starts_ticking_at_submit(self, tmp_path):
        # The job deadline covers queue wait + run: a job stuck behind a
        # backlog must be reapable, not wait forever with no deadline.
        clock = FakeClock(1000.0)
        store = JobStore(tmp_path, clock=clock)
        record, _ = store.submit(make_spec(), "t", 30.0, 300.0)
        assert record.expires_at == 1300.0

    def test_requeue_resets_the_deadline(self, tmp_path):
        clock = FakeClock(1000.0)
        store = JobStore(tmp_path, clock=clock)
        record, _ = store.submit(make_spec(), "t", 30.0, 300.0)
        store.transition(record.job_id, JobState.RUNNING)
        store.transition(record.job_id, JobState.FAILED)
        clock.now = 5000.0
        again, _ = store.submit(make_spec(), "t", 30.0, 60.0)
        assert again.expires_at == 5060.0


class TestTransitions:
    def test_full_happy_path(self, tmp_path):
        store = JobStore(tmp_path)
        record, _ = store.submit(make_spec(), "t", 30.0, 300.0)
        store.transition(record.job_id, JobState.RUNNING, attempts=1)
        final = store.transition(record.job_id, JobState.COMPLETED)
        assert final.state == JobState.COMPLETED and final.attempts == 1

    def test_illegal_transition_raises(self, tmp_path):
        store = JobStore(tmp_path)
        record, _ = store.submit(make_spec(), "t", 30.0, 300.0)
        with pytest.raises(JobStateError, match="queued -> completed"):
            store.transition(record.job_id, JobState.COMPLETED)

    def test_completed_is_terminal_forever(self, tmp_path):
        store = JobStore(tmp_path)
        record, _ = store.submit(make_spec(), "t", 30.0, 300.0)
        store.transition(record.job_id, JobState.RUNNING)
        store.transition(record.job_id, JobState.COMPLETED)
        for state in (JobState.QUEUED, JobState.RUNNING, JobState.FAILED):
            with pytest.raises(JobStateError):
                store.transition(record.job_id, state)

    def test_unknown_job_raises(self, tmp_path):
        store = JobStore(tmp_path)
        with pytest.raises(JobStateError, match="unknown job"):
            store.transition("job-missing", JobState.RUNNING)
        with pytest.raises(JobStateError, match="unknown job"):
            store.get("job-missing")

    def test_cancel_beats_dispatcher_completion(self, tmp_path):
        # The dispatcher's completion transition must lose cleanly to a
        # reaper/cancel that reached the store first.
        store = JobStore(tmp_path)
        record, _ = store.submit(make_spec(), "t", 30.0, 300.0)
        store.transition(record.job_id, JobState.RUNNING)
        store.transition(record.job_id, JobState.CANCELLED)
        with pytest.raises(JobStateError):
            store.transition(record.job_id, JobState.COMPLETED)


class TestRecovery:
    def test_reopen_restores_jobs(self, tmp_path):
        store = JobStore(tmp_path)
        record, _ = store.submit(make_spec(), "tenant-a", 30.0, 300.0)
        store.close()
        reopened = JobStore(tmp_path)
        got = reopened.get(record.job_id)
        assert got.state == JobState.QUEUED
        assert got.tenant == "tenant-a"
        assert got.spec == record.spec

    def test_running_jobs_requeued_as_resumed(self, tmp_path):
        store = JobStore(tmp_path)
        record, _ = store.submit(make_spec(), "t", 30.0, 300.0)
        store.transition(record.job_id, JobState.RUNNING, attempts=1)
        store.close()  # simulate the server dying mid-job (post-fsync)
        reopened = JobStore(tmp_path)
        got = reopened.get(record.job_id)
        assert got.state == JobState.QUEUED
        assert got.resumed is True

    def test_terminal_states_survive_restart(self, tmp_path):
        store = JobStore(tmp_path)
        record, _ = store.submit(make_spec(), "t", 30.0, 300.0)
        store.transition(record.job_id, JobState.RUNNING)
        store.transition(record.job_id, JobState.COMPLETED)
        store.close()
        assert JobStore(tmp_path).get(record.job_id).state == (
            JobState.COMPLETED
        )

    def test_recovery_compacts_the_log(self, tmp_path):
        store = JobStore(tmp_path)
        record, _ = store.submit(make_spec(), "t", 30.0, 300.0)
        for _ in range(3):
            store.transition(record.job_id, JobState.RUNNING)
            store.transition(record.job_id, JobState.FAILED)
            store.submit(make_spec(), "t", 30.0, 300.0)  # requeue
        store.close()
        reopened = JobStore(tmp_path)
        reopened.close()
        # header + one record per job, regardless of history length
        lines = (tmp_path / "jobs.wal").read_text().splitlines()
        assert len(lines) == 2

    def test_recovery_restarts_the_deadline_clock(self, tmp_path):
        clock = FakeClock(1000.0)
        store = JobStore(tmp_path, clock=clock)
        queued, _ = store.submit(make_spec(), "t", 30.0, 300.0)
        running, _ = store.submit(make_spec(filters=[1]), "t", 30.0, 300.0)
        store.transition(running.job_id, JobState.RUNNING)
        store.close()
        # The server was down far past both deadlines; surviving jobs must
        # not be instantly expired for downtime they could not help.
        late = FakeClock(99_000.0)
        reopened = JobStore(tmp_path, clock=late)
        for job_id in (queued.job_id, running.job_id):
            got = reopened.get(job_id)
            assert got.state == JobState.QUEUED
            assert got.expires_at == 99_000.0 + 300.0
        reopened.close()

    def test_crashed_compaction_leaves_the_old_log_intact(
        self, tmp_path, monkeypatch
    ):
        # Compaction must never truncate the live WAL in place: fail the
        # rename and prove the store keeps serving from the old log (an IO
        # failure mid-compaction is degraded, not fatal).
        import repro.service.store as store_mod

        store = JobStore(tmp_path)
        record, _ = store.submit(make_spec(), "t", 30.0, 300.0)
        store.close()
        before = (tmp_path / "jobs.wal").read_bytes()

        def crash(src, dst):
            raise OSError("simulated crash at rename")

        monkeypatch.setattr(store_mod.os, "replace", crash)
        degraded = JobStore(tmp_path)
        assert (tmp_path / "jobs.wal").read_bytes() == before
        assert degraded.get(record.job_id).state == JobState.QUEUED
        degraded.close()
        monkeypatch.undo()
        reopened = JobStore(tmp_path)
        assert reopened.get(record.job_id).state == JobState.QUEUED
        reopened.close()

    def test_stale_compaction_tmp_is_harmless(self, tmp_path):
        store = JobStore(tmp_path)
        record, _ = store.submit(make_spec(), "t", 30.0, 300.0)
        store.close()
        # A crash between writing the compacted tmp and the rename leaves
        # the tmp behind; the next recovery overwrites and consumes it.
        (tmp_path / "jobs.wal.compact").write_text(
            "torn garbage\n", encoding="utf-8"
        )
        reopened = JobStore(tmp_path)
        assert reopened.get(record.job_id).state == JobState.QUEUED
        reopened.close()
        assert not (tmp_path / "jobs.wal.compact").exists()

    def test_torn_tail_is_truncated(self, tmp_path):
        store = JobStore(tmp_path)
        record, _ = store.submit(make_spec(), "t", 30.0, 300.0)
        store.transition(record.job_id, JobState.RUNNING)
        store.close()
        with open(tmp_path / "jobs.wal", "a", encoding="utf-8") as fh:
            fh.write("deadbeef {torn")  # killed mid-append
        reopened = JobStore(tmp_path)
        # The torn line is dropped; the last durable state (running) is
        # recovered and requeued.
        got = reopened.get(record.job_id)
        assert got.state == JobState.QUEUED and got.resumed

    def test_foreign_log_rejected(self, tmp_path):
        from repro.errors import JournalError

        log = ChecksumLog.create(
            tmp_path / "jobs.wal", {"format": 99, "store": "jobs"}
        )
        log.close()
        with pytest.raises(JournalError, match="format"):
            JobStore(tmp_path)


class TestResults:
    def test_write_read_roundtrip(self, tmp_path):
        store = JobStore(tmp_path)
        record, _ = store.submit(make_spec(), "t", 30.0, 300.0)
        store.transition(record.job_id, JobState.RUNNING)
        store.write_result(record.job_id, '{"sweep": []}')
        store.transition(record.job_id, JobState.COMPLETED)
        assert store.read_result(record.job_id) == '{"sweep": []}'

    def test_result_of_incomplete_job_raises(self, tmp_path):
        store = JobStore(tmp_path)
        record, _ = store.submit(make_spec(), "t", 30.0, 300.0)
        with pytest.raises(JobStateError, match="not completed"):
            store.read_result(record.job_id)

    def test_no_tmp_droppings_after_write(self, tmp_path):
        store = JobStore(tmp_path)
        record, _ = store.submit(make_spec(), "t", 30.0, 300.0)
        store.write_result(record.job_id, "x" * 4096)
        leftovers = [
            p for p in store.results_dir.iterdir()
            if p.suffix == ".tmp"
        ]
        assert leftovers == []


class TestConcurrency:
    def test_concurrent_submits_yield_one_job(self, tmp_path):
        store = JobStore(tmp_path)
        results = []

        def submit():
            results.append(store.submit(make_spec(), "t", 30.0, 300.0))

        threads = [threading.Thread(target=submit) for _ in range(8)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert len(store.list_jobs()) == 1
        assert sum(1 for _, enqueue in results if enqueue) == 1


class TestWalFaults:
    """A failed WAL append must never acknowledge — or corrupt — a job."""

    def _store(self, tmp_path, **injector_options):
        from repro.robust.chaos import StoreFaultInjector

        injector = StoreFaultInjector(**injector_options)
        return JobStore(tmp_path, fault_injector=injector), injector

    def test_enospc_on_submit_never_acknowledges(self, tmp_path):
        from repro.errors import StoreUnavailable

        store, _ = self._store(tmp_path, seed=3, enospc_rate=1.0)
        with pytest.raises(StoreUnavailable) as excinfo:
            store.submit(make_spec(), "t", 30.0, 300.0)
        assert excinfo.value.retry_after_s > 0.0
        # Rolled back completely: the job is unknown in memory...
        assert store.list_jobs() == []
        assert store.append_errors == 1
        # ...and on disk — a fresh recovery sees an empty table.
        assert JobStore(tmp_path).list_jobs() == []

    def test_retry_after_transient_enospc_succeeds(self, tmp_path):
        from repro.errors import StoreUnavailable

        store, _ = self._store(
            tmp_path, seed=3, enospc_rate=1.0, max_faults=1
        )
        with pytest.raises(StoreUnavailable):
            store.submit(make_spec(), "t", 30.0, 300.0)
        record, enqueue = store.submit(make_spec(), "t", 30.0, 300.0)
        assert enqueue and record.state == JobState.QUEUED

    def test_enospc_on_transition_keeps_previous_state(self, tmp_path):
        from repro.errors import StoreUnavailable
        from repro.robust.chaos import StoreFaultInjector

        store = JobStore(tmp_path)
        record, _ = store.submit(make_spec(), "t", 30.0, 300.0)
        before = store.get(record.job_id)
        store.fault_injector = StoreFaultInjector(seed=3, enospc_rate=1.0)
        with pytest.raises(StoreUnavailable):
            store.transition(record.job_id, JobState.RUNNING)
        after = store.get(record.job_id)
        assert after.state == JobState.QUEUED
        assert after.revision == before.revision
        # The failed transition is absent from durable history too.
        assert JobStore(tmp_path).get(record.job_id).state == JobState.QUEUED


class TestLongPollPlumbing:
    def test_revision_bumps_on_every_transition(self, tmp_path):
        store = JobStore(tmp_path)
        record, _ = store.submit(make_spec(), "t", 30.0, 300.0)
        assert record.revision == 1
        running = store.transition(record.job_id, JobState.RUNNING)
        completed = store.transition(record.job_id, JobState.COMPLETED)
        assert (running.revision, completed.revision) == (2, 3)

    def test_wait_for_change_returns_immediately_on_stale_etag(
        self, tmp_path
    ):
        store = JobStore(tmp_path)
        record, _ = store.submit(make_spec(), "t", 30.0, 300.0)
        got = store.wait_for_change(record.job_id, etag=0, timeout_s=30.0)
        assert got.revision == record.revision

    def test_wait_for_change_times_out_to_current_record(self, tmp_path):
        store = JobStore(tmp_path)
        record, _ = store.submit(make_spec(), "t", 30.0, 300.0)
        got = store.wait_for_change(
            record.job_id, etag=record.revision, timeout_s=0.05
        )
        assert got.revision == record.revision

    def test_wait_for_change_wakes_on_transition(self, tmp_path):
        store = JobStore(tmp_path)
        record, _ = store.submit(make_spec(), "t", 30.0, 300.0)
        seen = []

        def wait():
            seen.append(store.wait_for_change(
                record.job_id, etag=record.revision, timeout_s=30.0
            ))

        waiter = threading.Thread(target=wait)
        waiter.start()
        store.transition(record.job_id, JobState.RUNNING)
        waiter.join(timeout=10.0)
        assert not waiter.is_alive()
        assert seen and seen[0].state == JobState.RUNNING

    def test_wait_for_change_unknown_job_raises(self, tmp_path):
        store = JobStore(tmp_path)
        with pytest.raises(JobStateError):
            store.wait_for_change("job-nope", etag=None, timeout_s=0.01)


class TestEnospcAndReaping:
    """Satellite hardening: ENOSPC mid-operation and crash-debris cleanup.

    The faults are injected through the IO fabric (one-shot ENOSPC at a
    chosen operation), so the store's real code paths run unmodified —
    no monkeypatching of ``os``.
    """

    def _fault(self, predicate):
        from repro.robust.crashsim.fabric import FaultPointFabric, RealIo

        return FaultPointFabric(RealIo(), predicate)

    def test_enospc_mid_compaction_store_keeps_serving(self, tmp_path):
        from repro.robust.crashsim import fabric as iofabric

        store = JobStore(tmp_path)
        record, _ = store.submit(make_spec(), "t", 30.0, 300.0)
        store.close()
        old_log = (tmp_path / "jobs.wal").read_bytes()

        fab = self._fault(
            lambda kind, path: kind == "open" and path.endswith(".compact")
        )
        with iofabric.scope(fab):
            degraded = JobStore(tmp_path)
        assert fab.fired, "fault never reached the compaction path"
        # The live log is untouched and the job still fully served.
        assert (tmp_path / "jobs.wal").read_bytes() == old_log
        assert degraded.get(record.job_id).state == JobState.QUEUED
        # The store stays writable: lifecycle appends go to the old log.
        degraded.transition(record.job_id, JobState.RUNNING)
        degraded.close()
        # Next restart (healthy disk) compacts successfully.
        healthy = JobStore(tmp_path)
        assert healthy.get(record.job_id).state == JobState.QUEUED  # requeued
        healthy.close()

    def test_enospc_mid_result_write_leaves_no_partial_result(self, tmp_path):
        from repro.robust.crashsim import fabric as iofabric

        store = JobStore(tmp_path)
        record, _ = store.submit(make_spec(), "t", 30.0, 300.0)
        fab = self._fault(
            lambda kind, path: kind == "replace" and path.endswith(".json")
        )
        with iofabric.scope(fab):
            # The publishing rename fails: the caller sees the error, the
            # target never appears, the temp is unlinked on the way out.
            with pytest.raises(OSError):
                store.write_result(record.job_id, '{"status": "ok"}')
        assert fab.fired
        assert not (tmp_path / "results" / f"{record.job_id}.json").exists()
        assert list((tmp_path / "results").glob("*.tmp")) == []
        # A retry on a healthy disk succeeds end to end.
        store.write_result(record.job_id, '{"status": "ok"}')
        store.transition(record.job_id, JobState.RUNNING)
        store.transition(record.job_id, JobState.COMPLETED)
        assert store.read_result(record.job_id) == '{"status": "ok"}'
        store.close()

    def test_stale_tmp_debris_reaped_on_restart(self, tmp_path):
        store = JobStore(tmp_path)
        record, _ = store.submit(make_spec(), "t", 30.0, 300.0)
        store.write_result(record.job_id, "{}")
        store.close()
        # Debris a crash mid-write would leave behind (both spellings:
        # result temps and artifact-store temps).
        (tmp_path / "artifacts").mkdir(exist_ok=True)
        (tmp_path / "results" / f".{record.job_id}.x1.tmp").write_text("junk")
        (tmp_path / "artifacts" / ".tmp-abc").write_text("junk")
        reopened = JobStore(tmp_path)
        assert list((tmp_path / "results").glob(".*.tmp")) == []
        assert list((tmp_path / "artifacts").glob(".tmp-*")) == []
        # The durable result itself is untouched.
        assert (tmp_path / "results" / f"{record.job_id}.json").exists()
        reopened.close()


class TestDurabilityOpOrdering:
    """Regression pins for the satellite fsync fixes, proven op-by-op.

    A recording fabric journals the exact operation sequence, so these
    tests fail if anyone ever deletes the fsyncs again — without needing
    the full crash-state sweep.
    """

    def test_write_result_fsyncs_data_then_directory_then_acks(
        self, tmp_path
    ):
        from repro.robust.crashsim import fabric as iofabric
        from repro.robust.crashsim.fabric import SimDisk

        sim = SimDisk(tmp_path)
        with iofabric.scope(sim):
            store = JobStore(tmp_path / "store")
            record, _ = store.submit(make_spec(), "t", 30.0, 300.0)
            start = len(sim.ops)
            store.write_result(record.job_id, "{}")
            store.close()
        ops = sim.ops[start:]

        def index(kind, **match):
            return next(
                i for i, op in enumerate(ops)
                if op.kind == kind
                and all(getattr(op, k) == v for k, v in match.items())
            )

        # tmp create+write, fsync(data), replace, fsync_dir(results), ack.
        i_fsync = index("fsync")
        i_replace = index("replace")
        i_dirsync = index("fsync_dir", path="store/results")
        i_ack = index("ack")
        assert i_fsync < i_replace < i_dirsync < i_ack
        assert ops[i_replace].dst == f"store/results/{record.job_id}.json"

    def test_wal_creation_fsyncs_parent_directory_before_ack(self, tmp_path):
        from repro.robust.crashsim import fabric as iofabric
        from repro.robust.crashsim.fabric import SimDisk

        sim = SimDisk(tmp_path)
        with iofabric.scope(sim):
            log = ChecksumLog.create(
                tmp_path / "fresh.wal", {"format": 1, "store": "t"}
            )
            log.close()
        kinds = [op.kind for op in sim.ops]
        # create, header write, fsync(file), fsync_dir(parent), ack.
        assert kinds.index("fsync") < kinds.index("fsync_dir")
        assert kinds.index("fsync_dir") < kinds.index("ack")
        assert sim.ops[kinds.index("fsync_dir")].path == "."
