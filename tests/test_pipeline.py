"""Unit + property tests for the pipelining transform."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.arch import simulate_tdf_filter
from repro.core import schedule_pipeline, simulate_pipelined, synthesize_mrpf
from repro.errors import SynthesisError
from repro.hwcost import RIPPLE_CARRY

COEFFS = st.lists(
    st.integers(min_value=-(2**9), max_value=2**9), min_size=2, max_size=10
).filter(lambda cs: any(cs))
SAMPLES = [5, -3, 17, 0, 2, -9, 100, 42, -7, 13, 1, 1, 1, 8, -8]


class TestScheduleValidation:
    def test_bad_stage_depth(self, paper_coefficients):
        arch = synthesize_mrpf(paper_coefficients, 7)
        with pytest.raises(SynthesisError):
            schedule_pipeline(arch.netlist, max_stage_depth=0)

    def test_corrupt_netlist_rejected(self, paper_coefficients):
        """The scheduler walks raw operand wiring, so a corrupt netlist must
        fail the structural audit instead of yielding a nonsense schedule."""
        from repro.errors import VerificationError
        from repro.robust import NetlistMutator

        arch = synthesize_mrpf(paper_coefficients, 7)
        _, mutant = NetlistMutator(
            seed=0, operators=("node_value",)
        ).mutate(arch.netlist)
        with pytest.raises(VerificationError):
            schedule_pipeline(mutant, max_stage_depth=2)


class TestScheduleStructure:
    def test_stage_zero_for_input(self, paper_coefficients):
        arch = synthesize_mrpf(paper_coefficients, 7)
        schedule = schedule_pipeline(arch.netlist, max_stage_depth=2)
        assert schedule.stage_of_node[0] == 0

    def test_stage_depth_budget_respected(self, paper_coefficients):
        """No stage contains an adder chain longer than the budget."""
        arch = synthesize_mrpf(paper_coefficients, 7)
        for budget in (1, 2, 3):
            schedule = schedule_pipeline(arch.netlist, max_stage_depth=budget)
            # Recompute within-stage depth and check the budget.
            local = [0] * len(arch.netlist)
            for node in arch.netlist.nodes[1:]:
                same = [
                    local[op.node]
                    for op in node.operands
                    if schedule.stage_of_node[op.node]
                    == schedule.stage_of_node[node.id]
                ]
                local[node.id] = 1 + max(same, default=0)
                assert local[node.id] <= budget

    def test_stages_monotone_along_edges(self, paper_coefficients):
        arch = synthesize_mrpf(paper_coefficients, 7)
        schedule = schedule_pipeline(arch.netlist, max_stage_depth=1)
        for node in arch.netlist.nodes[1:]:
            for op in node.operands:
                assert schedule.stage_of_node[op.node] <= schedule.stage_of_node[
                    node.id
                ]

    def test_tighter_budget_more_stages(self, paper_coefficients):
        arch = synthesize_mrpf(paper_coefficients, 7)
        loose = schedule_pipeline(arch.netlist, max_stage_depth=8)
        tight = schedule_pipeline(arch.netlist, max_stage_depth=1)
        assert tight.num_stages >= loose.num_stages
        assert tight.clock_period_ns <= loose.clock_period_ns

    def test_speedup_at_least_one(self, paper_coefficients):
        arch = synthesize_mrpf(paper_coefficients, 7)
        schedule = schedule_pipeline(arch.netlist, max_stage_depth=1)
        assert schedule.throughput_speedup >= 1.0

    def test_register_bits_positive_when_multi_stage(self, paper_coefficients):
        arch = synthesize_mrpf(paper_coefficients, 7)
        schedule = schedule_pipeline(arch.netlist, max_stage_depth=1)
        if schedule.num_stages > 1:
            assert schedule.register_bits > 0

    def test_alternative_adder_model(self, paper_coefficients):
        arch = synthesize_mrpf(paper_coefficients, 7)
        schedule = schedule_pipeline(
            arch.netlist, max_stage_depth=2, model=RIPPLE_CARRY
        )
        assert schedule.clock_period_ns > 0


class TestPipelinedEquivalence:
    @given(COEFFS, st.sampled_from([1, 2, 3]))
    @settings(max_examples=40, deadline=None)
    def test_latency_shifted_equivalence(self, coeffs, budget):
        """Pipelined output == combinational output delayed by the latency."""
        arch = synthesize_mrpf(coeffs, 10, verify=False)
        schedule = schedule_pipeline(arch.netlist, max_stage_depth=budget)
        flat = simulate_tdf_filter(arch.netlist, arch.tap_names, SAMPLES)
        piped = simulate_pipelined(arch.netlist, arch.tap_names, SAMPLES, schedule)
        k = schedule.latency
        assert piped[k:] == flat[: len(flat) - k]
        assert piped[:k] == [0] * k
