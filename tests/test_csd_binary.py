"""Unit + property tests for CSD, binary/SM encodings and MSD enumeration."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.numrep import (
    Representation,
    adder_cost,
    binary_nonzero_count,
    binary_width,
    csd_nonzero_count,
    digit_cost,
    encode,
    encode_binary,
    encode_csd,
    encode_sign_magnitude,
    enumerate_msd,
    is_csd,
    minimal_nonzero_count,
    msd_count,
    sm_nonzero_count,
    split_sign_magnitude,
)

VALUES = st.integers(min_value=-(2**20), max_value=2**20)
SMALL_VALUES = st.integers(min_value=-4096, max_value=4096)


class TestBinary:
    def test_zero(self):
        assert encode_binary(0).value == 0
        assert binary_nonzero_count(0) == 0

    def test_positive(self):
        assert encode_binary(11).digits == (1, 1, 0, 1)

    def test_negative_digits_all_negative(self):
        d = encode_binary(-11)
        assert d.value == -11
        assert all(x in (0, -1) for x in d.digits)

    def test_nonzero_count_is_popcount(self):
        assert binary_nonzero_count(0b101101) == 4
        assert binary_nonzero_count(-0b101101) == 4

    def test_width(self):
        assert binary_width(0) == 0
        assert binary_width(255) == 8
        assert binary_width(-256) == 9

    @given(VALUES)
    def test_roundtrip(self, n):
        assert encode_binary(n).value == n

    @given(VALUES)
    def test_count_matches_encoding(self, n):
        assert encode_binary(n).nonzero_count == binary_nonzero_count(n)


class TestSignMagnitude:
    def test_split(self):
        assert split_sign_magnitude(0) == (0, 0)
        assert split_sign_magnitude(7) == (1, 7)
        assert split_sign_magnitude(-7) == (-1, 7)

    @given(VALUES)
    def test_encode_matches_binary(self, n):
        assert encode_sign_magnitude(n) == encode_binary(n)

    @given(VALUES)
    def test_count(self, n):
        assert sm_nonzero_count(n) == binary_nonzero_count(n)


class TestCsd:
    def test_zero(self):
        assert encode_csd(0).value == 0

    def test_known_values(self):
        # 7 = 8 - 1
        assert encode_csd(7).terms == ((0, -1), (3, 1))
        # 45 = 32 + 16 - 4 + 1 -> CSD: 64 - 16 - 4 + 1
        assert encode_csd(45).value == 45

    @given(VALUES)
    def test_roundtrip(self, n):
        assert encode_csd(n).value == n

    @given(VALUES)
    def test_no_adjacent_nonzeros(self, n):
        assert is_csd(encode_csd(n))

    @given(SMALL_VALUES)
    def test_minimality_against_independent_oracle(self, n):
        """CSD digit count equals the recurrence-based minimum."""
        assert encode_csd(n).nonzero_count == minimal_nonzero_count(n)

    @given(VALUES)
    def test_negation_symmetry(self, n):
        assert encode_csd(-n) == encode_csd(n).negated()

    @given(st.integers(min_value=-(2**18), max_value=2**18),
           st.integers(min_value=0, max_value=4))
    def test_shift_invariance_of_count(self, n, k):
        assert csd_nonzero_count(n << k) == csd_nonzero_count(n)

    def test_average_density_below_binary(self):
        """CSD is denser-free: never more nonzeros than binary, on a sweep."""
        for n in range(1, 2048):
            assert csd_nonzero_count(n) <= binary_nonzero_count(n)


class TestMsd:
    def test_zero_single_encoding(self):
        assert enumerate_msd(0) == [encode_csd(0)]

    def test_contains_csd(self):
        for n in (3, 7, 11, 45, 93, -23):
            assert encode_csd(n) in enumerate_msd(n)

    @given(st.integers(min_value=-512, max_value=512).filter(lambda n: n != 0))
    def test_all_encodings_minimal_and_correct(self, n):
        target = minimal_nonzero_count(n)
        encodings = enumerate_msd(n)
        assert encodings
        for d in encodings:
            assert d.value == n
            assert d.nonzero_count == target

    def test_known_count_for_7(self):
        # 7 = 8-1 (only minimal 2-digit form within width 4)
        assert msd_count(7) >= 1

    def test_count_positive(self):
        assert msd_count(45) >= 1

    @given(st.integers(min_value=1, max_value=256))
    def test_minimal_count_shift_invariant(self, n):
        assert minimal_nonzero_count(n) == minimal_nonzero_count(n * 8)


class TestCostDispatch:
    def test_digit_cost_csd(self):
        assert digit_cost(7, Representation.CSD) == 2

    def test_digit_cost_sm(self):
        assert digit_cost(7, Representation.SM) == 3

    def test_adder_cost_power_of_two_free(self):
        for rep in Representation:
            assert adder_cost(64, rep) == 0
            assert adder_cost(0, rep) == 0

    def test_adder_cost_is_digits_minus_one(self):
        assert adder_cost(7, Representation.CSD) == 1
        assert adder_cost(7, Representation.SM) == 2

    def test_encode_dispatch(self):
        assert encode(11, Representation.CSD) == encode_csd(11)
        assert encode(11, Representation.SM) == encode_binary(11)

    def test_labels(self):
        assert Representation.CSD.label == "CSD/SPT"
        assert Representation.SM.label == "sign-magnitude"

    @given(VALUES)
    def test_csd_cost_never_above_sm(self, n):
        assert digit_cost(n, Representation.CSD) <= digit_cost(n, Representation.SM)
