"""Tests for the self-checking Verilog testbench emitter."""

import re

import pytest

from repro.arch import ShiftAddNetlist, emit_testbench, emit_verilog, output_width
from repro.core import synthesize_mrpf
from repro.errors import NetlistError


@pytest.fixture(scope="module")
def arch():
    return synthesize_mrpf([7, 66, 17, 9, 27, 41, 56, 11], wordlength=7)


class TestOutputWidth:
    def test_covers_accumulation(self, arch):
        out = output_width(arch.netlist, arch.tap_names, 12)
        acc = sum(abs(c) for c in arch.coefficients)
        assert out >= acc.bit_length() + 12

    def test_zero_taps(self):
        nl = ShiftAddNetlist()
        nl.mark_output("tap0", None)
        assert output_width(nl, ["tap0"], 8) >= 9


class TestTestbench:
    def test_structure(self, arch):
        tb = emit_testbench(arch.netlist, arch.tap_names,
                            module_name="mrpf8", input_bits=12)
        assert "module mrpf8_tb;" in tb
        assert "mrpf8 dut (.clk(clk), .rst(rst), .x(x), .y(y));" in tb
        assert tb.rstrip().endswith("endmodule")
        assert "$finish;" in tb

    def test_expected_values_from_simulator(self, arch):
        stimulus = [1, -1, 5, 0, 100]
        from repro.arch import simulate_tdf_filter

        expected = simulate_tdf_filter(arch.netlist, arch.tap_names, stimulus)
        tb = emit_testbench(arch.netlist, arch.tap_names, input_bits=12,
                            stimulus=stimulus)
        for index, value in enumerate(expected):
            assert f"expect_y[{index}] = {value};" in tb

    def test_stimulus_count_matches(self, arch):
        stimulus = [3, -3, 7]
        tb = emit_testbench(arch.netlist, arch.tap_names, input_bits=12,
                            stimulus=stimulus)
        assert "localparam integer N = 3;" in tb
        assert len(re.findall(r"stim\[\d+\] = ", tb)) == 3

    def test_out_of_range_stimulus_rejected(self, arch):
        with pytest.raises(NetlistError):
            emit_testbench(arch.netlist, arch.tap_names, input_bits=8,
                           stimulus=[1000])

    def test_default_stimulus_fits_width(self, arch):
        for bits in (8, 12, 16):
            tb = emit_testbench(arch.netlist, arch.tap_names, input_bits=bits)
            assert "PASS" in tb

    def test_pairs_with_module_port_names(self, arch):
        module = emit_verilog(arch.netlist, arch.tap_names,
                              module_name="pairme", input_bits=10)
        tb = emit_testbench(arch.netlist, arch.tap_names,
                            module_name="pairme", input_bits=10)
        for port in ("clk", "rst", "x", "y"):
            assert port in module and port in tb
