"""Tests for coefficient-quantization noise analysis."""

import pytest

from repro.errors import QuantizationError
from repro.filters import benchmark_filter
from repro.quantize import (
    ScalingScheme,
    coefficient_noise,
    quantize,
    simulated_snr_db,
)


@pytest.fixture(scope="module")
def folded():
    return benchmark_filter(1).folded


class TestAnalyticNoise:
    def test_snr_grows_with_wordlength(self, folded):
        snrs = [coefficient_noise(quantize(folded, w)).snr_db
                for w in (6, 10, 14, 18)]
        assert snrs == sorted(snrs)

    def test_roughly_six_db_per_bit(self, folded):
        """Each coefficient bit buys ~6 dB of SNR (the classic rule)."""
        a = coefficient_noise(quantize(folded, 8)).snr_db
        b = coefficient_noise(quantize(folded, 16)).snr_db
        per_bit = (b - a) / 8.0
        assert 4.0 < per_bit < 8.0

    def test_maximal_scaling_at_least_as_clean(self, folded):
        for w in (8, 12):
            uniform = coefficient_noise(quantize(folded, w))
            maximal = coefficient_noise(
                quantize(folded, w, ScalingScheme.MAXIMAL)
            )
            assert maximal.error_power <= uniform.error_power + 1e-15

    def test_effective_bits_tracks_snr(self, folded):
        report = coefficient_noise(quantize(folded, 12))
        assert report.effective_bits == pytest.approx(report.snr_db / 6.02)

    def test_exact_quantization_infinite_snr(self):
        # Taps already exactly representable: integers / full-scale.
        q = quantize([1.0, -0.5, 0.25], 10)
        report = coefficient_noise(q)
        assert report.snr_db > 60  # representable almost exactly


class TestSimulatedSnr:
    def test_matches_analytic_within_tolerance(self, folded):
        """White-input empirical SNR tracks the analytic estimate."""
        for w in (8, 12):
            q = quantize(folded, w)
            analytic = coefficient_noise(q).snr_db
            empirical = simulated_snr_db(q, num_samples=8192)
            assert abs(empirical - analytic) < 2.0

    def test_too_short_stimulus_rejected(self, folded):
        q = quantize(folded, 10)
        with pytest.raises(QuantizationError):
            simulated_snr_db(q, num_samples=len(folded))

    def test_deterministic(self, folded):
        q = quantize(folded, 10)
        assert simulated_snr_db(q) == simulated_snr_db(q)
