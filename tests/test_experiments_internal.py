"""Tests for evaluation internals: method dispatch, caching, summary keys."""

import pytest

from repro.errors import ReproError
from repro.eval.experiments import (
    ExperimentRow,
    MethodResult,
    _method_result,
    clear_cache,
)
from repro.filters import benchmark_filter
from repro.quantize import ScalingScheme


@pytest.fixture(scope="module")
def designed():
    return benchmark_filter(0)


class TestMethodDispatch:
    @pytest.mark.parametrize(
        "method", ["simple", "cse", "mst_diff", "mrpf", "mrpf_cse"]
    )
    def test_every_method_produces_a_result(self, designed, method):
        result = _method_result(
            designed, 0, 8, ScalingScheme.UNIFORM, method
        )
        assert result.method == method
        assert result.adders >= 0
        assert result.cla_weighted >= 0.0

    def test_unknown_method_rejected(self, designed):
        with pytest.raises(ReproError):
            _method_result(designed, 0, 8, ScalingScheme.UNIFORM, "magic")

    def test_seed_size_only_for_mrp_methods(self, designed):
        simple = _method_result(designed, 0, 8, ScalingScheme.UNIFORM, "simple")
        mrpf = _method_result(designed, 0, 8, ScalingScheme.UNIFORM, "mrpf")
        assert simple.seed_size is None
        assert mrpf.seed_size is not None

    def test_cache_hit_returns_same_object(self, designed):
        clear_cache()
        first = _method_result(designed, 0, 8, ScalingScheme.UNIFORM, "simple")
        second = _method_result(designed, 0, 8, ScalingScheme.UNIFORM, "simple")
        assert first is second

    def test_cache_key_distinguishes_scaling(self, designed):
        uniform = _method_result(designed, 0, 8, ScalingScheme.UNIFORM, "simple")
        maximal = _method_result(designed, 0, 8, ScalingScheme.MAXIMAL, "simple")
        assert uniform is not maximal


class TestExperimentRowAccessors:
    def make_row(self, a, b):
        return ExperimentRow(
            filter_name="x", num_taps=5, num_unique_taps=3,
            wordlength=8, scaling="uniform",
            results={
                "simple": MethodResult("simple", a, 1, float(a)),
                "mrpf": MethodResult("mrpf", b, 1, float(b)),
            },
        )

    def test_normalized(self):
        row = self.make_row(10, 5)
        assert row.normalized("mrpf", "simple") == pytest.approx(0.5)

    def test_normalized_zero_baseline(self):
        row = self.make_row(0, 0)
        assert row.normalized("mrpf", "simple") == 0.0
        row = self.make_row(0, 3)
        assert row.normalized("mrpf", "simple") == float("inf")

    def test_adders_per_tap(self):
        row = self.make_row(10, 6)
        assert row.adders_per_tap("mrpf") == pytest.approx(2.0)
