"""Differential fuzzing: every synthesis path vs exact convolution.

For random coefficient vectors AND random input stimuli, the synthesized MRP
architecture simulated through the cycle-accurate TDF model must match
``_convolve_exact`` bit for bit, and every baseline — hcub, mst_diff,
cse_filter, decor, bhm — must agree with direct convolution on the same
stimulus.  Unlike ``test_cross_method`` (fixed stimulus, no decor), the
stimulus here is adversarial too, so register-chain/latency bugs that a
fixed probe vector happens to miss get exercised.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.arch.simulate import _convolve_exact, simulate_tdf_filter
from repro.baselines import (
    synthesize_bhm,
    synthesize_cse_filter,
    synthesize_decor,
    synthesize_hcub,
    synthesize_mst_diff,
)
from repro.core import synthesize_mrpf
from repro.eval import best_mrpf

WORDLENGTH = 11

COEFFS = st.lists(
    st.integers(min_value=-(2**10), max_value=2**10), min_size=1, max_size=10
).filter(lambda cs: any(cs))

STIMULUS = st.lists(
    st.integers(min_value=-(2**15), max_value=2**15), min_size=1, max_size=24
)


class TestMrpfAgainstExactConvolution:
    @given(COEFFS, STIMULUS)
    @settings(max_examples=40)
    def test_mrpf_tdf_matches_convolution(self, coeffs, samples):
        arch = synthesize_mrpf(coeffs, WORDLENGTH, verify=False)
        got = simulate_tdf_filter(arch.netlist, arch.tap_names, samples)
        assert got == _convolve_exact(coeffs, samples)

    @given(COEFFS, STIMULUS)
    @settings(max_examples=15)
    def test_best_mrpf_matches_convolution(self, coeffs, samples):
        arch = best_mrpf(coeffs, WORDLENGTH)
        got = simulate_tdf_filter(arch.netlist, arch.tap_names, samples)
        assert got == _convolve_exact(coeffs, samples)

    @given(COEFFS, STIMULUS)
    @settings(max_examples=15)
    def test_compressed_seeds_match_convolution(self, coeffs, samples):
        for compression in ("cse", "recursive"):
            arch = synthesize_mrpf(
                coeffs, WORDLENGTH, seed_compression=compression, verify=False
            )
            got = simulate_tdf_filter(arch.netlist, arch.tap_names, samples)
            assert got == _convolve_exact(coeffs, samples)


class TestBaselinesAgainstExactConvolution:
    @given(COEFFS, STIMULUS)
    @settings(max_examples=30)
    def test_netlist_baselines_match_convolution(self, coeffs, samples):
        want = _convolve_exact(coeffs, samples)
        baselines = [
            synthesize_hcub(coeffs),
            synthesize_mst_diff(coeffs, WORDLENGTH, verify=False),
            synthesize_cse_filter(coeffs),
            synthesize_bhm(coeffs),
        ]
        for arch in baselines:
            got = simulate_tdf_filter(arch.netlist, arch.tap_names, samples)
            assert got == want

    @given(COEFFS, STIMULUS)
    @settings(max_examples=30)
    def test_decor_matches_convolution(self, coeffs, samples):
        # DECOR's differenced-multiplier + integrator pipeline is not a plain
        # netlist filter, so it is compared through its own process() path.
        arch = synthesize_decor(coeffs, order=1)
        assert arch.process(samples) == _convolve_exact(coeffs, samples)
