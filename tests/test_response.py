"""Tests for frequency-response measurement across every band type."""

import numpy as np
import pytest
from scipy import signal

from repro.filters import (
    BandType,
    DesignMethod,
    FilterSpec,
    ResponseReport,
    design_fir,
    frequency_response,
    measure_response,
    meets_spec,
)


def spec_for(band, passband, stopband, numtaps=41, rp=0.5, rs=40.0):
    return FilterSpec(
        name="t", band=band, method=DesignMethod.PARKS_MCCLELLAN,
        numtaps=numtaps, passband=passband, stopband=stopband,
        ripple_db=rp, atten_db=rs,
    )


class TestFrequencyResponse:
    def test_grid_normalized_to_nyquist(self):
        freqs, response = frequency_response([1.0, 0.0, 1.0])
        assert freqs[0] == pytest.approx(0.0)
        assert freqs[-1] <= 1.0
        assert len(freqs) == len(response)

    def test_allpass_impulse(self):
        freqs, response = frequency_response([1.0])
        assert np.allclose(np.abs(response), 1.0)

    def test_dc_gain_is_tap_sum(self):
        taps = [0.2, 0.3, 0.3, 0.2]
        _, response = frequency_response(taps)
        assert abs(response[0]) == pytest.approx(sum(taps))


class TestBandMasks:
    """measure_response must select the right grid regions per band type."""

    def test_lowpass(self):
        spec = spec_for(BandType.LOWPASS, (0.0, 0.2), (0.3, 1.0))
        taps = design_fir(spec)
        report = measure_response(taps, spec)
        assert report.stopband_atten_db > 30

    def test_highpass(self):
        spec = spec_for(BandType.HIGHPASS, (0.5, 1.0), (0.0, 0.35))
        taps = design_fir(spec)
        report = measure_response(taps, spec)
        assert report.stopband_atten_db > 30

    def test_bandpass(self):
        spec = spec_for(BandType.BANDPASS, (0.35, 0.55), (0.22, 0.68),
                        numtaps=51)
        taps = design_fir(spec)
        report = measure_response(taps, spec)
        assert report.stopband_atten_db > 30

    def test_bandstop(self):
        spec = spec_for(BandType.BANDSTOP, (0.2, 0.8), (0.35, 0.65),
                        numtaps=51)
        taps = design_fir(spec)
        report = measure_response(taps, spec)
        assert report.stopband_atten_db > 30

    def test_wrong_band_fails_spec(self):
        """A low-pass filter measured against a high-pass spec must fail."""
        lp_spec = spec_for(BandType.LOWPASS, (0.0, 0.2), (0.3, 1.0))
        taps = design_fir(lp_spec)
        hp_spec = spec_for(BandType.HIGHPASS, (0.5, 1.0), (0.0, 0.35))
        assert not meets_spec(taps, hp_spec)


class TestGainInvariance:
    def test_scaling_does_not_change_measurement(self):
        """Coefficient scaling must not register as a spec change."""
        spec = spec_for(BandType.LOWPASS, (0.0, 0.2), (0.3, 1.0))
        taps = design_fir(spec)
        base = measure_response(taps, spec)
        scaled = measure_response([t * 37.5 for t in taps], spec)
        assert scaled.passband_ripple_db == pytest.approx(
            base.passband_ripple_db, abs=1e-9
        )
        assert scaled.stopband_atten_db == pytest.approx(
            base.stopband_atten_db, abs=1e-9
        )

    def test_negated_filter_equivalent(self):
        spec = spec_for(BandType.LOWPASS, (0.0, 0.2), (0.3, 1.0))
        taps = design_fir(spec)
        base = measure_response(taps, spec)
        flipped = measure_response([-t for t in taps], spec)
        assert flipped.stopband_atten_db == pytest.approx(
            base.stopband_atten_db, abs=1e-6
        )


class TestReportSatisfies:
    def test_margin_semantics(self):
        report = ResponseReport(passband_ripple_db=0.6, stopband_atten_db=39.0)
        spec = spec_for(BandType.LOWPASS, (0.0, 0.2), (0.3, 1.0),
                        rp=0.5, rs=40.0)
        assert not report.satisfies(spec)
        assert report.satisfies(spec, margin_db=1.0)

    def test_degenerate_zero_gain(self):
        spec = spec_for(BandType.LOWPASS, (0.0, 0.2), (0.3, 1.0))
        report = measure_response([0.0] * 11 + [1e-15], spec)
        assert not report.satisfies(spec)
