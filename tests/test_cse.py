"""Unit + property tests for CSE pattern mining and Hartley elimination."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.arch import ShiftAddNetlist
from repro.cse import (
    INPUT_SYMBOL,
    Pattern,
    Term,
    build_cse_refs,
    count_frequencies,
    cse_adder_count,
    eliminate,
    find_pattern_occurrences,
)
from repro.errors import SynthesisError
from repro.numrep import Representation, adder_cost

CONSTS = st.lists(
    st.integers(min_value=-(2**14), max_value=2**14).filter(lambda n: n != 0),
    min_size=1, max_size=10,
)


class TestPatternModel:
    def test_pattern_value(self):
        p = Pattern(sym_a=0, sym_b=0, delta=2, rel_sign=1)  # 1 + 4 = 5
        assert p.value({0: 1}) == 5

    def test_pattern_value_subtract(self):
        p = Pattern(sym_a=0, sym_b=0, delta=2, rel_sign=-1)  # 1 - 4 = -3
        assert p.value({0: 1}) == -3

    def test_occurrence_enumeration(self):
        # constant 5 = 101: one (0,0,2,+) occurrence
        terms = [[Term(pos=0, sign=1), Term(pos=2, sign=1)]]
        occs = find_pattern_occurrences(terms, {0: 1})
        patterns = list(occs)
        assert Pattern(0, 0, 2, 1) in patterns

    def test_trivial_patterns_skipped(self):
        # x + x = 2x is wiring, not a shareable adder
        terms = [[Term(pos=0, sign=1), Term(pos=1, sign=1)],
                 [Term(pos=0, sign=1), Term(pos=1, sign=-1)]]
        occs = find_pattern_occurrences(terms, {0: 1})
        for pattern in occs:
            value = pattern.value({0: 1})
            assert abs(value) not in (1, 2, 4)

    def test_frequency_counts_non_overlapping(self):
        # 0b10101: digits at 0,2,4 -> pattern (delta=2) occurs twice but
        # the middle digit can only participate once.
        terms = [[Term(pos=0, sign=1), Term(pos=2, sign=1), Term(pos=4, sign=1)]]
        occs = find_pattern_occurrences(terms, {0: 1})
        freq = count_frequencies(occs)
        assert freq[Pattern(0, 0, 2, 1)] == 1

    def test_frequency_across_constants(self):
        terms = [
            [Term(pos=0, sign=1), Term(pos=2, sign=1)],
            [Term(pos=1, sign=1), Term(pos=3, sign=1)],  # shifted copy
        ]
        occs = find_pattern_occurrences(terms, {0: 1})
        freq = count_frequencies(occs)
        assert freq[Pattern(0, 0, 2, 1)] == 2


class TestEliminate:
    def test_zero_rejected(self):
        with pytest.raises(SynthesisError):
            eliminate([5, 0])

    def test_shared_pattern_extracted(self):
        # 45 = CSD 101̄01̄? actually 45 and 165 share "101" structure in binary SM.
        network = eliminate([0b101, 0b10100], Representation.SM)
        assert len(network.subexpressions) >= 1
        network.validate()

    def test_adder_count_never_worse_than_plain(self):
        constants = [45, 89, 173, 205]
        plain = sum(adder_cost(c) for c in constants)
        assert cse_adder_count(constants) <= plain

    def test_known_sharing_win(self):
        """Two constants that are shifts of a common 2-digit pattern."""
        network = eliminate([5, 20, 325], Representation.SM)
        # 5 = 101, 20 = 10100, 325 = 101000101: 'x + x<<2' is everywhere.
        assert network.adder_count < sum(
            adder_cost(c, Representation.SM) for c in (5, 20, 325)
        )

    def test_max_rounds_limits_extraction(self):
        full = eliminate([5, 20, 325, 85], Representation.SM)
        limited = eliminate([5, 20, 325, 85], Representation.SM, max_rounds=0)
        assert len(limited.subexpressions) == 0
        assert len(full.subexpressions) >= 1

    @given(CONSTS, st.sampled_from(list(Representation)))
    @settings(max_examples=80, deadline=None)
    def test_reconstruction_exact(self, constants, rep):
        network = eliminate(constants, rep)
        network.validate()
        for i, c in enumerate(constants):
            assert network.reconstruct(i) == c

    @given(CONSTS)
    @settings(max_examples=60, deadline=None)
    def test_never_more_adders_than_plain_chains(self, constants):
        plain = sum(adder_cost(c) for c in constants)
        network = eliminate(constants)
        assert network.adder_count <= plain


class TestMaterialization:
    @given(CONSTS, st.sampled_from(list(Representation)))
    @settings(max_examples=60, deadline=None)
    def test_refs_carry_exact_constants(self, constants, rep):
        network = eliminate(constants, rep)
        nl = ShiftAddNetlist()
        refs = build_cse_refs(nl, network)
        for c, ref in zip(constants, refs):
            assert nl.ref_value(ref) == c
        nl.validate()

    @given(CONSTS)
    @settings(max_examples=40, deadline=None)
    def test_materialized_adders_at_most_counted(self, constants):
        """Netlist fundamental reuse can only improve on the CSE count."""
        network = eliminate(constants)
        nl = ShiftAddNetlist()
        build_cse_refs(nl, network)
        assert nl.adder_count <= network.adder_count


class TestCseAdderCountHelper:
    def test_deduplicates_odd_parts(self):
        # 5, 10, -20 are one odd fundamental
        assert cse_adder_count([5, 10, -20]) == cse_adder_count([5])

    def test_empty_after_filtering(self):
        assert cse_adder_count([0, 1, 2, 64]) == 0
