"""No-lost-job certification over a faulty wire.

The contract under test: a job the service *accepted* is eventually
COMPLETED (or EXPIRED) exactly once — never lost, never run twice — and
every artifact fetched through a hostile network is byte-identical to
what a clean in-process generation produces.  "Hostile" means a real
:class:`~repro.robust.netchaos.NetChaosProxy` between a real
:class:`~repro.service.client.ServiceClient` and a real server: resets
mid-response, truncated bodies, hangs, garbage bytes, refused
connections, 5xx bursts — each class certified in isolation, then all
at once.

Exactly-once is proven from durable evidence, not in-memory state: the
job WAL is replayed and the number of ``running`` records per job id
must be exactly 1 (every extra execution attempt would have appended
another), and the served view's ``attempts`` must agree.

Fault schedules are seeded (:func:`_seed_for` scans for a seed whose
deterministic draw sequence fires the class under test early), so a
failure reproduces exactly.  The storm seed can be pinned from the
environment (``REPRO_NETCHAOS_SEED``) to replay a CI failure locally.
"""

from __future__ import annotations

import json
import os
from pathlib import Path
from threading import Thread

import pytest

from repro.eval import cache as disk_cache
from repro.eval.experiments import clear_cache
from repro.robust.netchaos import NetChaosProxy, NetFaultPlan, NetInjection
from repro.service.app import ServiceConfig, make_server
from repro.service.artifacts import generate_artifact
from repro.service.client import ServiceClient

#: One cheap design point per fault class keeps the suite CI-sized while
#: giving every class its own fresh job (distinct sweep signature).
FAULT_CLASSES = (
    "refuse", "reset", "hang", "truncate", "garbage", "error_burst",
    "latency",
)

STORM_SEED = int(os.environ.get("REPRO_NETCHAOS_SEED", "3"))


@pytest.fixture(autouse=True)
def _pristine_caches():
    clear_cache()
    disk_cache.configure(None)
    yield
    clear_cache()
    disk_cache.configure(None)


@pytest.fixture(scope="module")
def live(tmp_path_factory):
    data_dir = tmp_path_factory.mktemp("netchaos-data")
    config = ServiceConfig(data_dir=data_dir, port=0, sweep_jobs=2)
    server, service = make_server(config)
    port = server.server_address[1]
    thread = Thread(target=server.serve_forever, daemon=True)
    thread.start()
    yield {"port": port, "service": service, "config": config,
           "data_dir": data_dir}
    server.shutdown()
    server.server_close()
    service.drain(grace_s=30.0)


@pytest.fixture()
def proxied(live):
    """Factory: a chaos proxy plus a client aimed through it."""
    proxies = []

    def make(plan, **client_overrides):
        proxy = NetChaosProxy(live["port"], plan).start()
        proxies.append(proxy)
        options = dict(
            request_timeout_s=0.5,
            deadline_s=120.0,
            max_attempts=64,
            backoff_base_s=0.01,
            backoff_cap_s=0.2,
            poll_wait_s=0.2,
            breaker_threshold=5,
            breaker_cooldown_s=0.2,
            seed=11,
        )
        options.update(client_overrides)
        return proxy, ServiceClient(proxy.base_url, **options)

    yield make
    for proxy in proxies:
        proxy.stop()


def _plan_for(fault: str, seed: int) -> NetFaultPlan:
    """A plan arming only ``fault``, hot enough to fire within a job."""
    rate_field = {
        "refuse": "refuse_rate", "reset": "reset_rate",
        "hang": "hang_rate", "truncate": "truncate_rate",
        "garbage": "garbage_rate", "error_burst": "error_rate",
        "latency": "latency_rate",
    }[fault]
    options = {rate_field: 0.4, "seed": seed,
               "hang_s": 0.8, "latency_s": 0.05, "jitter_s": 0.05}
    return NetFaultPlan(**options)


def _seed_for(fault: str) -> int:
    """The first seed whose schedule fires ``fault`` among connections
    0-2 — draws are pure functions, so this scan is free and the chosen
    schedule replays identically inside the test."""
    for seed in range(200):
        plan = _plan_for(fault, seed)
        if any(plan.draw(i) == fault for i in range(3)):
            return seed
    raise AssertionError(f"no seed fires {fault} early (rate too low?)")


def _wal_running_counts(live):
    """Replay the job WAL: job id -> number of ``running`` records."""
    counts = {}
    wal = Path(live["config"].store_dir) / "jobs.wal"
    for line in wal.read_text(encoding="utf-8").splitlines():
        if not line.strip():
            continue
        record = json.loads(line.split(" ", 1)[1])
        if record.get("state") == "running":
            counts[record["job_id"]] = counts.get(record["job_id"], 0) + 1
    return counts


def _certify(live, client, spec, tenant):
    """Submit through the faulty wire; prove completed-exactly-once."""
    view = client.submit(spec, tenant=tenant)
    job_id = view["job_id"]
    final = client.wait_for(job_id)
    assert final["state"] in ("completed", "expired"), final
    # Exactly-once, from durable evidence: one ``running`` WAL record,
    # and the view's attempt counter agrees.  Idempotent resubmission
    # through ambiguous failures must never have double-executed.
    counts = _wal_running_counts(live)
    assert counts.get(job_id) == 1, (job_id, counts)
    assert final["attempts"] == 1
    return job_id, final


class TestPerFaultClassCertification:
    @pytest.mark.parametrize("fault", FAULT_CLASSES)
    def test_job_completes_exactly_once(self, live, proxied, fault):
        seed = _seed_for(fault)
        proxy, client = proxied(_plan_for(fault, seed))
        # A distinct wordlength per class gives each its own signature,
        # so every class certifies a *fresh* accepted job.
        wordlength = 4 + FAULT_CLASSES.index(fault)
        spec = {"experiments": ["fig6"], "filters": [0],
                "wordlengths": [wordlength]}
        _certify(live, client, spec, tenant=f"chaos-{fault}")
        assert fault in proxy.faults_fired(), (
            f"the {fault} schedule (seed {seed}) never fired: "
            f"{proxy.injections}"
        )

    @pytest.mark.parametrize("fault", ["truncate", "reset", "garbage"])
    def test_artifact_byte_identity_through_corruption(
        self, live, proxied, fault
    ):
        seed = _seed_for(fault)
        proxy, client = proxied(_plan_for(fault, seed))
        served = client.artifact("verilog", 0, 8)
        assert served == generate_artifact(0, 8, "verilog")
        # The guarantee is only interesting if corruption really hit the
        # wire somewhere during this client's session.
        for _ in range(10):
            if fault in proxy.faults_fired():
                break
            client.healthy()
        assert fault in proxy.faults_fired()


class TestStormCertification:
    def test_no_lost_jobs_under_the_full_storm(self, live, proxied):
        plan = NetFaultPlan.storm(seed=STORM_SEED, rate=0.12)
        proxy, client = proxied(plan)
        specs = [
            {"experiments": ["fig6"], "filters": [0], "wordlengths": [11]},
            {"experiments": ["fig6"], "filters": [1], "wordlengths": [11]},
            {"experiments": ["fig6"], "filters": [0], "wordlengths": [12]},
        ]
        job_ids = []
        for index, spec in enumerate(specs):
            job_id, final = _certify(
                live, client, spec, tenant=f"storm-{index}"
            )
            job_ids.append(job_id)
        assert len(set(job_ids)) == len(specs)
        # Something hostile actually happened on the wire during the run.
        assert proxy.injections, "storm seed fired no faults at all"

    def test_resubmission_through_storm_observes_same_job(
        self, live, proxied
    ):
        plan = NetFaultPlan.storm(seed=STORM_SEED + 1, rate=0.12)
        _, client = proxied(plan)
        spec = {"experiments": ["fig6"], "filters": [1],
                "wordlengths": [12]}
        first = client.submit(spec, tenant="storm-replay")
        client.wait_for(first["job_id"])
        # Ambiguity-driven replay: submitting the same spec again (as a
        # client would after a reset it cannot interpret) must observe
        # the existing job, not mint a second execution.
        second = client.submit(spec, tenant="storm-replay")
        assert second["job_id"] == first["job_id"]
        counts = _wal_running_counts(live)
        assert counts.get(first["job_id"]) == 1


class TestProxyMechanics:
    def test_injection_record_is_deterministic(self):
        plan = NetFaultPlan.storm(seed=5, rate=0.3)
        first = [plan.draw(i) for i in range(40)]
        second = [plan.draw(i) for i in range(40)]
        assert first == second
        assert any(first), "seed 5 at rate 0.3 should fire something"

    def test_injection_is_recorded_with_conn_index(self, live, proxied):
        seed = _seed_for("error_burst")
        proxy, client = proxied(_plan_for("error_burst", seed))
        # Drive enough traffic for the scheduled burst to land.
        for _ in range(6):
            client.healthy()
        fired = [i for i in proxy.injections if i.fault == "error_burst"]
        assert fired and isinstance(fired[0], NetInjection)
        assert fired[0].conn_index >= 0

    def test_retarget_switches_upstream(self, live, proxied):
        proxy, client = proxied(NetFaultPlan(seed=0))
        assert client.healthy()
        # Point at a dead port: requests now fail...
        proxy.retarget(1)
        assert not client.healthy()
        # ...and back: service is reachable again through the same proxy.
        proxy.retarget(live["port"])
        assert client.healthy()
