"""Golden-number regression tests.

Every algorithm in this library is deterministic (tie-breaking is total,
stimulus is seeded), so synthesis results are exactly reproducible.  These
tests pin the adder counts of all methods at representative design points;
any behaviour-changing edit to the optimizers trips them loudly instead of
silently shifting the reproduced figures.

If a deliberate algorithm improvement changes these numbers, regenerate the
table (the commands are in the module docstring of each method) and update
EXPERIMENTS.md in the same change.
"""

import pytest

from repro import fastpath
from repro.baselines import (
    synthesize_bhm,
    synthesize_cse_filter,
    synthesize_simple,
)
from repro.eval import best_mrpf
from repro.filters import benchmark_suite
from repro.quantize import ScalingScheme, quantize

# (filter_index, wordlength, scaling) -> method -> exact adder count
GOLDEN = {
    (0, 12, "uniform"): {"simple": 12, "cse": 8, "bhm": 8, "mrpf": 8,
                         "mrpf_cse": 8},
    (0, 12, "maximal"): {"simple": 23, "cse": 13, "bhm": 15, "mrpf": 15,
                         "mrpf_cse": 13},
    (1, 12, "uniform"): {"simple": 30, "cse": 17, "bhm": 14, "mrpf": 14,
                         "mrpf_cse": 14},
    (1, 12, "maximal"): {"simple": 40, "cse": 22, "bhm": 26, "mrpf": 27,
                         "mrpf_cse": 21},
    (2, 12, "uniform"): {"simple": 43, "cse": 20, "bhm": 19, "mrpf": 20,
                         "mrpf_cse": 19},
    (2, 12, "maximal"): {"simple": 67, "cse": 32, "bhm": 40, "mrpf": 30,
                         "mrpf_cse": 27},
    (4, 12, "uniform"): {"simple": 39, "cse": 19, "bhm": 16, "mrpf": 17,
                         "mrpf_cse": 17},
    (4, 12, "maximal"): {"simple": 79, "cse": 36, "bhm": 34, "mrpf": 34,
                         "mrpf_cse": 29},
}


def _quantized(index: int, wordlength: int, scaling: str):
    designed = benchmark_suite()[index]
    scheme = ScalingScheme(scaling)
    return quantize(designed.folded, wordlength, scheme)


@pytest.mark.parametrize("point", sorted(GOLDEN), ids=lambda p: f"{p[0]}-{p[2]}")
class TestGoldenAdderCounts:
    def test_simple(self, point):
        q = _quantized(*point)
        assert synthesize_simple(q.integers).adder_count == GOLDEN[point]["simple"]

    def test_cse(self, point):
        q = _quantized(*point)
        assert synthesize_cse_filter(q.integers).adder_count == GOLDEN[point]["cse"]

    def test_bhm(self, point):
        q = _quantized(*point)
        assert synthesize_bhm(q.integers).adder_count == GOLDEN[point]["bhm"]

    def test_mrpf(self, point):
        q = _quantized(*point)
        assert best_mrpf(q.integers, point[1]).adder_count == GOLDEN[point]["mrpf"]

    def test_mrpf_cse(self, point):
        q = _quantized(*point)
        got = best_mrpf(q.integers, point[1], seed_compression="cse").adder_count
        assert got == GOLDEN[point]["mrpf_cse"]


@pytest.fixture()
def _each_fastpath_mode(request):
    """Restore the ambient fast-path mode after a mode-switching test."""
    yield
    fastpath.set_mode(None)


@pytest.mark.usefixtures("_each_fastpath_mode")
class TestGoldenFastVersusLegacy:
    """The fast kernels reproduce the golden table and artifact bytes.

    The golden numbers above already pin the default (fast) path; here the
    same design points are recomputed with every fast path disabled
    (``REPRO_FASTPATH=off``) and with the pure-python kernel forced, and the
    full exported artifacts — not just adder counts — must be identical
    byte for byte.
    """

    POINTS = [(0, 12, "uniform"), (1, 12, "maximal")]

    def _mrpf_count(self, point):
        q = _quantized(*point)
        return best_mrpf(q.integers, point[1]).adder_count

    @pytest.mark.parametrize("mode", ["off", "python", "auto"])
    @pytest.mark.parametrize("point", POINTS, ids=lambda p: f"{p[0]}-{p[2]}")
    def test_golden_mrpf_under_every_mode(self, mode, point):
        fastpath.set_mode(mode)
        assert self._mrpf_count(point) == GOLDEN[point]["mrpf"]

    @pytest.mark.parametrize("fmt", ["verilog", "c", "dot"])
    def test_table1_artifact_bytes_identical(self, fmt):
        # generate_artifact (not fetch_artifact) so no cache layer can
        # serve mode B the bytes computed under mode A.
        from repro.service.artifacts import generate_artifact

        def artifact():
            return generate_artifact(
                0, 10, fmt,
                scaling=ScalingScheme.MAXIMAL,
            )

        fastpath.set_mode("off")
        legacy = artifact()
        for mode in ("python", "auto"):
            fastpath.set_mode(mode)
            assert artifact() == legacy


class TestGoldenInternalConsistency:
    def test_table_orderings(self):
        """The pinned numbers themselves respect the structural guarantees."""
        for point, methods in GOLDEN.items():
            assert methods["mrpf"] <= methods["simple"]
            assert methods["cse"] <= methods["simple"]
            assert methods["bhm"] <= methods["simple"]
            assert methods["mrpf_cse"] <= methods["simple"]
