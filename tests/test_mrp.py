"""Unit + property tests for MRP stage A (cover + forest = plan)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import MrpOptions, optimize
from repro.errors import SynthesisError
from repro.graph import build_colored_graph
from repro.numrep import Representation

COEFFS = st.lists(
    st.integers(min_value=-(2**10), max_value=2**10), min_size=1, max_size=14
).filter(lambda cs: any(c for c in cs))


class TestOptions:
    def test_bad_beta(self):
        with pytest.raises(SynthesisError):
            MrpOptions(beta=1.5)

    def test_bad_depth(self):
        with pytest.raises(SynthesisError):
            MrpOptions(depth_limit=0)

    def test_bad_shift(self):
        with pytest.raises(SynthesisError):
            MrpOptions(max_shift=-1)

    def test_bad_strategy(self):
        with pytest.raises(SynthesisError):
            MrpOptions(strategy="magic")


class TestDegenerateInputs:
    def test_empty_rejected(self):
        with pytest.raises(SynthesisError):
            optimize([], 8)

    def test_bad_wordlength_rejected(self):
        with pytest.raises(SynthesisError):
            optimize([3], 0)

    def test_all_free_taps(self):
        plan = optimize([0, 1, -4, 16], 8)
        assert plan.vertices == ()
        assert plan.seed == ()
        assert plan.total_adders == 0

    def test_single_vertex_is_root(self):
        plan = optimize([12], 8)  # oddpart 3
        assert plan.vertices == (3,)
        assert plan.roots == (3,)
        assert plan.solution_colors == ()
        assert plan.total_adders == 1  # CSD chain for 3

    def test_repeated_single_vertex(self):
        plan = optimize([3, 6, -12], 8)
        assert plan.vertices == (3,)
        assert plan.total_adders == 1


class TestPaperExample:
    def test_seed_and_overhead_structure(self):
        plan = optimize([7, 66, 17, 9, 27, 41, 56, 11], 7)
        assert set(plan.vertices) == {7, 9, 11, 17, 27, 33, 41}
        # Every vertex accounted for: roots + aliases + children
        forest = plan.forest
        assert len(forest.assignments) == 7
        # SEED covers all solution colors used plus roots
        for color in plan.used_colors:
            assert color in plan.seed

    def test_total_beats_paper_solution(self):
        """The paper's {3,5} + roots {7,66} solution costs 9 adders; the
        greedy must do at least as well."""
        plan = optimize([7, 66, 17, 9, 27, 41, 56, 11], 7)
        assert plan.total_adders <= 9


class TestGraphReuse:
    def test_prebuilt_graph_accepted(self):
        coeffs = [7, 66, 17, 9, 27, 41, 56, 11]
        from repro.core import normalize_taps

        vertices, _ = normalize_taps(coeffs)
        graph = build_colored_graph(vertices, 7, Representation.CSD)
        plan_a = optimize(coeffs, 7)
        plan_b = optimize(coeffs, 7, graph=graph)
        assert plan_a.total_adders == plan_b.total_adders

    def test_mismatched_graph_rejected(self):
        graph = build_colored_graph([3, 5], 7)
        with pytest.raises(SynthesisError):
            optimize([7, 66, 17], 7, graph=graph)


class TestPlanInvariants:
    @given(COEFFS, st.sampled_from([0.0, 0.3, 0.5, 1.0]))
    @settings(max_examples=40, deadline=None)
    def test_cover_and_forest_consistent(self, coeffs, beta):
        plan = optimize(coeffs, 11, MrpOptions(beta=beta))
        forest = plan.forest
        assigned = {a.vertex for a in forest.assignments}
        assert assigned == set(plan.vertices)
        assert set(plan.used_colors) <= set(plan.solution_colors) | set(
            forest.aliases
        )
        assert plan.total_adders >= 0

    @given(COEFFS)
    @settings(max_examples=30, deadline=None)
    def test_structural_cost_bound(self, coeffs):
        """A single greedy run is heuristic, but its cost is structurally
        bounded: each vertex contributes at most one overhead adder, and the
        SEED holds at most one constant per vertex plus one per cover step."""
        from repro.numrep import adder_cost

        plan = optimize(coeffs, 11)
        n = len(plan.vertices)
        max_chain = max((adder_cost(v) for v in plan.seed), default=0)
        assert plan.overhead_adders <= n
        assert len(plan.seed) <= n + len(plan.solution_colors)
        assert plan.total_adders <= len(plan.seed) * max_chain + n

    @given(COEFFS)
    @settings(max_examples=15, deadline=None)
    def test_best_mrpf_never_worse_than_simple(self, coeffs):
        """The β-sweep with trivial-plan floor is a hard guarantee."""
        from repro.baselines import simple_adder_count
        from repro.eval import best_mrpf

        arch = best_mrpf(coeffs, 11)
        assert arch.adder_count <= simple_adder_count(coeffs)

    @given(COEFFS, st.sampled_from([1, 2, 3]))
    @settings(max_examples=30, deadline=None)
    def test_depth_limit_respected(self, coeffs, depth):
        plan = optimize(coeffs, 11, MrpOptions(depth_limit=depth))
        assert plan.tree_height <= depth

    @given(COEFFS)
    @settings(max_examples=30, deadline=None)
    def test_savings_strategy_valid(self, coeffs):
        plan = optimize(coeffs, 11, MrpOptions(strategy="savings"))
        assigned = {a.vertex for a in plan.forest.assignments}
        assert assigned == set(plan.vertices)

    @given(COEFFS)
    @settings(max_examples=20, deadline=None)
    def test_sm_representation_valid(self, coeffs):
        plan = optimize(coeffs, 11, MrpOptions(representation=Representation.SM))
        assigned = {a.vertex for a in plan.forest.assignments}
        assert assigned == set(plan.vertices)

    def test_describe_contains_counts(self):
        plan = optimize([7, 66, 17, 9, 27, 41, 56, 11], 7)
        text = plan.describe()
        assert "SEED" in text and "overhead" in text
