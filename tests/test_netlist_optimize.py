"""Unit + property tests for the netlist optimization passes."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.arch import (
    Ref,
    ShiftAddNetlist,
    optimize_netlist,
    reachable_nodes,
    verify_against_convolution,
)
from repro.core import synthesize_mrpf

COEFFS = st.lists(
    st.integers(min_value=-(2**11), max_value=2**11), min_size=1, max_size=12
).filter(lambda cs: any(cs))
SAMPLES = [1, -1, 3, 255, -128, 12345, -999]


class TestReachability:
    def test_input_always_reachable(self):
        nl = ShiftAddNetlist()
        nl.mark_output("y", None)
        assert reachable_nodes(nl) == [0]

    def test_dead_node_excluded(self):
        nl = ShiftAddNetlist()
        live = nl.add(Ref(node=0, shift=2), Ref(node=0, sign=-1))
        nl.add(Ref(node=0, shift=5), Ref(node=0))  # dead
        nl.mark_output("y", live)
        assert reachable_nodes(nl) == [0, live.node]

    def test_transitive_reachability(self):
        nl = ShiftAddNetlist()
        a = nl.add(Ref(node=0, shift=2), Ref(node=0, sign=-1))
        b = nl.add(a, Ref(node=0, shift=5))
        nl.mark_output("y", b)
        assert reachable_nodes(nl) == [0, a.node, b.node]


class TestOptimizePass:
    def test_dead_nodes_removed(self):
        nl = ShiftAddNetlist()
        live = nl.add(Ref(node=0, shift=2), Ref(node=0, sign=-1))
        nl.add(Ref(node=0, shift=5), Ref(node=0))  # dead
        nl.mark_output("y", live)
        optimized = optimize_netlist(nl)
        assert optimized.adder_count == 1

    def test_duplicate_fundamentals_merged(self):
        nl = ShiftAddNetlist()
        a = nl.add(Ref(node=0, shift=2), Ref(node=0, sign=-1))  # 3
        # Privately built 3 << 4 = 48 via a separate chain:
        b = nl.add(Ref(node=0, shift=6), Ref(node=0, shift=4, sign=-1))  # 48
        nl.mark_output("y0", a)
        nl.mark_output("y1", b)
        optimized = optimize_netlist(nl)
        assert optimized.adder_count == 1  # 48 = 3 << 4 reuses the 3 node
        assert optimized.output_values() == {"y0": 3, "y1": 48}

    def test_chain_rebalanced_to_log_depth(self):
        nl = ShiftAddNetlist()
        # 8-term linear chain: depth 7.
        acc = Ref(node=0, shift=0, sign=1)
        for k in range(1, 8):
            acc = nl.add(acc, Ref(node=0, shift=2 * k))
        nl.mark_output("y", acc)
        assert nl.max_depth == 7
        optimized = optimize_netlist(nl)
        assert optimized.adder_count == 7  # same adders
        assert optimized.max_depth == 3    # ceil(log2 8)
        assert optimized.output_values() == nl.output_values()

    def test_shared_nodes_stay_shared(self):
        nl = ShiftAddNetlist()
        shared = nl.add(Ref(node=0, shift=2), Ref(node=0, sign=-1))  # 3
        c1 = nl.add(shared, Ref(node=0, shift=4))   # 19
        c2 = nl.add(shared, Ref(node=0, shift=5))   # 35
        nl.mark_output("y0", c1)
        nl.mark_output("y1", c2)
        optimized = optimize_netlist(nl)
        assert optimized.adder_count == 3  # no duplication of the shared 3

    def test_zero_outputs_preserved(self):
        nl = ShiftAddNetlist()
        nl.mark_output("y", None)
        optimized = optimize_netlist(nl)
        assert optimized.output_values() == {"y": 0}

    @given(COEFFS)
    @settings(max_examples=60, deadline=None)
    def test_optimization_preserves_filter_function(self, coeffs):
        arch = synthesize_mrpf(coeffs, 11, verify=False)
        optimized = optimize_netlist(arch.netlist)
        verify_against_convolution(
            optimized, arch.tap_names, arch.coefficients, SAMPLES
        )

    @given(COEFFS)
    @settings(max_examples=60, deadline=None)
    def test_dedup_never_more_adders(self, coeffs):
        arch = synthesize_mrpf(coeffs, 11, verify=False)
        optimized = optimize_netlist(arch.netlist)
        assert optimized.adder_count <= arch.netlist.adder_count

    @given(COEFFS)
    @settings(max_examples=60, deadline=None)
    def test_structural_pass_never_deeper(self, coeffs):
        """Without dedup, rebalancing is a pure win on both axes."""
        arch = synthesize_mrpf(coeffs, 11, verify=False)
        optimized = optimize_netlist(arch.netlist, dedup=False)
        assert optimized.adder_count <= arch.netlist.adder_count
        assert optimized.max_depth <= arch.netlist.max_depth
        verify_against_convolution(
            optimized, arch.tap_names, arch.coefficients, SAMPLES
        )

    @given(COEFFS)
    @settings(max_examples=30, deadline=None)
    def test_idempotent(self, coeffs):
        arch = synthesize_mrpf(coeffs, 11, verify=False)
        once = optimize_netlist(arch.netlist)
        twice = optimize_netlist(once)
        assert twice.adder_count == once.adder_count
        assert twice.max_depth == once.max_depth
        assert twice.output_values() == once.output_values()
