"""End-to-end service tests over real HTTP against the stdlib server.

Two servers back these tests:

* a module-scoped **live server** with real dispatcher threads running
  real (restricted: fig6, filter 0, W=8) sweeps — exercises the full
  submit → run → result loop, idempotent resubmission, journal sharing,
  and artifact byte-identity against the ``export`` CLI;
* a function-scoped **idle server** whose engine is deliberately never
  started — no dispatcher consumes the queue, so admission control,
  cancellation, and state-dependent status codes can be tested
  deterministically.
"""

from __future__ import annotations

import http.client
import json
import subprocess
import sys
import time
from http.server import ThreadingHTTPServer
from pathlib import Path
from threading import Thread

import pytest

from repro.errors import AdmissionRejected
from repro.eval import cache as disk_cache
from repro.eval.experiments import clear_cache
from repro.service.app import (
    ServiceConfig,
    ServiceHTTPHandler,
    SynthesisService,
    make_server,
)

SPEC = {"experiments": ["fig6"], "filters": [0], "wordlengths": [8]}
OTHER_SPEC = {"experiments": ["fig6"], "filters": [1], "wordlengths": [8]}


@pytest.fixture(autouse=True)
def _pristine_caches():
    clear_cache()
    disk_cache.configure(None)
    yield
    clear_cache()
    disk_cache.configure(None)


def request(port, method, path, body=None):
    """One HTTP request; returns (status, headers dict, decoded body)."""
    conn = http.client.HTTPConnection("127.0.0.1", port, timeout=30)
    try:
        payload = json.dumps(body) if body is not None else None
        conn.request(method, path, body=payload)
        resp = conn.getresponse()
        raw = resp.read()
        return resp.status, dict(resp.getheaders()), raw.decode("utf-8")
    finally:
        conn.close()


def request_json(port, method, path, body=None):
    status, headers, raw = request(port, method, path, body)
    return status, headers, json.loads(raw)


def wait_for_state(port, job_id, states, timeout_s=90.0):
    deadline = time.monotonic() + timeout_s
    while time.monotonic() < deadline:
        status, _, view = request_json(port, "GET", f"/v1/jobs/{job_id}")
        assert status == 200
        if view["state"] in states:
            return view
        time.sleep(0.05)
    raise AssertionError(
        f"job {job_id} did not reach {states} within {timeout_s}s "
        f"(last: {view['state']})"
    )


@pytest.fixture(scope="module")
def live(tmp_path_factory):
    data_dir = tmp_path_factory.mktemp("service-data")
    config = ServiceConfig(data_dir=data_dir, port=0, sweep_jobs=2)
    server, service = make_server(config)
    port = server.server_address[1]
    thread = Thread(target=server.serve_forever, daemon=True)
    thread.start()
    yield {"port": port, "service": service, "config": config}
    server.shutdown()
    server.server_close()
    service.drain(grace_s=30.0)


@pytest.fixture()
def idle(tmp_path):
    """A served engine whose dispatchers were never started."""
    config = ServiceConfig(
        data_dir=tmp_path / "data", port=0, max_queue_depth=2,
        max_queue_depth_per_tenant=1,
    )
    service = SynthesisService(config)

    class _Handler(ServiceHTTPHandler):
        pass

    _Handler.service = service
    server = ThreadingHTTPServer(("127.0.0.1", 0), _Handler)
    server.daemon_threads = True
    thread = Thread(target=server.serve_forever, daemon=True)
    thread.start()
    yield {"port": server.server_address[1], "service": service}
    server.shutdown()
    server.server_close()
    service.store.close()


class TestHealthAndMetrics:
    def test_healthz(self, live):
        status, _, body = request(live["port"], "GET", "/healthz")
        assert status == 200 and body == "ok\n"

    def test_readyz_when_running(self, live):
        status, _, _ = request(live["port"], "GET", "/readyz")
        assert status == 200

    def test_readyz_unstarted_engine_is_not_ready(self, idle):
        status, _, _ = request(idle["port"], "GET", "/readyz")
        assert status == 503

    def test_metrics_exposition(self, live):
        status, headers, body = request(live["port"], "GET", "/metrics")
        assert status == 200
        assert headers["Content-Type"].startswith("text/plain")
        assert "repro_service_admitted_total" in body
        assert 'repro_service_rejected_total{reason="queue_full"}' in body

    def test_unknown_route_404(self, live):
        status, _, _ = request(live["port"], "GET", "/nope")
        assert status == 404


class TestJobLifecycle:
    def test_submit_run_fetch_result(self, live):
        status, _, view = request_json(
            live["port"], "POST", "/v1/jobs", dict(SPEC)
        )
        assert status in (200, 201)  # 200 if an earlier test submitted it
        job_id = view["job_id"]
        final = wait_for_state(live["port"], job_id, {"completed", "failed"})
        assert final["state"] == "completed", final.get("error")
        status, _, raw = request(
            live["port"], "GET", f"/v1/jobs/{job_id}/result"
        )
        assert status == 200
        result = json.loads(raw)
        assert result["sweep"], "completed sweep returned an empty result"

    def test_resubmission_is_idempotent(self, live):
        # Satellite: interleaved same-signature submissions collapse onto
        # one job and one sweep journal (journaled resume, not re-run).
        s1, _, v1 = request_json(live["port"], "POST", "/v1/jobs", dict(SPEC))
        s2, _, v2 = request_json(live["port"], "POST", "/v1/jobs", dict(SPEC))
        assert v1["job_id"] == v2["job_id"]
        assert s2 == 200  # the second observer never creates a new job
        wait_for_state(live["port"], v1["job_id"], {"completed"})
        s3, _, v3 = request_json(live["port"], "POST", "/v1/jobs", dict(SPEC))
        assert s3 == 200 and v3["state"] == "completed"
        # One journal per *signature*, however many submissions: the job id
        # and the journal share the signature prefix, and the total journal
        # count never exceeds the number of distinct jobs ever admitted.
        signature = v1["job_id"][len("job-"):]
        assert (
            live["config"].journal_dir / f"sweep-{signature}.wal"
        ).exists()
        _, _, overview = request_json(live["port"], "GET", "/v1/jobs")
        distinct = {j["job_id"] for j in overview["jobs"]}
        journals = list(live["config"].journal_dir.glob("sweep-*.wal"))
        assert len(journals) <= len(distinct)

    def test_distinct_specs_get_distinct_jobs(self, live):
        _, _, v1 = request_json(live["port"], "POST", "/v1/jobs", dict(SPEC))
        _, _, v2 = request_json(
            live["port"], "POST", "/v1/jobs", dict(OTHER_SPEC)
        )
        assert v1["job_id"] != v2["job_id"]
        wait_for_state(live["port"], v2["job_id"], {"completed"})

    def test_jobs_overview(self, live):
        request_json(live["port"], "POST", "/v1/jobs", dict(SPEC))
        status, _, overview = request_json(live["port"], "GET", "/v1/jobs")
        assert status == 200
        assert "counts" in overview and "queue_depth" in overview
        assert any(j["job_id"].startswith("job-") for j in overview["jobs"])

    def test_status_of_unknown_job_is_404(self, live):
        status, _, _ = request_json(
            live["port"], "GET", "/v1/jobs/job-doesnotexist"
        )
        assert status == 404

    def test_result_of_unfinished_job_is_409(self, idle):
        _, _, view = request_json(idle["port"], "POST", "/v1/jobs", dict(SPEC))
        status, _, _ = request_json(
            idle["port"], "GET", f"/v1/jobs/{view['job_id']}/result"
        )
        assert status == 409

    def test_cancel_queued_job(self, idle):
        _, _, view = request_json(idle["port"], "POST", "/v1/jobs", dict(SPEC))
        status, _, cancelled = request_json(
            idle["port"], "DELETE", f"/v1/jobs/{view['job_id']}"
        )
        assert status == 200 and cancelled["state"] == "cancelled"
        # Cancelling an already-cancelled job is an illegal transition.
        status, _, _ = request_json(
            idle["port"], "DELETE", f"/v1/jobs/{view['job_id']}"
        )
        assert status == 409
        # But resubmitting revives it as a fresh queued attempt.  The
        # cancelled job's stale in-memory queue entry still occupies its
        # original tenant's slot until a dispatcher pops and discards it
        # (there is none in this fixture), so revive under another tenant.
        status, _, again = request_json(
            idle["port"], "POST", "/v1/jobs", dict(SPEC, tenant="revive")
        )
        assert status == 201 and again["state"] == "queued"


class TestValidation:
    def test_malformed_json_400(self, live):
        conn = http.client.HTTPConnection("127.0.0.1", live["port"], timeout=30)
        try:
            conn.request("POST", "/v1/jobs", body="{not json")
            assert conn.getresponse().status == 400
        finally:
            conn.close()

    def test_unknown_experiment_400(self, live):
        status, _, body = request_json(
            live["port"], "POST", "/v1/jobs", {"experiments": ["bogus"]}
        )
        assert status == 400 and body["error"] == "SpecError"

    def test_unknown_spec_key_400(self, live):
        status, _, _ = request_json(
            live["port"], "POST", "/v1/jobs",
            {"experiments": ["fig6"], "surprise": True},
        )
        assert status == 400

    def test_non_positive_deadline_400(self, live):
        status, _, _ = request_json(
            live["port"], "POST", "/v1/jobs",
            dict(SPEC, deadline_s=-5),
        )
        assert status == 400

    def test_over_ceiling_deadline_clamped_not_rejected(self, idle):
        status, _, view = request_json(
            idle["port"], "POST", "/v1/jobs",
            dict(SPEC, deadline_s=10_000_000),
        )
        assert status == 201
        assert view["clamped"] is True

    def test_bad_artifact_kind_400(self, live):
        status, _, _ = request_json(
            live["port"], "GET", "/v1/artifacts/vhdl?filter=0&wordlength=8"
        )
        assert status == 400

    def test_artifact_missing_param_400(self, live):
        status, _, _ = request_json(
            live["port"], "GET", "/v1/artifacts/verilog?filter=0"
        )
        assert status == 400


class TestAdmission:
    def test_queue_full_sheds_with_retry_after(self, idle):
        port, service = idle["port"], idle["service"]
        # No dispatcher is running, so these stay queued forever.
        service.queue.push("filler-a", "job-fill-1")
        service.queue.push("filler-b", "job-fill-2")
        status, headers, body = request_json(
            port, "POST", "/v1/jobs", dict(SPEC)
        )
        assert status == 429
        assert body["error"] == "AdmissionRejected"
        assert int(headers["Retry-After"]) >= 1

    def test_tenant_cap_sheds_only_that_tenant(self, idle):
        port, service = idle["port"], idle["service"]
        service.queue.push("greedy", "job-fill-1")
        status, _, _ = request_json(
            port, "POST", "/v1/jobs", dict(SPEC, tenant="greedy")
        )
        assert status == 429
        status, _, _ = request_json(
            port, "POST", "/v1/jobs", dict(SPEC, tenant="modest")
        )
        assert status == 201

    def test_observing_existing_job_bypasses_admission(self, idle):
        port, service = idle["port"], idle["service"]
        _, _, view = request_json(port, "POST", "/v1/jobs", dict(SPEC))
        # Saturate the queue after the job is in.
        service.queue.push("filler", "job-fill-1")
        with pytest.raises(AdmissionRejected):
            service.admission.admit("anyone")
        # Re-observing the existing job still succeeds (200, not 429).
        status, _, again = request_json(port, "POST", "/v1/jobs", dict(SPEC))
        assert status == 200 and again["job_id"] == view["job_id"]

    def test_open_breaker_returns_503(self, idle):
        port, service = idle["port"], idle["service"]
        service.breaker.record_rebuilds(service.breaker.threshold)
        status, headers, body = request_json(
            port, "POST", "/v1/jobs", dict(OTHER_SPEC)
        )
        assert status == 503
        assert body["error"] == "CircuitOpen"
        assert "Retry-After" in headers


class TestArtifacts:
    def test_verilog_served_matches_cli_export_bytes(self, live, tmp_path):
        """The invariant the chaos suite leans on: service bytes == CLI bytes."""
        status, headers, served = request(
            live["port"], "GET",
            "/v1/artifacts/verilog?filter=0&wordlength=8",
        )
        assert status == 200
        assert "verilog" in headers["Content-Type"]
        out = tmp_path / "direct.v"
        proc = subprocess.run(
            [
                sys.executable, "-m", "repro.eval", "export",
                "--format", "verilog", "--filters", "0",
                "--wordlengths", "8", "--output", str(out),
            ],
            capture_output=True, text=True, timeout=300,
            cwd=Path(__file__).resolve().parent.parent / "src",
        )
        assert proc.returncode == 0, proc.stderr
        assert served == out.read_text(encoding="utf-8")

    def test_c_and_dot_artifacts(self, live):
        for kind, marker in (("c", "int"), ("dot", "digraph")):
            status, _, body = request(
                live["port"], "GET",
                f"/v1/artifacts/{kind}?filter=0&wordlength=8",
            )
            assert status == 200 and marker in body

    def test_artifact_respects_representation_param(self, live):
        _, _, csd = request(
            live["port"], "GET",
            "/v1/artifacts/dot?filter=0&wordlength=8&representation=csd",
        )
        _, _, sm = request(
            live["port"], "GET",
            "/v1/artifacts/dot?filter=0&wordlength=8&representation=sm",
        )
        assert csd  # both generate; they may or may not differ structurally
        assert sm


@pytest.fixture()
def flaky_store(tmp_path):
    """An idle server whose first WAL append fails with ENOSPC."""
    from repro.robust.chaos import StoreFaultInjector

    config = ServiceConfig(
        data_dir=tmp_path / "data", port=0,
        store_chaos=StoreFaultInjector(seed=3, enospc_rate=1.0, max_faults=1),
    )
    service = SynthesisService(config)

    class _Handler(ServiceHTTPHandler):
        pass

    _Handler.service = service
    server = ThreadingHTTPServer(("127.0.0.1", 0), _Handler)
    server.daemon_threads = True
    thread = Thread(target=server.serve_forever, daemon=True)
    thread.start()
    yield {"port": server.server_address[1], "service": service}
    server.shutdown()
    server.server_close()
    service.store.close()


class TestStoreUnavailable:
    def test_enospc_submit_is_503_with_retry_after(self, flaky_store):
        port = flaky_store["port"]
        status, headers, body = request_json(
            port, "POST", "/v1/jobs", dict(SPEC)
        )
        assert status == 503
        assert body["error"] == "StoreUnavailable"
        assert float(headers["Retry-After"]) > 0.0
        # Never acknowledged: the job does not exist server-side.
        listing = request_json(port, "GET", "/v1/jobs")[2]
        assert listing["jobs"] == []
        # The injector spends its single fault above, so the client's
        # retry — the behavior Retry-After asks for — succeeds.
        status, _, view = request_json(port, "POST", "/v1/jobs", dict(SPEC))
        assert status == 201 and view["state"] == "queued"


class TestLongPoll:
    def test_status_carries_etag_header(self, idle):
        port = idle["port"]
        _, _, view = request_json(port, "POST", "/v1/jobs", dict(SPEC))
        status, headers, polled = request_json(
            port, "GET", f"/v1/jobs/{view['job_id']}"
        )
        assert status == 200
        assert int(headers["ETag"]) == polled["revision"]

    def test_wait_with_stale_etag_returns_immediately(self, idle):
        port = idle["port"]
        _, _, view = request_json(port, "POST", "/v1/jobs", dict(SPEC))
        start = time.monotonic()
        status, _, polled = request_json(
            port, "GET", f"/v1/jobs/{view['job_id']}?wait=20&etag=0"
        )
        assert status == 200 and polled["revision"] == view["revision"]
        assert time.monotonic() - start < 5.0

    def test_wait_holds_until_transition(self, idle):
        port, service = idle["port"], idle["service"]
        _, _, view = request_json(port, "POST", "/v1/jobs", dict(SPEC))
        job_id, etag = view["job_id"], view["revision"]

        def nudge():
            time.sleep(0.2)
            service.store.transition(job_id, "running")

        nudger = Thread(target=nudge)
        nudger.start()
        start = time.monotonic()
        _, _, polled = request_json(
            port, "GET", f"/v1/jobs/{job_id}?wait=30&etag={etag}"
        )
        elapsed = time.monotonic() - start
        nudger.join()
        assert polled["state"] == "running"
        assert polled["revision"] > etag
        # Woken by the transition, not a 30s timeout.
        assert 0.1 < elapsed < 10.0

    def test_wait_clamped_to_server_ceiling(self, tmp_path):
        # A server configured with a tiny ceiling answers an absurd wait
        # after the clamped hold, never the requested one.
        config = ServiceConfig(
            data_dir=tmp_path / "data", port=0, long_poll_max_s=0.2,
        )
        service = SynthesisService(config)

        class _Handler(ServiceHTTPHandler):
            pass

        _Handler.service = service
        server = ThreadingHTTPServer(("127.0.0.1", 0), _Handler)
        server.daemon_threads = True
        Thread(target=server.serve_forever, daemon=True).start()
        port = server.server_address[1]
        try:
            _, _, view = request_json(port, "POST", "/v1/jobs", dict(SPEC))
            start = time.monotonic()
            status, _, _ = request_json(
                port, "GET",
                f"/v1/jobs/{view['job_id']}?wait=1e9&etag={view['revision']}",
            )
            assert status == 200
            assert 0.15 < time.monotonic() - start < 5.0
        finally:
            server.shutdown()
            server.server_close()
            service.store.close()

    def test_malformed_wait_is_400(self, idle):
        port = idle["port"]
        _, _, view = request_json(port, "POST", "/v1/jobs", dict(SPEC))
        status, _, body = request_json(
            port, "GET", f"/v1/jobs/{view['job_id']}?wait=soon"
        )
        assert status == 400 and body["error"] == "SpecError"


@pytest.fixture()
def roomy(tmp_path):
    """An idle server with queue room for several tenants' jobs."""
    config = ServiceConfig(
        data_dir=tmp_path / "data", port=0, max_queue_depth=32,
        max_queue_depth_per_tenant=32,
    )
    service = SynthesisService(config)

    class _Handler(ServiceHTTPHandler):
        pass

    _Handler.service = service
    server = ThreadingHTTPServer(("127.0.0.1", 0), _Handler)
    server.daemon_threads = True
    thread = Thread(target=server.serve_forever, daemon=True)
    thread.start()
    yield {"port": server.server_address[1], "service": service}
    server.shutdown()
    server.server_close()
    service.store.close()


class TestPagination:
    def _submit_n(self, port, n):
        ids = []
        for index in range(n):
            status, _, view = request_json(
                port, "POST", "/v1/jobs",
                {"experiments": ["fig6"], "filters": [0],
                 "wordlengths": [4 + index]},
            )
            assert status == 201, view
            ids.append(view["job_id"])
        return sorted(ids)

    def test_jobs_listing_pages_are_stable_and_complete(self, roomy):
        port = roomy["port"]
        ids = self._submit_n(port, 5)
        walked, cursor = [], None
        while True:
            path = "/v1/jobs?limit=2"
            if cursor:
                path += f"&cursor={cursor}"
            status, _, page = request_json(port, "GET", path)
            assert status == 200
            assert len(page["jobs"]) <= 2
            walked.extend(v["job_id"] for v in page["jobs"])
            cursor = page["next_cursor"]
            if not cursor:
                break
        assert walked == ids  # every job once, in stable sorted order
        # Counts describe the whole table, not the page.
        assert page["counts"]["queued"] == 5

    def test_artifact_catalog_pages(self, idle):
        port = idle["port"]
        status, _, first = request_json(port, "GET", "/v1/artifacts?limit=3")
        assert status == 200
        assert len(first["artifacts"]) == 3
        assert first["next_cursor"] == first["artifacts"][-1]["id"]
        status, _, rest = request_json(
            port, "GET",
            f"/v1/artifacts?limit=500&cursor={first['next_cursor']}",
        )
        assert status == 200
        ids = [e["id"] for e in first["artifacts"]] + [
            e["id"] for e in rest["artifacts"]
        ]
        assert ids == sorted(ids) and len(ids) == len(set(ids))
        # Every entry carries a ready-to-fetch URL.
        assert all(
            e["url"].startswith("/v1/artifacts/")
            for e in first["artifacts"]
        )

    def test_bad_limit_is_400(self, idle):
        status, _, body = request_json(
            idle["port"], "GET", "/v1/jobs?limit=0"
        )
        assert status == 400 and body["error"] == "SpecError"
        status, _, _ = request_json(
            idle["port"], "GET", "/v1/jobs?limit=banana"
        )
        assert status == 400
