"""Unit tests for the observability layer: tracer, metrics, reporting."""

from __future__ import annotations

import json

import pytest

from repro import obs
from repro.obs import (
    NULL_SPAN_CONTEXT,
    TRACE_FORMAT_VERSION,
    JsonlSink,
    Tracer,
    format_breakdown,
    load_trace,
    phase_breakdown,
    validate_trace,
)
from repro.obs.metrics import DEFAULT_BUCKETS, MetricsRegistry


@pytest.fixture(autouse=True)
def _clean_obs():
    """Each test starts and ends with observability fully torn down."""
    obs.reset()
    yield
    obs.reset()


# --- tracer ------------------------------------------------------------------


def test_disabled_span_is_shared_noop_singleton():
    assert obs.span("anything", tag=1) is NULL_SPAN_CONTEXT
    with obs.span("anything") as sp:
        assert sp.set_tag("k", "v") is sp
        assert sp.elapsed() == 0.0
    obs.event("ignored", detail="dropped")  # must not raise


def test_tracer_emits_nested_spans_as_jsonl(tmp_path):
    path = tmp_path / "trace.jsonl"
    tracer = Tracer(JsonlSink(path))
    with tracer.span("outer", filter="f0"):
        with tracer.span("inner", depth=1):
            tracer.event("marker", at="inner")
    tracer.close()

    records = load_trace(path)
    assert validate_trace(records) == []
    # Spans close inner-first; the event was written while inner was open.
    kinds = [(r["kind"], r["name"]) for r in records]
    assert kinds == [
        ("event", "marker"), ("span", "inner"), ("span", "outer"),
    ]
    event, inner, outer = records
    assert outer["parent"] is None
    assert inner["parent"] == outer["id"]
    assert event["parent"] == inner["id"]
    assert all(r["v"] == TRACE_FORMAT_VERSION for r in records)
    assert inner["tags"] == {"depth": 1}
    assert inner["wall_s"] >= 0.0 and inner["cpu_s"] >= 0.0
    # JSONL determinism: each line's keys are serialized sorted.
    for line in path.read_text().splitlines():
        keys = list(json.loads(line).keys())
        assert keys == sorted(keys)


def test_span_error_status_propagates_exception(tmp_path):
    tracer = Tracer(JsonlSink(tmp_path / "t.jsonl"))
    with pytest.raises(ValueError):
        with tracer.span("doomed"):
            raise ValueError("boom")
    tracer.close()
    (record,) = load_trace(tmp_path / "t.jsonl")
    assert record["status"] == "error"
    assert "ValueError" in record["error"]


def test_configure_enables_and_finalize_disables(tmp_path):
    trace = tmp_path / "t.jsonl"
    metrics = tmp_path / "m.prom"
    obs.configure(trace_path=trace, metrics_path=metrics)
    assert obs.enabled() and obs.tracing_enabled()
    with obs.span("phase", x=1):
        pass
    written = obs.finalize()
    assert written == {"trace": str(trace), "metrics": str(metrics)}
    assert not obs.enabled()
    assert len(load_trace(trace)) == 1
    text = metrics.read_text()
    # Predeclared vocabulary is present even at zero.
    assert 'repro_tasks_total{status="quarantined"} 0' in text
    assert "repro_budget_expirations_total" in text


# --- metrics -----------------------------------------------------------------


def test_counter_gauge_histogram_exposition():
    reg = MetricsRegistry()
    reg.counter("jobs_total", kind="a").inc()
    reg.counter("jobs_total", kind="a").inc(2)
    reg.gauge("depth").set(7)
    reg.histogram("lat_seconds").observe(0.5)
    text = reg.exposition()
    assert '# TYPE jobs_total counter' in text
    assert 'jobs_total{kind="a"} 3' in text
    assert "depth 7" in text
    assert 'lat_seconds_bucket{le="+Inf"} 1' in text
    assert "lat_seconds_count 1" in text
    # Exposition is byte-stable: series are sorted.
    assert text == reg.exposition()


def test_counter_rejects_negative_increment():
    reg = MetricsRegistry()
    with pytest.raises(ValueError):
        reg.counter("c").inc(-1)


def test_snapshot_merge_adds_counters_and_maxes_gauges():
    a, b = MetricsRegistry(), MetricsRegistry()
    a.counter("tasks_total", status="ok").inc(3)
    b.counter("tasks_total", status="ok").inc(4)
    b.counter("tasks_total", status="failed").inc()
    a.gauge("peak").set(5)
    b.gauge("peak").set(9)
    a.histogram("t_seconds").observe(0.01)
    b.histogram("t_seconds").observe(10.0)

    a.merge(b.snapshot())
    assert a.counter_value("tasks_total", status="ok") == 7
    assert a.counter_value("tasks_total", status="failed") == 1
    assert a.gauge("peak").value == 9
    assert a.histogram("t_seconds").count == 2
    # Merge is built on the snapshot JSON round-trip used by worker spill.
    roundtrip = json.loads(json.dumps(a.snapshot()))
    c = MetricsRegistry()
    c.merge(roundtrip)
    assert c.counter_value("tasks_total", status="ok") == 7


def test_histogram_buckets_are_log_scale():
    assert DEFAULT_BUCKETS[0] == pytest.approx(1e-6)
    ratios = {
        round(b / a) for a, b in zip(DEFAULT_BUCKETS, DEFAULT_BUCKETS[1:])
    }
    assert ratios == {10}


# --- trace reporting ---------------------------------------------------------


def _span(name, span_id, parent, wall_s, cpu_s=0.0, pid=1):
    return {
        "v": TRACE_FORMAT_VERSION, "kind": "span", "name": name,
        "id": span_id, "parent": parent, "pid": pid, "t": 0.0,
        "wall_s": wall_s, "cpu_s": cpu_s, "status": "ok", "tags": {},
    }


def test_phase_breakdown_self_time_is_additive():
    records = [
        _span("child", 2, 1, wall_s=3.0),
        _span("root", 1, None, wall_s=10.0),
    ]
    stats = {s.name: s for s in phase_breakdown(records)}
    assert stats["root"].wall_s == pytest.approx(10.0)
    assert stats["root"].self_s == pytest.approx(7.0)
    assert stats["child"].self_s == pytest.approx(3.0)
    total_self = sum(s.self_s for s in stats.values())
    assert total_self == pytest.approx(10.0)
    table = format_breakdown(phase_breakdown(records))
    assert "root" in table and "child" in table and "self_s" in table


def test_validate_trace_flags_corruption():
    good = [_span("a", 1, None, 1.0)]
    assert validate_trace(good) == []
    assert validate_trace([_span("a", 1, None, 1.0),
                           _span("b", 1, None, 1.0)])  # duplicate (pid, id)
    assert validate_trace([_span("a", 2, 99, 1.0)])  # dangling parent
    bad_version = _span("a", 1, None, 1.0)
    bad_version["v"] = TRACE_FORMAT_VERSION + 1
    assert validate_trace([bad_version])
    negative = _span("a", 1, None, -1.0)
    assert validate_trace([negative])


def test_load_trace_rejects_garbage(tmp_path):
    path = tmp_path / "bad.jsonl"
    path.write_text('{"v": 1}\nnot json\n')
    with pytest.raises(ValueError):
        load_trace(path)


# --- instrumentation hooks ---------------------------------------------------


def test_budget_heartbeat_and_expiration_counters(tmp_path):
    from repro.errors import BudgetExceeded
    from repro.robust.budget import HEARTBEAT_NODES, SolverBudget

    obs.configure(trace_path=tmp_path / "t.jsonl")
    reg = obs.metrics.DEFAULT_REGISTRY
    budget = SolverBudget(max_nodes=3 * HEARTBEAT_NODES)
    for _ in range(2):
        budget.spend(HEARTBEAT_NODES)
    assert reg.counter_value("repro_budget_heartbeats_total") == 2

    with pytest.raises(BudgetExceeded):
        budget.spend(2 * HEARTBEAT_NODES)
    assert reg.counter_value(
        "repro_budget_expirations_total", reason="nodes"
    ) == 1

    deadline = SolverBudget(
        deadline_s=0.0, clock=iter([0.0] + [1.0] * 8).__next__
    )
    with pytest.raises(BudgetExceeded):
        deadline.start().checkpoint()
    assert reg.counter_value(
        "repro_budget_expirations_total", reason="deadline"
    ) == 1
    events = [
        r for r in load_trace(obs.finalize()["trace"])
        if r["kind"] == "event" and r["name"] == "budget.heartbeat"
    ]
    assert len(events) == 3  # one per heartbeat threshold crossed


def test_degrade_attempts_record_duration_and_metrics():
    from repro.robust import RobustConfig
    from repro.robust import synthesize as robust_synthesize

    result = robust_synthesize(
        [7, 66, 17, 9, 27, 41, 56, 11], 8,
        config=RobustConfig(tiers=("greedy",)),
    )
    assert all(a.duration_s > 0.0 for a in result.attempts)
    reg = obs.metrics.DEFAULT_REGISTRY
    assert reg.counter_value(
        "repro_degrade_attempts_total", tier="greedy", outcome="ok"
    ) == 1


def test_synthesis_pipeline_produces_expected_span_taxonomy(tmp_path):
    from repro.core import synthesize_mrpf

    obs.configure(trace_path=tmp_path / "t.jsonl")
    synthesize_mrpf([7, 66, 17, 9, 27, 41, 56, 11], 8)
    records = load_trace(obs.finalize()["trace"])
    assert validate_trace(records) == []
    names = {r["name"] for r in records if r["kind"] == "span"}
    assert {"graph.build", "cover.greedy", "spanning.forest"} <= names


def test_abandoned_sink_never_flushes_inherited_buffer(tmp_path):
    """A forked child must not replay the parent's unflushed records.

    Regression: ``abandon()`` used to drop the handle without neutralizing
    it, so the child's file-object destructor flushed the inherited buffer
    into the shared trace file — duplicating every pending record once per
    pool worker (seen as duplicate ``(pid, id)`` pairs in service traces).
    """
    import os

    path = tmp_path / "t.jsonl"
    tracer = Tracer(JsonlSink(path))
    with tracer.span("parent.work"):
        pass  # buffered, FLUSH_EVERY not reached — nothing on disk yet
    assert path.read_text(encoding="utf-8") == ""

    pid = os.fork()
    if pid == 0:  # child: the pool-initializer discipline, then hard exit
        tracer.sink.abandon()
        del tracer
        os._exit(0)
    assert os.waitpid(pid, 0)[1] == 0

    tracer.close()
    records = [json.loads(line) for line in path.read_text(
        encoding="utf-8").splitlines()]
    assert [r["name"] for r in records] == ["parent.work"]
