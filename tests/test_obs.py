"""Unit tests for the observability layer: tracer, metrics, reporting."""

from __future__ import annotations

import json

import pytest

from repro import obs
from repro.obs import (
    NULL_SPAN_CONTEXT,
    TRACE_FORMAT_VERSION,
    JsonlSink,
    Tracer,
    format_breakdown,
    load_trace,
    phase_breakdown,
    validate_trace,
)
from repro.obs.metrics import DEFAULT_BUCKETS, MetricsRegistry


@pytest.fixture(autouse=True)
def _clean_obs():
    """Each test starts and ends with observability fully torn down."""
    obs.reset()
    yield
    obs.reset()


# --- tracer ------------------------------------------------------------------


def test_disabled_span_is_shared_noop_singleton():
    assert obs.span("anything", tag=1) is NULL_SPAN_CONTEXT
    with obs.span("anything") as sp:
        assert sp.set_tag("k", "v") is sp
        assert sp.elapsed() == 0.0
    obs.event("ignored", detail="dropped")  # must not raise


def test_tracer_emits_nested_spans_as_jsonl(tmp_path):
    path = tmp_path / "trace.jsonl"
    tracer = Tracer(JsonlSink(path))
    with tracer.span("outer", filter="f0"):
        with tracer.span("inner", depth=1):
            tracer.event("marker", at="inner")
    tracer.close()

    records = load_trace(path)
    assert validate_trace(records) == []
    # Spans close inner-first; the event was written while inner was open.
    kinds = [(r["kind"], r["name"]) for r in records]
    assert kinds == [
        ("event", "marker"), ("span", "inner"), ("span", "outer"),
    ]
    event, inner, outer = records
    assert outer["parent"] is None
    assert inner["parent"] == outer["id"]
    assert event["parent"] == inner["id"]
    assert all(r["v"] == TRACE_FORMAT_VERSION for r in records)
    assert inner["tags"] == {"depth": 1}
    assert inner["wall_s"] >= 0.0 and inner["cpu_s"] >= 0.0
    # JSONL determinism: each line's keys are serialized sorted.
    for line in path.read_text().splitlines():
        keys = list(json.loads(line).keys())
        assert keys == sorted(keys)


def test_span_error_status_propagates_exception(tmp_path):
    tracer = Tracer(JsonlSink(tmp_path / "t.jsonl"))
    with pytest.raises(ValueError):
        with tracer.span("doomed"):
            raise ValueError("boom")
    tracer.close()
    (record,) = load_trace(tmp_path / "t.jsonl")
    assert record["status"] == "error"
    assert "ValueError" in record["error"]


def test_configure_enables_and_finalize_disables(tmp_path):
    trace = tmp_path / "t.jsonl"
    metrics = tmp_path / "m.prom"
    obs.configure(trace_path=trace, metrics_path=metrics)
    assert obs.enabled() and obs.tracing_enabled()
    with obs.span("phase", x=1):
        pass
    written = obs.finalize()
    assert written == {"trace": str(trace), "metrics": str(metrics)}
    assert not obs.enabled()
    assert len(load_trace(trace)) == 1
    text = metrics.read_text()
    # Predeclared vocabulary is present even at zero.
    assert 'repro_tasks_total{status="quarantined"} 0' in text
    assert "repro_budget_expirations_total" in text


# --- metrics -----------------------------------------------------------------


def test_counter_gauge_histogram_exposition():
    reg = MetricsRegistry()
    reg.counter("jobs_total", kind="a").inc()
    reg.counter("jobs_total", kind="a").inc(2)
    reg.gauge("depth").set(7)
    reg.histogram("lat_seconds").observe(0.5)
    text = reg.exposition()
    assert '# TYPE jobs_total counter' in text
    assert 'jobs_total{kind="a"} 3' in text
    assert "depth 7" in text
    assert 'lat_seconds_bucket{le="+Inf"} 1' in text
    assert "lat_seconds_count 1" in text
    # Exposition is byte-stable: series are sorted.
    assert text == reg.exposition()


def test_counter_rejects_negative_increment():
    reg = MetricsRegistry()
    with pytest.raises(ValueError):
        reg.counter("c").inc(-1)


def test_snapshot_merge_adds_counters_and_maxes_gauges():
    a, b = MetricsRegistry(), MetricsRegistry()
    a.counter("tasks_total", status="ok").inc(3)
    b.counter("tasks_total", status="ok").inc(4)
    b.counter("tasks_total", status="failed").inc()
    a.gauge("peak").set(5)
    b.gauge("peak").set(9)
    a.histogram("t_seconds").observe(0.01)
    b.histogram("t_seconds").observe(10.0)

    a.merge(b.snapshot())
    assert a.counter_value("tasks_total", status="ok") == 7
    assert a.counter_value("tasks_total", status="failed") == 1
    assert a.gauge("peak").value == 9
    assert a.histogram("t_seconds").count == 2
    # Merge is built on the snapshot JSON round-trip used by worker spill.
    roundtrip = json.loads(json.dumps(a.snapshot()))
    c = MetricsRegistry()
    c.merge(roundtrip)
    assert c.counter_value("tasks_total", status="ok") == 7


def test_histogram_buckets_are_log_scale():
    assert DEFAULT_BUCKETS[0] == pytest.approx(1e-6)
    ratios = {
        round(b / a) for a, b in zip(DEFAULT_BUCKETS, DEFAULT_BUCKETS[1:])
    }
    assert ratios == {10}


# --- trace reporting ---------------------------------------------------------


def _span(name, span_id, parent, wall_s, cpu_s=0.0, pid=1):
    return {
        "v": TRACE_FORMAT_VERSION, "kind": "span", "name": name,
        "id": span_id, "parent": parent, "pid": pid, "t": 0.0,
        "wall_s": wall_s, "cpu_s": cpu_s, "status": "ok", "tags": {},
    }


def test_phase_breakdown_self_time_is_additive():
    records = [
        _span("child", 2, 1, wall_s=3.0),
        _span("root", 1, None, wall_s=10.0),
    ]
    stats = {s.name: s for s in phase_breakdown(records)}
    assert stats["root"].wall_s == pytest.approx(10.0)
    assert stats["root"].self_s == pytest.approx(7.0)
    assert stats["child"].self_s == pytest.approx(3.0)
    total_self = sum(s.self_s for s in stats.values())
    assert total_self == pytest.approx(10.0)
    table = format_breakdown(phase_breakdown(records))
    assert "root" in table and "child" in table and "self_s" in table


def test_validate_trace_flags_corruption():
    good = [_span("a", 1, None, 1.0)]
    assert validate_trace(good) == []
    assert validate_trace([_span("a", 1, None, 1.0),
                           _span("b", 1, None, 1.0)])  # duplicate (pid, id)
    assert validate_trace([_span("a", 2, 99, 1.0)])  # dangling parent
    bad_version = _span("a", 1, None, 1.0)
    bad_version["v"] = TRACE_FORMAT_VERSION + 1
    assert validate_trace([bad_version])
    negative = _span("a", 1, None, -1.0)
    assert validate_trace([negative])


def test_load_trace_rejects_garbage(tmp_path):
    path = tmp_path / "bad.jsonl"
    path.write_text('{"v": 1}\nnot json\n')
    with pytest.raises(ValueError):
        load_trace(path)


# --- instrumentation hooks ---------------------------------------------------


def test_budget_heartbeat_and_expiration_counters(tmp_path):
    from repro.errors import BudgetExceeded
    from repro.robust.budget import HEARTBEAT_NODES, SolverBudget

    obs.configure(trace_path=tmp_path / "t.jsonl")
    reg = obs.metrics.DEFAULT_REGISTRY
    budget = SolverBudget(max_nodes=3 * HEARTBEAT_NODES)
    for _ in range(2):
        budget.spend(HEARTBEAT_NODES)
    assert reg.counter_value("repro_budget_heartbeats_total") == 2

    with pytest.raises(BudgetExceeded):
        budget.spend(2 * HEARTBEAT_NODES)
    assert reg.counter_value(
        "repro_budget_expirations_total", reason="nodes"
    ) == 1

    deadline = SolverBudget(
        deadline_s=0.0, clock=iter([0.0] + [1.0] * 8).__next__
    )
    with pytest.raises(BudgetExceeded):
        deadline.start().checkpoint()
    assert reg.counter_value(
        "repro_budget_expirations_total", reason="deadline"
    ) == 1
    events = [
        r for r in load_trace(obs.finalize()["trace"])
        if r["kind"] == "event" and r["name"] == "budget.heartbeat"
    ]
    assert len(events) == 3  # one per heartbeat threshold crossed


def test_degrade_attempts_record_duration_and_metrics():
    from repro.robust import RobustConfig
    from repro.robust import synthesize as robust_synthesize

    result = robust_synthesize(
        [7, 66, 17, 9, 27, 41, 56, 11], 8,
        config=RobustConfig(tiers=("greedy",)),
    )
    assert all(a.duration_s > 0.0 for a in result.attempts)
    reg = obs.metrics.DEFAULT_REGISTRY
    assert reg.counter_value(
        "repro_degrade_attempts_total", tier="greedy", outcome="ok"
    ) == 1


def test_synthesis_pipeline_produces_expected_span_taxonomy(tmp_path):
    from repro.core import synthesize_mrpf

    obs.configure(trace_path=tmp_path / "t.jsonl")
    synthesize_mrpf([7, 66, 17, 9, 27, 41, 56, 11], 8)
    records = load_trace(obs.finalize()["trace"])
    assert validate_trace(records) == []
    names = {r["name"] for r in records if r["kind"] == "span"}
    assert {"graph.build", "cover.greedy", "spanning.forest"} <= names


# --- trace-context propagation ----------------------------------------------


def test_traceparent_round_trip_and_malformed_headers():
    ctx = obs.TraceContext(obs.make_trace_id(), (4242, 17))
    assert obs.parse_traceparent(obs.format_traceparent(ctx)) == ctx
    linkless = obs.TraceContext("ab" * 8, None)
    assert obs.parse_traceparent(obs.format_traceparent(linkless)) == linkless
    # Malformed headers parse to None — a bad client header must never
    # become a server-side exception.
    for header in (None, "", "r1", "r1-", "00-abc-def-01", "r1-x-y",
                   "r1-tid-12", "r1-tid-pid-span", "r1-tid-12-34-56"):
        assert obs.parse_traceparent(header) is None


def test_root_span_emits_trace_and_link_children_inherit(tmp_path):
    path = tmp_path / "t.jsonl"
    tracer = Tracer(JsonlSink(path), trace_id="feed" * 4)
    ctx = obs.TraceContext("dead" * 4, (999, 3))
    with tracer.adopt(ctx):
        with tracer.span("outer"):
            with tracer.span("inner"):
                tracer.event("mark")
    with tracer.span("after"):
        pass  # adoption ended — back to the tracer's own trace id
    tracer.close()

    records = load_trace(path)
    assert validate_trace(records) == []
    by_name = {r["name"]: r for r in records}
    assert by_name["outer"]["trace"] == "dead" * 4
    assert by_name["outer"]["link"] == [999, 3]
    # Children and events inherit the trace id but never carry the link:
    # only the root edge crosses a process boundary.
    assert by_name["inner"]["trace"] == "dead" * 4
    assert "link" not in by_name["inner"]
    assert by_name["mark"]["trace"] == "dead" * 4
    assert by_name["after"]["trace"] == "feed" * 4
    assert "link" not in by_name["after"]


def test_adopting_none_resets_to_tracer_default():
    """Keep-alive HTTP threads re-adopt per request; None must reset."""
    tracer = Tracer(JsonlSink("/dev/null"), trace_id="aa" * 8)
    with tracer.adopt(obs.TraceContext("bb" * 8, (1, 1))):
        assert tracer.current_context().trace_id == "bb" * 8
        with tracer.adopt(None):
            assert tracer.current_context().trace_id == "aa" * 8
        assert tracer.current_context().trace_id == "bb" * 8
    assert tracer.current_context().trace_id == "aa" * 8
    tracer.close()


def test_current_context_inside_span_links_to_that_span(tmp_path):
    tracer = Tracer(JsonlSink(tmp_path / "t.jsonl"), trace_id="cc" * 8)
    import os as os_mod
    with tracer.span("outer"):
        ctx = tracer.current_context()
        assert ctx.trace_id == "cc" * 8
        assert ctx.link == (os_mod.getpid(), 1)
    tracer.close()


def test_disabled_obs_propagation_is_inert():
    """With no tracer configured the propagation surface all no-ops."""
    assert obs.current_traceparent() is None
    assert obs.current_context() is None
    with obs.trace_context(("ab" * 8, [1, 2])):
        assert obs.span("x") is NULL_SPAN_CONTEXT
    obs.flush()  # must not raise


def test_worker_args_round_trip_preserves_context(tmp_path):
    """worker_args → worker_configure hands the job's context to workers."""
    import os as os_mod

    obs.configure(trace_path=tmp_path / "parent.jsonl")
    with obs.span("sweep.wave"):
        spill, want_trace, ctx = obs.worker_args()
    assert want_trace and ctx[0] is not None
    assert ctx[1] == [os_mod.getpid(), 1]
    parent_trace = ctx[0]
    obs.finalize()

    obs.worker_configure((spill, want_trace, ctx))
    with obs.span("sweep.task"):
        pass
    obs.reset()
    (spill_file,) = list(tmp_path.glob("**/trace-*.jsonl"))
    (task,) = [r for r in load_trace(spill_file) if r["kind"] == "span"]
    assert task["trace"] == parent_trace
    assert task["link"] == [os_mod.getpid(), 1]


def test_worker_configure_accepts_legacy_two_tuple(tmp_path):
    spill = tmp_path / "spill"
    spill.mkdir()
    obs.worker_configure((str(spill), True))
    with obs.span("sweep.task"):
        pass
    obs.reset()
    (spill_file,) = list(spill.glob("trace-*.jsonl"))
    (task,) = [r for r in load_trace(spill_file) if r["kind"] == "span"]
    assert task["trace"] is not None and "link" not in task


# --- torn-tail tolerance -----------------------------------------------------


def test_load_trace_torn_tail_needs_opt_in(tmp_path):
    good = json.dumps(_span("a", 1, None, 1.0))
    path = tmp_path / "torn.jsonl"
    path.write_text(good + "\n" + good[: len(good) // 2])
    with pytest.raises(ValueError):
        load_trace(path)  # strict by default: CI wants torn files loud
    records = load_trace(path, allow_torn_tail=True)
    assert [r["name"] for r in records] == ["a"]


def test_load_trace_torn_middle_line_always_fatal(tmp_path):
    """Only the *final* line may be torn — a mid-file tear is corruption."""
    good = json.dumps(_span("a", 1, None, 1.0))
    path = tmp_path / "corrupt.jsonl"
    path.write_text(good[: len(good) // 2] + "\n" + good + "\n")
    with pytest.raises(ValueError):
        load_trace(path, allow_torn_tail=True)


# --- link validation ---------------------------------------------------------


def _linked(name, span_id, parent, wall_s, pid=1, trace="ab" * 8, link=None):
    rec = _span(name, span_id, parent, wall_s, pid=pid)
    rec["trace"] = trace
    if link is not None:
        rec["link"] = link
    return rec


def test_validate_trace_link_rules():
    # A resolvable cross-process link is fine.
    ok = [
        _linked("client.request", 1, None, 1.0, pid=10),
        _linked("service.request", 1, None, 0.5, pid=20, link=[10, 1]),
    ]
    assert validate_trace(ok) == []
    # A link into a pid that *is* present but names a missing span is
    # corruption; a link into an absent pid just means that process's
    # file was not merged in.
    dangling = [
        _linked("client.request", 1, None, 1.0, pid=10),
        _linked("service.request", 1, None, 0.5, pid=20, link=[10, 99]),
    ]
    assert validate_trace(dangling)
    absent_pid = [
        _linked("service.request", 1, None, 0.5, pid=20, link=[77, 1]),
    ]
    assert validate_trace(absent_pid) == []
    # Links belong on roots only — the link *is* the parent edge.
    non_root = [
        _linked("outer", 1, None, 1.0),
        _linked("inner", 2, 1, 0.5, link=[10, 1]),
    ]
    assert validate_trace(non_root)


# --- timeline / critical path / chrome export --------------------------------


def _job_fixture():
    """A three-process trace: client → service → two pool sweep.tasks."""
    client = _linked("client.request", 1, None, 10.0, pid=10, trace="f" * 16)
    request = dict(
        _linked("service.request", 7, None, 0.2, pid=20, trace="f" * 16,
                link=[10, 1]),
        t=0.2, tags={"route": "/v1/jobs", "method": "POST"},
    )
    job = dict(
        _linked("service.job", 1, None, 9.0, pid=20, trace="f" * 16,
                link=[10, 1]),
        t=0.5, tags={"job_id": "job-x", "tenant": "t"},
    )
    wave = dict(
        _linked("sweep.wave", 2, 1, 8.0, pid=20, trace="f" * 16), t=1.0
    )
    task_a = dict(
        _linked("sweep.task", 1, None, 3.0, pid=30, trace="f" * 16,
                link=[20, 2]), t=1.5
    )
    task_b = dict(
        _linked("sweep.task", 1, None, 4.0, pid=31, trace="f" * 16,
                link=[20, 2]), t=4.8
    )
    return [client, request, job, wave, task_a, task_b]


def test_build_timeline_orders_and_indents_the_forest():
    from repro.obs.report import build_timeline, format_timeline

    rows = build_timeline(_job_fixture())
    assert [r["name"] for r in rows] == [
        "client.request", "service.request", "service.job", "sweep.wave",
        "sweep.task", "sweep.task",
    ]
    assert [r["depth"] for r in rows] == [0, 1, 1, 2, 3, 3]
    rendered = format_timeline(rows)
    assert "sweep.task" in rendered and "client.request" in rendered


def test_critical_path_partitions_the_root_wall_clock():
    from repro.obs.report import critical_path

    result = critical_path(_job_fixture())
    # Default root is the longest service.job span, not the client span.
    assert result["root"]["name"] == "service.job"
    segments = result["segments"]
    assert segments, "critical path must be non-empty"
    # Segments tile the root's wall-clock exactly: chronological, gapless,
    # with offsets relative to the root's own start.
    assert segments[0]["start_s"] == pytest.approx(0.0)
    assert segments[-1]["end_s"] == pytest.approx(9.0)
    for a, b in zip(segments, segments[1:]):
        assert a["end_s"] == pytest.approx(b["start_s"])
    assert sum(result["phases"].values()) == pytest.approx(9.0)
    # The long tail task dominates the path; the shadowed one is absent.
    assert any(s["name"] == "sweep.task" and s["pid"] == 31
               for s in segments)


def test_job_trace_continuity_and_filtering():
    from repro.obs.report import (
        filter_trace, job_trace_continuity, trace_id_for_job,
    )

    records = _job_fixture()
    assert trace_id_for_job(records, "job-x") == "f" * 16
    assert len(filter_trace(records, "f" * 16)) == 6
    assert job_trace_continuity(records, "job-x") == []
    assert job_trace_continuity(records, "job-missing")
    # Drop the wave span: the tasks' links dangle into a present pid.
    broken = [r for r in records if r["name"] != "sweep.wave"]
    assert job_trace_continuity(broken, "job-x")


def test_chrome_export_round_trips_and_scales_to_microseconds():
    from repro.obs.report import to_chrome_trace

    payload = json.loads(json.dumps(to_chrome_trace(_job_fixture())))
    events = payload["traceEvents"]
    assert len(events) == 6
    assert {e["ph"] for e in events} == {"X"}
    first = events[0]
    assert first["ts"] == 0  # rebased to the earliest span start
    assert first["dur"] == pytest.approx(10.0 * 1e6)
    assert all(e["args"]["trace"] == "f" * 16 for e in events)


# --- span profiler -----------------------------------------------------------


def test_profiler_samples_every_nth_span(tmp_path):
    obs.configure(trace_path=tmp_path / "t.jsonl")
    profiler = obs.enable_profile("hot.phase", tmp_path / "prof", every=2)
    for _ in range(4):
        with obs.span("hot.phase"):
            sum(range(100))
        with obs.span("cold.phase"):
            pass
    obs.finalize()
    captures = sorted((tmp_path / "prof").glob("*.pstats"))
    assert len(captures) == 2  # spans 1 and 3 of 4, every=2
    assert profiler.captured == 2
    assert all(p.name.startswith("profile-hot.phase-") for p in captures)
    import pstats
    stats = pstats.Stats(str(captures[0]))
    assert stats.total_calls > 0


def test_abandoned_sink_never_flushes_inherited_buffer(tmp_path):
    """A forked child must not replay the parent's unflushed records.

    Regression: ``abandon()`` used to drop the handle without neutralizing
    it, so the child's file-object destructor flushed the inherited buffer
    into the shared trace file — duplicating every pending record once per
    pool worker (seen as duplicate ``(pid, id)`` pairs in service traces).
    """
    import os

    path = tmp_path / "t.jsonl"
    tracer = Tracer(JsonlSink(path))
    with tracer.span("parent.work"):
        pass  # buffered, FLUSH_EVERY not reached — nothing on disk yet
    assert path.read_text(encoding="utf-8") == ""

    pid = os.fork()
    if pid == 0:  # child: the pool-initializer discipline, then hard exit
        tracer.sink.abandon()
        del tracer
        os._exit(0)
    assert os.waitpid(pid, 0)[1] == 0

    tracer.close()
    records = [json.loads(line) for line in path.read_text(
        encoding="utf-8").splitlines()]
    assert [r["name"] for r in records] == ["parent.work"]
