"""Parallel sweep engine + persistent cache: equivalence and unit tests.

The headline guarantee under test: a parallel sweep (process-pool precompute,
disk-cache layering, budgeted tasks) exports *byte-identical* results to the
plain serial path — including when some or all of the results come from a
warm disk cache.
"""

from __future__ import annotations

import json

import pytest

from repro.errors import BudgetExceeded, ReproError
from repro.eval import cache as disk_cache
from repro.eval import experiments
from repro.eval.experiments import best_mrpf, clear_cache
from repro.eval.export import sweep_to_json
from repro.eval.harness import run_sweep
from repro.eval import parallel as parallel_module
from repro.eval.parallel import (
    SweepTask,
    auto_chunk_size,
    plan_tasks,
    pool_decision,
    run_sweep_parallel,
)
from repro.robust import SolverBudget

IDS = ["fig6", "fig8a", "table1"]
RESTRICT = dict(filter_indices=[0, 1], wordlengths=[8])


@pytest.fixture(autouse=True)
def _pristine_caches():
    """Each test starts and ends with no memory entries and no disk cache."""
    clear_cache()
    disk_cache.configure(None)
    yield
    clear_cache()
    disk_cache.configure(None)


def _serial_json():
    clear_cache()
    disk_cache.configure(None)
    outcomes = run_sweep(IDS, **RESTRICT)
    text = sweep_to_json(outcomes)
    clear_cache()
    return text


class TestByteIdenticalEquivalence:
    def test_parallel_jobs_matches_serial(self, tmp_path):
        want = _serial_json()
        report = run_sweep_parallel(
            IDS, jobs=4, cache_dir=tmp_path / "cache", **RESTRICT
        )
        assert sweep_to_json(report.outcomes) == want
        assert report.tasks_planned > 0
        assert not report.failed_tasks

    def test_half_warm_disk_cache_matches_serial(self, tmp_path):
        want = _serial_json()
        cache_dir = tmp_path / "cache"
        # Warm roughly half the design points (fig6 only), then run the full
        # sweep: fig6 comes from disk, the rest is computed fresh.
        run_sweep_parallel(["fig6"], jobs=2, cache_dir=cache_dir, **RESTRICT)
        clear_cache()
        report = run_sweep_parallel(
            IDS, jobs=2, cache_dir=cache_dir, **RESTRICT
        )
        assert report.tasks_precached > 0
        assert len(report.tasks) > 0
        assert sweep_to_json(report.outcomes) == want

    def test_fully_warm_cache_computes_nothing(self, tmp_path):
        want = _serial_json()
        cache_dir = tmp_path / "cache"
        run_sweep_parallel(IDS, jobs=2, cache_dir=cache_dir, **RESTRICT)
        clear_cache()
        report = run_sweep_parallel(IDS, jobs=2, cache_dir=cache_dir, **RESTRICT)
        assert len(report.tasks) == 0
        assert report.tasks_precached == report.tasks_planned
        assert sweep_to_json(report.outcomes) == want

    def test_in_process_jobs1_matches_serial(self, tmp_path):
        want = _serial_json()
        report = run_sweep_parallel(IDS, jobs=1, **RESTRICT)
        assert sweep_to_json(report.outcomes) == want

    def test_exhausted_task_budget_still_identical(self):
        # A zero deadline makes every budgeted precompute task fail fast;
        # the replay recomputes them serially, so output is unaffected.
        want = _serial_json()
        report = run_sweep_parallel(
            ["fig6"], jobs=1, task_deadline_s=0.0, **RESTRICT
        )
        failed = report.failed_tasks
        assert any(t.error_type == "BudgetExceeded" for t in failed)
        # Failed outcomes carry the full worker-side traceback, not just
        # the exception repr — essential once frames died with the worker.
        for t in failed:
            assert t.traceback is not None
            assert "BudgetExceeded" in t.traceback
            assert "Traceback (most recent call last)" in t.traceback
        full = run_sweep_parallel(IDS, jobs=1, **RESTRICT)
        assert sweep_to_json(full.outcomes) == want

    def test_run_sweep_delegates_to_parallel(self, tmp_path):
        want = _serial_json()
        outcomes = run_sweep(IDS, jobs=2, cache_dir=tmp_path / "c", **RESTRICT)
        assert sweep_to_json(outcomes) == want

    def test_unknown_experiment_rejected(self):
        with pytest.raises(ReproError):
            run_sweep_parallel(["nope"], jobs=1)


class TestChunkedDispatch:
    def test_chunked_pool_matches_serial(self, tmp_path, monkeypatch):
        # Force the pool on (the heuristic would refuse it on a 1-CPU CI
        # host) and drive it with an explicit chunk size: chunked dispatch
        # must not change a byte of the exported sweep.
        want = _serial_json()
        monkeypatch.setattr(parallel_module.os, "cpu_count", lambda: 8)
        report = run_sweep_parallel(
            IDS, jobs=2, cache_dir=tmp_path / "cache", chunk_size=3,
            min_parallel_tasks=1, **RESTRICT
        )
        assert report.pool_used
        assert report.chunk_size == 3
        assert report.fallback_reason is None
        assert sweep_to_json(report.outcomes) == want

    def test_auto_chunk_size_scales_with_backlog(self):
        # ~CHUNKS_PER_WORKER chunks per worker, never below 1.
        workers = 4
        per_worker = parallel_module.CHUNKS_PER_WORKER
        assert auto_chunk_size(0, workers) == 1
        assert auto_chunk_size(1, workers) == 1
        assert auto_chunk_size(workers * per_worker, workers) == 1
        assert auto_chunk_size(workers * per_worker * 10, workers) == 10
        assert auto_chunk_size(5, 0) == 1

    def test_report_stats_carry_dispatch_fields(self):
        report = run_sweep_parallel(["fig6"], jobs=1, **RESTRICT)
        stats = report.stats()
        assert stats["pool_used"] is False
        assert stats["chunk_size"] == 0
        assert stats["fallback_reason"] == "jobs <= 1"


class TestSerialFallback:
    """Small sweeps must never pay pool spin-up (the cold 0.52x regression)."""

    @pytest.fixture(autouse=True)
    def _no_pools_allowed(self, monkeypatch):
        def _boom(*args, **kwargs):
            raise AssertionError("ProcessPoolExecutor constructed for a "
                                 "sweep the heuristic should run serially")

        monkeypatch.setattr(
            parallel_module, "ProcessPoolExecutor", _boom
        )

    def test_small_sweep_never_constructs_a_pool(self, monkeypatch):
        # 10 pending tasks, threshold raised above them: in-process, and
        # byte-identical (it IS the serial code path).
        monkeypatch.setattr(parallel_module.os, "cpu_count", lambda: 8)
        want = _serial_json()
        report = run_sweep_parallel(
            IDS, jobs=4, min_parallel_tasks=1_000, **RESTRICT
        )
        assert not report.pool_used
        assert "below pool threshold" in report.fallback_reason
        assert len(report.tasks) == report.tasks_planned
        assert sweep_to_json(report.outcomes) == want

    def test_single_cpu_host_never_constructs_a_pool(self, monkeypatch):
        monkeypatch.setattr(parallel_module.os, "cpu_count", lambda: 1)
        report = run_sweep_parallel(
            ["fig6"], jobs=4, min_parallel_tasks=1, **RESTRICT
        )
        assert not report.pool_used
        assert report.fallback_reason == "single-CPU host"
        assert not report.failed_tasks

    def test_fallback_still_writes_through_disk_cache(self, tmp_path):
        # The in-process path must leave the same warm disk cache a pool
        # run would: a second sweep computes nothing.
        cache_dir = tmp_path / "cache"
        run_sweep_parallel(
            IDS, jobs=4, cache_dir=cache_dir, min_parallel_tasks=1_000,
            **RESTRICT
        )
        clear_cache()
        again = run_sweep_parallel(
            IDS, jobs=4, cache_dir=cache_dir, min_parallel_tasks=1_000,
            **RESTRICT
        )
        assert len(again.tasks) == 0
        assert again.tasks_precached == again.tasks_planned


class TestPoolDecision:
    def test_jobs_one_is_serial(self):
        assert pool_decision(100, 1) == (False, "jobs <= 1")

    def test_single_cpu_is_serial(self, monkeypatch):
        monkeypatch.setattr(parallel_module.os, "cpu_count", lambda: 1)
        use, reason = pool_decision(100, 8)
        assert not use
        assert reason == "single-CPU host"

    def test_default_threshold_scales_with_workers(self, monkeypatch):
        monkeypatch.setattr(parallel_module.os, "cpu_count", lambda: 8)
        monkeypatch.delenv(parallel_module.MIN_POOL_TASKS_ENV, raising=False)
        # threshold = max(4, 2 * min(jobs, cpus)) = 8 for jobs=4
        assert pool_decision(7, 4)[0] is False
        assert pool_decision(8, 4) == (True, None)

    def test_env_override(self, monkeypatch):
        monkeypatch.setattr(parallel_module.os, "cpu_count", lambda: 8)
        monkeypatch.setenv(parallel_module.MIN_POOL_TASKS_ENV, "3")
        assert pool_decision(2, 4)[0] is False
        assert pool_decision(3, 4) == (True, None)

    def test_explicit_threshold_beats_env(self, monkeypatch):
        monkeypatch.setattr(parallel_module.os, "cpu_count", lambda: 8)
        monkeypatch.setenv(parallel_module.MIN_POOL_TASKS_ENV, "1")
        assert pool_decision(5, 4, min_parallel_tasks=6)[0] is False
        assert pool_decision(6, 4, min_parallel_tasks=6) == (True, None)


class TestTaskPlanning:
    def test_plan_is_deterministic_and_deduplicated(self):
        a = plan_tasks(["fig6", "fig8a", "summary"], [0, 1], [8, 12])
        b = plan_tasks(["summary", "fig8a", "fig6"], [0, 1], [8, 12])
        assert a == b
        assert len(set(a)) == len(a)

    def test_summary_covers_all_figures(self):
        summary = set(plan_tasks(["summary"], [0], [8]))
        for fig in ("fig6", "fig7", "fig8a", "fig8b"):
            assert set(plan_tasks([fig], [0], [8])) <= summary

    def test_table1_tasks_pin_configuration(self):
        tasks = plan_tasks(["table1"], [0], [8])
        assert tasks  # wordlength restriction does not apply to table1
        for task in tasks:
            assert task.wordlength == 16
            assert task.scaling == "maximal"
            assert task.depth_limit == 3
            assert task.method == "mrpf"
        assert {t.representation for t in tasks} == {"csd", "sm"}


class TestDiskCache:
    def test_put_get_roundtrip_and_stats(self, tmp_path):
        cache = disk_cache.DiskCache(tmp_path)
        key = disk_cache.cache_key({"x": 1})
        assert cache.get(key) is None
        cache.put(key, {"value": [1, 2, 3]})
        assert cache.get(key) == {"value": [1, 2, 3]}
        assert cache.stats.hits == 1
        assert cache.stats.misses == 1
        assert cache.stats.stores == 1
        assert 0.0 < cache.stats.hit_rate < 1.0

    def test_corrupt_entry_is_a_miss_and_quarantined(self, tmp_path):
        cache = disk_cache.DiskCache(tmp_path)
        key = disk_cache.cache_key({"x": 2})
        cache.put(key, {"ok": True})
        path = cache._path(key)
        path.write_text("{truncated", encoding="utf-8")
        assert cache.get(key) is None
        assert not path.exists()
        # The corrupt bytes survive in quarantine/ for forensics.
        moved = cache.quarantine_dir / path.name
        assert moved.read_text(encoding="utf-8") == "{truncated"
        assert cache.stats.quarantined == 1
        assert cache.quarantined_entries() == 1

    def test_repeated_corruption_keeps_every_specimen(self, tmp_path):
        cache = disk_cache.DiskCache(tmp_path)
        key = disk_cache.cache_key({"x": 3})
        for generation in range(3):
            cache.put(key, {"ok": generation})
            cache._path(key).write_text(f"{{gen {generation}", encoding="utf-8")
            assert cache.get(key) is None
        assert cache.quarantined_entries() == 3

    def test_quarantine_not_listed_or_cleared_as_entries(self, tmp_path):
        cache = disk_cache.DiskCache(tmp_path)
        key = disk_cache.cache_key({"x": 4})
        cache.put(key, {"ok": True})
        cache._path(key).write_text("junk", encoding="utf-8")
        assert cache.get(key) is None
        assert len(cache) == 0  # quarantined files are not live entries
        assert cache.clear() == 0
        assert cache.quarantined_entries() == 1  # clear() spares forensics

    def test_cache_info_reports_quarantine(self, tmp_path):
        disk_cache.configure(tmp_path)
        info = experiments.cache_info()
        assert info["disk_quarantine"] == 0
        assert info["disk"]["quarantined"] == 0
        assert info["disk"]["put_errors"] == 0

    def test_clear_removes_everything(self, tmp_path):
        cache = disk_cache.DiskCache(tmp_path)
        for i in range(5):
            cache.put(disk_cache.cache_key({"i": i}), {"i": i})
        assert len(cache) == 5
        assert cache.clear() == 5
        assert len(cache) == 0

    def test_malformed_key_rejected(self, tmp_path):
        cache = disk_cache.DiskCache(tmp_path)
        with pytest.raises(ReproError):
            cache.get("../../etc/passwd")

    def test_cache_key_is_stable_and_order_insensitive(self):
        assert (
            disk_cache.cache_key({"a": 1, "b": 2})
            == disk_cache.cache_key({"b": 2, "a": 1})
        )
        assert disk_cache.cache_key({"a": 1}) != disk_cache.cache_key({"a": 2})

    def test_version_tag_folded_into_key(self, monkeypatch):
        before = disk_cache.cache_key({"a": 1})
        monkeypatch.setattr(disk_cache, "CACHE_SCHEMA_VERSION", 999)
        assert disk_cache.cache_key({"a": 1}) != before

    def test_method_result_roundtrip(self):
        result = experiments.MethodResult(
            method="mrpf", adders=7, depth=3, cla_weighted=12.5,
            seed_size=(2, 4),
        )
        payload = disk_cache.encode_method_result(result)
        assert json.loads(json.dumps(payload)) == payload
        assert disk_cache.decode_method_result(payload) == result

    def test_clear_cache_on_directory(self, tmp_path):
        cache = disk_cache.DiskCache(tmp_path)
        cache.put(disk_cache.cache_key({"z": 1}), {"z": 1})
        assert disk_cache.clear_cache(tmp_path) == 1


class TestCacheLayering:
    def test_disk_hits_survive_memory_clears(self, tmp_path):
        disk_cache.configure(tmp_path)
        from repro.filters import benchmark_filter
        from repro.quantize import ScalingScheme

        designed = benchmark_filter(0)
        first = experiments._method_result(
            designed, 0, 8, ScalingScheme.UNIFORM, "mrpf"
        )
        clear_cache()  # memory gone, disk survives
        again = experiments._method_result(
            designed, 0, 8, ScalingScheme.UNIFORM, "mrpf"
        )
        assert again == first
        active = disk_cache.active_cache()
        assert active.stats.hits >= 1

    def test_cache_info_reports_both_layers(self, tmp_path):
        disk_cache.configure(tmp_path)
        info = experiments.cache_info()
        assert "memory" in info and "disk" in info
        assert info["disk_dir"] == str(tmp_path)


class TestBudgetThreading:
    def test_best_mrpf_budget_exhaustion_raises(self):
        budget = SolverBudget(deadline_s=0.0).start()
        with pytest.raises(BudgetExceeded):
            best_mrpf([7, 66, 17, 9, 27, 41, 56, 11], 10, budget=budget)

    def test_robust_synthesize_accepts_external_budget(self):
        from repro.robust import RobustConfig, synthesize

        # An exhausted external budget skips the expensive tiers but the
        # trivial tier still releases a verified architecture.
        budget = SolverBudget(deadline_s=0.0).start()
        result = synthesize(
            [7, 66, 17], 10,
            config=RobustConfig(max_retries=0),
            budget=budget,
        )
        assert result.tier == "trivial"
        assert result.architecture.adder_count >= 0
