"""Finite-wordlength simulation, minimal safe widths, export width contract."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.arch import ShiftAddNetlist, simulate_tdf_filter
from repro.arch.metrics import node_bitwidths
from repro.arch.verilog import output_width
from repro.core import synthesize_mrpf
from repro.errors import (
    OverflowViolation,
    SimulationError,
    VerificationError,
    WidthContractViolation,
)
from repro.verify import (
    check_export_widths,
    fit,
    min_accumulator_widths,
    min_node_widths,
    simulate_tdf_fixed,
)

WIDTHS = st.integers(min_value=1, max_value=24)
VALUES = st.integers(min_value=-(2**30), max_value=2**30)


def build_filter(constants):
    nl = ShiftAddNetlist()
    names = []
    for i, c in enumerate(constants):
        name = f"tap{i}"
        nl.mark_output(name, nl.ensure_constant(c) if c else None)
        names.append(name)
    return nl, names


class TestFit:
    @given(VALUES, WIDTHS)
    @settings(max_examples=80)
    def test_wrap_is_twos_complement(self, value, width):
        fitted, overflowed = fit(value, width, "wrap")
        lo, hi = -(1 << (width - 1)), (1 << (width - 1)) - 1
        assert lo <= fitted <= hi
        assert (fitted - value) % (1 << width) == 0
        assert overflowed == (not lo <= value <= hi)

    @given(VALUES, WIDTHS)
    @settings(max_examples=80)
    def test_saturate_clamps(self, value, width):
        fitted, _ = fit(value, width, "saturate")
        lo, hi = -(1 << (width - 1)), (1 << (width - 1)) - 1
        assert fitted == max(lo, min(hi, value))

    def test_error_mode_returns_raw(self):
        fitted, overflowed = fit(1000, 4, "error")
        assert fitted == 1000 and overflowed

    def test_rejects_bad_mode_and_width(self):
        with pytest.raises(VerificationError):
            fit(1, 8, "truncate")
        with pytest.raises(VerificationError):
            fit(1, 0)


class TestMinimalWidths:
    def test_export_node_widths_always_sufficient(self, paper_coefficients):
        """The export's bit_length+input_bits formula must dominate the
        independently derived peak-magnitude bound at every node."""
        arch = synthesize_mrpf(paper_coefficients, 7)
        for bits in (1, 4, 8, 16):
            declared = node_bitwidths(arch.netlist, bits)
            required = min_node_widths(arch.netlist, bits)
            assert all(d >= r for d, r in zip(declared, required))

    def test_accumulator_widths_output_first_and_decreasing(
        self, paper_coefficients
    ):
        arch = synthesize_mrpf(paper_coefficients, 7)
        widths = min_accumulator_widths(arch.netlist, arch.tap_names, 16)
        assert len(widths) == len(arch.tap_names)
        assert widths == sorted(widths, reverse=True)
        assert output_width(arch.netlist, arch.tap_names, 16) >= widths[0]

    def test_check_export_widths_green_on_synthesized(
        self, paper_coefficients
    ):
        arch = synthesize_mrpf(paper_coefficients, 7)
        check_export_widths(arch.netlist, arch.tap_names, input_bits=16)

    def test_check_export_widths_flags_undersized(
        self, paper_coefficients, monkeypatch
    ):
        arch = synthesize_mrpf(paper_coefficients, 7)
        import repro.verify.fixedpoint as fp

        monkeypatch.setattr(
            fp, "node_bitwidths",
            lambda nl, bits: [1] * len(nl),
        )
        with pytest.raises(WidthContractViolation):
            check_export_widths(arch.netlist, arch.tap_names, input_bits=16)


class TestFixedSimulation:
    STIMULUS = [1, -1, 127, -128, 90, -77, 0, 3, 127, -128, 55]

    def test_matches_exact_at_export_widths(self, paper_coefficients):
        """At the widths the RTL declares, finite arithmetic is exact."""
        arch = synthesize_mrpf(paper_coefficients, 7)
        run = simulate_tdf_fixed(
            arch.netlist, arch.tap_names, self.STIMULUS, input_bits=8
        )
        exact = simulate_tdf_filter(arch.netlist, arch.tap_names, self.STIMULUS)
        assert list(run.outputs) == exact
        assert not run.overflowed

    def test_narrow_accumulator_overflows_with_site(self, paper_coefficients):
        arch = synthesize_mrpf(paper_coefficients, 7)
        run = simulate_tdf_fixed(
            arch.netlist, arch.tap_names, self.STIMULUS,
            input_bits=8, accumulator_width=6, overflow="wrap",
        )
        assert run.overflowed
        sites = {e.site for e in run.overflows}
        assert any(s == "out" or s.startswith(("reg:", "tap:")) for s in sites)

    def test_error_mode_raises_with_site_and_cycle(self, paper_coefficients):
        arch = synthesize_mrpf(paper_coefficients, 7)
        with pytest.raises(OverflowViolation) as excinfo:
            simulate_tdf_fixed(
                arch.netlist, arch.tap_names, self.STIMULUS,
                input_bits=8, accumulator_width=6, overflow="error",
            )
        assert excinfo.value.site
        assert excinfo.value.cycle >= 0
        # OverflowViolation must remain catchable as a SimulationError.
        assert isinstance(excinfo.value, SimulationError)

    def test_saturate_bounds_outputs(self):
        nl, names = build_filter([100])
        run = simulate_tdf_fixed(
            nl, names, [127, 127, 127], input_bits=8,
            accumulator_width=8, overflow="saturate",
        )
        assert all(-128 <= y <= 127 for y in run.outputs)
        assert run.overflowed

    def test_zero_tap_filter(self):
        nl, names = build_filter([5, 0])
        run = simulate_tdf_fixed(nl, names, [3, 1, 4], input_bits=8)
        assert list(run.outputs) == simulate_tdf_filter(nl, names, [3, 1, 4])

    def test_rejects_bad_inputs(self, paper_coefficients):
        arch = synthesize_mrpf(paper_coefficients, 7)
        with pytest.raises(VerificationError):
            simulate_tdf_fixed(arch.netlist, arch.tap_names, [1],
                               overflow="nope")
        with pytest.raises(VerificationError):
            simulate_tdf_fixed(arch.netlist, [], [1])
        with pytest.raises(VerificationError):
            simulate_tdf_fixed(arch.netlist, arch.tap_names, [1],
                               node_widths=[8])


class TestVerifyAgainstConvolutionWordlength:
    def test_wordlength_aware_check_passes(self, paper_coefficients):
        from repro.arch import verify_against_convolution

        arch = synthesize_mrpf(paper_coefficients, 7)
        verify_against_convolution(
            arch.netlist, arch.tap_names, list(paper_coefficients),
            [1, -1, 127, -128, 0, 55], wordlength=8,
        )

    def test_wordlength_aware_check_catches_overflow(self):
        """A stimulus exceeding the declared input width must be rejected
        by the overflow-aware mode even though exact simulation passes."""
        from repro.arch import verify_against_convolution

        nl, names = build_filter([3])
        samples = [1 << 20]
        verify_against_convolution(nl, names, [3], samples)  # exact: fine
        with pytest.raises(OverflowViolation):
            verify_against_convolution(nl, names, [3], samples, wordlength=8)
