"""Tests for the IIR extension and the general vector-scaling API."""

import numpy as np
import pytest
from fractions import Fraction
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import MrpOptions, synthesize_vector_scaler
from repro.errors import FilterDesignError, QuantizationError, SimulationError
from repro.filters import (
    IirSpec,
    design_iir,
    iir_direct_output,
    iir_tdf2_output,
    quantize_iir,
)

CONSTS = st.lists(
    st.integers(min_value=-(2**12), max_value=2**12), min_size=1, max_size=10
).filter(lambda cs: any(cs))


class TestIirSpec:
    def test_valid(self):
        spec = IirSpec("lp", "lowpass", 4, (0.3,))
        assert spec.order == 4

    def test_bad_btype(self):
        with pytest.raises(FilterDesignError):
            IirSpec("x", "comb", 4, (0.3,))

    def test_bad_order(self):
        with pytest.raises(FilterDesignError):
            IirSpec("x", "lowpass", 0, (0.3,))

    def test_bad_cutoff(self):
        with pytest.raises(FilterDesignError):
            IirSpec("x", "lowpass", 2, (1.5,))

    def test_bad_design(self):
        with pytest.raises(FilterDesignError):
            IirSpec("x", "lowpass", 2, (0.3,), design="elliptic")


class TestIirDesign:
    @pytest.mark.parametrize("design", ["butter", "cheby1"])
    def test_lowpass_design_stable(self, design):
        spec = IirSpec("lp", "lowpass", 4, (0.3,), design=design)
        b, a = design_iir(spec)
        assert len(a) == 5
        # All poles inside the unit circle.
        assert np.all(np.abs(np.roots(a)) < 1.0)

    def test_bandstop_design(self):
        spec = IirSpec("notch", "bandstop", 2, (0.4, 0.6))
        b, a = design_iir(spec)
        assert len(a) == 5  # order doubles for band designs


class TestIirQuantization:
    def test_leading_denominator_power_of_two(self):
        b, a = design_iir(IirSpec("lp", "lowpass", 4, (0.3,)))
        q = quantize_iir(b, a, 12)
        a0 = q.a_int[0]
        assert a0 > 0 and (a0 & (a0 - 1)) == 0

    def test_integers_fit_wordlength(self):
        b, a = design_iir(IirSpec("lp", "lowpass", 6, (0.25,)))
        q = quantize_iir(b, a, 10)
        limit = (1 << 9) - 1
        assert all(abs(v) <= limit for v in q.b_int + q.a_int)

    def test_zero_denominator_rejected(self):
        with pytest.raises(QuantizationError):
            quantize_iir([1.0], [0.0], 8)

    def test_all_integers_excludes_leading_a(self):
        b, a = design_iir(IirSpec("lp", "lowpass", 2, (0.3,)))
        q = quantize_iir(b, a, 10)
        assert len(q.all_integers) == len(q.b_int) + len(q.a_int) - 1

    def test_quantized_response_close_to_float(self):
        b, a = design_iir(IirSpec("lp", "lowpass", 4, (0.3,)))
        q = quantize_iir(b, a, 14)
        impulse = [1] + [0] * 63
        exact = iir_direct_output(q.b_int, q.a_int, impulse)
        scale = Fraction(1 << q.b_frac, 1)  # b scaling
        got = [float(y * Fraction(1 << q.a_frac) / scale) for y in exact]
        reference = np.zeros(64)
        reference[0] = 1.0
        from scipy import signal as sp

        want = sp.lfilter(b, a, reference)
        assert np.max(np.abs(np.array(got) - want)) < 1e-2


class TestIirStructures:
    @given(
        st.lists(st.integers(-50, 50), min_size=1, max_size=5),
        st.lists(st.integers(-20, 20), min_size=0, max_size=4),
        st.lists(st.integers(-100, 100), min_size=1, max_size=20),
    )
    @settings(max_examples=60, deadline=None)
    def test_tdf2_equals_direct_recursion(self, b, a_tail, samples):
        """Structural identity, exact rational arithmetic."""
        a = [8] + a_tail  # stable-ish leading term; identity holds regardless
        assert iir_tdf2_output(b, a, samples) == iir_direct_output(b, a, samples)

    def test_fir_degenerate_case(self):
        """With a = [1], the IIR structures reduce to plain convolution."""
        b = [3, -2, 5]
        xs = [1, 4, -1, 0, 2]
        got = iir_direct_output(b, [1], xs)
        expected = np.convolve(b, xs)[: len(xs)]
        assert [int(y) for y in got] == list(expected)


class TestVectorScaler:
    def test_products_exact(self):
        scaler = synthesize_vector_scaler([23, 45, 89, -101])
        assert scaler.scale(7) == [161, 315, 623, -707]

    def test_verify_catches_mismatch(self):
        scaler = synthesize_vector_scaler([3, 5])
        broken = type(scaler)(
            constants=(3, 7), architecture=scaler.architecture
        )
        with pytest.raises(SimulationError):
            broken.verify()

    def test_beats_naive_on_shareable_vector(self):
        constants = [23, 46, 92, 69, 115]  # rich in shared structure
        scaler = synthesize_vector_scaler(constants)
        from repro.baselines import simple_adder_count

        assert scaler.adder_count < simple_adder_count(constants)

    def test_options_forwarded(self):
        scaler = synthesize_vector_scaler(
            [23, 45], options=MrpOptions(beta=0.3), seed_compression="cse"
        )
        assert scaler.architecture.seed_compression == "cse"

    @given(CONSTS)
    @settings(max_examples=40, deadline=None)
    def test_any_vector_verifies(self, constants):
        scaler = synthesize_vector_scaler(constants)
        scaler.verify([2, -3, 1000])

    def test_iir_joint_vector(self):
        """The paper's IIR claim: jointly optimize b and a[1:]."""
        b, a = design_iir(IirSpec("lp", "lowpass", 4, (0.3,)))
        q = quantize_iir(b, a, 12)
        scaler = synthesize_vector_scaler(q.all_integers, wordlength=12)
        scaler.verify()
        from repro.baselines import simple_adder_count

        assert scaler.adder_count <= simple_adder_count(q.all_integers)
