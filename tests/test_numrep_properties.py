"""Property-based tests for the number-representation layer.

Hypothesis sweeps wide integer ranges through every encoder; small ranges are
additionally checked exhaustively.  One deliberate deviation from folklore:
minimal signed-digit (MSD) encodings *can* carry adjacent nonzero digits
(``11`` is a perfectly minimal encoding of 3) — non-adjacency uniquely
characterizes the CSD/NAF member of the MSD set, and that uniqueness is the
property tested here.
"""

from hypothesis import given
from hypothesis import strategies as st

from repro.numrep import (
    SignedDigits,
    binary_nonzero_count,
    csd_nonzero_count,
    encode_binary,
    encode_csd,
    encode_sign_magnitude,
    enumerate_msd,
    is_csd,
    minimal_nonzero_count,
    split_sign_magnitude,
)

WIDE = st.integers(min_value=-(2**31), max_value=2**31)
MSD_RANGE = st.integers(min_value=-(2**12), max_value=2**12)


class TestCsdRoundtrip:
    @given(WIDE)
    def test_encode_decode_roundtrip(self, value):
        assert encode_csd(value).value == value

    @given(WIDE)
    def test_canonical_form_has_no_adjacent_nonzeros(self, value):
        assert is_csd(encode_csd(value))

    @given(WIDE)
    def test_negation_symmetry(self, value):
        assert encode_csd(-value) == encode_csd(value).negated()

    @given(WIDE)
    def test_csd_is_minimal(self, value):
        # Cross-checked against the independent recurrence-based oracle.
        assert csd_nonzero_count(value) == minimal_nonzero_count(value)

    @given(WIDE)
    def test_csd_never_denser_than_binary(self, value):
        assert csd_nonzero_count(value) <= binary_nonzero_count(value)


class TestBinaryAndSignMagnitude:
    @given(WIDE)
    def test_binary_roundtrip(self, value):
        assert encode_binary(value).value == value

    @given(WIDE)
    def test_sign_magnitude_roundtrip(self, value):
        assert encode_sign_magnitude(value).value == value

    @given(WIDE)
    def test_split_reassembles(self, value):
        sign, magnitude = split_sign_magnitude(value)
        assert sign * magnitude == value
        assert magnitude >= 0
        assert sign in (-1, 0, 1)
        assert (sign == 0) == (value == 0)


class TestMsdEnumeration:
    @given(MSD_RANGE)
    def test_every_encoding_decodes_to_value(self, value):
        for encoding in enumerate_msd(value):
            assert encoding.value == value

    @given(MSD_RANGE)
    def test_every_encoding_is_minimal(self, value):
        want = minimal_nonzero_count(value)
        for encoding in enumerate_msd(value):
            assert encoding.nonzero_count == want

    @given(MSD_RANGE)
    def test_encodings_are_distinct_and_sorted(self, value):
        encodings = enumerate_msd(value)
        assert len(set(encodings)) == len(encodings)
        assert [str(e) for e in encodings] == sorted(str(e) for e in encodings)

    @given(MSD_RANGE)
    def test_exactly_one_nonadjacent_encoding_and_it_is_csd(self, value):
        # NAF uniqueness: the CSD string is the single member of the MSD set
        # free of adjacent nonzero digits.  (The MSD set as a whole may
        # contain adjacent nonzeros — e.g. "11" for 3 — so "never adjacent"
        # is NOT an MSD invariant; uniqueness of the non-adjacent member is.)
        nonadjacent = [
            e for e in enumerate_msd(value) if not e.has_adjacent_nonzeros()
        ]
        assert nonadjacent == [encode_csd(value)]

    def test_exhaustive_small_range(self):
        for value in range(-512, 513):
            encodings = enumerate_msd(value)
            assert encode_csd(value) in encodings
            assert len(set(encodings)) == len(encodings)
            for encoding in encodings:
                assert encoding.value == value
                assert encoding.nonzero_count == minimal_nonzero_count(value)


class TestSignedDigitsInvariants:
    @given(st.lists(st.sampled_from([-1, 0, 1]), max_size=24))
    def test_value_shift_consistency(self, digits):
        sd = SignedDigits(tuple(digits))
        assert sd.shifted(3).value == sd.value * 8

    @given(st.lists(st.sampled_from([-1, 0, 1]), max_size=24))
    def test_negated_value(self, digits):
        sd = SignedDigits(tuple(digits))
        assert sd.negated().value == -sd.value
