"""Tests for the Table-1 benchmark filter suite."""

import pytest

from repro.filters import (
    TABLE1_SPECS,
    BandType,
    DesignMethod,
    benchmark_filter,
    benchmark_suite,
    is_symmetric,
    measure_response,
)


class TestSuiteComposition:
    def test_twelve_filters(self):
        assert len(TABLE1_SPECS) == 12

    def test_method_sequence_matches_table1(self):
        expected = ["BW", "PM", "LS", "BW", "PM", "LS",
                    "PM", "PM", "LS", "LS", "PM", "LS"]
        assert [s.method.abbreviation for s in TABLE1_SPECS] == expected

    def test_band_sequence_matches_table1(self):
        expected = ["LP", "LP", "LP", "LP", "BS", "BS",
                    "BS", "LP", "BS", "LP", "BP", "BP"]
        assert [s.band.abbreviation for s in TABLE1_SPECS] == expected

    def test_all_odd_numtaps(self):
        assert all(s.numtaps % 2 == 1 for s in TABLE1_SPECS)

    def test_unique_names(self):
        names = [s.name for s in TABLE1_SPECS]
        assert len(set(names)) == 12

    def test_orders_grow_overall(self):
        """The suite spans small to large filters (like the paper's table)."""
        orders = [s.order for s in TABLE1_SPECS]
        assert min(orders) <= 20
        assert max(orders) >= 60


class TestDesignedSuite:
    def test_index_bounds(self):
        with pytest.raises(IndexError):
            benchmark_filter(12)
        with pytest.raises(IndexError):
            benchmark_filter(-1)

    def test_caching_returns_same_object(self):
        assert benchmark_filter(0) is benchmark_filter(0)

    def test_all_designs_symmetric(self):
        for designed in benchmark_suite():
            assert is_symmetric(designed.taps)

    def test_folded_half_length(self):
        for designed in benchmark_suite():
            assert designed.num_unique_taps == (designed.spec.numtaps + 1) // 2

    def test_every_filter_meets_its_spec(self):
        """Suite self-consistency: each design satisfies its own tolerances."""
        for designed in benchmark_suite():
            report = measure_response(designed.taps, designed.spec)
            assert report.satisfies(designed.spec), (
                designed.name, report
            )

    def test_band_filters_have_two_sided_specs(self):
        for designed in benchmark_suite():
            spec = designed.spec
            if spec.band in (BandType.BANDPASS, BandType.BANDSTOP):
                assert spec.passband[0] > 0.0 or spec.band is BandType.BANDSTOP


class TestDesignCacheKeying:
    """Regression: the design cache keys on spec content, not list position.

    ``_design_cached`` used to be keyed by benchmark index, so substituting
    a TABLE1_SPECS entry (ablation studies, spec experiments) silently
    served the design of the *old* spec at that slot.
    """

    def test_substituted_spec_is_not_served_stale(self):
        import dataclasses

        original = benchmark_filter(0)
        altered_spec = dataclasses.replace(
            TABLE1_SPECS[0], name="ex01-altered", numtaps=21
        )
        saved = TABLE1_SPECS[0]
        TABLE1_SPECS[0] = altered_spec
        try:
            altered = benchmark_filter(0)
        finally:
            TABLE1_SPECS[0] = saved
        assert altered.spec is altered_spec
        assert altered.spec.numtaps == 21
        assert len(altered.taps) == 21
        assert altered.taps != original.taps

    def test_restored_spec_restores_design(self):
        # After the monkeypatched test above, index 0 designs as originally.
        designed = benchmark_filter(0)
        assert designed.spec is TABLE1_SPECS[0]
        assert len(designed.taps) == TABLE1_SPECS[0].numtaps
