"""Unit + property tests for tap normalization (paper steps 1-2)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import normalize_taps
from repro.errors import GraphError
from repro.core.sidc import TapBinding

COEFFS = st.lists(st.integers(min_value=-(2**15), max_value=2**15),
                  min_size=1, max_size=20)


class TestTapBinding:
    def test_consistency_enforced(self):
        with pytest.raises(GraphError):
            TapBinding(index=0, coefficient=12, vertex=5, shift=1, sign=1)

    def test_zero_binding(self):
        b = TapBinding(index=0, coefficient=0, vertex=None, shift=0, sign=0)
        assert b.is_zero and b.is_free

    def test_power_of_two_binding_free(self):
        b = TapBinding(index=1, coefficient=-8, vertex=None, shift=3, sign=-1)
        assert b.is_free and not b.is_zero

    def test_vertex_binding_not_free(self):
        b = TapBinding(index=2, coefficient=12, vertex=3, shift=2, sign=1)
        assert not b.is_free


class TestNormalizeTaps:
    def test_paper_example(self):
        """56 = 7<<3 is secondary to 7: only 7 unique odd magnitudes."""
        vertices, bindings = normalize_taps([7, 66, 17, 9, 27, 41, 56, 11])
        assert vertices == [7, 9, 11, 17, 27, 33, 41]
        by_index = {b.index: b for b in bindings}
        assert by_index[7].coefficient == 11
        assert by_index[5].vertex == 41
        # 56 maps to vertex 7 with shift 3
        assert by_index[6].vertex == 7 and by_index[6].shift == 3

    def test_zeros_skipped(self):
        vertices, bindings = normalize_taps([0, 3, 0])
        assert vertices == [3]
        assert bindings[0].is_zero and bindings[2].is_zero

    def test_powers_of_two_free(self):
        vertices, bindings = normalize_taps([1, -2, 64, -1024])
        assert vertices == []
        assert all(b.is_free for b in bindings)

    def test_negative_coefficient_sign(self):
        vertices, bindings = normalize_taps([-12])
        assert vertices == [3]
        assert bindings[0].sign == -1 and bindings[0].shift == 2

    def test_duplicate_magnitudes_one_vertex(self):
        vertices, _ = normalize_taps([3, -3, 6, 12, 48])
        assert vertices == [3]

    @given(COEFFS)
    @settings(max_examples=100)
    def test_bindings_reconstruct_every_tap(self, coeffs):
        vertices, bindings = normalize_taps(coeffs)
        assert len(bindings) == len(coeffs)
        for binding, coefficient in zip(bindings, coeffs):
            base = binding.vertex if binding.vertex is not None else (
                1 if binding.sign else 0
            )
            assert binding.sign * (base << binding.shift) == coefficient

    @given(COEFFS)
    @settings(max_examples=50)
    def test_vertices_odd_gt_one_sorted_unique(self, coeffs):
        vertices, _ = normalize_taps(coeffs)
        assert vertices == sorted(set(vertices))
        for v in vertices:
            assert v > 1 and v % 2 == 1
