"""The release gate end to end: degrade cascade, sweep paths, CLI exit codes."""

import pytest

import repro.verify
from repro.errors import VerificationError
from repro.eval import cache as disk_cache
from repro.eval.__main__ import (
    EXIT_OK,
    EXIT_VERIFY_EQUIVALENCE,
    EXIT_VERIFY_FIXEDPOINT,
    EXIT_VERIFY_MUTATION,
    EXIT_VERIFY_STRUCTURE,
    main,
)
from repro.eval.experiments import _method_result, clear_cache
from repro.filters import benchmark_filter
from repro.quantize import ScalingScheme
from repro.robust import RobustConfig, synthesize
from repro.robust.chaos import NetlistMutator
from repro.verify import CheckResult, VerificationReport, full_audit


@pytest.fixture(autouse=True)
def _pristine_caches():
    clear_cache()
    disk_cache.configure(None)
    yield
    clear_cache()
    disk_cache.configure(None)


class _StructuralCorruptor:
    """Chaos hook that breaks the fundamental table at the verify stage.

    The corrupted architecture still computes the right filter, so the
    convolution self-check passes — only the independent release audit can
    quarantine it.
    """

    def __init__(self):
        self.corrupted = 0

    def before(self, stage, budget):
        return None

    def transform(self, stage, obj):
        if stage != "verify" or self.corrupted:
            return obj
        mutator = NetlistMutator(seed=0, operators=("fundamental_entry",))
        _, mutant = mutator.mutate(obj.netlist)
        self.corrupted += 1
        import dataclasses

        return dataclasses.replace(obj, netlist=mutant)


class TestDegradeGate:
    def test_release_audit_on_by_default(self):
        assert RobustConfig().release_audit is True

    def test_clean_synthesis_passes_gate(self, paper_coefficients):
        result = synthesize(paper_coefficients, 7)
        assert result.architecture.adder_count > 0
        assert not result.quarantined

    def test_structural_corruption_quarantined(self, paper_coefficients):
        """Convolution-invisible corruption is caught only by the gate."""
        corruptor = _StructuralCorruptor()
        result = synthesize(paper_coefficients, 7, chaos=corruptor)
        assert corruptor.corrupted == 1
        assert result.quarantined  # the first attempt was caught
        record = result.quarantined[0]
        assert record.stage == "verify"
        assert "fundamental" in (record.error or "").lower()

    def test_gate_can_be_disabled(self, paper_coefficients):
        """With the gate off, the same corruption sails through —
        demonstrating the gate is what catches it."""
        corruptor = _StructuralCorruptor()
        config = RobustConfig(release_audit=False)
        result = synthesize(paper_coefficients, 7,
                            config=config, chaos=corruptor)
        assert corruptor.corrupted == 1
        assert not result.quarantined


class TestSweepGate:
    def test_env_gate_runs_release_audit(self, monkeypatch):
        calls = []
        real = repro.verify.release_audit

        def spy(*args, **kwargs):
            calls.append(kwargs)
            return real(*args, **kwargs)

        monkeypatch.setattr(repro.verify, "release_audit", spy)
        monkeypatch.setenv("REPRO_VERIFY_GATE", "1")
        designed = benchmark_filter(0)
        _method_result(designed, 0, 8, ScalingScheme.MAXIMAL, "mrpf")
        assert len(calls) == 1

    def test_env_gate_off_by_default(self, monkeypatch):
        calls = []
        monkeypatch.setattr(
            repro.verify, "release_audit",
            lambda *a, **k: calls.append(a),
        )
        monkeypatch.delenv("REPRO_VERIFY_GATE", raising=False)
        designed = benchmark_filter(0)
        _method_result(designed, 0, 8, ScalingScheme.MAXIMAL, "simple")
        assert not calls

    def test_env_gate_failure_propagates(self, monkeypatch):
        def broken(*args, **kwargs):
            raise VerificationError("injected gate failure")

        monkeypatch.setattr(repro.verify, "release_audit", broken)
        monkeypatch.setenv("REPRO_VERIFY_GATE", "1")
        designed = benchmark_filter(0)
        with pytest.raises(VerificationError):
            _method_result(designed, 0, 8, ScalingScheme.MAXIMAL, "cse")

    def test_supervised_sweep_green_under_gate(self, monkeypatch, tmp_path):
        """The journaled sweep engine completes with the gate armed — the
        audit runs inside every worker task without quarantining anything."""
        from repro.eval.supervisor import run_sweep_supervised

        monkeypatch.setenv("REPRO_VERIFY_GATE", "1")
        report = run_sweep_supervised(
            ["fig6"], jobs=2, cache_dir=tmp_path / "cache",
            journal_dir=tmp_path / "journal",
            filter_indices=[0], wordlengths=[8],
        )
        stats = report.stats()
        assert stats["tasks_quarantined"] == 0
        assert stats["tasks_failed"] == 0
        assert stats["tasks_computed"] > 0


class TestCliVerify:
    def test_verify_subcommand_green(self, capsys):
        code = main(["verify", "--filters", "0", "--wordlengths", "8",
                     "--mutants", "10"])
        out = capsys.readouterr().out
        assert code == EXIT_OK
        assert "[PASS] structure" in out
        assert "[PASS] mutation" in out
        assert "0 failed" in out

    @pytest.mark.parametrize(
        "check,expected",
        [
            ("structure", EXIT_VERIFY_STRUCTURE),
            ("fixedpoint", EXIT_VERIFY_FIXEDPOINT),
            ("equivalence", EXIT_VERIFY_EQUIVALENCE),
            ("cmodel", EXIT_VERIFY_EQUIVALENCE),
            ("mutation", EXIT_VERIFY_MUTATION),
        ],
    )
    def test_exit_code_per_failing_check(self, monkeypatch, capsys,
                                         check, expected):
        report = VerificationReport(checks=(
            CheckResult(check="structure", status="passed"),
            CheckResult(check=check, status="failed", detail="injected"),
        ))
        monkeypatch.setattr(repro.verify, "full_audit",
                            lambda *a, **k: report)
        code = main(["verify", "--filters", "0", "--wordlengths", "8"])
        capsys.readouterr()
        assert code == expected

    def test_full_audit_green_on_all_table1_filters_w8(self):
        """Acceptance criterion: the complete audit is green for every
        Table-1 filter at W=8 (serial path; the CI job repeats this through
        the CLI with mutation campaigns on top)."""
        from repro.eval.experiments import best_mrpf
        from repro.quantize import quantize

        for index in range(12):
            designed = benchmark_filter(index)
            q = quantize(designed.folded, 8, ScalingScheme.MAXIMAL)
            arch = best_mrpf(q.integers, 8)
            report = full_audit(
                arch.netlist, arch.tap_names, arch.coefficients,
                input_bits=8, exhaustive_bits=6,
                expected_adder_count=arch.adder_count,
            )
            assert report.ok, f"{designed.name}: {report.summary()}"
