"""Ablation: the three classic MCM philosophies head-to-head.

CSE is pattern-based, BHM and Hcub are adder-graph-based (1991 and 2007
vintages), MRP is difference-based.  The paper compares only against CSE;
racing all of them (plus the combined MRPF+CSE) on the benchmark suite
situates MRP in the wider MCM landscape and checks the claim that computation
*reordering* (MRP) composes with subexpression *sharing* (CSE) rather than
replacing it.
"""

import pytest

from repro.baselines import (
    synthesize_bhm,
    synthesize_cse_filter,
    synthesize_hcub,
    synthesize_simple,
)
from repro.eval import best_mrpf, format_table
from repro.filters import benchmark_suite
from repro.quantize import ScalingScheme, quantize

FILTER_INDICES = (1, 2, 4, 7)
WORDLENGTH = 16


def sweep():
    rows = []
    for index in FILTER_INDICES:
        designed = benchmark_suite()[index]
        q = quantize(designed.folded, WORDLENGTH, ScalingScheme.UNIFORM)
        simple = synthesize_simple(q.integers).adder_count
        cse = synthesize_cse_filter(q.integers).adder_count
        bhm = synthesize_bhm(q.integers).adder_count
        hcub = synthesize_hcub(q.integers).adder_count
        mrpf = best_mrpf(q.integers, WORDLENGTH).adder_count
        mrpf_cse = best_mrpf(
            q.integers, WORDLENGTH, seed_compression="cse"
        ).adder_count
        rows.append((designed.name, simple, cse, bhm, hcub, mrpf, mrpf_cse))
    return rows


@pytest.mark.benchmark(group="ablations")
def test_ablation_mcm_philosophies(benchmark, save_result):
    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)

    headers = ["filter", "simple", "CSE", "BHM", "Hcub", "MRPF", "MRPF+CSE"]
    body = [[row[0]] + [str(v) for v in row[1:]] for row in rows]
    save_result(
        "ablation_mcm",
        "MCM philosophy comparison — multiplier-block adders (W=16, uniform)\n"
        + format_table(headers, body),
    )

    for name, simple, cse, bhm, hcub, mrpf, mrpf_cse in rows:
        # Every sharing method beats the unshared baseline...
        assert max(cse, bhm, hcub, mrpf, mrpf_cse) < simple
        # ...the combined transform is competitive with the classic methods...
        assert mrpf_cse <= min(cse, bhm, mrpf) * 1.25
        # ...and the 2007-era Hcub is the one that genuinely outclasses 2003
        # methods (the honest post-paper picture).
        assert hcub <= simple
