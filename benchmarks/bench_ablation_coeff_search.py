"""Ablation: Samueli-style coefficient search ([11]) composed with MRPF.

The paper cites Samueli's improved coefficient search as prior art and builds
MRP *on top of* whatever quantization it is given.  This bench measures the
composition: local LSB search (preserving the frequency spec) before MRP, and
its effect on the final adder counts of both the simple and MRPF
architectures.
"""

import pytest

from repro.baselines import simple_adder_count
from repro.eval import best_mrpf, format_table
from repro.filters import benchmark_suite, measure_response, unfold_symmetric
from repro.quantize import ScalingScheme, quantize, search_coefficients

FILTER_INDICES = (1, 2, 4, 7)
WORDLENGTH = 16


def sweep():
    rows = []
    for index in FILTER_INDICES:
        designed = benchmark_suite()[index]
        q = quantize(designed.folded, WORDLENGTH, ScalingScheme.UNIFORM)

        def meets(reconstructed, designed=designed):
            full = unfold_symmetric(reconstructed, designed.spec.numtaps)
            return measure_response(full, designed.spec).satisfies(designed.spec)

        result = search_coefficients(q, meets)
        rows.append((
            designed.name,
            simple_adder_count(q.integers),
            simple_adder_count(result.improved),
            best_mrpf(q.integers, WORDLENGTH).adder_count,
            best_mrpf(result.improved, WORDLENGTH).adder_count,
            result.num_changes,
        ))
    return rows


@pytest.mark.benchmark(group="ablations")
def test_ablation_coeff_search(benchmark, save_result):
    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)

    headers = ["filter", "simple", "simple+search", "MRPF", "MRPF+search",
               "taps changed"]
    body = [[row[0]] + [str(v) for v in row[1:]] for row in rows]
    save_result(
        "ablation_coeff_search",
        "coefficient LSB search ([11]) before MRP — spec-preserving\n"
        + format_table(headers, body),
    )

    for name, simple, simple_s, mrpf, mrpf_s, _ in rows:
        assert simple_s <= simple     # search never raises digit cost
        assert mrpf_s <= mrpf + 2     # and composes well with MRP
