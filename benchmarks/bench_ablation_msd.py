"""Ablation: CSD-based vs MSD-search CSE (Park & Kang representation search).

CSD is one of many minimal signed-digit encodings; searching among them for
pattern-friendly forms (reference [8] of the paper) can expose sharing that
the canonical form hides.  This bench quantifies the win on the benchmark
suite's coefficient sets for both the standalone CSE filter and as the SEED
compressor inside MRPF+CSE.
"""

import pytest

from repro.core.sidc import normalize_taps
from repro.cse import eliminate, eliminate_msd
from repro.eval import format_table
from repro.filters import benchmark_suite
from repro.quantize import ScalingScheme, quantize

FILTER_INDICES = (1, 2, 4, 7)
WORDLENGTH = 16


def sweep():
    rows = []
    for index in FILTER_INDICES:
        designed = benchmark_suite()[index]
        for scheme in (ScalingScheme.UNIFORM, ScalingScheme.MAXIMAL):
            q = quantize(designed.folded, WORDLENGTH, scheme)
            vertices, _ = normalize_taps(q.integers)
            csd = eliminate(vertices).adder_count
            msd = eliminate_msd(vertices).adder_count
            rows.append((designed.name, scheme.value, csd, msd))
    return rows


@pytest.mark.benchmark(group="ablations")
def test_ablation_msd_cse(benchmark, save_result):
    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)

    headers = ["filter", "scaling", "CSD-CSE adders", "MSD-CSE adders", "saved"]
    body = [
        [name, scaling, str(csd), str(msd), str(csd - msd)]
        for name, scaling, csd, msd in rows
    ]
    save_result(
        "ablation_msd",
        "MSD representation-search CSE vs canonical CSD CSE\n"
        + format_table(headers, body),
    )

    for name, scaling, csd, msd in rows:
        # The CSD assignment is in the search space: MSD-CSE never loses.
        assert msd <= csd
