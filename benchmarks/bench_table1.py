"""Table 1 — benchmark filter specs and SEED sizes after MRP transformation.

16-bit maximally scaled coefficients, spanning-tree depth constraint 3, SEED
reported as (roots, solution set) for both SPT(CSD) and SM representations.
The reproduction's SEED sizes come out *smaller* than the paper's because the
β-swept greedy shares more aggressively (see EXPERIMENTS.md); the structural
shape — SEED growing with filter order, solution set >= roots in most rows —
is asserted here.
"""

import pytest

from repro.eval import format_experiment, run_table1


@pytest.mark.benchmark(group="tables")
def test_table1(benchmark, save_result):
    result = benchmark.pedantic(run_table1, rounds=1, iterations=1)
    save_result("table1", format_experiment(result))

    rows = result.table1_rows
    assert len(rows) == 12
    # SEED grows with filter order: the largest filters need the biggest SEED.
    small = rows[0]
    large = max(rows, key=lambda r: r.order)
    assert sum(small.seed_spt) < sum(large.seed_spt)
    # Depth constraint 3 forces roots everywhere the cover is disconnected.
    for row in rows:
        assert row.seed_spt[0] >= 1
        assert row.seed_sm[0] >= 1


@pytest.mark.benchmark(group="tables")
def test_table1_summary_run(benchmark, save_result):
    """§5 aggregate claims including the CLA-weighted numbers."""
    from repro.eval import run_summary, paper_comparison

    result = benchmark.pedantic(run_summary, rounds=1, iterations=1)
    lines = [result.title]
    for key, value in result.summary.items():
        lines.append(f"  {key}: {value:.4f}")
    comparison = "\n".join(
        f"paper vs measured — {metric}: paper={paper:.2f} measured={measured:.2f}"
        for metric, paper, measured in paper_comparison(result)
    )
    save_result("summary", "\n".join(lines) + "\n\n" + comparison)
    assert result.summary["fig6_mean_reduction_vs_simple"] > 0.30
