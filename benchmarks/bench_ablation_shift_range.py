"""Ablation: the SIDC shift range L (paper §3.1's design-space expansion).

``max_shift = 0`` is the pure differential-coefficient method of Muhammad &
Roy [5] — MRP's direct ancestor.  Growing L expands the color space and should
monotonically (in trend) reduce adders; this bench measures that curve, i.e.
how much of MRPF's win comes specifically from the *shift-inclusive* part.
"""

import pytest

from repro.core import MrpOptions, lower_plan, optimize
from repro.eval import format_table
from repro.filters import benchmark_suite
from repro.quantize import ScalingScheme, quantize

SHIFT_RANGES = (0, 1, 2, 4, 8, 16)
FILTER_INDICES = (2, 4, 7)
WORDLENGTH = 16


def sweep():
    rows = []
    for index in FILTER_INDICES:
        designed = benchmark_suite()[index]
        q = quantize(designed.folded, WORDLENGTH, ScalingScheme.UNIFORM)
        counts = []
        for max_shift in SHIFT_RANGES:
            best = None
            for beta in (0.3, 0.5):
                plan = optimize(
                    q.integers, WORDLENGTH,
                    MrpOptions(beta=beta, max_shift=max_shift),
                )
                adders = lower_plan(plan).adder_count
                best = adders if best is None else min(best, adders)
            counts.append(best)
        rows.append((designed.name, counts))
    return rows


@pytest.mark.benchmark(group="ablations")
def test_ablation_shift_range(benchmark, save_result):
    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)

    headers = ["filter"] + [f"L<={s}" for s in SHIFT_RANGES]
    body = [[name] + [str(c) for c in counts] for name, counts in rows]
    save_result(
        "ablation_shift_range",
        "SIDC shift-range ablation — MRPF adders vs max shift L\n"
        + format_table(headers, body),
    )

    # The shift-inclusive expansion pays off *on average* vs the L=0
    # baseline [5].  Per-filter it is not guaranteed monotone: a larger color
    # space can mislead the greedy (observed on ex08) — one reason the figure
    # runners sweep β instead of trusting a single greedy run.
    zero_shift = sum(counts[0] for _, counts in rows)
    full_shift = sum(counts[-1] for _, counts in rows)
    assert full_shift <= zero_shift
    for name, counts in rows:
        # Even where non-monotone, the loss stays small.
        assert counts[-1] <= counts[0] * 1.25
