"""Ablation: SEED-network compression (paper §4's architectural recursion).

Compares the three ways this library builds the SEED multiplication network —
plain digit chains, Hartley CSE over the SEED constants (the paper's
MRPF+CSE), and recursive MRP — and the two digit representations (the paper
claims MRP's efficiency is representation-insensitive).
"""

import pytest

from repro.core import MrpOptions, lower_plan, optimize
from repro.eval import format_table
from repro.filters import benchmark_suite
from repro.numrep import Representation
from repro.quantize import ScalingScheme, quantize

FILTER_INDICES = (2, 4, 7)
WORDLENGTH = 16
MODES = ("none", "cse", "recursive")


def sweep():
    rows = []
    for index in FILTER_INDICES:
        designed = benchmark_suite()[index]
        q = quantize(designed.folded, WORDLENGTH, ScalingScheme.MAXIMAL)
        cells = {}
        for rep in Representation:
            plan = optimize(
                q.integers, WORDLENGTH, MrpOptions(representation=rep)
            )
            for mode in MODES:
                cells[(rep.value, mode)] = lower_plan(plan, mode).adder_count
        rows.append((designed.name, cells))
    return rows


@pytest.mark.benchmark(group="ablations")
def test_ablation_seed_compression(benchmark, save_result):
    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)

    headers = ["filter"] + [
        f"{rep.value}/{mode}" for rep in Representation for mode in MODES
    ]
    body = []
    for name, cells in rows:
        body.append(
            [name]
            + [
                str(cells[(rep.value, mode)])
                for rep in Representation
                for mode in MODES
            ]
        )
    save_result(
        "ablation_seed",
        "SEED compression ablation — adders per representation x mode\n"
        + format_table(headers, body),
    )

    for name, cells in rows:
        for rep in Representation:
            # CSE on the SEED network never hurts (it can only share).
            assert cells[(rep.value, "cse")] <= cells[(rep.value, "none")]
