"""Figure 8 — MRPF+CSE vs CSE (CSD), both scaling schemes.

Regenerates 8(a) (uniform) and 8(b) (maximal).  Paper claims: 17 %/15 %
average reduction vs CSE, 66 %/74 % vs the simple implementation.
"""

import pytest

from repro.eval import format_experiment, paper_comparison, run_figure8
from repro.quantize import ScalingScheme


@pytest.mark.benchmark(group="figures")
def test_figure8a(benchmark, save_result):
    result = benchmark.pedantic(
        run_figure8, args=(ScalingScheme.UNIFORM,), rounds=1, iterations=1
    )
    text = format_experiment(result)
    comparison = "\n".join(
        f"paper vs measured — {metric}: paper={paper:.2f} measured={measured:.2f}"
        for metric, paper, measured in paper_comparison(result)
    )
    save_result("fig8a", text + "\n\n" + comparison)

    for row in result.rows:
        assert row.results["mrpf_cse"].adders <= row.results["simple"].adders
    assert result.summary["mean_reduction_vs_simple"] > 0.35
    # MRPF+CSE should at least hold its ground against plain CSE on average.
    assert result.summary["mean_reduction_vs_cse"] > -0.05


@pytest.mark.benchmark(group="figures")
def test_figure8b(benchmark, save_result):
    result = benchmark.pedantic(
        run_figure8, args=(ScalingScheme.MAXIMAL,), rounds=1, iterations=1
    )
    text = format_experiment(result)
    comparison = "\n".join(
        f"paper vs measured — {metric}: paper={paper:.2f} measured={measured:.2f}"
        for metric, paper, measured in paper_comparison(result)
    )
    save_result("fig8b", text + "\n\n" + comparison)

    for row in result.rows:
        assert row.results["mrpf_cse"].adders <= row.results["simple"].adders
    assert result.summary["mean_reduction_vs_simple"] > 0.35
    assert result.summary["mean_reduction_vs_cse"] > -0.05
