"""Figure 6 — MRPF vs simple implementation, uniformly scaled SPT coefficients.

Regenerates the full figure: all 12 benchmark filters at W in {8, 12, 16, 20},
complexity normalized per design point to the simple (per-tap shift-add)
implementation.  Paper claim: ~60 % average reduction.
"""

import pytest

from repro.eval import format_experiment, paper_comparison, run_figure6


@pytest.mark.benchmark(group="figures")
def test_figure6(benchmark, save_result):
    result = benchmark.pedantic(run_figure6, rounds=1, iterations=1)

    text = format_experiment(result)
    comparison = "\n".join(
        f"paper vs measured — {metric}: paper={paper:.2f} measured={measured:.2f}"
        for metric, paper, measured in paper_comparison(result)
    )
    save_result("fig6", text + "\n\n" + comparison)

    # Shape assertions: MRPF wins everywhere; the average win is substantial.
    for row in result.rows:
        assert row.results["mrpf"].adders <= row.results["simple"].adders
    assert result.summary["mean_reduction"] > 0.30
