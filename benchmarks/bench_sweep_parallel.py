"""Sweep benchmark + regression gate: serial vs parallel vs warm cache.

Runs the same restricted sweep three ways — cold serial, cold parallel
(process-pool precompute), and fully warm (persistent disk cache) — checks
the exports are byte-identical, collects per-stage synthesis timings, and
writes everything to ``benchmarks/results/BENCH_sweep.json``.

The gate then compares against the checked-in baseline
(``benchmarks/results/BENCH_sweep_baseline.json``) and fails (exit 1) on a
regression of more than ``--threshold`` (default 20%).

Only *machine-portable ratio metrics* are gated:

- ``warm_speedup_capped`` — cold-serial wall-clock over fully-warm
                        wall-clock, saturated at 10×.  A healthy cache sits
                        at the cap on any machine (the raw ratio is 100×+
                        here but jitters wildly because the warm run is
                        milliseconds); a broken cache collapses to ~1×,
                        which the 20% threshold catches decisively.
- ``warm_hit_rate``   — disk-cache hit rate of the warm run (≈ 1.0).
- ``byte_identical``  — parallel and warm exports must equal serial bytes.

Absolute wall-clocks, the parallel speedup (meaningless on single-core CI
runners: ``min(jobs, cpus)`` bounds it), and per-stage timings are recorded
for inspection but deliberately NOT gated — they do not transfer across
machines.

Usage::

    PYTHONPATH=src python benchmarks/bench_sweep_parallel.py --jobs 2
    PYTHONPATH=src python benchmarks/bench_sweep_parallel.py --update-baseline
"""

from __future__ import annotations

import argparse
import json
import os
import pathlib
import sys
import tempfile
import time

from repro.eval import cache as disk_cache
from repro.eval import experiments
from repro.eval.export import sweep_to_json
from repro.eval.harness import run_sweep
from repro.eval.parallel import run_sweep_parallel

from bench_synthesis_speed import stage_operations

RESULTS_DIR = pathlib.Path(__file__).resolve().parent / "results"
BASELINE_PATH = RESULTS_DIR / "BENCH_sweep_baseline.json"
OUTPUT_PATH = RESULTS_DIR / "BENCH_sweep.json"

# The gated workload: a restricted but representative slice of the full
# figure/table sweep — two figure families plus Table 1 — kept small so the
# gate stays under a minute on CI runners.
EXPERIMENTS = ["fig6", "fig8a", "table1"]
RESTRICT = dict(filter_indices=[0, 1], wordlengths=[8, 10])

GATED_METRICS = ("warm_speedup_capped", "warm_hit_rate")

# Saturation point for the gated warm-cache speedup: far below the raw
# ratio on a healthy cache (so timer jitter cannot trip the gate) yet far
# above the ~1x a broken cache produces.
WARM_SPEEDUP_CAP = 10.0


def _cold():
    experiments.clear_cache()
    disk_cache.configure(None)


def _time_stage_operations(repeats: int = 3):
    """Best-of-N wall-clock per synthesis stage (seconds)."""
    timings = {}
    for name, op in stage_operations().items():
        best = float("inf")
        for _ in range(repeats):
            started = time.perf_counter()
            op()
            best = min(best, time.perf_counter() - started)
        timings[name] = round(best, 6)
    return timings


def run_benchmark(jobs: int) -> dict:
    # 1. Cold serial: the reference for both bytes and wall-clock.
    _cold()
    started = time.perf_counter()
    serial_outcomes = run_sweep(EXPERIMENTS, **RESTRICT)
    serial_s = time.perf_counter() - started
    serial_json = sweep_to_json(serial_outcomes)

    with tempfile.TemporaryDirectory(prefix="bench-sweep-cache-") as tmp:
        cache_dir = pathlib.Path(tmp)

        # 2. Cold parallel: pool precompute into an empty disk cache.
        _cold()
        started = time.perf_counter()
        parallel_report = run_sweep_parallel(
            EXPERIMENTS, jobs=jobs, cache_dir=cache_dir, **RESTRICT
        )
        parallel_s = time.perf_counter() - started
        parallel_json = sweep_to_json(parallel_report.outcomes)

        # 3. Fully warm: memory cleared, disk cache intact.
        experiments.clear_cache()
        started = time.perf_counter()
        warm_report = run_sweep_parallel(
            EXPERIMENTS, jobs=jobs, cache_dir=cache_dir, **RESTRICT
        )
        warm_s = time.perf_counter() - started
        warm_json = sweep_to_json(warm_report.outcomes)
        warm_cache = warm_report.cache

    _cold()

    byte_identical = parallel_json == serial_json and warm_json == serial_json
    warm_disk = warm_cache.get("disk") or {}
    warm_hits = warm_disk.get("hits", 0)
    warm_misses = warm_disk.get("misses", 0)
    probes = warm_hits + warm_misses
    return {
        "workload": {
            "experiments": EXPERIMENTS,
            "filter_indices": RESTRICT["filter_indices"],
            "wordlengths": RESTRICT["wordlengths"],
        },
        "environment": {
            "jobs": jobs,
            "cpu_count": os.cpu_count(),
            "python": sys.version.split()[0],
        },
        "wall_clock_s": {
            "serial_cold": round(serial_s, 4),
            "parallel_cold": round(parallel_s, 4),
            "warm": round(warm_s, 4),
        },
        "metrics": {
            "parallel_speedup": round(serial_s / max(parallel_s, 1e-9), 4),
            "warm_speedup": round(serial_s / max(warm_s, 1e-9), 4),
            "warm_speedup_capped": round(
                min(serial_s / max(warm_s, 1e-9), WARM_SPEEDUP_CAP), 4
            ),
            "warm_hit_rate": round(warm_hits / probes, 4) if probes else 0.0,
            "byte_identical": byte_identical,
        },
        "parallel": parallel_report.stats(),
        "warm": warm_report.stats(),
        "stage_timings_s": _time_stage_operations(),
    }


def gate(result: dict, baseline: dict, threshold: float):
    """Return a list of human-readable regression messages (empty = pass)."""
    failures = []
    if not result["metrics"]["byte_identical"]:
        failures.append(
            "byte_identical: parallel/warm exports differ from serial"
        )
    base_metrics = baseline.get("metrics", {})
    for name in GATED_METRICS:
        base = base_metrics.get(name)
        current = result["metrics"].get(name)
        if base is None or not isinstance(base, (int, float)) or base <= 0:
            continue
        floor = base * (1.0 - threshold)
        if current < floor:
            failures.append(
                f"{name}: {current:.4f} < {floor:.4f} "
                f"(baseline {base:.4f}, threshold {threshold:.0%})"
            )
    return failures


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--jobs", type=int, default=2,
        help="worker processes for the parallel runs (default: 2)",
    )
    parser.add_argument(
        "--threshold", type=float, default=0.20,
        help="max allowed relative regression on gated metrics (default 0.20)",
    )
    parser.add_argument(
        "--output", type=pathlib.Path, default=OUTPUT_PATH,
        help=f"where to write the report (default {OUTPUT_PATH})",
    )
    parser.add_argument(
        "--baseline", type=pathlib.Path, default=BASELINE_PATH,
        help=f"baseline to gate against (default {BASELINE_PATH})",
    )
    parser.add_argument(
        "--update-baseline", action="store_true",
        help="write the measured result as the new baseline and skip gating",
    )
    args = parser.parse_args(argv)

    result = run_benchmark(jobs=args.jobs)

    args.output.parent.mkdir(parents=True, exist_ok=True)
    args.output.write_text(json.dumps(result, indent=2, sort_keys=True) + "\n")
    print(f"[bench_sweep] report written to {args.output}")
    for name, value in result["metrics"].items():
        print(f"[bench_sweep]   {name} = {value}")
    for name, value in result["wall_clock_s"].items():
        print(f"[bench_sweep]   {name} = {value}s")

    if args.update_baseline:
        args.baseline.parent.mkdir(parents=True, exist_ok=True)
        args.baseline.write_text(
            json.dumps(result, indent=2, sort_keys=True) + "\n"
        )
        print(f"[bench_sweep] baseline updated at {args.baseline}")
        return 0

    if not args.baseline.exists():
        print(
            f"[bench_sweep] no baseline at {args.baseline}; "
            "run with --update-baseline to create one", file=sys.stderr,
        )
        return 1

    baseline = json.loads(args.baseline.read_text())
    failures = gate(result, baseline, args.threshold)
    if failures:
        for message in failures:
            print(f"[bench_sweep] REGRESSION {message}", file=sys.stderr)
        return 1
    print(f"[bench_sweep] gate passed (threshold {args.threshold:.0%})")
    return 0


if __name__ == "__main__":
    sys.exit(main())
