"""Sweep benchmark + regression gate: serial vs parallel vs warm cache.

Runs the same restricted sweep three ways — cold serial, cold parallel
(process-pool precompute), and fully warm (persistent disk cache) — checks
the exports are byte-identical, collects per-stage synthesis timings, and
writes everything to ``benchmarks/results/BENCH_sweep.json``.

Both cold runs write through to a fresh disk cache, so the serial/parallel
comparison isolates *engine* overhead (planning, pool spin-up or its serial
fallback, outcome plumbing) rather than charging the parallel engine for
the durable cache it produces and the plain serial run would skip.  Cold
phases are timed ``REPEATS`` times each, interleaved (serial, parallel,
serial, parallel, ...) so load drift hits both alike, with fresh caches and
cleared memory every repetition; the best-of-N wall-clock is reported — the
standard ``timeit`` estimator of achievable cost under additive noise.

The gate then compares against the checked-in baseline
(``benchmarks/results/BENCH_sweep_baseline.json``) and fails (exit 1) on a
regression of more than ``--threshold`` (default 20%).

Only *machine-portable ratio metrics* are gated:

- ``warm_speedup_capped`` — cold-serial wall-clock over fully-warm
                        wall-clock, saturated at 10×.  A healthy cache sits
                        at the cap on any machine (the raw ratio is 100×+
                        here but jitters wildly because the warm run is
                        milliseconds); a broken cache collapses to ~1×,
                        which the 20% threshold catches decisively.
- ``warm_hit_rate``   — disk-cache hit rate of the warm run (≈ 1.0).
- ``graph_fast_speedup_capped`` — reference colored-graph build over the
                        fast-kernel build, saturated at 4× (the fast path
                        measures ~5×; the 20% threshold floors the gate at
                        3.2×, enforcing the ">= 3x" fast-path contract).
- ``msd_table_speedup_capped`` — cold MSD enumeration over warm (memoized
                        table) enumeration, saturated at 10×.
- ``parallel_efficiency_capped`` — cold-serial over cold-parallel
                        wall-clock, saturated at parity.  The serial-
                        fallback heuristic keeps small cold sweeps at ~1×
                        even on single-core runners (this metric pinned
                        0.52× before the fallback existed).
- ``byte_identical``  — parallel and warm exports must equal serial bytes.

Absolute wall-clocks, the uncapped speedups, and per-stage timings are
recorded for inspection but deliberately NOT gated — they do not transfer
across machines.

Usage::

    PYTHONPATH=src python benchmarks/bench_sweep_parallel.py --jobs 2
    PYTHONPATH=src python benchmarks/bench_sweep_parallel.py --update-baseline
"""

from __future__ import annotations

import argparse
import gc
import json
import os
import pathlib
import statistics
import sys
import tempfile
import time

from repro.eval import cache as disk_cache
from repro.eval import experiments
from repro.eval.export import sweep_to_json
from repro.eval.harness import run_sweep
from repro.eval.parallel import run_sweep_parallel

from bench_synthesis_speed import stage_operations

RESULTS_DIR = pathlib.Path(__file__).resolve().parent / "results"
BASELINE_PATH = RESULTS_DIR / "BENCH_sweep_baseline.json"
OUTPUT_PATH = RESULTS_DIR / "BENCH_sweep.json"

# The gated workload: a restricted but representative slice of the full
# figure/table sweep — two figure families plus Table 1 — kept small so the
# gate stays under a minute on CI runners.
EXPERIMENTS = ["fig6", "fig8a", "table1"]
RESTRICT = dict(filter_indices=[0, 1], wordlengths=[8, 10])

GATED_METRICS = (
    "warm_speedup_capped",
    "warm_hit_rate",
    "graph_fast_speedup_capped",
    "msd_table_speedup_capped",
    "parallel_efficiency_capped",
)

# Saturation point for the gated warm-cache speedup: far below the raw
# ratio on a healthy cache (so timer jitter cannot trip the gate) yet far
# above the ~1x a broken cache produces.
WARM_SPEEDUP_CAP = 10.0

# Fast-path phase gates, same capped-ratio recipe (in-process ratios, so
# they transfer across machines).  The fast graph kernel measures ~5x over
# the reference loop; capping at 4x puts the 20%-threshold floor at 3.2x —
# the ">= 3x faster" contract with jitter headroom.  A warm MSD table is a
# dict hit (raw ratio 100x+); the 10x cap makes the gate about "table still
# works", not timer noise.
GRAPH_SPEEDUP_CAP = 4.0
MSD_SPEEDUP_CAP = 10.0

# Cold parallel over serial, capped at parity: the serial-fallback
# heuristic must keep small cold sweeps from paying pool spin-up (the
# regression this gate pins sat at 0.52x).
PARALLEL_EFFICIENCY_CAP = 1.0

#: Cold-phase timing repetitions (interleaved; best-of-N reported).
REPEATS = 5


def _cold():
    experiments.clear_cache()
    disk_cache.configure(None)


def _time_stage_operations(repeats: int = 5):
    """Best-of-N wall-clock per synthesis stage (seconds).

    Two stabilizers, both load-bearing for the gated *ratios* (fast kernel
    over reference, cold table over warm):

    * Samples are taken round-robin — one sample of every op per round,
      not N samples of op A then N of op B — so host load drift lands on
      numerator and denominator alike instead of skewing whichever op was
      timed during the busy window.
    * The collector is paused during samples (``gc.collect()`` between
      them): right after the sweep phases the collector is still digesting
      their garbage, and the first allocations of a new op absorb those GC
      passes — measured 3x inflation on the graph build otherwise.  Each
      op also runs once untimed to warm allocator pools and caches.
    """
    ops = stage_operations()
    best = {name: float("inf") for name in ops}
    for op in ops.values():
        op()
    gc.collect()
    gc.disable()
    try:
        for _ in range(repeats):
            for name, op in ops.items():
                started = time.perf_counter()
                op()
                best[name] = min(best[name], time.perf_counter() - started)
            gc.enable()
            gc.collect()
            gc.disable()
    finally:
        gc.enable()
    return {name: round(value, 6) for name, value in best.items()}


def run_benchmark(jobs: int) -> dict:
    with tempfile.TemporaryDirectory(prefix="bench-sweep-cache-") as tmp:
        root = pathlib.Path(tmp)

        # 1+2. Cold serial and cold parallel, interleaved.  The serial
        # reference writes through to its own fresh disk cache each
        # repetition so both cold phases do identical durable work; the
        # parallel phase precomputes (pool, or its serial fallback on
        # small/single-CPU configurations) into an empty disk cache.
        serial_times = []
        parallel_times = []
        serial_json = None
        parallel_json = None
        cache_dir = None
        for rep in range(REPEATS):
            _cold()
            disk_cache.configure(root / f"serial-{rep}")
            gc.collect()
            started = time.perf_counter()
            serial_outcomes = run_sweep(EXPERIMENTS, **RESTRICT)
            serial_times.append(time.perf_counter() - started)
            if serial_json is None:
                serial_json = sweep_to_json(serial_outcomes)

            _cold()
            cache_dir = root / f"parallel-{rep}"
            gc.collect()
            started = time.perf_counter()
            parallel_report = run_sweep_parallel(
                EXPERIMENTS, jobs=jobs, cache_dir=cache_dir, **RESTRICT
            )
            parallel_times.append(time.perf_counter() - started)
            if parallel_json is None:
                parallel_json = sweep_to_json(parallel_report.outcomes)
        serial_s = min(serial_times)
        parallel_s = min(parallel_times)

        # 3. Fully warm: memory cleared, last parallel disk cache intact.
        experiments.clear_cache()
        started = time.perf_counter()
        warm_report = run_sweep_parallel(
            EXPERIMENTS, jobs=jobs, cache_dir=cache_dir, **RESTRICT
        )
        warm_s = time.perf_counter() - started
        warm_json = sweep_to_json(warm_report.outcomes)
        warm_cache = warm_report.cache

    _cold()

    byte_identical = parallel_json == serial_json and warm_json == serial_json
    warm_disk = warm_cache.get("disk") or {}
    warm_hits = warm_disk.get("hits", 0)
    warm_misses = warm_disk.get("misses", 0)
    probes = warm_hits + warm_misses
    stage_timings = _time_stage_operations()
    graph_fast_speedup = (
        stage_timings["graph_construction_reference"]
        / max(stage_timings["graph_construction"], 1e-9)
    )
    msd_table_speedup = (
        stage_timings["msd_enumeration_cold"]
        / max(stage_timings["msd_enumeration_warm"], 1e-9)
    )
    return {
        "workload": {
            "experiments": EXPERIMENTS,
            "filter_indices": RESTRICT["filter_indices"],
            "wordlengths": RESTRICT["wordlengths"],
        },
        "environment": {
            "jobs": jobs,
            "cpu_count": os.cpu_count(),
            "python": sys.version.split()[0],
        },
        "wall_clock_s": {
            "serial_cold": round(serial_s, 4),
            "parallel_cold": round(parallel_s, 4),
            "warm": round(warm_s, 4),
        },
        "metrics": {
            "parallel_speedup": round(serial_s / max(parallel_s, 1e-9), 4),
            "warm_speedup": round(serial_s / max(warm_s, 1e-9), 4),
            "warm_speedup_capped": round(
                min(serial_s / max(warm_s, 1e-9), WARM_SPEEDUP_CAP), 4
            ),
            "warm_hit_rate": round(warm_hits / probes, 4) if probes else 0.0,
            "graph_fast_speedup": round(graph_fast_speedup, 4),
            "graph_fast_speedup_capped": round(
                min(graph_fast_speedup, GRAPH_SPEEDUP_CAP), 4
            ),
            "msd_table_speedup": round(msd_table_speedup, 4),
            "msd_table_speedup_capped": round(
                min(msd_table_speedup, MSD_SPEEDUP_CAP), 4
            ),
            "parallel_efficiency_capped": round(
                min(serial_s / max(parallel_s, 1e-9), PARALLEL_EFFICIENCY_CAP),
                4,
            ),
            "byte_identical": byte_identical,
        },
        "parallel": parallel_report.stats(),
        "warm": warm_report.stats(),
        "stage_timings_s": stage_timings,
    }


def gate(result: dict, baseline: dict, threshold: float):
    """Return a list of human-readable regression messages (empty = pass)."""
    failures = []
    if not result["metrics"]["byte_identical"]:
        failures.append(
            "byte_identical: parallel/warm exports differ from serial"
        )
    base_metrics = baseline.get("metrics", {})
    for name in GATED_METRICS:
        base = base_metrics.get(name)
        current = result["metrics"].get(name)
        if base is None or not isinstance(base, (int, float)) or base <= 0:
            continue
        floor = base * (1.0 - threshold)
        if current < floor:
            failures.append(
                f"{name}: {current:.4f} < {floor:.4f} "
                f"(baseline {base:.4f}, threshold {threshold:.0%})"
            )
    return failures


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--jobs", type=int, default=2,
        help="worker processes for the parallel runs (default: 2)",
    )
    parser.add_argument(
        "--threshold", type=float, default=0.20,
        help="max allowed relative regression on gated metrics (default 0.20)",
    )
    parser.add_argument(
        "--output", type=pathlib.Path, default=OUTPUT_PATH,
        help=f"where to write the report (default {OUTPUT_PATH})",
    )
    parser.add_argument(
        "--baseline", type=pathlib.Path, default=BASELINE_PATH,
        help=f"baseline to gate against (default {BASELINE_PATH})",
    )
    parser.add_argument(
        "--update-baseline", action="store_true",
        help="write the measured result as the new baseline and skip gating",
    )
    args = parser.parse_args(argv)

    result = run_benchmark(jobs=args.jobs)

    args.output.parent.mkdir(parents=True, exist_ok=True)
    args.output.write_text(json.dumps(result, indent=2, sort_keys=True) + "\n")
    print(f"[bench_sweep] report written to {args.output}")
    for name, value in result["metrics"].items():
        print(f"[bench_sweep]   {name} = {value}")
    for name, value in result["wall_clock_s"].items():
        print(f"[bench_sweep]   {name} = {value}s")

    if args.update_baseline:
        args.baseline.parent.mkdir(parents=True, exist_ok=True)
        args.baseline.write_text(
            json.dumps(result, indent=2, sort_keys=True) + "\n"
        )
        print(f"[bench_sweep] baseline updated at {args.baseline}")
        return 0

    if not args.baseline.exists():
        print(
            f"[bench_sweep] no baseline at {args.baseline}; "
            "run with --update-baseline to create one", file=sys.stderr,
        )
        return 1

    baseline = json.loads(args.baseline.read_text())
    failures = gate(result, baseline, args.threshold)
    if failures:
        for message in failures:
            print(f"[bench_sweep] REGRESSION {message}", file=sys.stderr)
        return 1
    print(f"[bench_sweep] gate passed (threshold {args.threshold:.0%})")
    return 0


if __name__ == "__main__":
    sys.exit(main())
