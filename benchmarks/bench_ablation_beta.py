"""Ablation: the benefit-function β (paper §3.3).

β skews the greedy toward coverage (high β) or cheap colors (low β, modeling
interconnect cost).  This bench sweeps β over representative filters and both
scaling schemes, recording the lowered adder count per point — the data
behind this library's default β sweep in the figure runners.
"""

import pytest

from repro.core import MrpOptions, lower_plan, optimize
from repro.eval import format_table
from repro.filters import benchmark_suite
from repro.quantize import ScalingScheme, quantize

BETAS = (0.0, 0.2, 0.3, 0.5, 0.7, 0.9, 1.0)
FILTER_INDICES = (2, 4, 7)
WORDLENGTH = 16


def sweep():
    rows = []
    for index in FILTER_INDICES:
        designed = benchmark_suite()[index]
        for scheme in (ScalingScheme.UNIFORM, ScalingScheme.MAXIMAL):
            q = quantize(designed.folded, WORDLENGTH, scheme)
            counts = []
            for beta in BETAS:
                plan = optimize(q.integers, WORDLENGTH, MrpOptions(beta=beta))
                counts.append(lower_plan(plan).adder_count)
            rows.append((designed.name, scheme.value, counts))
    return rows


@pytest.mark.benchmark(group="ablations")
def test_ablation_beta(benchmark, save_result):
    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)

    headers = ["filter", "scaling"] + [f"b={b}" for b in BETAS]
    body = [
        [name, scaling] + [str(c) for c in counts]
        for name, scaling, counts in rows
    ]
    save_result("ablation_beta", "β ablation — MRPF adders per β\n"
                + format_table(headers, body))

    for name, scaling, counts in rows:
        # Pure frequency-greed (β=1) never uniquely wins — some β < 1 matches
        # or beats it — and the knob genuinely moves the result somewhere.
        assert min(counts[:-1]) <= counts[-1]
    assert any(max(counts) > min(counts) for _, _, counts in rows)
