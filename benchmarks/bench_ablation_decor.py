"""Ablation: DECOR ([10]) vs MRP — two different power stories.

DECOR shrinks coefficient *magnitudes* (narrower adders, less switching) but
adds integrators; MRP shrinks the adder *count*.  The paper's related-work
claim is that DECOR "is not effective when there is weak correlation between
coefficients"; this bench measures both methods on a narrowband low-pass
(DECOR's sweet spot) and a band-stop (its weak spot), in adders and in
switching activity.
"""

import pytest

from repro.baselines import simple_adder_count, synthesize_decor, synthesize_simple
from repro.eval import best_mrpf, format_table
from repro.filters import BandType, DesignMethod, FilterSpec, design_fir
from repro.filters import benchmark_suite, fold_symmetric
from repro.hwcost import estimate_power
from repro.quantize import quantize_uniform

WORDLENGTH = 14

NARROW = FilterSpec(
    name="narrow_lp", band=BandType.LOWPASS,
    method=DesignMethod.PARKS_MCCLELLAN, numtaps=61,
    passband=(0.0, 0.04), stopband=(0.12, 1.0), ripple_db=1.0, atten_db=35.0,
)


def workloads():
    narrow_taps, _ = fold_symmetric(design_fir(NARROW))
    bandstop = benchmark_suite()[4]
    return [
        ("narrow LP", quantize_uniform(narrow_taps, WORDLENGTH)),
        ("band-stop", quantize_uniform(bandstop.folded, WORDLENGTH)),
    ]


def sweep():
    rows = []
    for label, q in workloads():
        simple = synthesize_simple(q.integers)
        decor = synthesize_decor(q.integers, order=1)
        mrpf = best_mrpf(q.integers, WORDLENGTH)
        toggles = {
            "simple": estimate_power(simple.netlist, WORDLENGTH, 96).total_toggles,
            "decor": estimate_power(decor.netlist, WORDLENGTH, 96).total_toggles,
            "mrpf": estimate_power(mrpf.netlist, WORDLENGTH, 96).total_toggles,
        }
        rows.append((
            label,
            simple_adder_count(q.integers),
            decor.adder_count,
            mrpf.adder_count,
            toggles,
        ))
    return rows


@pytest.mark.benchmark(group="ablations")
def test_ablation_decor(benchmark, save_result):
    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)

    headers = ["workload", "simple add", "DECOR add", "MRPF add",
               "simple tgl", "DECOR tgl", "MRPF tgl"]
    body = [
        [label, str(simple), str(decor), str(mrpf),
         str(toggles["simple"]), str(toggles["decor"]), str(toggles["mrpf"])]
        for label, simple, decor, mrpf, toggles in rows
    ]
    save_result(
        "ablation_decor",
        "DECOR (dynamic-range) vs MRP (adder-count) optimization\n"
        + format_table(headers, body),
    )

    by_label = {row[0]: row for row in rows}
    # DECOR helps the narrowband case in switching, not the band-stop case.
    narrow = by_label["narrow LP"]
    assert narrow[4]["decor"] < narrow[4]["simple"]
    # MRP reduces adders on both workloads.
    for label, simple, decor, mrpf, toggles in rows:
        assert mrpf < simple
