"""Micro-benchmarks: synthesis throughput of each pipeline stage.

These are genuine timing benchmarks (multiple rounds) rather than one-shot
table regenerations: graph construction, greedy cover + forest, full MRPF
lowering, CSE, and the bit-exact verifier — so performance regressions in the
core algorithms are visible.
"""

import pytest

from repro.baselines import synthesize_cse_filter
from repro.core import MrpOptions, lower_plan, optimize, synthesize_mrpf
from repro.core.sidc import normalize_taps
from repro.graph import build_colored_graph
from repro.filters import benchmark_suite
from repro.quantize import ScalingScheme, quantize

WORDLENGTH = 16


@pytest.fixture(scope="module")
def medium_integers():
    designed = benchmark_suite()[4]
    return quantize(designed.folded, WORDLENGTH, ScalingScheme.UNIFORM).integers


@pytest.fixture(scope="module")
def medium_graph(medium_integers):
    vertices, _ = normalize_taps(medium_integers)
    return build_colored_graph(vertices, WORDLENGTH)


@pytest.mark.benchmark(group="speed")
def test_speed_graph_construction(benchmark, medium_integers):
    vertices, _ = normalize_taps(medium_integers)
    graph = benchmark(build_colored_graph, vertices, WORDLENGTH)
    assert graph.num_edges > 0


@pytest.mark.benchmark(group="speed")
def test_speed_cover_and_forest(benchmark, medium_integers, medium_graph):
    plan = benchmark(
        optimize, medium_integers, WORDLENGTH, MrpOptions(), medium_graph
    )
    assert plan.seed


@pytest.mark.benchmark(group="speed")
def test_speed_full_mrpf_synthesis(benchmark, medium_integers):
    arch = benchmark(
        synthesize_mrpf, medium_integers, WORDLENGTH, None, "none", False
    )
    assert arch.adder_count > 0


@pytest.mark.benchmark(group="speed")
def test_speed_cse_baseline(benchmark, medium_integers):
    arch = benchmark(synthesize_cse_filter, medium_integers)
    assert arch.adder_count > 0


@pytest.mark.benchmark(group="speed")
def test_speed_verification(benchmark, medium_integers):
    arch = synthesize_mrpf(medium_integers, WORDLENGTH, verify=False)
    samples = list(range(-32, 32))
    benchmark(arch.verify, samples)


@pytest.mark.benchmark(group="speed")
def test_speed_plan_lowering(benchmark, medium_integers, medium_graph):
    plan = optimize(medium_integers, WORDLENGTH, MrpOptions(), medium_graph)
    arch = benchmark(lower_plan, plan)
    assert arch.adder_count == lower_plan(plan).adder_count
