"""Micro-benchmarks: synthesis throughput of each pipeline stage.

These are genuine timing benchmarks (multiple rounds) rather than one-shot
table regenerations: graph construction, greedy cover + forest, full MRPF
lowering, CSE, and the bit-exact verifier — so performance regressions in the
core algorithms are visible.

The stage operations themselves are exposed through :func:`stage_operations`
so other harnesses (notably ``benchmarks/bench_sweep_parallel.py``, the
regression gate) can time exactly the same work without pytest-benchmark.
"""

import pytest

from repro import fastpath
from repro.baselines import synthesize_cse_filter
from repro.core import MrpOptions, lower_plan, optimize, synthesize_mrpf
from repro.core.sidc import normalize_taps
from repro.fastpath import msdtables
from repro.graph import build_colored_graph
from repro.filters import benchmark_suite
from repro.numrep import enumerate_msd, oddpart
from repro.quantize import ScalingScheme, quantize
from repro.verify import release_audit
from repro.verify.structure import audit_structure

WORDLENGTH = 16


def medium_filter_integers(wordlength: int = WORDLENGTH):
    """The mid-size band-stop benchmark filter, quantized — the shared
    workload for every stage benchmark."""
    designed = benchmark_suite()[4]
    return quantize(designed.folded, wordlength, ScalingScheme.UNIFORM).integers


def stage_operations(integers=None, wordlength: int = WORDLENGTH):
    """Named zero-argument operations, one per pipeline stage.

    Each callable performs exactly the work the corresponding pytest
    benchmark below times, against a shared precomputed context (graph,
    plan, architecture), so a caller can measure per-stage cost with any
    timer it likes.
    """
    if integers is None:
        integers = medium_filter_integers(wordlength)
    integers = list(integers)
    vertices, _ = normalize_taps(integers)
    graph = build_colored_graph(vertices, wordlength)
    plan = optimize(integers, wordlength, MrpOptions(), graph)
    arch = synthesize_mrpf(integers, wordlength, verify=False)
    samples = list(range(-32, 32))

    # The coefficient odd-part population a sweep would enumerate MSD sets
    # for; warmed once up front so "msd_enumeration_warm" measures table
    # hits regardless of which stage a harness times first.
    msd_values = sorted({abs(oddpart(v)) for v in integers if v})
    msdtables.warm_msd_tables(msd_values)

    def graph_reference():
        # The pre-fastpath loop, pinned so the fast/reference ratio stays
        # measurable as a gated metric even though the fast kernels are the
        # default everywhere else.
        fastpath.set_mode("off")
        try:
            return build_colored_graph(vertices, wordlength)
        finally:
            fastpath.set_mode(None)

    def msd_cold():
        msdtables.clear_tables()
        for value in msd_values:
            enumerate_msd(value)

    def msd_warm():
        for value in msd_values:
            enumerate_msd(value)

    return {
        "graph_construction": lambda: build_colored_graph(vertices, wordlength),
        "graph_construction_reference": graph_reference,
        "msd_enumeration_cold": msd_cold,
        "msd_enumeration_warm": msd_warm,
        "cover_and_forest": lambda: optimize(
            integers, wordlength, MrpOptions(), graph
        ),
        "full_synthesis": lambda: synthesize_mrpf(
            integers, wordlength, None, "none", False
        ),
        "cse_baseline": lambda: synthesize_cse_filter(integers),
        "verification": lambda: arch.verify(samples),
        "plan_lowering": lambda: lower_plan(plan),
        "release_audit": lambda: release_audit(
            arch.netlist, arch.tap_names, arch.coefficients
        ),
        "structure_audit": lambda: audit_structure(
            arch.netlist, arch.tap_names
        ),
    }


@pytest.fixture(scope="module")
def stage_ops():
    return stage_operations()


@pytest.mark.benchmark(group="speed")
def test_speed_graph_construction(benchmark, stage_ops):
    graph = benchmark(stage_ops["graph_construction"])
    assert graph.num_edges > 0


@pytest.mark.benchmark(group="speed")
def test_speed_graph_construction_reference(benchmark, stage_ops):
    graph = benchmark(stage_ops["graph_construction_reference"])
    assert graph.num_edges > 0


@pytest.mark.benchmark(group="speed")
def test_speed_msd_enumeration_cold(benchmark, stage_ops):
    benchmark(stage_ops["msd_enumeration_cold"])
    assert msdtables.table_stats()["entries"] > 0


@pytest.mark.benchmark(group="speed")
def test_speed_msd_enumeration_warm(benchmark, stage_ops):
    before = msdtables.table_stats()["hits"]
    benchmark(stage_ops["msd_enumeration_warm"])
    assert msdtables.table_stats()["hits"] > before


@pytest.mark.benchmark(group="speed")
def test_speed_cover_and_forest(benchmark, stage_ops):
    plan = benchmark(stage_ops["cover_and_forest"])
    assert plan.seed


@pytest.mark.benchmark(group="speed")
def test_speed_full_mrpf_synthesis(benchmark, stage_ops):
    arch = benchmark(stage_ops["full_synthesis"])
    assert arch.adder_count > 0


@pytest.mark.benchmark(group="speed")
def test_speed_cse_baseline(benchmark, stage_ops):
    arch = benchmark(stage_ops["cse_baseline"])
    assert arch.adder_count > 0


@pytest.mark.benchmark(group="speed")
def test_speed_verification(benchmark, stage_ops):
    benchmark(stage_ops["verification"])


@pytest.mark.benchmark(group="speed")
def test_speed_plan_lowering(benchmark, stage_ops):
    arch = benchmark(stage_ops["plan_lowering"])
    assert arch.adder_count > 0


@pytest.mark.benchmark(group="speed")
def test_speed_structure_audit(benchmark, stage_ops):
    report = benchmark(stage_ops["structure_audit"])
    assert report.num_adders > 0


@pytest.mark.benchmark(group="speed")
def test_speed_release_audit(benchmark, stage_ops):
    benchmark(stage_ops["release_audit"])
