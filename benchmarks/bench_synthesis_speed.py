"""Micro-benchmarks: synthesis throughput of each pipeline stage.

These are genuine timing benchmarks (multiple rounds) rather than one-shot
table regenerations: graph construction, greedy cover + forest, full MRPF
lowering, CSE, and the bit-exact verifier — so performance regressions in the
core algorithms are visible.

The stage operations themselves are exposed through :func:`stage_operations`
so other harnesses (notably ``benchmarks/bench_sweep_parallel.py``, the
regression gate) can time exactly the same work without pytest-benchmark.
"""

import pytest

from repro.baselines import synthesize_cse_filter
from repro.core import MrpOptions, lower_plan, optimize, synthesize_mrpf
from repro.core.sidc import normalize_taps
from repro.graph import build_colored_graph
from repro.filters import benchmark_suite
from repro.quantize import ScalingScheme, quantize
from repro.verify import release_audit
from repro.verify.structure import audit_structure

WORDLENGTH = 16


def medium_filter_integers(wordlength: int = WORDLENGTH):
    """The mid-size band-stop benchmark filter, quantized — the shared
    workload for every stage benchmark."""
    designed = benchmark_suite()[4]
    return quantize(designed.folded, wordlength, ScalingScheme.UNIFORM).integers


def stage_operations(integers=None, wordlength: int = WORDLENGTH):
    """Named zero-argument operations, one per pipeline stage.

    Each callable performs exactly the work the corresponding pytest
    benchmark below times, against a shared precomputed context (graph,
    plan, architecture), so a caller can measure per-stage cost with any
    timer it likes.
    """
    if integers is None:
        integers = medium_filter_integers(wordlength)
    integers = list(integers)
    vertices, _ = normalize_taps(integers)
    graph = build_colored_graph(vertices, wordlength)
    plan = optimize(integers, wordlength, MrpOptions(), graph)
    arch = synthesize_mrpf(integers, wordlength, verify=False)
    samples = list(range(-32, 32))
    return {
        "graph_construction": lambda: build_colored_graph(vertices, wordlength),
        "cover_and_forest": lambda: optimize(
            integers, wordlength, MrpOptions(), graph
        ),
        "full_synthesis": lambda: synthesize_mrpf(
            integers, wordlength, None, "none", False
        ),
        "cse_baseline": lambda: synthesize_cse_filter(integers),
        "verification": lambda: arch.verify(samples),
        "plan_lowering": lambda: lower_plan(plan),
        "release_audit": lambda: release_audit(
            arch.netlist, arch.tap_names, arch.coefficients
        ),
        "structure_audit": lambda: audit_structure(
            arch.netlist, arch.tap_names
        ),
    }


@pytest.fixture(scope="module")
def stage_ops():
    return stage_operations()


@pytest.mark.benchmark(group="speed")
def test_speed_graph_construction(benchmark, stage_ops):
    graph = benchmark(stage_ops["graph_construction"])
    assert graph.num_edges > 0


@pytest.mark.benchmark(group="speed")
def test_speed_cover_and_forest(benchmark, stage_ops):
    plan = benchmark(stage_ops["cover_and_forest"])
    assert plan.seed


@pytest.mark.benchmark(group="speed")
def test_speed_full_mrpf_synthesis(benchmark, stage_ops):
    arch = benchmark(stage_ops["full_synthesis"])
    assert arch.adder_count > 0


@pytest.mark.benchmark(group="speed")
def test_speed_cse_baseline(benchmark, stage_ops):
    arch = benchmark(stage_ops["cse_baseline"])
    assert arch.adder_count > 0


@pytest.mark.benchmark(group="speed")
def test_speed_verification(benchmark, stage_ops):
    benchmark(stage_ops["verification"])


@pytest.mark.benchmark(group="speed")
def test_speed_plan_lowering(benchmark, stage_ops):
    arch = benchmark(stage_ops["plan_lowering"])
    assert arch.adder_count > 0


@pytest.mark.benchmark(group="speed")
def test_speed_structure_audit(benchmark, stage_ops):
    report = benchmark(stage_ops["structure_audit"])
    assert report.num_adders > 0


@pytest.mark.benchmark(group="speed")
def test_speed_release_audit(benchmark, stage_ops):
    benchmark(stage_ops["release_audit"])
