"""Shared helpers for the benchmark harness.

Every bench regenerates one of the paper's tables/figures (or an ablation),
times the run with pytest-benchmark, prints the reproduced table, and writes
it to ``benchmarks/results/<name>.txt`` so the artifact survives output
capture.
"""

from __future__ import annotations

import pathlib

import pytest

RESULTS_DIR = pathlib.Path(__file__).resolve().parent / "results"


@pytest.fixture(scope="session")
def results_dir() -> pathlib.Path:
    RESULTS_DIR.mkdir(exist_ok=True)
    return RESULTS_DIR


@pytest.fixture(scope="session")
def save_result(results_dir):
    def _save(name: str, text: str) -> None:
        (results_dir / f"{name}.txt").write_text(text + "\n")
        print(f"\n{text}\n[saved to benchmarks/results/{name}.txt]")

    return _save
