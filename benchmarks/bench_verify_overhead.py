"""Verifier overhead benchmark + regression gate.

Measures what the always-on release audit costs on top of plain synthesis:
the same mid-size filter is synthesized through the robust cascade twice —
once with ``RobustConfig(release_audit=False)`` and once with the default
audit-enabled configuration — and each verification layer (structure audit,
release audit, full audit with a small mutation campaign) is also timed in
isolation.  Everything is written to
``benchmarks/results/BENCH_verify.json``.

The gate compares against the checked-in baseline
(``benchmarks/results/BENCH_verify_baseline.json``) and fails (exit 1) when
the *overhead ratio* regresses by more than ``--threshold`` (default 50%).

Only one *machine-portable ratio metric* is gated:

- ``audit_overhead_ratio`` — audit-enabled synthesis wall-clock over
                         audit-disabled wall-clock.  ≥ 1.0 by construction;
                         a cheap verifier sits close to 1.  The gate fails
                         when the ratio *grows* past
                         ``baseline * (1 + threshold)``, i.e. when the
                         release audit becomes disproportionately more
                         expensive relative to synthesis on the same
                         machine.

Absolute wall-clocks and the per-layer timings are recorded for inspection
but deliberately NOT gated — they do not transfer across machines.

Usage::

    PYTHONPATH=src python benchmarks/bench_verify_overhead.py
    PYTHONPATH=src python benchmarks/bench_verify_overhead.py --update-baseline
"""

from __future__ import annotations

import argparse
import json
import os
import pathlib
import sys
import time

from repro.core import synthesize_mrpf
from repro.robust import RobustConfig
from repro.robust import synthesize as robust_synthesize
from repro.verify import full_audit, release_audit
from repro.verify.structure import audit_structure

from bench_synthesis_speed import medium_filter_integers

RESULTS_DIR = pathlib.Path(__file__).resolve().parent / "results"
BASELINE_PATH = RESULTS_DIR / "BENCH_verify_baseline.json"
OUTPUT_PATH = RESULTS_DIR / "BENCH_verify.json"

WORDLENGTH = 16
MUTANTS = 20
MUTATION_SEED = 0


def _best_of(op, repeats: int) -> float:
    best = float("inf")
    for _ in range(repeats):
        started = time.perf_counter()
        op()
        best = min(best, time.perf_counter() - started)
    return best


def run_benchmark(repeats: int) -> dict:
    integers = list(medium_filter_integers(WORDLENGTH))

    audited_cfg = RobustConfig()
    unaudited_cfg = RobustConfig(release_audit=False)
    assert audited_cfg.release_audit, "release audit must default to on"

    unaudited_s = _best_of(
        lambda: robust_synthesize(integers, WORDLENGTH, config=unaudited_cfg),
        repeats,
    )
    audited_s = _best_of(
        lambda: robust_synthesize(integers, WORDLENGTH, config=audited_cfg),
        repeats,
    )

    # The verification layers in isolation, against one prebuilt design.
    arch = synthesize_mrpf(integers, WORDLENGTH, verify=False)
    coefficients = list(arch.coefficients)
    layer_timings = {
        "structure_audit": _best_of(
            lambda: audit_structure(arch.netlist, arch.tap_names), repeats
        ),
        "release_audit": _best_of(
            lambda: release_audit(arch.netlist, arch.tap_names, coefficients),
            repeats,
        ),
        "full_audit_with_mutation": _best_of(
            lambda: full_audit(
                arch.netlist, arch.tap_names, coefficients,
                exhaustive_bits=6, mutants=MUTANTS, seed=MUTATION_SEED,
            ),
            repeats,
        ),
    }

    return {
        "workload": {
            "filter": "medium band-stop (benchmark_suite()[4])",
            "wordlength": WORDLENGTH,
            "taps": len(integers),
            "mutants": MUTANTS,
            "repeats": repeats,
        },
        "environment": {
            "cpu_count": os.cpu_count(),
            "python": sys.version.split()[0],
        },
        "wall_clock_s": {
            "synthesis_unaudited": round(unaudited_s, 6),
            "synthesis_audited": round(audited_s, 6),
        },
        "layer_timings_s": {
            name: round(value, 6) for name, value in layer_timings.items()
        },
        "metrics": {
            "audit_overhead_ratio": round(
                audited_s / max(unaudited_s, 1e-9), 4
            ),
        },
    }


def gate(result: dict, baseline: dict, threshold: float):
    """Return a list of human-readable regression messages (empty = pass)."""
    failures = []
    base = baseline.get("metrics", {}).get("audit_overhead_ratio")
    current = result["metrics"]["audit_overhead_ratio"]
    if isinstance(base, (int, float)) and base > 0:
        ceiling = base * (1.0 + threshold)
        if current > ceiling:
            failures.append(
                f"audit_overhead_ratio: {current:.4f} > {ceiling:.4f} "
                f"(baseline {base:.4f}, threshold {threshold:.0%})"
            )
    return failures


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--repeats", type=int, default=3,
        help="best-of-N rounds per measurement (default: 3)",
    )
    parser.add_argument(
        "--threshold", type=float, default=0.50,
        help="max allowed relative growth of the overhead ratio (default 0.50)",
    )
    parser.add_argument(
        "--output", type=pathlib.Path, default=OUTPUT_PATH,
        help=f"where to write the report (default {OUTPUT_PATH})",
    )
    parser.add_argument(
        "--baseline", type=pathlib.Path, default=BASELINE_PATH,
        help=f"baseline to gate against (default {BASELINE_PATH})",
    )
    parser.add_argument(
        "--update-baseline", action="store_true",
        help="write the measured result as the new baseline and skip gating",
    )
    args = parser.parse_args(argv)

    result = run_benchmark(repeats=args.repeats)

    args.output.parent.mkdir(parents=True, exist_ok=True)
    args.output.write_text(json.dumps(result, indent=2, sort_keys=True) + "\n")
    print(f"[bench_verify] report written to {args.output}")
    for name, value in result["wall_clock_s"].items():
        print(f"[bench_verify]   {name} = {value}s")
    for name, value in result["layer_timings_s"].items():
        print(f"[bench_verify]   {name} = {value}s")
    for name, value in result["metrics"].items():
        print(f"[bench_verify]   {name} = {value}")

    if args.update_baseline:
        args.baseline.parent.mkdir(parents=True, exist_ok=True)
        args.baseline.write_text(
            json.dumps(result, indent=2, sort_keys=True) + "\n"
        )
        print(f"[bench_verify] baseline updated at {args.baseline}")
        return 0

    if not args.baseline.exists():
        print(
            f"[bench_verify] no baseline at {args.baseline}; "
            "run with --update-baseline to create one", file=sys.stderr,
        )
        return 1

    baseline = json.loads(args.baseline.read_text())
    failures = gate(result, baseline, args.threshold)
    if failures:
        for message in failures:
            print(f"[bench_verify] REGRESSION {message}", file=sys.stderr)
        return 1
    print(f"[bench_verify] gate passed (threshold {args.threshold:.0%})")
    return 0


if __name__ == "__main__":
    sys.exit(main())
