"""Figure 7 — MRPF vs simple implementation, maximally scaled SPT coefficients.

Paper claims: ~60 % reduction at W in {8, 12}; ~40 % at W in {16, 20} (maximal
scaling densifies coefficients, so sharing gets harder at long wordlengths).
"""

import pytest

from repro.eval import format_experiment, paper_comparison, run_figure7


@pytest.mark.benchmark(group="figures")
def test_figure7(benchmark, save_result):
    result = benchmark.pedantic(run_figure7, rounds=1, iterations=1)

    text = format_experiment(result)
    comparison = "\n".join(
        f"paper vs measured — {metric}: paper={paper:.2f} measured={measured:.2f}"
        for metric, paper, measured in paper_comparison(result)
    )
    save_result("fig7", text + "\n\n" + comparison)

    for row in result.rows:
        assert row.results["mrpf"].adders <= row.results["simple"].adders
    # Crossover shape: short wordlengths benefit at least as much as long ones.
    assert (
        result.summary["mean_reduction_w8_w12"]
        >= result.summary["mean_reduction_w16_w20"] - 0.05
    )
    assert result.summary["mean_reduction"] > 0.25
