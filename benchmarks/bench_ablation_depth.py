"""Ablation: spanning-tree depth constraint (paper Table 1 uses 3).

Tighter depth bounds shorten the overhead-add critical path (faster filters)
but split trees, adding roots and therefore SEED multipliers.  This bench
quantifies the adders-vs-depth trade-off.
"""

import pytest

from repro.core import MrpOptions, lower_plan, optimize
from repro.eval import format_table
from repro.filters import benchmark_suite
from repro.quantize import ScalingScheme, quantize

DEPTHS = (1, 2, 3, 5, None)
FILTER_INDICES = (2, 4, 7)
WORDLENGTH = 16


def sweep():
    rows = []
    for index in FILTER_INDICES:
        designed = benchmark_suite()[index]
        q = quantize(designed.folded, WORDLENGTH, ScalingScheme.MAXIMAL)
        per_depth = []
        for depth in DEPTHS:
            plan = optimize(q.integers, WORDLENGTH, MrpOptions(depth_limit=depth))
            arch = lower_plan(plan)
            per_depth.append(
                (arch.adder_count, len(plan.roots), plan.tree_height)
            )
        rows.append((designed.name, per_depth))
    return rows


@pytest.mark.benchmark(group="ablations")
def test_ablation_depth(benchmark, save_result):
    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)

    headers = ["filter"] + [f"depth<={d}" for d in DEPTHS]
    body = [
        [name] + [f"{a}add/{r}roots/h{h}" for a, r, h in per_depth]
        for name, per_depth in rows
    ]
    save_result(
        "ablation_depth",
        "depth-constraint ablation — adders/roots/height per bound\n"
        + format_table(headers, body),
    )

    for name, per_depth in rows:
        heights = [h for _, _, h in per_depth]
        roots = [r for _, r, _ in per_depth]
        # The bound is honored, and loosening it never adds roots.
        for (depth, (_, _, h)) in zip(DEPTHS, per_depth):
            if depth is not None:
                assert h <= depth
        assert roots[0] >= roots[-1]
