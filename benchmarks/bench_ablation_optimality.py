"""Ablation: greedy vs provably-optimal set cover (optimality gap).

The paper justifies the greedy by NP-completeness; on small instances the
branch-and-bound solver in ``repro.graph.exact_cover`` finds the true
minimum-cost cover, so we can *measure* how much the greedy leaves on the
table rather than guess.  Instances are small filters (and truncations of
larger ones) whose vertex counts fit the exact solver's budget.
"""

import pytest

from repro.core.sidc import normalize_taps
from repro.eval import format_table
from repro.filters import benchmark_suite
from repro.graph import (
    build_colored_graph,
    exact_weighted_set_cover,
    greedy_weighted_set_cover,
)
from repro.quantize import ScalingScheme, quantize

WORDLENGTH = 8  # short wordlength keeps vertex/color counts exact-solvable
MAX_VERTICES = 10


def build_instance(integers):
    vertices, _ = normalize_taps(integers)
    vertices = vertices[:MAX_VERTICES]
    graph = build_colored_graph(vertices, WORDLENGTH)
    sets = {c: graph.color_set(c) for c in graph.colors}
    costs = {c: float(graph.color_cost(c)) for c in graph.colors}
    return set(vertices), sets, costs


def sweep():
    rows = []
    for index in (0, 1, 2, 4):
        designed = benchmark_suite()[index]
        q = quantize(designed.folded, WORDLENGTH, ScalingScheme.UNIFORM)
        universe, sets, costs = build_instance(q.integers)
        if not universe:
            continue
        exact = exact_weighted_set_cover(universe, sets, costs)
        best_greedy = None
        for beta in (0.0, 0.3, 0.5, 0.7):
            greedy = greedy_weighted_set_cover(universe, sets, costs, beta=beta)
            if best_greedy is None or greedy.total_cost < best_greedy:
                best_greedy = greedy.total_cost
        rows.append(
            (designed.name, len(universe), exact.total_cost, best_greedy)
        )
    return rows


@pytest.mark.benchmark(group="ablations")
def test_ablation_optimality_gap(benchmark, save_result):
    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)

    headers = ["filter", "vertices", "optimal cover cost",
               "best greedy cost", "gap"]
    body = [
        [name, str(n), f"{opt:.0f}", f"{grd:.0f}",
         f"{(grd - opt) / opt:.0%}" if opt else "-"]
        for name, n, opt, grd in rows
    ]
    save_result(
        "ablation_optimality",
        "greedy-vs-exact WMSC cover cost (small instances, W=8)\n"
        + format_table(headers, body),
    )

    for name, n, opt, grd in rows:
        assert opt <= grd + 1e-9       # exact is a true lower bound
        assert grd <= 2.5 * opt + 1e-9  # greedy stays within a sane factor
