#!/usr/bin/env python
"""Multiplierless 8-point DCT row kernels via MRP vector scaling.

The paper closes §1 noting MRP applies "to any applications which can be
expressed as a vector scaling operation".  A matrix-vector product is eight
such operations — one per row — and the DCT-II matrix used by image codecs is
the classic fixed-coefficient example.  This script quantizes each DCT basis
row, MRP-optimizes it into a shift-add bank, verifies every product exactly,
and totals the adder savings over naive per-constant chains.

Run:  python examples/dct_bank.py
"""

import math

from repro.baselines import simple_adder_count
from repro.core import synthesize_vector_scaler
from repro.eval import format_table
from repro.quantize import quantize_uniform

N = 8
WORDLENGTH = 12


def dct_rows():
    """DCT-II basis rows (orthonormal scaling)."""
    rows = []
    for k in range(N):
        scale = math.sqrt(1.0 / N) if k == 0 else math.sqrt(2.0 / N)
        rows.append([
            scale * math.cos(math.pi * (2 * n + 1) * k / (2 * N))
            for n in range(N)
        ])
    return rows


def main() -> None:
    table = []
    total_naive = 0
    total_mrp = 0
    for k, row in enumerate(dct_rows()):
        q = quantize_uniform(row, WORDLENGTH)
        scaler = synthesize_vector_scaler(q.integers, wordlength=WORDLENGTH)
        scaler.verify([1, -1, 127, -128, 255])
        naive = simple_adder_count(q.integers)
        total_naive += naive
        total_mrp += scaler.adder_count
        table.append([
            f"row {k}",
            str(len(set(abs(v) for v in q.integers if v))),
            str(naive),
            str(scaler.adder_count),
            str(list(scaler.architecture.plan.seed)),
        ])
    print(f"8-point DCT-II, {WORDLENGTH}-bit coefficients — "
          f"every row verified bit-exactly")
    print(format_table(
        ["kernel", "unique |c|", "naive adders", "MRP adders", "SEED"], table
    ))
    print()
    print(f"total: {total_naive} naive -> {total_mrp} MRP "
          f"({1 - total_mrp / total_naive:.0%} of the multiplier area saved)")


if __name__ == "__main__":
    main()
