#!/usr/bin/env python
"""Multiplierless IIR notch filter — MRP beyond FIR (paper §1).

The paper notes MRP applies to "any application which can be expressed as a
vector scaling operation ... like transposed direct form IIR filters".  This
example designs an elliptic-band notch (band-stop) IIR filter for interference
rejection in a receiver, quantizes numerator and denominator jointly, and
MRP-optimizes the combined coefficient vector into one shared shift-add bank.
The quantized filter is then run through the exact TDF-II simulator and its
notch depth compared against the float design.

Run:  python examples/iir_notch.py
"""

import numpy as np
from scipy import signal

from repro.baselines import simple_adder_count
from repro.core import synthesize_vector_scaler
from repro.filters import IirSpec, design_iir, iir_tdf2_output, quantize_iir

WORDLENGTH = 14


def notch_depth_db(b, a) -> float:
    freqs, response = signal.freqz(b, a, worN=2048)
    magnitude = np.abs(response)
    band = (freqs / np.pi >= 0.49) & (freqs / np.pi <= 0.51)
    return float(-20 * np.log10(max(np.max(magnitude[band]), 1e-12)))


def main() -> None:
    spec = IirSpec("interference_notch", "bandstop", 3, (0.45, 0.55),
                   design="butter")
    b, a = design_iir(spec)
    q = quantize_iir(b, a, WORDLENGTH)

    print(f"{spec.name}: order-{spec.order} {spec.btype}, "
          f"{len(q.b_int)} numerator + {len(q.a_int) - 1} denominator taps")
    print(f"quantized b: {list(q.b_int)} / 2^{q.b_frac}")
    print(f"quantized a: {list(q.a_int)} / 2^{q.a_frac} "
          f"(a0 = 2^{q.a_int[0].bit_length() - 1}: feedback divide is a wire)")

    # Jointly MRP-optimize every multiplication the TDF-II structure needs.
    scaler = synthesize_vector_scaler(q.all_integers, wordlength=WORDLENGTH)
    scaler.verify()
    naive = simple_adder_count(q.all_integers)
    print()
    print(f"multiplier bank: {naive} adders naive -> "
          f"{scaler.adder_count} adders after MRP "
          f"({1 - scaler.adder_count / naive:.0%} saved), "
          f"SEED = {list(scaler.architecture.plan.seed)}")

    # Exact fixed-point run vs the float design.
    float_depth = notch_depth_db(b, a)
    bq = [v / (1 << q.b_frac) for v in q.b_int]
    aq = [v / (1 << q.a_frac) for v in q.a_int]
    quant_depth = notch_depth_db(bq, aq)
    print()
    print(f"notch depth: float {float_depth:.1f} dB, "
          f"{WORDLENGTH}-bit quantized {quant_depth:.1f} dB")

    # Cycle-accurate sanity: feed a 0.5*Nyquist tone through the exact TDF-II
    # integer structure and show it is crushed relative to a passband tone.
    n = np.arange(256)
    in_band = [int(v) for v in np.round(1000 * np.sin(np.pi * 0.5 * n))]
    passband = [int(v) for v in np.round(1000 * np.sin(np.pi * 0.1 * n))]

    def rms_gain(xs):
        ys = iir_tdf2_output(list(q.b_int), list(q.a_int), xs)[64:]
        return float(np.sqrt(np.mean([float(y) ** 2 for y in ys]))) / 707.0

    print(f"RMS gain: passband tone {rms_gain(passband):.2f}, "
          f"notch tone {rms_gain(in_band):.4f}")


if __name__ == "__main__":
    main()
