#!/usr/bin/env python
"""Export a synthesized MRPF filter to Verilog RTL and Graphviz dot.

Uses the paper's own running example — the asymmetric 8-tap filter
C = {7, 66, 17, 9, 27, 41, 56, 11} from §3.5 — synthesizes it, and writes
``mrpf_example.v`` and ``mrpf_example.dot`` next to this script.

Run:  python examples/rtl_export.py
"""

import pathlib

from repro import synthesize_mrpf
from repro.core import plan_to_dot
from repro.arch import emit_verilog, to_dot
from repro.hwcost import estimate_power, fanout_counts

PAPER_COEFFS = [7, 66, 17, 9, 27, 41, 56, 11]


def main() -> None:
    arch = synthesize_mrpf(PAPER_COEFFS, wordlength=7)
    arch.verify()
    print(arch.plan.describe())

    verilog = emit_verilog(
        arch.netlist, arch.tap_names, module_name="mrpf_example", input_bits=12
    )
    dot = to_dot(arch.netlist, arch.tap_names, graph_name="mrpf_example")

    out_dir = pathlib.Path(__file__).resolve().parent
    (out_dir / "mrpf_example.v").write_text(verilog)
    (out_dir / "mrpf_example.dot").write_text(dot)
    (out_dir / "mrpf_example_plan.dot").write_text(plan_to_dot(arch.plan))
    print()
    print(f"wrote {out_dir / 'mrpf_example.v'} "
          f"({len(verilog.splitlines())} lines)")
    print(f"wrote {out_dir / 'mrpf_example.dot'} "
          f"({len(dot.splitlines())} lines)")
    print(f"wrote {out_dir / 'mrpf_example_plan.dot'} (spanning forest view)")

    fanout = fanout_counts(arch.netlist)
    power = estimate_power(arch.netlist, input_bits=12, num_samples=128)
    print()
    print(f"max fanout: {fanout.max_fanout}, mean: {fanout.mean_fanout:.2f}")
    print(f"switching activity: {power.toggles_per_sample:.1f} toggles/sample "
          f"(~{power.energy_pj:.2f} pJ over {power.num_samples} samples)")


if __name__ == "__main__":
    main()
