#!/usr/bin/env python
"""Full design flow: spec -> FIR design -> wordlength search -> MRPF -> RTL.

Scenario from the paper's introduction: a fixed-coefficient channel-select
low-pass filter for a high-speed communication receiver.  We design it,
search the minimum coefficient wordlength that still meets the spec, compare
scaling schemes, synthesize the MRPF architecture and report hardware costs
under the carry-lookahead model.

Run:  python examples/design_and_synthesize.py
"""

from repro import (
    BandType,
    DesignMethod,
    FilterSpec,
    ScalingScheme,
    design_fir,
    quantize,
    simple_adder_count,
)
from repro.eval import best_mrpf, format_table
from repro.filters import fold_symmetric, measure_response, unfold_symmetric
from repro.hwcost import (
    CARRY_LOOKAHEAD,
    estimate_power,
    netlist_area,
    netlist_critical_path,
)
from repro.quantize import search_wordlength

SPEC = FilterSpec(
    name="channel_select",
    band=BandType.LOWPASS,
    method=DesignMethod.PARKS_MCCLELLAN,
    numtaps=55,
    passband=(0.0, 0.16),
    stopband=(0.24, 1.0),
    ripple_db=0.4,
    atten_db=45.0,
)


def main() -> None:
    taps = design_fir(SPEC)
    report = measure_response(taps, SPEC)
    print(SPEC.describe())
    print(f"designed: ripple {report.passband_ripple_db:.2f} dB, "
          f"attenuation {report.stopband_atten_db:.1f} dB")

    folded, numtaps = fold_symmetric(taps)

    # Smallest wordlength whose quantized response still meets the spec.
    def still_meets(reconstructed) -> bool:
        full = unfold_symmetric(reconstructed, numtaps)
        return measure_response(full, SPEC).satisfies(SPEC)

    wordlength = search_wordlength(folded, still_meets, 6, 20)
    print(f"minimum coefficient wordlength meeting spec: {wordlength} bits")
    print()

    rows = []
    for scheme in (ScalingScheme.UNIFORM, ScalingScheme.MAXIMAL):
        q = quantize(folded, wordlength, scheme)
        arch = best_mrpf(q.integers, wordlength)
        arch.verify()
        baseline = simple_adder_count(q.integers)
        rows.append([
            scheme.value,
            str(baseline),
            str(arch.adder_count),
            f"{1 - arch.adder_count / baseline:.0%}",
            f"{netlist_area(arch.netlist, 16, CARRY_LOOKAHEAD) / 1e3:.1f}",
            f"{netlist_critical_path(arch.netlist, 16, CARRY_LOOKAHEAD):.2f}",
            f"{estimate_power(arch.netlist, 16, 128).toggles_per_sample:.0f}",
        ])
    headers = ["scaling", "simple adders", "MRPF adders", "saved",
               "CLA area (kum2)", "critical path (ns)", "toggles/sample"]
    print(format_table(headers, rows))


if __name__ == "__main__":
    main()
