#!/usr/bin/env python
"""Quickstart: synthesize a multiplierless FIR filter with MRPF.

Designs a small Parks-McClellan low-pass filter, quantizes it to 12-bit
coefficients, runs the MRP transformation, and compares the adder count
against the simple per-tap implementation — the paper's core claim in
twenty lines.

Run:  python examples/quickstart.py
"""

from repro import (
    BandType,
    DesignMethod,
    FilterSpec,
    ScalingScheme,
    design_fir,
    quantize,
    simple_adder_count,
    synthesize_mrpf,
)
from repro.filters import fold_symmetric


def main() -> None:
    spec = FilterSpec(
        name="quickstart_lp",
        band=BandType.LOWPASS,
        method=DesignMethod.PARKS_MCCLELLAN,
        numtaps=25,
        passband=(0.0, 0.20),
        stopband=(0.30, 1.0),
        ripple_db=0.5,
        atten_db=40.0,
    )
    taps = design_fir(spec)
    folded, _ = fold_symmetric(taps)  # symmetric filter: half the multipliers
    q = quantize(folded, wordlength=12, scheme=ScalingScheme.UNIFORM)

    architecture = synthesize_mrpf(q.integers, wordlength=12)
    architecture.verify()  # bit-exact equivalence against convolution

    baseline = simple_adder_count(q.integers)
    print(spec.describe())
    print(f"quantized taps ({q.wordlength}-bit): {list(q.integers)}")
    print()
    print(architecture.plan.describe())
    print()
    print(f"simple implementation: {baseline} adders")
    print(f"MRPF implementation:   {architecture.adder_count} adders "
          f"({1 - architecture.adder_count / baseline:.0%} reduction)")
    print(f"SEED constants: {list(architecture.plan.seed)}")


if __name__ == "__main__":
    main()
