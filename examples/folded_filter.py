#!/usr/bin/env python
"""Area-time folding: one MRPF filter on k physical adders.

A fully parallel MRPF spends one hardware adder per netlist node.  When area
is tighter than throughput, the computation folds onto fewer adders over more
cycles (Parhi, the paper's reference [7]).  This example synthesizes a
filter, then list-schedules its multiplier block under shrinking adder
budgets, charting the classic area-time trade-off curve — with the
unconstrained critical path as the floor.

Run:  python examples/folded_filter.py
"""

from repro.arch import asap_schedule, list_schedule
from repro.eval import best_mrpf, format_table
from repro.filters import benchmark_suite
from repro.quantize import ScalingScheme, quantize

WORDLENGTH = 14


def main() -> None:
    designed = benchmark_suite()[2]  # ex03: 21-tap least-squares low-pass
    q = quantize(designed.folded, WORDLENGTH, ScalingScheme.UNIFORM)
    arch = best_mrpf(q.integers, WORDLENGTH)
    arch.verify()

    total = arch.netlist.adder_count
    floor = asap_schedule(arch.netlist).makespan
    print(f"{designed.name}: multiplier block has {total} adders, "
          f"critical path {floor} adder levels")
    print()

    rows = []
    for budget in (1, 2, 3, 4, 6, total):
        schedule = list_schedule(arch.netlist, budget)
        utilization = total / (budget * max(1, schedule.makespan))
        rows.append([
            str(budget),
            str(schedule.makespan),
            f"{utilization:.0%}",
            "(fully parallel)" if budget >= total else "",
        ])
    print(format_table(
        ["physical adders", "cycles/sample", "adder utilization", ""], rows
    ))
    print()
    print(f"the {floor}-cycle floor is the dependency critical path; "
          f"1 adder serializes to {total} cycles at 100% utilization")


if __name__ == "__main__":
    main()
