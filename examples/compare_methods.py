#!/usr/bin/env python
"""Compare every synthesis method on the paper's benchmark filters.

Reproduces the flavor of Figures 6-8 on a configurable subset: for each
filter and scaling scheme, prints the multiplier-block adder count of the
simple baseline, Hartley CSE, BHM and Hcub adder-graph MCM, the L=0
differential MST method, plain MRPF, and MRPF+CSE — everything verified
bit-exactly before being reported.

Run:  python examples/compare_methods.py [filter indices...]
"""

import sys

from repro import (
    ScalingScheme,
    quantize,
    synthesize_cse_filter,
    synthesize_mst_diff,
    synthesize_simple,
)
from repro.baselines import synthesize_bhm, synthesize_hcub
from repro.eval import best_mrpf, format_table
from repro.filters import benchmark_suite

WORDLENGTH = 16
VERIFY_SAMPLES = [1, -1, 255, -256, 12345, -9876, 41, 0, 7]


def main() -> None:
    indices = [int(a) for a in sys.argv[1:]] or [0, 1, 2, 4]
    suite = benchmark_suite()
    rows = []
    for index in indices:
        designed = suite[index]
        for scheme in (ScalingScheme.UNIFORM, ScalingScheme.MAXIMAL):
            q = quantize(designed.folded, WORDLENGTH, scheme)
            simple = synthesize_simple(q.integers)
            simple.verify(VERIFY_SAMPLES)
            cse = synthesize_cse_filter(q.integers)
            cse.verify(VERIFY_SAMPLES)
            bhm = synthesize_bhm(q.integers)
            bhm.verify(VERIFY_SAMPLES)
            hcub = synthesize_hcub(q.integers)
            hcub.verify(VERIFY_SAMPLES)
            mst = synthesize_mst_diff(q.integers, WORDLENGTH)
            mrpf = best_mrpf(q.integers, WORDLENGTH)
            mrpf.verify(VERIFY_SAMPLES)
            mrpf_cse = best_mrpf(q.integers, WORDLENGTH, seed_compression="cse")
            mrpf_cse.verify(VERIFY_SAMPLES)
            rows.append([
                designed.name,
                scheme.value,
                str(designed.num_unique_taps),
                str(simple.adder_count),
                str(cse.adder_count),
                str(bhm.adder_count),
                str(hcub.adder_count),
                str(mst.adder_count),
                str(mrpf.adder_count),
                str(mrpf_cse.adder_count),
                f"{1 - mrpf_cse.adder_count / simple.adder_count:.0%}",
            ])
    headers = ["filter", "scaling", "taps", "simple", "CSE", "BHM", "Hcub",
               "MST(L=0)", "MRPF", "MRPF+CSE", "saved vs simple"]
    print(f"multiplier-block adders at W={WORDLENGTH} (all bit-exact verified)")
    print(format_table(headers, rows))


if __name__ == "__main__":
    main()
