#!/usr/bin/env python
"""Capstone: the complete production flow, spec to sign-off artifacts.

Chains every stage a real tapeout-bound filter would pass through:

  1. specification and Parks-McClellan design
  2. minimum-wordlength search against the spec
  3. Samueli coefficient LSB search (cheaper digits, spec preserved)
  4. MRPF+CSE synthesis (β sweep, trivial-plan floor), bit-exact verify
  5. netlist optimization (dead code, dedup, depth rebalancing)
  6. pipeline scheduling and the full hardware cost report
  7. artifact emission: Verilog module + self-checking testbench +
     C reference model + Graphviz diagram into ./full_flow_out/

Run:  python examples/full_flow.py
"""

import pathlib

from repro import (
    BandType,
    DesignMethod,
    FilterSpec,
    ScalingScheme,
    design_fir,
    quantize,
    simple_adder_count,
)
from repro.arch import (
    emit_c_model,
    emit_testbench,
    emit_verilog,
    optimize_netlist,
    to_dot,
    verify_against_convolution,
)
from repro.core import schedule_pipeline
from repro.eval import best_mrpf
from repro.filters import fold_symmetric, measure_response, unfold_symmetric
from repro.hwcost import cost_report
from repro.quantize import search_coefficients, search_wordlength

SPEC = FilterSpec(
    name="tx_shaping",
    band=BandType.LOWPASS,
    method=DesignMethod.PARKS_MCCLELLAN,
    numtaps=43,
    passband=(0.0, 0.22),
    stopband=(0.32, 1.0),
    ripple_db=0.5,
    atten_db=42.0,
)
INPUT_BITS = 12


def main() -> None:
    out_dir = pathlib.Path(__file__).resolve().parent / "full_flow_out"
    out_dir.mkdir(exist_ok=True)

    # 1-2: design + minimum wordlength
    taps = design_fir(SPEC)
    folded, numtaps = fold_symmetric(taps)

    def meets(reconstructed) -> bool:
        full = unfold_symmetric(reconstructed, numtaps)
        return measure_response(full, SPEC).satisfies(SPEC)

    wordlength = search_wordlength(folded, meets, 6, 20)
    q = quantize(folded, wordlength, ScalingScheme.UNIFORM)
    print(f"[1-2] {SPEC.name}: designed, minimum wordlength = {wordlength} bits")

    # 3: coefficient LSB search
    searched = search_coefficients(q, meets)
    print(f"[3]   coefficient search: {searched.original_cost:.0f} -> "
          f"{searched.improved_cost:.0f} CSD digits "
          f"({searched.num_changes} taps nudged, spec preserved)")

    # 4: MRPF+CSE synthesis
    arch = best_mrpf(list(searched.improved), wordlength, seed_compression="cse")
    arch.verify()
    baseline = simple_adder_count(searched.improved)
    print(f"[4]   MRPF+CSE: {baseline} -> {arch.adder_count} adders "
          f"({1 - arch.adder_count / baseline:.0%} saved), bit-exact verified")

    # 5: netlist optimization
    netlist = optimize_netlist(arch.netlist)
    verify_against_convolution(
        netlist, arch.tap_names, arch.coefficients,
        [1, -1, 255, -256, 777, -3, 12345],
    )
    print(f"[5]   netlist optimize: {arch.netlist.adder_count} adders "
          f"depth {arch.netlist.max_depth} -> {netlist.adder_count} adders "
          f"depth {netlist.max_depth}")

    # 6: pipeline + costs
    schedule = schedule_pipeline(netlist, max_stage_depth=2,
                                 input_bits=INPUT_BITS)
    report = cost_report(netlist, arch.tap_names, input_bits=INPUT_BITS)
    print(f"[6]   pipeline: {schedule.num_stages} stages, "
          f"clock {schedule.clock_period_ns:.2f} ns "
          f"({schedule.throughput_speedup:.1f}x), "
          f"{schedule.register_bits} balancing register bits")
    print(f"      costs: {report.area_um2 / 1e3:.1f} kum2 CLA area, "
          f"{report.critical_path_ns:.2f} ns flat critical path, "
          f"{report.toggles_per_sample:.0f} toggles/sample")

    # 7: artifacts
    (out_dir / "tx_shaping.v").write_text(
        emit_verilog(netlist, arch.tap_names, "tx_shaping", INPUT_BITS))
    (out_dir / "tx_shaping_tb.v").write_text(
        emit_testbench(netlist, arch.tap_names, "tx_shaping", INPUT_BITS))
    (out_dir / "tx_shaping.c").write_text(
        emit_c_model(netlist, arch.tap_names, INPUT_BITS))
    (out_dir / "tx_shaping.dot").write_text(
        to_dot(netlist, arch.tap_names, "tx_shaping"))
    print(f"[7]   wrote tx_shaping.v / _tb.v / .c / .dot to {out_dir}")


if __name__ == "__main__":
    main()
