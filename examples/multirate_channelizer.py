#!/usr/bin/env python
"""Decimate-by-2 channelizer stage: half-band polyphase + MRP.

The paper's motivating application is the high-speed communication receiver;
its front half is usually a cascade of decimate-by-2 half-band stages.  This
example designs a half-band filter (every other tap exactly zero), quantizes
it, builds the 2-fold polyphase decimator with MRP-optimized branches, and
verifies the whole structure cycle-exactly against "filter then downsample".
The matching interpolator shows the joint-sharing advantage of a common
input.

Run:  python examples/multirate_channelizer.py
"""

import numpy as np

from repro.baselines import simple_adder_count
from repro.multirate import (
    design_halfband,
    is_halfband,
    polyphase_decompose,
    synthesize_polyphase_decimator,
    synthesize_polyphase_interpolator,
)
from repro.quantize import quantize_uniform

NUMTAPS = 31
WORDLENGTH = 14


def main() -> None:
    taps = design_halfband(NUMTAPS, transition=0.08)
    assert is_halfband(taps)
    q = quantize_uniform(taps, WORDLENGTH)
    nonzero = sum(1 for v in q.integers if v)
    print(f"half-band filter: {NUMTAPS} taps, only {nonzero} nonzero "
          f"({WORDLENGTH}-bit quantized)")

    parts = polyphase_decompose(q.integers, 2)
    print(f"polyphase split: branch sizes "
          f"{[sum(1 for v in p if v) for p in parts]} nonzero taps "
          f"(the sparse branch is the center tap alone — a pure wire)")

    decimator = synthesize_polyphase_decimator(q.integers, 2, WORDLENGTH)
    samples = [int(v) for v in
               np.round(500 * np.sin(0.13 * np.arange(64))
                        + 300 * np.sin(2.9 * np.arange(64)))]
    decimator.verify(samples)

    interpolator = synthesize_polyphase_interpolator(q.integers, 2, WORDLENGTH)
    interpolator.verify(samples)

    naive = simple_adder_count(q.integers)
    print()
    print(f"multiplier adders — naive per-tap: {naive}")
    print(f"  decimator (per-branch MRP):  {decimator.adder_count} "
          f"({1 - decimator.adder_count / naive:.0%} saved)")
    print(f"  interpolator (joint MRP):    {interpolator.adder_count} "
          f"({1 - interpolator.adder_count / naive:.0%} saved)")
    print()
    print("both structures verified cycle-exactly against the full-rate "
          "golden model")


if __name__ == "__main__":
    main()
