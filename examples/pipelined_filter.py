#!/usr/bin/env python
"""Pipelining an MRPF architecture (paper §4).

The MRP structure decomposes into SEED multiplication + overhead add
networks, giving natural register boundaries.  This example synthesizes a
band-stop filter, schedules it at several per-stage depth budgets, and shows
the clock-period / latency / register trade-off, then proves cycle-accurate
equivalence of the pipelined filter (same output, shifted by the latency).

Run:  python examples/pipelined_filter.py
"""

from repro import ScalingScheme, quantize, schedule_pipeline, simulate_pipelined
from repro.arch import simulate_tdf_filter
from repro.eval import best_mrpf, format_table
from repro.filters import benchmark_suite
from repro.hwcost import CARRY_LOOKAHEAD, netlist_critical_path

WORDLENGTH = 16
INPUT_BITS = 16


def main() -> None:
    designed = benchmark_suite()[4]  # ex05: PM band-stop
    q = quantize(designed.folded, WORDLENGTH, ScalingScheme.UNIFORM)
    arch = best_mrpf(q.integers, WORDLENGTH)
    arch.verify()

    flat_ns = netlist_critical_path(arch.netlist, INPUT_BITS, CARRY_LOOKAHEAD)
    print(f"{designed.name}: {arch.adder_count} adders, "
          f"combinational critical path {flat_ns:.2f} ns (CLA model)")
    print()

    rows = []
    schedules = {}
    for max_depth in (4, 2, 1):
        schedule = schedule_pipeline(
            arch.netlist, max_stage_depth=max_depth, input_bits=INPUT_BITS
        )
        schedules[max_depth] = schedule
        rows.append([
            str(max_depth),
            str(schedule.num_stages),
            str(schedule.latency),
            str(schedule.register_bits),
            f"{schedule.clock_period_ns:.2f}",
            f"{schedule.throughput_speedup:.2f}x",
        ])
    headers = ["stage depth", "stages", "latency", "register bits",
               "clock (ns)", "speedup"]
    print(format_table(headers, rows))

    # Cycle-accurate proof: pipelined output == combinational output, delayed.
    samples = [3, -1, 400, 0, -250, 99, 12345, -6789, 10, 20, 30, 40, 50]
    flat = simulate_tdf_filter(arch.netlist, arch.tap_names, samples)
    schedule = schedules[1]
    piped = simulate_pipelined(arch.netlist, arch.tap_names, samples, schedule)
    latency = schedule.latency
    assert piped[latency:] == flat[: len(flat) - latency]
    print()
    print(f"pipelined output verified: identical to combinational output "
          f"delayed by {latency} cycles")


if __name__ == "__main__":
    main()
