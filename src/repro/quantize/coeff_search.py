"""Coefficient local search: cheaper digits at equal frequency response.

Samueli's improved search (the paper's reference [11]) observes that rounding
each tap to the *nearest* fixed-point value is not cost-optimal: a neighbour
one or two LSBs away often has far fewer signed digits (e.g. 127 -> 128),
and the frequency response barely moves.  This module implements the classic
coordinate-descent version: sweep the taps repeatedly, accept any LSB
perturbation that lowers a pluggable hardware-cost function while a
response predicate keeps holding.

The cost function defaults to total CSD digits (Samueli's objective) but any
callable over the integer vector works — e.g. CSE or full-MRP adder counts
for transform-aware search (see ``benchmarks/bench_ablation_coeff_search.py``).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Callable, List, Optional, Sequence, Tuple

import numpy as np

from ..errors import BudgetExceeded, QuantizationError
from ..numrep import Representation, digit_cost
from ..obs import span as obs_span
from .scaling import QuantizedTaps

if TYPE_CHECKING:  # pragma: no cover - import would cycle at runtime
    from ..robust.budget import SolverBudget

__all__ = ["CoefficientSearchResult", "search_coefficients", "csd_digit_cost"]

TapPredicate = Callable[[np.ndarray], bool]
CostFunction = Callable[[Sequence[int]], float]


def csd_digit_cost(integers: Sequence[int]) -> float:
    """Samueli's objective: total nonzero CSD digits over all taps."""
    return float(sum(digit_cost(int(c), Representation.CSD) for c in integers))


@dataclass(frozen=True)
class CoefficientSearchResult:
    """Outcome of the local search."""

    original: Tuple[int, ...]
    improved: Tuple[int, ...]
    original_cost: float
    improved_cost: float
    num_changes: int
    passes: int

    @property
    def cost_reduction(self) -> float:
        """Fractional cost improvement achieved by the search."""
        if self.original_cost == 0:
            return 0.0
        return 1.0 - self.improved_cost / self.original_cost


def search_coefficients(
    quantized: QuantizedTaps,
    predicate: TapPredicate,
    cost_fn: CostFunction = csd_digit_cost,
    max_delta: int = 2,
    max_passes: int = 4,
    budget: Optional["SolverBudget"] = None,
) -> CoefficientSearchResult:
    """Coordinate-descent LSB search around a quantized tap vector.

    Each pass visits every tap and tries perturbations ``±1 .. ±max_delta``
    LSBs; a move is accepted when it strictly lowers ``cost_fn`` and
    ``predicate`` still accepts the reconstructed float taps.  Terminates
    when a full pass makes no change or ``max_passes`` is reached.

    The predicate sees taps reconstructed with the *original* per-tap scale
    factors (perturbing the mantissa, not the exponent), so maximal-scaled
    vectors search correctly too.

    The optional cooperative ``budget`` is charged one unit per candidate
    evaluation; on exhaustion the raised
    :class:`~repro.errors.BudgetExceeded` carries the best
    :class:`CoefficientSearchResult` reached so far as its ``partial``
    attribute (the search only ever improves on the starting vector, so the
    partial result is always valid).
    """
    if max_delta < 1:
        raise QuantizationError(f"max_delta must be >= 1, got {max_delta}")
    if max_passes < 1:
        raise QuantizationError(f"max_passes must be >= 1, got {max_passes}")

    limit = (1 << (quantized.wordlength - 1)) - 1
    scale = quantized.scale
    shifts = quantized.shifts

    def reconstruct(integers: Sequence[int]) -> np.ndarray:
        ints = np.asarray(integers, dtype=float)
        return ints / (scale * np.power(2.0, np.asarray(shifts, dtype=float)))

    if not predicate(reconstruct(quantized.integers)):
        raise QuantizationError(
            "the starting quantization already violates the predicate"
        )

    current: List[int] = list(quantized.integers)
    current_cost = cost_fn(current)
    original_cost = current_cost
    changes = 0
    passes = 0

    def result_so_far() -> CoefficientSearchResult:
        return CoefficientSearchResult(
            original=quantized.integers,
            improved=tuple(current),
            original_cost=original_cost,
            improved_cost=current_cost,
            num_changes=changes,
            passes=passes,
        )

    def _descend() -> None:
        nonlocal current_cost, changes, passes
        for _ in range(max_passes):
            passes += 1
            changed_this_pass = False
            for index in range(len(current)):
                best_value = current[index]
                best_cost = current_cost
                for delta in range(-max_delta, max_delta + 1):
                    if delta == 0:
                        continue
                    if budget is not None:
                        budget.spend()
                    candidate_value = current[index] + delta
                    if abs(candidate_value) > limit:
                        continue
                    candidate = list(current)
                    candidate[index] = candidate_value
                    candidate_cost = cost_fn(candidate)
                    if candidate_cost >= best_cost:
                        continue
                    if not predicate(reconstruct(candidate)):
                        continue
                    best_value = candidate_value
                    best_cost = candidate_cost
                if best_value != current[index]:
                    current[index] = best_value
                    current_cost = best_cost
                    changes += 1
                    changed_this_pass = True
            if not changed_this_pass:
                break

    try:
        with obs_span(
            "coeff.search",
            taps=len(current),
            max_delta=max_delta,
            max_passes=max_passes,
        ):
            _descend()
    except BudgetExceeded as exc:
        raise BudgetExceeded(
            f"coefficient search interrupted after {passes} passes / "
            f"{changes} changes: {exc}",
            partial=result_so_far(),
        ) from exc
    return result_so_far()
