"""Word-length search: smallest coefficient width meeting a quality predicate.

Quantization trades coefficient word length against frequency-response
degradation.  This module performs the classic monotone search: try widths in
ascending order and return the first whose *reconstructed* taps satisfy a
caller-supplied predicate (typically "still meets the filter spec", supplied
by :mod:`repro.filters.response` to keep layering clean).
"""

from __future__ import annotations

from typing import Callable, Sequence

import numpy as np

from ..errors import QuantizationError
from .scaling import ScalingScheme, quantize

__all__ = ["search_wordlength", "error_bounded_wordlength"]

TapPredicate = Callable[[np.ndarray], bool]


def search_wordlength(
    taps: Sequence[float],
    predicate: TapPredicate,
    min_wordlength: int = 4,
    max_wordlength: int = 24,
    scheme: ScalingScheme = ScalingScheme.UNIFORM,
) -> int:
    """Return the smallest word length whose quantized taps pass ``predicate``.

    Raises :class:`QuantizationError` if no width in the range passes —
    quantization quality is not strictly monotone in corner cases, so we scan
    linearly rather than bisect.
    """
    if min_wordlength < 2 or max_wordlength < min_wordlength:
        raise QuantizationError(
            f"invalid wordlength range [{min_wordlength}, {max_wordlength}]"
        )
    for wordlength in range(min_wordlength, max_wordlength + 1):
        quantized = quantize(taps, wordlength, scheme)
        if predicate(quantized.reconstruct()):
            return wordlength
    raise QuantizationError(
        f"no wordlength in [{min_wordlength}, {max_wordlength}] satisfies the predicate"
    )


def error_bounded_wordlength(
    taps: Sequence[float],
    max_abs_error: float,
    min_wordlength: int = 4,
    max_wordlength: int = 24,
    scheme: ScalingScheme = ScalingScheme.UNIFORM,
) -> int:
    """Smallest width keeping every tap within ``max_abs_error`` of its float value."""
    reference = np.asarray(list(taps), dtype=float)

    def close_enough(reconstructed: np.ndarray) -> bool:
        return bool(np.max(np.abs(reconstructed - reference)) <= max_abs_error)

    return search_wordlength(
        taps, close_enough, min_wordlength, max_wordlength, scheme
    )
