"""Coefficient-quantization noise analysis.

In a multiplierless filter the arithmetic is exact — the only error source is
coefficient quantization itself.  For white input of power ``sigma_x^2`` the
output error power is ``sigma_x^2 * sum(dh_i^2)`` (the tap errors act as a
parallel error filter), giving the classic SNR estimate

    SNR = 10 log10( sum(h_i^2) / sum(dh_i^2) )

independent of the input level.  This module computes that estimate and
cross-checks it empirically by running the float and quantized filters on a
deterministic white stimulus — agreement within a fraction of a dB is one of
the integration tests.
"""

from __future__ import annotations

from dataclasses import dataclass
import numpy as np

from ..errors import QuantizationError
from ..hwcost.power import lcg_stream
from .scaling import QuantizedTaps

__all__ = ["NoiseReport", "coefficient_noise", "simulated_snr_db"]


@dataclass(frozen=True)
class NoiseReport:
    """Analytic coefficient-noise figures for one quantization."""

    signal_power: float      # sum h_i^2
    error_power: float       # sum dh_i^2
    snr_db: float
    max_tap_error: float
    effective_bits: float    # SNR / 6.02 — the usual rule-of-thumb


def coefficient_noise(quantized: QuantizedTaps) -> NoiseReport:
    """Analytic SNR of the quantized taps relative to their float originals."""
    h = np.asarray(quantized.original, dtype=float)
    dh = quantized.reconstruct() - h
    signal_power = float(np.sum(h * h))
    error_power = float(np.sum(dh * dh))
    if signal_power == 0.0:
        raise QuantizationError("original taps carry no energy")
    if error_power == 0.0:
        snr_db = float("inf")
    else:
        snr_db = float(10.0 * np.log10(signal_power / error_power))
    return NoiseReport(
        signal_power=signal_power,
        error_power=error_power,
        snr_db=snr_db,
        max_tap_error=float(np.max(np.abs(dh))),
        effective_bits=snr_db / 6.02 if np.isfinite(snr_db) else float("inf"),
    )


def simulated_snr_db(
    quantized: QuantizedTaps,
    num_samples: int = 4096,
    input_bits: int = 12,
    seed: int = 2003,
) -> float:
    """Empirical SNR: float filter vs reconstructed quantized filter.

    Both filters run on the same deterministic white stimulus; the reported
    figure is ``10 log10(P_signal / P_error)`` over the steady-state part of
    the response.  For white input this converges to the analytic value.
    """
    if num_samples < 8 * len(quantized.original):
        raise QuantizationError("stimulus too short for a stable SNR estimate")
    x = np.asarray(lcg_stream(num_samples, input_bits, state=seed), dtype=float)
    h = np.asarray(quantized.original, dtype=float)
    hq = quantized.reconstruct()
    skip = len(h)  # drop the transient
    y = np.convolve(x, h)[skip:num_samples]
    yq = np.convolve(x, hq)[skip:num_samples]
    signal_power = float(np.mean(y * y))
    error = yq - y
    error_power = float(np.mean(error * error))
    if error_power == 0.0:
        return float("inf")
    return float(10.0 * np.log10(signal_power / error_power))
