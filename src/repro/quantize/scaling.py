"""Coefficient quantization with uniform and maximal scaling.

The paper evaluates two fixed-point scaling strategies (following Muhammad &
Roy, TCAD 2002):

* **Uniform scaling** — all coefficients share one scale factor chosen so the
  largest magnitude just fits the word length.  Small coefficients keep many
  leading zeros, so they are *cheap* in nonzero digits.
* **Maximal scaling** — each coefficient is additionally shifted left until
  its MSB reaches the top bit, maximizing per-tap precision.  The extra shift
  is recorded and undone by wiring in hardware.  Coefficients become *denser*
  (more nonzero digits), which is why the paper's Figure 7 shows higher
  absolute complexity than Figure 6.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum
from typing import Sequence, Tuple

import numpy as np

from ..errors import QuantizationError

__all__ = [
    "ScalingScheme",
    "QuantizedTaps",
    "quantize_uniform",
    "quantize_maximal",
    "quantize",
]


class ScalingScheme(str, Enum):
    """Which scaling strategy produced a :class:`QuantizedTaps`."""

    UNIFORM = "uniform"
    MAXIMAL = "maximal"


@dataclass(frozen=True)
class QuantizedTaps:
    """Fixed-point image of a float tap vector.

    ``integers[i]`` is the signed integer mantissa of tap ``i``;
    ``shifts[i]`` is the extra left-shift applied on top of the common
    ``scale`` (always 0 under uniform scaling), so the represented value is
    ``integers[i] / (scale * 2**shifts[i])``.
    """

    original: Tuple[float, ...]
    integers: Tuple[int, ...]
    shifts: Tuple[int, ...]
    scale: float
    wordlength: int
    scheme: ScalingScheme
    # Per-instance memo for derived values.  ``init=False`` is load-bearing:
    # an init field would be carried over verbatim by ``dataclasses.replace``,
    # so a replaced instance (different integers/shifts) would serve the donor
    # instance's stale entries.  Keys are (method, inputs) tuples so a wrong
    # key can never alias a different computation.
    _cached: dict = field(
        default_factory=dict, init=False, repr=False, compare=False
    )

    def __len__(self) -> int:
        return len(self.integers)

    def _memo(self, key, compute):
        try:
            return self._cached[key]
        except KeyError:
            return self._cached.setdefault(key, compute())

    def reconstruct(self) -> np.ndarray:
        """Float tap values represented by the fixed-point image."""
        ints = np.asarray(self.integers, dtype=float)
        shifts = np.asarray(self.shifts, dtype=float)
        return ints / (self.scale * np.power(2.0, shifts))

    def quantization_error(self) -> float:
        """Max absolute tap error introduced by quantization."""
        return self._memo(
            ("quantization_error",),
            lambda: float(
                np.max(np.abs(self.reconstruct() - np.asarray(self.original)))
            ),
        )

    def aligned_integers(self) -> Tuple[int, ...]:
        """Integer taps aligned to one common binary point.

        Tap ``i`` becomes ``integers[i] << (max_shift - shifts[i])`` so that
        every tap shares the scale ``scale * 2**max_shift``.  Convolving these
        with an integer input reproduces the filter exactly (used by the
        bit-accurate simulator); they may exceed ``wordlength`` bits, which is
        fine — alignment is wiring, not arithmetic.
        """
        return self._memo(("aligned_integers",), self._compute_aligned)

    def _compute_aligned(self) -> Tuple[int, ...]:
        if not self.integers:
            return ()
        max_shift = max(self.shifts)
        return tuple(
            q << (max_shift - s) for q, s in zip(self.integers, self.shifts)
        )

    @property
    def max_shift(self) -> int:
        """Maximum shift used during quantization or graph build."""
        return max(self.shifts) if self.shifts else 0

    @property
    def nonzero_integers(self) -> Tuple[int, ...]:
        """Mantissas of the nonzero taps, in tap order."""
        return tuple(q for q in self.integers if q != 0)


def _validate(taps: Sequence[float], wordlength: int) -> np.ndarray:
    arr = np.asarray(list(taps), dtype=float)
    if arr.size == 0:
        raise QuantizationError("tap vector is empty")
    if not np.all(np.isfinite(arr)):
        raise QuantizationError("tap vector contains non-finite values")
    if np.max(np.abs(arr)) == 0.0:
        raise QuantizationError("tap vector is identically zero")
    if wordlength < 2:
        raise QuantizationError(f"wordlength must be >= 2, got {wordlength}")
    return arr


def quantize_uniform(taps: Sequence[float], wordlength: int) -> QuantizedTaps:
    """Quantize with one shared scale (paper step 1: normalize by the largest).

    The largest-magnitude tap maps to ``2**(wordlength-1) - 1``.
    """
    arr = _validate(taps, wordlength)
    limit = (1 << (wordlength - 1)) - 1
    scale = limit / float(np.max(np.abs(arr)))
    integers = tuple(int(round(h * scale)) for h in arr)
    return QuantizedTaps(
        original=tuple(float(h) for h in arr),
        integers=integers,
        shifts=(0,) * len(integers),
        scale=scale,
        wordlength=wordlength,
        scheme=ScalingScheme.UNIFORM,
    )


def quantize_maximal(taps: Sequence[float], wordlength: int) -> QuantizedTaps:
    """Quantize with per-tap MSB alignment on top of the uniform scale.

    Each tap is shifted left by the largest ``e`` keeping
    ``|round(h * scale * 2**e)| <= 2**(wordlength-1) - 1``, so every nonzero
    mantissa uses the full word length.
    """
    arr = _validate(taps, wordlength)
    limit = (1 << (wordlength - 1)) - 1
    scale = limit / float(np.max(np.abs(arr)))
    integers = []
    shifts = []
    for h in arr:
        if h == 0.0:
            integers.append(0)
            shifts.append(0)
            continue
        e = 0
        # Walk the shift up until the next doubling would overflow the word.
        while abs(round(h * scale * (1 << (e + 1)))) <= limit:
            e += 1
        integers.append(int(round(h * scale * (1 << e))))
        shifts.append(e)
    return QuantizedTaps(
        original=tuple(float(h) for h in arr),
        integers=tuple(integers),
        shifts=tuple(shifts),
        scale=scale,
        wordlength=wordlength,
        scheme=ScalingScheme.MAXIMAL,
    )


def quantize(
    taps: Sequence[float],
    wordlength: int,
    scheme: ScalingScheme = ScalingScheme.UNIFORM,
) -> QuantizedTaps:
    """Dispatch to :func:`quantize_uniform` or :func:`quantize_maximal`."""
    if scheme is ScalingScheme.UNIFORM:
        return quantize_uniform(taps, wordlength)
    if scheme is ScalingScheme.MAXIMAL:
        return quantize_maximal(taps, wordlength)
    raise QuantizationError(f"unknown scaling scheme {scheme!r}")
