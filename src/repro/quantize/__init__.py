"""Coefficient quantization: uniform/maximal scaling and word-length search."""

from .coeff_search import (
    CoefficientSearchResult,
    csd_digit_cost,
    search_coefficients,
)
from .noise import NoiseReport, coefficient_noise, simulated_snr_db
from .scaling import (
    QuantizedTaps,
    ScalingScheme,
    quantize,
    quantize_maximal,
    quantize_uniform,
)
from .wordlength import error_bounded_wordlength, search_wordlength

__all__ = [
    "CoefficientSearchResult",
    "NoiseReport",
    "QuantizedTaps",
    "ScalingScheme",
    "error_bounded_wordlength",
    "quantize",
    "quantize_maximal",
    "quantize_uniform",
    "coefficient_noise",
    "csd_digit_cost",
    "search_coefficients",
    "simulated_snr_db",
    "search_wordlength",
]
