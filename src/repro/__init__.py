"""repro — MRPF: minimally redundant parallel digital filter synthesis.

A full reproduction of Choo, Muhammad & Roy, *"MRPF: An Architectural
Transformation for Synthesis of High-Performance and Low-Power Digital
Filters"* (DATE 2003): multiplierless FIR filter synthesis by shift-inclusive
differential coefficients, greedy weighted set cover over a colored graph,
and a SEED + overhead-add architecture, plus the baselines (simple per-tap,
Hartley CSE, L=0 differential MST) and the complete evaluation harness.

Quick start::

    from repro import synthesize_mrpf, quantize, ScalingScheme, design_fir
    from repro.filters import FilterSpec, BandType, DesignMethod

    spec = FilterSpec("lp", BandType.LOWPASS, DesignMethod.PARKS_MCCLELLAN,
                      numtaps=25, passband=(0.0, 0.2), stopband=(0.3, 1.0))
    taps = design_fir(spec)
    q = quantize(taps, wordlength=12, scheme=ScalingScheme.UNIFORM)
    arch = synthesize_mrpf(q.integers, wordlength=12)
    print(arch.adder_count, arch.plan.seed)
"""

from .core import (
    MrpOptions,
    MrpPlan,
    MrpfArchitecture,
    PipelineSchedule,
    optimize,
    schedule_pipeline,
    simulate_pipelined,
    synthesize_mrpf,
)
from .baselines import (
    simple_adder_count,
    synthesize_cse_filter,
    synthesize_mst_diff,
    synthesize_simple,
)
from .errors import BudgetExceeded, DegradationError, ReproError
from .filters import BandType, DesignMethod, FilterSpec, design_fir
from .numrep import Representation
from .quantize import QuantizedTaps, ScalingScheme, quantize
from .robust import (
    ChaosHarness,
    RobustConfig,
    RobustResult,
    SolverBudget,
)
from .robust import synthesize as robust_synthesize

__version__ = "1.0.0"

__all__ = [
    "BandType",
    "BudgetExceeded",
    "ChaosHarness",
    "DegradationError",
    "DesignMethod",
    "FilterSpec",
    "MrpOptions",
    "MrpPlan",
    "MrpfArchitecture",
    "PipelineSchedule",
    "QuantizedTaps",
    "Representation",
    "ReproError",
    "RobustConfig",
    "RobustResult",
    "ScalingScheme",
    "SolverBudget",
    "design_fir",
    "optimize",
    "quantize",
    "robust_synthesize",
    "schedule_pipeline",
    "simple_adder_count",
    "simulate_pipelined",
    "synthesize_cse_filter",
    "synthesize_mrpf",
    "synthesize_mst_diff",
    "synthesize_simple",
    "__version__",
]
