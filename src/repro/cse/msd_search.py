"""MSD-aware CSE: choose each constant's signed-digit encoding for sharing.

CSD is only one of a value's minimal signed-digit (MSD) encodings; Park & Kang
(DAC 2001, the paper's reference [8]) showed that *choosing among* MSD forms
before subexpression extraction exposes more common patterns.  This module
implements that representation search greedily:

1. enumerate every MSD encoding of every constant (exact, memoized);
2. process constants largest-digit-count first; for each, score every MSD
   candidate by how many two-term patterns it shares with the encodings
   already chosen, and keep the best (CSD breaks ties);
3. run the standard iterative extraction on the chosen term lists.

The result can only match or beat CSD-based CSE in *pattern supply*; the
greedy extraction is unchanged, so the final count is compared empirically in
``benchmarks/bench_ablation_msd.py``.
"""

from __future__ import annotations

from collections import Counter
from typing import List, Optional, Sequence, Tuple

from ..errors import SynthesisError
from ..numrep import SignedDigits, encode_csd, enumerate_msd
from .hartley import CseNetwork, eliminate_from_terms
from .patterns import INPUT_SYMBOL, Term

__all__ = ["eliminate_msd", "choose_encodings"]

PatternKey = Tuple[int, int]  # (delta, relative sign) over input digits


def _pattern_keys(digits: SignedDigits) -> Counter:
    """All two-digit (delta, rel_sign) patterns inside one encoding."""
    keys: Counter = Counter()
    terms = digits.terms
    for i in range(len(terms)):
        for j in range(i + 1, len(terms)):
            delta = terms[j][0] - terms[i][0]
            keys[(delta, terms[i][1] * terms[j][1])] += 1
    return keys


def choose_encodings(
    constants: Sequence[int],
    max_encodings_per_constant: int = 24,
) -> List[SignedDigits]:
    """Pick one MSD encoding per constant, greedily maximizing shared patterns.

    Constants with many digits are placed first (they contribute the most
    pattern mass); each later constant picks the candidate whose pattern
    multiset overlaps the accumulated pool best, preferring the CSD form on
    ties so the search never does worse than canonical by accident.
    """
    order = sorted(
        range(len(constants)),
        key=lambda i: (-encode_csd(constants[i]).nonzero_count, i),
    )
    chosen: List[Optional[SignedDigits]] = [None] * len(constants)
    pool: Counter = Counter()
    for index in order:
        constant = int(constants[index])
        candidates = enumerate_msd(constant)[:max_encodings_per_constant]
        csd = encode_csd(constant)
        best = None
        best_rank: Tuple[int, int] = (-1, -1)
        for candidate in candidates:
            keys = _pattern_keys(candidate)
            overlap = sum(min(count, pool[key]) for key, count in keys.items())
            rank = (overlap, 1 if candidate == csd else 0)
            if rank > best_rank:
                best, best_rank = candidate, rank
        if best is None:  # pragma: no cover - enumerate_msd never empty
            best = csd
        chosen[index] = best
        pool.update(_pattern_keys(best))
    return [encoding for encoding in chosen if encoding is not None]


def eliminate_msd(
    constants: Sequence[int],
    max_rounds: Optional[int] = None,
    max_encodings_per_constant: int = 24,
) -> CseNetwork:
    """CSE with per-constant MSD representation search (extension of [8]).

    The all-CSD assignment is itself a point in the MSD search space, so the
    search evaluates both the overlap-chosen assignment and the canonical one
    and returns whichever extraction ends smaller — never worse than plain
    CSD-based CSE (property-tested).
    """
    constants = tuple(int(c) for c in constants)
    if any(c == 0 for c in constants):
        raise SynthesisError("CSE input must not contain zeros")
    candidates = [choose_encodings(constants, max_encodings_per_constant),
                  [encode_csd(c) for c in constants]]
    best: Optional[CseNetwork] = None
    for encodings in candidates:
        terms: List[List[Term]] = [
            [Term(pos=pos, sign=sign, symbol=INPUT_SYMBOL)
             for pos, sign in encoding.terms]
            for encoding in encodings
        ]
        network = eliminate_from_terms(constants, terms, max_rounds)
        network.validate()
        if best is None or network.adder_count < best.adder_count:
            best = network
    assert best is not None
    return best
