"""Iterative common subexpression elimination over signed-digit constants.

This is the paper's CSE comparator and SEED-network compressor: Hartley's
subexpression sharing on CSD digit strings (TCAS-II 1996), generalized in the
usual way so previously extracted subexpressions can themselves participate in
later patterns (Pasko et al.; Park & Kang).

The algorithm repeatedly extracts the pattern with the highest usable
(non-overlapping) frequency — every extraction with frequency ``f`` trades
``f`` adders for 1, saving ``f - 1`` — until no pattern occurs twice.  The
result is an explicit :class:`CseNetwork` that can be counted, inspected, or
materialized into a :class:`~repro.arch.netlist.ShiftAddNetlist`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from ..arch.netlist import ShiftAddNetlist
from ..arch.nodes import Ref
from ..errors import SynthesisError
from ..numrep import Representation, encode, odd_normalize
from .patterns import (
    INPUT_SYMBOL,
    Occurrence,
    Pattern,
    Term,
    count_frequencies,
    find_pattern_occurrences,
)

__all__ = ["CseNetwork", "eliminate", "eliminate_from_terms", "cse_adder_count", "build_cse_refs"]


@dataclass(frozen=True)
class CseNetwork:
    """Result of CSE over a constant list.

    ``subexpressions`` maps each extracted symbol id (>= 1) to its defining
    pattern; ``symbol_values`` gives every symbol's integer value (symbol 0 is
    the input, value 1); ``constant_terms[i]`` is the residual term list whose
    sum reconstructs ``constants[i]``.
    """

    constants: Tuple[int, ...]
    subexpressions: Dict[int, Pattern]
    symbol_values: Dict[int, int]
    constant_terms: Tuple[Tuple[Term, ...], ...]

    @property
    def adder_count(self) -> int:
        """Total adders: one per subexpression + (terms - 1) per constant."""
        residual = sum(
            max(0, len(terms) - 1) for terms in self.constant_terms
        )
        return len(self.subexpressions) + residual

    def reconstruct(self, index: int) -> int:
        """Value of constant ``index`` recomputed from its terms (self-check)."""
        total = 0
        for term in self.constant_terms[index]:
            total += term.sign * (self.symbol_values[term.symbol] << term.pos)
        return total

    def validate(self) -> None:
        """Verify every constant reconstructs exactly."""
        for index, constant in enumerate(self.constants):
            got = self.reconstruct(index)
            if got != constant:
                raise SynthesisError(
                    f"CSE network reconstructs {got} for constant {constant}"
                )


def eliminate(
    constants: Sequence[int],
    representation: Representation = Representation.CSD,
    max_rounds: Optional[int] = None,
) -> CseNetwork:
    """Run iterative CSE over ``constants``.

    Zero constants are rejected (callers filter them); repeated constants are
    fine — their digit strings coincide, so every pattern in one counts in
    the other too (though exact duplicates should normally be deduplicated by
    the caller for an honest adder count).
    """
    constants = tuple(int(c) for c in constants)
    if any(c == 0 for c in constants):
        raise SynthesisError("CSE input must not contain zeros")

    terms: List[List[Term]] = []
    for constant in constants:
        digit_terms = [
            Term(pos=pos, sign=sign, symbol=INPUT_SYMBOL)
            for pos, sign in encode(constant, representation).terms
        ]
        terms.append(digit_terms)
    return eliminate_from_terms(constants, terms, max_rounds)


def eliminate_from_terms(
    constants: Sequence[int],
    terms: List[List[Term]],
    max_rounds: Optional[int] = None,
) -> CseNetwork:
    """Run the iterative extraction on caller-supplied initial term lists.

    Used by :mod:`repro.cse.msd_search`, which picks a non-canonical minimal
    signed-digit encoding per constant before extraction.  Each term list
    must sum to its constant (validated by the returned network).
    """
    constants = tuple(int(c) for c in constants)
    symbol_values: Dict[int, int] = {INPUT_SYMBOL: 1}
    subexpressions: Dict[int, Pattern] = {}
    rounds = 0
    while max_rounds is None or rounds < max_rounds:
        rounds += 1
        occurrences = find_pattern_occurrences(terms, symbol_values)
        frequencies = count_frequencies(occurrences)
        best = _select_pattern(frequencies, symbol_values)
        if best is None:
            break
        pattern = best
        symbol = len(symbol_values)
        symbol_values[symbol] = pattern.value(symbol_values)
        subexpressions[symbol] = pattern
        _rewrite(terms, occurrences[pattern], pattern, symbol)

    return CseNetwork(
        constants=constants,
        subexpressions=subexpressions,
        symbol_values=symbol_values,
        constant_terms=tuple(tuple(t) for t in terms),
    )


def _select_pattern(
    frequencies: Dict[Pattern, int], symbol_values: Dict[int, int]
) -> Optional[Pattern]:
    """Most frequent pattern (needs >= 2), deterministic tie-breaking.

    Ties prefer the pattern with the smaller absolute value (cheaper wiring
    growth), then the lexicographically smallest definition.
    """
    best: Optional[Pattern] = None
    best_rank: Tuple[int, int, Tuple] = (0, 0, ())
    for pattern, frequency in frequencies.items():
        if frequency < 2:
            continue
        rank = (
            frequency,
            -abs(pattern.value(symbol_values)),
            (-pattern.sym_a, -pattern.sym_b, -pattern.delta, pattern.rel_sign),
        )
        if best is None or rank > best_rank:
            best, best_rank = pattern, rank
    return best


def _rewrite(
    terms: List[List[Term]],
    occurrences: List[Occurrence],
    pattern: Pattern,
    symbol: int,
) -> None:
    """Replace non-overlapping occurrences of ``pattern`` with the new symbol."""
    used: Dict[int, set] = {}
    replacements: Dict[int, List[Occurrence]] = {}
    for occ in sorted(
        occurrences, key=lambda o: (o.constant_index, o.term_a, o.term_b)
    ):
        taken = used.setdefault(occ.constant_index, set())
        if occ.term_a in taken or occ.term_b in taken:
            continue
        taken.add(occ.term_a)
        taken.add(occ.term_b)
        replacements.setdefault(occ.constant_index, []).append(occ)
    for constant_index, occs in replacements.items():
        old_terms = terms[constant_index]
        removed = set()
        new_terms: List[Term] = []
        for occ in occs:
            removed.add(occ.term_a)
            removed.add(occ.term_b)
            new_terms.append(Term(pos=occ.pos, sign=occ.sign, symbol=symbol))
        kept = [t for i, t in enumerate(old_terms) if i not in removed]
        terms[constant_index] = kept + new_terms


def cse_adder_count(
    constants: Sequence[int],
    representation: Representation = Representation.CSD,
) -> int:
    """Convenience: adders after CSE over the (deduplicated) odd constants."""
    unique = sorted({abs(odd_normalize(abs(int(c)))[0]) for c in constants if c} - {1})
    if not unique:
        return 0
    network = eliminate(unique, representation)
    network.validate()
    return network.adder_count


def build_cse_refs(
    netlist: ShiftAddNetlist,
    network: CseNetwork,
) -> List[Ref]:
    """Materialize a CSE network into ``netlist``; return one ref per constant.

    Subexpression symbols become adder nodes (in extraction order, so operand
    symbols always exist); each constant becomes a left-to-right chain over
    its residual terms.  Single-term constants are pure wiring.
    """
    network.validate()
    symbol_refs: Dict[int, Ref] = {INPUT_SYMBOL: netlist.input}
    for symbol in sorted(network.subexpressions):
        pattern = network.subexpressions[symbol]
        a = symbol_refs[pattern.sym_a]
        b = symbol_refs[pattern.sym_b]
        ref = netlist.add(
            a,
            Ref(node=b.node, shift=b.shift + pattern.delta,
                sign=b.sign * pattern.rel_sign),
            label=f"cse_s{symbol}",
        )
        symbol_refs[symbol] = ref

    constant_refs: List[Ref] = []
    for index, terms in enumerate(network.constant_terms):
        ordered = sorted(terms, key=lambda t: (t.pos, t.symbol, t.sign))
        if not ordered:
            raise SynthesisError("constant with no terms cannot be materialized")
        acc = _term_ref(symbol_refs, ordered[0])
        for term in ordered[1:]:
            acc = netlist.add(acc, _term_ref(symbol_refs, term),
                              label=f"cse_c{index}")
        if netlist.ref_value(acc) != network.constants[index]:
            raise SynthesisError(
                f"CSE materialization of {network.constants[index]} "
                f"produced {netlist.ref_value(acc)}"
            )
        constant_refs.append(acc)
    return constant_refs


def _term_ref(symbol_refs: Dict[int, Ref], term: Term) -> Ref:
    base = symbol_refs[term.symbol]
    return Ref(node=base.node, shift=base.shift + term.pos, sign=base.sign * term.sign)
