"""Pattern mining for common subexpression elimination.

A constant's signed-digit string is a sum of *terms* ``sign * 2**pos *
symbol`` where symbol 0 is the filter input and higher symbols are previously
extracted subexpressions.  A **pattern** is an ordered pair of symbols at a
relative shift with a relative sign — e.g. the classic CSD pattern ``101``
is ``(sym0, sym0, delta=2, +1)`` — and an **occurrence** is a concrete pair
of terms inside one constant matching the pattern.

Patterns are canonicalized with a leading ``+`` so ``x - (y << d)`` and
``-x + (y << d)`` count as the same shared hardware (the sign is free wiring
at the use site).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple

__all__ = ["Term", "Pattern", "Occurrence", "find_pattern_occurrences", "count_frequencies"]

INPUT_SYMBOL = 0


@dataclass(frozen=True)
class Term:
    """One addend of a constant: ``sign * (symbol_value << pos)``."""

    pos: int
    sign: int
    symbol: int = INPUT_SYMBOL


@dataclass(frozen=True)
class Pattern:
    """A canonical two-term subexpression: ``a + rel_sign * (b << delta)``.

    ``sym_a``/``sym_b`` identify the operand symbols; ``delta >= 0`` is the
    shift of the second operand relative to the first.  By canonicalization
    the first operand always carries ``+``.
    """

    sym_a: int
    sym_b: int
    delta: int
    rel_sign: int

    def value(self, symbol_values: Dict[int, int]) -> int:
        """Integer multiple of x this pattern computes."""
        return symbol_values[self.sym_a] + self.rel_sign * (
            symbol_values[self.sym_b] << self.delta
        )


@dataclass(frozen=True)
class Occurrence:
    """A concrete pattern match: which two term indices of one constant."""

    constant_index: int
    term_a: int
    term_b: int
    pos: int
    sign: int


def _canonicalize(
    first: Term, second: Term
) -> Tuple[Pattern, int, int]:
    """Return (pattern, anchor position, anchor sign) for an ordered term pair.

    ``first`` must have ``pos <= second.pos``.  The occurrence contributes
    ``anchor_sign * (pattern_value << anchor_pos)``.
    """
    delta = second.pos - first.pos
    pattern = Pattern(
        sym_a=first.symbol,
        sym_b=second.symbol,
        delta=delta,
        rel_sign=first.sign * second.sign,
    )
    return pattern, first.pos, first.sign


def find_pattern_occurrences(
    constants: Sequence[Sequence[Term]],
    symbol_values: Dict[int, int],
) -> Dict[Pattern, List[Occurrence]]:
    """Enumerate every candidate pattern and its occurrences over all constants.

    Useless patterns are skipped: those whose value is zero, or a pure power
    of two times a single existing symbol (that is wiring, not an adder worth
    sharing).  Occurrences overlap freely here — non-overlapping selection
    happens during frequency counting / extraction.
    """
    found: Dict[Pattern, List[Occurrence]] = {}
    for const_index, terms in enumerate(constants):
        ordered = sorted(
            range(len(terms)), key=lambda i: (terms[i].pos, terms[i].symbol)
        )
        for ai in range(len(ordered)):
            for bi in range(ai + 1, len(ordered)):
                first = terms[ordered[ai]]
                second = terms[ordered[bi]]
                pattern, pos, sign = _canonicalize(first, second)
                value = pattern.value(symbol_values)
                if value == 0:
                    continue
                if _is_trivial(value, symbol_values):
                    continue
                found.setdefault(pattern, []).append(
                    Occurrence(
                        constant_index=const_index,
                        term_a=ordered[ai],
                        term_b=ordered[bi],
                        pos=pos,
                        sign=sign,
                    )
                )
    return found


def _is_trivial(value: int, symbol_values: Dict[int, int]) -> bool:
    """True if ``value`` is ±(symbol << k) for some existing symbol."""
    magnitude = abs(value)
    for symbol_value in symbol_values.values():
        if symbol_value == 0:
            continue
        base = abs(symbol_value)
        if magnitude % base == 0:
            ratio = magnitude // base
            if ratio & (ratio - 1) == 0:  # power of two
                return True
    return False


def count_frequencies(
    occurrences: Dict[Pattern, List[Occurrence]],
) -> Dict[Pattern, int]:
    """Max non-overlapping occurrence count per pattern.

    Within one constant, two occurrences sharing a term cannot both be
    rewritten; a greedy left-to-right sweep per constant gives the usable
    frequency (optimal for interval-style conflicts in practice and
    deterministic, which matters more here).
    """
    frequencies: Dict[Pattern, int] = {}
    for pattern, occs in occurrences.items():
        used: Dict[int, set] = {}
        count = 0
        for occ in sorted(occs, key=lambda o: (o.constant_index, o.term_a, o.term_b)):
            taken = used.setdefault(occ.constant_index, set())
            if occ.term_a in taken or occ.term_b in taken:
                continue
            taken.add(occ.term_a)
            taken.add(occ.term_b)
            count += 1
        frequencies[pattern] = count
    return frequencies
