"""Common subexpression elimination (Hartley CSE) over signed-digit constants."""

from .hartley import (
    CseNetwork,
    build_cse_refs,
    cse_adder_count,
    eliminate,
    eliminate_from_terms,
)
from .msd_search import choose_encodings, eliminate_msd
from .patterns import (
    INPUT_SYMBOL,
    Occurrence,
    Pattern,
    Term,
    count_frequencies,
    find_pattern_occurrences,
)

__all__ = [
    "CseNetwork",
    "INPUT_SYMBOL",
    "Occurrence",
    "Pattern",
    "Term",
    "build_cse_refs",
    "choose_encodings",
    "count_frequencies",
    "cse_adder_count",
    "eliminate",
    "eliminate_from_terms",
    "eliminate_msd",
    "find_pattern_occurrences",
]
