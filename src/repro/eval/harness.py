"""Experiment registry, dispatch, and paper-vs-measured comparison."""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Callable, Dict, Optional, Sequence, Tuple

from ..errors import ReproError
from ..quantize import ScalingScheme
from .experiments import (
    ExperimentResult,
    run_figure6,
    run_figure7,
    run_figure8,
    run_summary,
    run_table1,
)

__all__ = [
    "EXPERIMENTS",
    "PAPER_CLAIMS",
    "SweepOutcome",
    "paper_comparison",
    "run_experiment",
    "run_sweep",
]


@dataclass(frozen=True)
class _Registered:
    runner: Callable[..., ExperimentResult]
    description: str


EXPERIMENTS: Dict[str, _Registered] = {
    "fig6": _Registered(
        run_figure6,
        "MRPF vs simple, uniformly scaled SPT coefficients (W=8/12/16/20)",
    ),
    "fig7": _Registered(
        run_figure7,
        "MRPF vs simple, maximally scaled SPT coefficients (W=8/12/16/20)",
    ),
    "fig8a": _Registered(
        lambda **kw: run_figure8(ScalingScheme.UNIFORM, **kw),
        "MRPF+CSE vs CSE (CSD), uniformly scaled",
    ),
    "fig8b": _Registered(
        lambda **kw: run_figure8(ScalingScheme.MAXIMAL, **kw),
        "MRPF+CSE vs CSE (CSD), maximally scaled",
    ),
    "table1": _Registered(
        run_table1,
        "Filter specs + SEED sizes, W=16 maximal scaling, depth<=3",
    ),
    "summary": _Registered(
        run_summary,
        "Aggregate §5 claims including CLA-weighted complexity",
    ),
}

# The paper's published numbers per experiment (fraction reductions).
# The abstract's "7%" contradicts §5's "66%/74% vs simple"; §5 and the
# conclusion's context make clear the abstract meant ~70% (see EXPERIMENTS.md).
PAPER_CLAIMS: Dict[str, Dict[str, float]] = {
    "fig6": {"mean_reduction": 0.60},
    "fig7": {
        "mean_reduction_w8_w12": 0.60,
        "mean_reduction_w16_w20": 0.40,
    },
    "fig8a": {
        "mean_reduction_vs_cse": 0.17,
        "mean_reduction_vs_simple": 0.66,
    },
    "fig8b": {
        "mean_reduction_vs_cse": 0.15,
        "mean_reduction_vs_simple": 0.74,
    },
    "summary": {
        "cla_reduction_vs_cse_uniform": 0.16,
    },
}


def run_experiment(
    experiment_id: str,
    filter_indices: Optional[Sequence[int]] = None,
    wordlengths: Optional[Sequence[int]] = None,
) -> ExperimentResult:
    """Run a registered experiment, optionally restricted for quick runs."""
    try:
        registered = EXPERIMENTS[experiment_id]
    except KeyError:
        raise ReproError(
            f"unknown experiment {experiment_id!r}; "
            f"choose from {sorted(EXPERIMENTS)}"
        ) from None
    kwargs = {}
    if filter_indices is not None:
        kwargs["filter_indices"] = filter_indices
    if wordlengths is not None and experiment_id != "table1":
        kwargs["wordlengths"] = wordlengths
    return registered.runner(**kwargs)


@dataclass(frozen=True)
class SweepOutcome:
    """One experiment's fate inside a robust sweep."""

    experiment_id: str
    result: Optional[ExperimentResult]
    error_type: Optional[str]
    error: Optional[str]
    elapsed_s: float

    @property
    def ok(self) -> bool:
        """True when the experiment completed and produced a result."""
        return self.result is not None


def run_sweep(
    experiment_ids: Optional[Sequence[str]] = None,
    robust: bool = True,
    filter_indices: Optional[Sequence[int]] = None,
    wordlengths: Optional[Sequence[int]] = None,
    jobs: Optional[int] = None,
    cache_dir=None,
    task_deadline_s: Optional[float] = None,
) -> Tuple[SweepOutcome, ...]:
    """Run several experiments, surviving individual-instance failures.

    With ``robust`` (default) an experiment that raises — a solver blowup, a
    validation failure, an injected fault — is recorded as a failed
    :class:`SweepOutcome` and the sweep continues, so one pathological
    instance no longer aborts a whole benchmark run.  With ``robust=False``
    the first failure propagates (the historical behavior).

    ``jobs``, ``cache_dir``, and ``task_deadline_s`` hand the sweep to
    :func:`repro.eval.parallel.run_sweep_parallel`: design points are
    precomputed across a process pool and/or a persistent disk cache, then
    the experiments replay serially over the warm caches — the returned
    outcomes are byte-identical to a plain serial run.
    """
    if jobs is not None or cache_dir is not None or task_deadline_s is not None:
        from .parallel import run_sweep_parallel

        return run_sweep_parallel(
            experiment_ids,
            jobs=jobs,
            cache_dir=cache_dir,
            robust=robust,
            filter_indices=filter_indices,
            wordlengths=wordlengths,
            task_deadline_s=task_deadline_s,
        ).outcomes
    ids = (
        list(experiment_ids) if experiment_ids is not None
        else sorted(EXPERIMENTS)
    )
    outcomes = []
    for experiment_id in ids:
        started = time.monotonic()
        try:
            result = run_experiment(experiment_id, filter_indices, wordlengths)
        except Exception as exc:  # noqa: BLE001 — robust sweeps must survive
            if not robust:
                raise
            outcomes.append(
                SweepOutcome(
                    experiment_id=experiment_id,
                    result=None,
                    error_type=type(exc).__name__,
                    error=str(exc),
                    elapsed_s=time.monotonic() - started,
                )
            )
            continue
        outcomes.append(
            SweepOutcome(
                experiment_id=experiment_id,
                result=result,
                error_type=None,
                error=None,
                elapsed_s=time.monotonic() - started,
            )
        )
    return tuple(outcomes)


def paper_comparison(result: ExperimentResult) -> Tuple[Tuple[str, float, float], ...]:
    """(metric, paper value, measured value) triples for the claims we track."""
    claims = PAPER_CLAIMS.get(result.experiment_id, {})
    rows = []
    for metric, paper_value in claims.items():
        measured = result.summary.get(metric)
        if measured is not None:
            rows.append((metric, paper_value, measured))
    return tuple(rows)
