"""ASCII reporting: figure series and table rendering for experiment results."""

from __future__ import annotations

from typing import List, Sequence

from .experiments import ExperimentResult, ExperimentRow, Table1Row

__all__ = ["format_table", "format_experiment"]


def format_table(headers: Sequence[str], rows: Sequence[Sequence[str]]) -> str:
    """Render a fixed-width ASCII table."""
    widths = [len(h) for h in headers]
    for row in rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    def line(cells):
        return "  ".join(cell.ljust(widths[i]) for i, cell in enumerate(cells))
    out = [line(headers), line(["-" * w for w in widths])]
    out.extend(line(row) for row in rows)
    return "\n".join(out)


def _figure_rows(rows: Sequence[ExperimentRow], method: str, baseline: str):
    headers = ["filter", "taps", "W", "scaling",
               f"{baseline} adders", f"{method} adders", "normalized"]
    body: List[List[str]] = []
    for row in rows:
        body.append([
            row.filter_name,
            str(row.num_unique_taps),
            str(row.wordlength),
            row.scaling,
            str(row.results[baseline].adders),
            str(row.results[method].adders),
            f"{row.normalized(method, baseline):.3f}",
        ])
    return headers, body


def _table1_rows(rows: Sequence[Table1Row]):
    headers = ["example", "method", "band", "order", "f_p", "f_s",
               "Rp(dB)", "Rs(dB)", "SEED SPT (r,s)", "SEED SM (r,s)"]
    body: List[List[str]] = []
    for row in rows:
        body.append([
            row.filter_name,
            row.method,
            row.band,
            str(row.order),
            f"{row.passband[0]:.2f}-{row.passband[1]:.2f}",
            f"{row.stopband[0]:.2f}-{row.stopband[1]:.2f}",
            f"{row.ripple_db:.1f}",
            f"{row.atten_db:.0f}",
            f"({row.seed_spt[0]},{row.seed_spt[1]})",
            f"({row.seed_sm[0]},{row.seed_sm[1]})",
        ])
    return headers, body


def format_experiment(result: ExperimentResult) -> str:
    """Render one experiment: title, data table, summary block."""
    parts = [result.title, "=" * len(result.title)]
    if result.table1_rows:
        headers, body = _table1_rows(result.table1_rows)
        parts.append(format_table(headers, body))
    elif result.rows:
        first = result.rows[0]
        methods = list(first.results)
        baseline = "cse" if "cse" in methods and "mrpf_cse" in methods else "simple"
        method = "mrpf_cse" if "mrpf_cse" in methods else "mrpf"
        headers, body = _figure_rows(result.rows, method, baseline)
        parts.append(format_table(headers, body))
    if result.summary:
        parts.append("")
        parts.append("summary:")
        for key, value in result.summary.items():
            parts.append(f"  {key}: {value:.4f}")
    return "\n".join(parts)
