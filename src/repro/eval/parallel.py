"""Process-pool sweep execution with byte-identical serial semantics.

The sweep engine splits :func:`repro.eval.run_sweep` into two phases:

1. **Precompute** — every (filter, wordlength, scaling, representation,
   method, depth-limit) design point needed by the requested experiments is
   enumerated (deterministically, deduplicated), and the points not already
   in a cache layer are scattered across a
   :class:`concurrent.futures.ProcessPoolExecutor`.  Each worker computes
   the point through the very same :func:`~repro.eval.experiments._method_result`
   code path as a serial run, under an optional per-task
   :class:`~repro.robust.SolverBudget` so one pathological instance fails
   fast instead of stalling its shard, and persists the result to the shared
   disk cache (:mod:`repro.eval.cache`).

2. **Replay** — the experiments then run serially in the parent over the
   warm caches.  Because the replay *is* the serial code path (synthesis is
   fully deterministic, and any point a worker failed to produce is simply
   recomputed inline), parallel output is byte-identical to a serial run by
   construction — there is no merge step that could reorder or reformat
   anything.

On a single-core host the pool degenerates gracefully: the engine still
works, the disk cache still eliminates recomputation across runs, and
``jobs=1`` runs the same two phases without a pool (useful for
apples-to-apples benchmarking of the engine overhead).
"""

from __future__ import annotations

import math
import os
import time
import traceback as _traceback
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from .. import obs
from ..errors import ReproError
from ..fastpath import msdtables as fast_tables
from ..filters import TABLE1_SPECS
from ..numrep import Representation
from ..obs import metrics as obs_metrics
from ..obs import span as obs_span
from ..quantize import ScalingScheme
from . import cache as disk_cache
from . import experiments
from .experiments import WORDLENGTHS

__all__ = [
    "ParallelSweepReport",
    "SweepTask",
    "TaskOutcome",
    "auto_chunk_size",
    "plan_tasks",
    "pool_decision",
    "run_sweep_parallel",
]

#: Target number of map() chunks handed to each worker over a sweep: one
#: chunk per worker amortizes IPC best but stragglers idle the pool at the
#: tail, so the auto size aims for a few waves per worker.
CHUNKS_PER_WORKER = 4

#: Env override for the serial-fallback threshold (tasks); mirrors the
#: ``min_parallel_tasks`` parameter for deployments that cannot touch code.
MIN_POOL_TASKS_ENV = "REPRO_MIN_POOL_TASKS"


@dataclass(frozen=True, order=True)
class SweepTask:
    """One design point of a sweep — the unit of parallel work."""

    filter_index: int
    wordlength: int
    scaling: str
    representation: str
    method: str
    depth_limit: Optional[int] = None


@dataclass(frozen=True)
class TaskOutcome:
    """How one precompute task ended (picklable, JSON-friendly payload).

    ``traceback`` carries the full worker-side traceback string for failed
    tasks — ``repr(exc)`` alone is useless when the exception crossed a
    process boundary and the frames are gone.  ``attempts`` counts how many
    times the supervisor scheduled the task (1 for unsupervised runs);
    ``quarantined`` marks a task the supervisor gave up on after it
    repeatedly killed workers.
    """

    task: SweepTask
    payload: Optional[Dict[str, object]]
    error_type: Optional[str]
    error: Optional[str]
    elapsed_s: float
    traceback: Optional[str] = None
    attempts: int = 1
    quarantined: bool = False
    #: Wall time as measured by the tracer's ``sweep.task`` span (monotonic
    #: fallback when tracing is off).  ``elapsed_s`` predates the tracer and
    #: is kept for backward compatibility; the two agree up to granularity.
    duration_s: float = 0.0

    @property
    def ok(self) -> bool:
        """True when the worker produced a result for this design point."""
        return self.payload is not None


# Which (scaling, methods) each figure experiment needs; table1/summary are
# handled explicitly in plan_tasks.
_FIGURE_TASKS: Dict[str, Tuple[ScalingScheme, Tuple[str, ...]]] = {
    "fig6": (ScalingScheme.UNIFORM, ("simple", "mrpf")),
    "fig7": (ScalingScheme.MAXIMAL, ("simple", "mrpf")),
    "fig8a": (ScalingScheme.UNIFORM, ("simple", "cse", "mrpf_cse")),
    "fig8b": (ScalingScheme.MAXIMAL, ("simple", "cse", "mrpf_cse")),
}


def plan_tasks(
    experiment_ids: Sequence[str],
    filter_indices: Optional[Sequence[int]] = None,
    wordlengths: Optional[Sequence[int]] = None,
) -> Tuple[SweepTask, ...]:
    """Enumerate the deduplicated design points the experiments will visit.

    The order is deterministic (sorted), so sharding is reproducible run to
    run regardless of dict iteration or completion order.
    """
    indices = (
        list(filter_indices) if filter_indices is not None
        else list(range(len(TABLE1_SPECS)))
    )
    widths = list(wordlengths) if wordlengths is not None else list(WORDLENGTHS)
    tasks = set()
    for experiment_id in experiment_ids:
        figure_ids = (
            list(_FIGURE_TASKS) if experiment_id == "summary"
            else [experiment_id]
        )
        for figure_id in figure_ids:
            if figure_id == "table1":
                continue
            if figure_id not in _FIGURE_TASKS:
                raise ReproError(
                    f"cannot plan tasks for unknown experiment {figure_id!r}"
                )
            scaling, methods = _FIGURE_TASKS[figure_id]
            for index in indices:
                for wordlength in widths:
                    for method in methods:
                        tasks.add(SweepTask(
                            filter_index=index,
                            wordlength=wordlength,
                            scaling=scaling.value,
                            representation=Representation.CSD.value,
                            method=method,
                        ))
        if experiment_id == "table1":
            for index in indices:
                for representation in (Representation.CSD, Representation.SM):
                    tasks.add(SweepTask(
                        filter_index=index,
                        wordlength=16,
                        scaling=ScalingScheme.MAXIMAL.value,
                        representation=representation.value,
                        method="mrpf",
                        depth_limit=3,
                    ))
    return tuple(sorted(tasks))


def _memory_key(task: SweepTask) -> Tuple:
    """The experiments._CACHE key for a task (same shape as _method_result)."""
    return (task.filter_index, task.wordlength, task.scaling,
            task.representation, task.method, task.depth_limit)


def _compute_task(
    task: SweepTask, deadline_s: Optional[float]
) -> TaskOutcome:
    """Compute one design point through the serial code path."""
    from ..filters import benchmark_filter
    from ..robust.budget import SolverBudget

    started = time.monotonic()
    with obs_span(
        "sweep.task",
        filter_index=task.filter_index,
        wordlength=task.wordlength,
        scaling=task.scaling,
        representation=task.representation,
        method=task.method,
    ) as sp:
        try:
            budget = (
                SolverBudget(deadline_s=deadline_s).start()
                if deadline_s is not None else None
            )
            designed = benchmark_filter(task.filter_index)
            result = experiments._method_result(
                designed,
                task.filter_index,
                task.wordlength,
                ScalingScheme(task.scaling),
                task.method,
                representation=Representation(task.representation),
                depth_limit=task.depth_limit,
                budget=budget,
            )
        except Exception as exc:  # noqa: BLE001 — shard must survive any instance
            sp.set_tag("outcome", "failed")
            return TaskOutcome(
                task=task,
                payload=None,
                error_type=type(exc).__name__,
                error=str(exc),
                elapsed_s=time.monotonic() - started,
                traceback=_traceback.format_exc(),
                duration_s=sp.elapsed() or (time.monotonic() - started),
            )
        sp.set_tag("outcome", "ok")
        return TaskOutcome(
            task=task,
            payload=disk_cache.encode_method_result(result),
            error_type=None,
            error=None,
            elapsed_s=time.monotonic() - started,
            duration_s=sp.elapsed() or (time.monotonic() - started),
        )


def auto_chunk_size(pending: int, workers: int) -> int:
    """Map() chunk size amortizing pool IPC over ``pending`` tasks.

    Aims for :data:`CHUNKS_PER_WORKER` chunks per worker — large enough that
    per-task pickling/dispatch overhead stops dominating sub-100ms tasks,
    small enough that a straggler chunk cannot idle the rest of the pool for
    long.
    """
    if pending <= 0 or workers <= 0:
        return 1
    return max(1, math.ceil(pending / (workers * CHUNKS_PER_WORKER)))


def pool_decision(
    pending: int,
    jobs: int,
    min_parallel_tasks: Optional[int] = None,
) -> Tuple[bool, Optional[str]]:
    """Whether a process pool can win for this sweep, and why not if not.

    Pool spin-up costs several hundred milliseconds per worker (interpreter
    boot + package import); BENCH_sweep measured cold parallel at 0.52x of
    serial when that overhead was paid for a handful of fast tasks.  The
    heuristic falls back to in-process execution (byte-identical results by
    construction) when the pool cannot plausibly amortize:

    * ``jobs <= 1`` — caller asked for no pool;
    * a single-CPU host — workers only add overhead, never concurrency;
    * fewer pending tasks than ``min_parallel_tasks`` (default
      ``max(4, 2 * effective_workers)``, overridable via the
      ``REPRO_MIN_POOL_TASKS`` env var).
    """
    if jobs <= 1:
        return False, "jobs <= 1"
    effective = min(jobs, os.cpu_count() or 1)
    if effective <= 1:
        return False, "single-CPU host"
    if min_parallel_tasks is None:
        raw = os.environ.get(MIN_POOL_TASKS_ENV, "")
        min_parallel_tasks = (
            int(raw) if raw.strip().isdigit() else max(4, 2 * effective)
        )
    if pending < min_parallel_tasks:
        return False, (
            f"{pending} pending tasks below pool threshold "
            f"{min_parallel_tasks}"
        )
    return True, None


def _worker_init(
    cache_dir: Optional[str],
    obs_args: Optional[Tuple[str, bool]] = None,
    msd_snapshot: Optional[Tuple] = None,
) -> None:
    """Pool initializer: shared disk cache, observability, warm MSD tables.

    ``msd_snapshot`` hands the parent's memoized MSD digit tables to the
    worker — a no-op under the fork start method (the tables are inherited),
    load-bearing under spawn, and harmless either way because restoring is
    purely additive.
    """
    disk_cache.configure(cache_dir)
    obs.worker_configure(obs_args)
    fast_tables.restore_tables(msd_snapshot)


def _worker_run(args: Tuple[SweepTask, Optional[float]]) -> TaskOutcome:
    task, deadline_s = args
    outcome = _compute_task(task, deadline_s)
    obs.worker_checkpoint()
    return outcome


@dataclass(frozen=True)
class ParallelSweepReport:
    """Everything a parallel sweep did: results, sharding story, timings.

    The supervised layer (:mod:`repro.eval.supervisor`) reuses this shape
    and additionally fills the recovery counters: ``retries`` (task
    re-executions after worker loss), ``pool_rebuilds`` (executors replaced
    after a ``BrokenProcessPool``), ``tasks_resumed`` (outcomes replayed
    from the journal instead of recomputed), and ``journal_path``.
    """

    outcomes: Tuple  # SweepOutcome per experiment ('' replay skipped → empty)
    tasks: Tuple[TaskOutcome, ...]
    jobs: int
    tasks_planned: int
    tasks_precached: int
    precompute_s: float
    replay_s: float
    total_s: float
    stage_timings: Dict[str, float]
    cache: Dict[str, object]
    retries: int = 0
    pool_rebuilds: int = 0
    tasks_resumed: int = 0
    journal_path: Optional[str] = None
    #: Whether precompute actually used a process pool, the map() chunk size
    #: it used (0 without a pool), and — when it fell back to in-process
    #: execution despite ``jobs > 1`` — the :func:`pool_decision` reason.
    pool_used: bool = False
    chunk_size: int = 0
    fallback_reason: Optional[str] = None

    @property
    def failed_tasks(self) -> Tuple[TaskOutcome, ...]:
        """Precompute tasks that errored (replay recomputes them inline)."""
        return tuple(t for t in self.tasks if not t.ok)

    @property
    def quarantined_tasks(self) -> Tuple[TaskOutcome, ...]:
        """Tasks the supervisor gave up on after repeated worker kills."""
        return tuple(t for t in self.tasks if t.quarantined)

    def stats(self) -> Dict[str, object]:
        """JSON-friendly summary (used by the benchmark gate and the CLI).

        ``cache_put_errors`` and ``cache_quarantined`` surface the uniform
        failure counters of :func:`repro.eval.experiments.cache_info` at the
        top level, so supervised and unsupervised reports expose them the
        same way regardless of which cache layers were active.
        """
        return {
            "jobs": self.jobs,
            "tasks_planned": self.tasks_planned,
            "tasks_precached": self.tasks_precached,
            "tasks_computed": len(self.tasks),
            "tasks_failed": len(self.failed_tasks),
            "tasks_quarantined": len(self.quarantined_tasks),
            "tasks_resumed": self.tasks_resumed,
            "retries": self.retries,
            "pool_rebuilds": self.pool_rebuilds,
            "journal_path": self.journal_path,
            "pool_used": self.pool_used,
            "chunk_size": self.chunk_size,
            "fallback_reason": self.fallback_reason,
            "precompute_s": self.precompute_s,
            "replay_s": self.replay_s,
            "total_s": self.total_s,
            "stage_timings": dict(self.stage_timings),
            "cache": dict(self.cache),
            "cache_put_errors": int(self.cache.get("put_errors", 0)),
            "cache_quarantined": int(self.cache.get("quarantined", 0)),
        }


def _resolve_experiment_ids(
    experiment_ids: Optional[Sequence[str]],
) -> List[str]:
    """Validate and canonicalize (sort) the requested experiment ids."""
    from .harness import EXPERIMENTS

    ids = (
        sorted(experiment_ids) if experiment_ids is not None
        else sorted(EXPERIMENTS)
    )
    unknown = [i for i in ids if i not in EXPERIMENTS]
    if unknown:
        raise ReproError(
            f"unknown experiments {unknown!r}; choose from {sorted(EXPERIMENTS)}"
        )
    return ids


def _partition_tasks(
    tasks: Sequence[SweepTask],
) -> Tuple[List[SweepTask], int]:
    """Split planned tasks into (pending, already-cached count).

    The disk-cache probe both counts warm points and promotes them to the
    in-memory layer, so the replay phase touches no files for them.  Shared
    by the plain parallel engine and the supervised layer.
    """
    pending: List[SweepTask] = []
    precached = 0
    active = disk_cache.active_cache()
    for task in tasks:
        if _memory_key(task) in experiments._CACHE:
            precached += 1
            continue
        if active is not None:
            payload = active.get(experiments._content_key(
                _task_integers(task), task.wordlength, task.method,
                Representation(task.representation), task.depth_limit, 16,
            ))
            if payload is not None:
                experiments._CACHE[_memory_key(task)] = (
                    disk_cache.decode_method_result(payload)
                )
                experiments._MEMORY_STATS.stores += 1
                precached += 1
                continue
        pending.append(task)
    return pending, precached


def _fold_results(results: Sequence[TaskOutcome]) -> None:
    """Hydrate the parent's in-memory cache from worker payloads.

    Disk writes already happened worker-side when a cache is active; here we
    only fill the in-memory layer (results computed in-process already did).
    """
    for outcome in results:
        if outcome.payload is not None:
            key = _memory_key(outcome.task)
            if key not in experiments._CACHE:
                experiments._CACHE[key] = (
                    disk_cache.decode_method_result(outcome.payload)
                )
                experiments._MEMORY_STATS.stores += 1


def _record_sweep_metrics(report: "ParallelSweepReport") -> None:
    """Fold a finished report's totals into the metrics registry.

    Counters are recorded *from the report* (not incrementally along the
    way), so the merged metrics snapshot equals ``report.stats()`` by
    construction — the acceptance contract between the two observability
    surfaces.  Called once per report; sweeps in one process accumulate.
    """
    quarantined = len(report.quarantined_tasks)
    failed = len(report.failed_tasks) - quarantined
    ok = len(report.tasks) - len(report.failed_tasks)
    for status, count in (
        ("ok", ok), ("failed", failed), ("quarantined", quarantined),
    ):
        if count:
            obs_metrics.counter(
                "repro_tasks_total", status=status
            ).inc(count)
    for name, count in (
        ("repro_task_retries_total", report.retries),
        ("repro_pool_rebuilds_total", report.pool_rebuilds),
        ("repro_tasks_resumed_total", report.tasks_resumed),
        ("repro_tasks_precached_total", report.tasks_precached),
    ):
        if count:
            obs_metrics.counter(name).inc(count)
    obs_metrics.gauge("repro_sweep_jobs").set(report.jobs)


def _stage_timings(results: Sequence[TaskOutcome]) -> Dict[str, float]:
    """Aggregate worker-side elapsed time per synthesis method."""
    timings: Dict[str, float] = {}
    for outcome in results:
        stage = outcome.task.method
        timings[stage] = timings.get(stage, 0.0) + outcome.elapsed_s
    return timings


def run_sweep_parallel(
    experiment_ids: Optional[Sequence[str]] = None,
    jobs: Optional[int] = None,
    cache_dir: Optional[os.PathLike] = None,
    robust: bool = True,
    filter_indices: Optional[Sequence[int]] = None,
    wordlengths: Optional[Sequence[int]] = None,
    task_deadline_s: Optional[float] = None,
    replay: bool = True,
    chunk_size: Optional[int] = None,
    min_parallel_tasks: Optional[int] = None,
) -> ParallelSweepReport:
    """Run a sweep with parallel precompute; results match serial bytes.

    ``jobs`` defaults to the host CPU count; ``jobs <= 1`` precomputes
    in-process (no pool).  Even with ``jobs > 1`` the engine consults
    :func:`pool_decision` and silently precomputes in-process when a pool
    cannot win (single-CPU host, or fewer pending tasks than
    ``min_parallel_tasks``) — the fallback runs the identical code path, so
    only timing changes.  ``chunk_size`` sets the number of tasks handed to
    a worker per dispatch (default: :func:`auto_chunk_size`).  ``cache_dir``
    installs a persistent :class:`~repro.eval.cache.DiskCache` shared by
    parent and workers for the duration of the call (and left installed
    afterwards, so subsequent serial runs stay warm).  ``task_deadline_s``
    bounds each design point with a :class:`~repro.robust.SolverBudget`; a
    point that exhausts its budget is recorded in ``report.tasks`` and
    recomputed — unbudgeted, exactly as a serial run would — during replay.
    With ``replay=False`` only the precompute phase runs
    (``report.outcomes`` is empty); use this to warm caches before driving
    experiments through other entry points.
    """
    from .harness import run_sweep

    ids = _resolve_experiment_ids(experiment_ids)
    if jobs is None:
        jobs = os.cpu_count() or 1
    if jobs < 1:
        raise ReproError(f"jobs must be >= 1, got {jobs}")

    started = time.monotonic()
    if cache_dir is not None:
        disk_cache.configure(cache_dir)

    tasks = plan_tasks(ids, filter_indices, wordlengths)
    pending, precached = _partition_tasks(tasks)

    precompute_started = time.monotonic()
    active = disk_cache.active_cache()
    results: List[TaskOutcome] = []
    pool_used = False
    used_chunk = 0
    fallback_reason: Optional[str] = None
    if pending:
        use_pool, fallback_reason = pool_decision(
            len(pending), jobs, min_parallel_tasks
        )
        if use_pool:
            workers = min(jobs, len(pending))
            used_chunk = (
                chunk_size if chunk_size and chunk_size > 0
                else auto_chunk_size(len(pending), workers)
            )
            worker_dir = str(active.root) if active is not None else None
            pool_used = True
            # worker_args() runs inside this span, so every worker's
            # sweep.task roots link to it and share this trace's id.
            with obs_span(
                "sweep.precompute", jobs=jobs, workers=workers,
                pending=len(pending), chunk_size=used_chunk,
            ):
                with ProcessPoolExecutor(
                    max_workers=workers,
                    initializer=_worker_init,
                    initargs=(
                        worker_dir,
                        obs.worker_args(),
                        fast_tables.table_snapshot(),
                    ),
                ) as pool:
                    results = list(pool.map(
                        _worker_run,
                        [(task, task_deadline_s) for task in pending],
                        chunksize=used_chunk,
                    ))
            obs.drain_spill()
        else:
            with obs_span(
                "sweep.precompute", jobs=1, pending=len(pending),
                fallback=fallback_reason,
            ):
                results = [
                    _compute_task(t, task_deadline_s) for t in pending
                ]
    precompute_s = time.monotonic() - precompute_started

    _fold_results(results)
    stage_timings = _stage_timings(results)

    replay_started = time.monotonic()
    outcomes: Tuple = ()
    if replay:
        with obs_span("sweep.replay", experiments=len(ids)):
            outcomes = run_sweep(
                ids, robust=robust, filter_indices=filter_indices,
                wordlengths=wordlengths,
            )
    replay_s = time.monotonic() - replay_started

    report = ParallelSweepReport(
        outcomes=outcomes,
        tasks=tuple(results),
        jobs=jobs,
        tasks_planned=len(tasks),
        tasks_precached=precached,
        precompute_s=precompute_s,
        replay_s=replay_s,
        total_s=time.monotonic() - started,
        stage_timings=stage_timings,
        cache=experiments.cache_info(),
        pool_used=pool_used,
        chunk_size=used_chunk,
        fallback_reason=fallback_reason,
    )
    _record_sweep_metrics(report)
    return report


def _task_integers(task: SweepTask) -> Tuple[int, ...]:
    """The quantized integer coefficients a task's content key hashes."""
    from ..filters import benchmark_filter
    from ..quantize import quantize

    designed = benchmark_filter(task.filter_index)
    return quantize(
        designed.folded, task.wordlength, ScalingScheme(task.scaling)
    ).integers
