"""Generic checksummed, fsync'd, append-only write-ahead log.

Extracted from :class:`repro.eval.supervisor.SweepJournal` so every durable
log in the system — the sweep journal, the service job store — shares one
crash-safety story instead of re-deriving it:

* one record per line, ``<sha256-of-body> <canonical-json>\\n``;
* the first record is a *header* binding the file to an owner-declared
  identity (format version, signature, code version, …) so a log written by
  different code or for a different workload is rejected, never guessed at;
* every append is flushed and ``fsync``'d before it is considered durable;
* a brand-new log's *directory entry* is fsync'd too — without that, the
  first appends can be durable in a file whose name is not;
* reads verify each line's checksum and stop at the first bad one — an
  append-only log can only tear at its tail, and :meth:`ChecksumLog.resume`
  truncates a torn tail (killed writer mid-``write``) so the file is again
  well-formed for further appends.

All IO goes through the active :mod:`repro.robust.crashsim.fabric`, so a
recording fabric sees every operation (and every durable-append
acknowledgement) this log performs.

The log stores plain JSON dicts; owners layer their record schema (and any
replay semantics) on top.
"""

from __future__ import annotations

import hashlib
import json
import os
from pathlib import Path
from typing import Dict, List, Mapping, Tuple

from ..errors import JournalError
from ..robust.crashsim import fabric as iofabric

__all__ = ["ChecksumLog", "checksum"]

_HEADER_KIND = "header"


def checksum(body: str) -> str:
    """The per-line integrity digest (sha256 hex of the JSON body)."""
    return hashlib.sha256(body.encode("utf-8")).hexdigest()


class ChecksumLog:
    """Append-only, fsync'd, checksummed WAL of JSON records.

    Construction goes through :meth:`create` (truncate and write a fresh
    header) or :meth:`resume` (validate the header, truncate any torn tail,
    reopen for append and return the surviving records).  A missing file is
    not an error for ``resume`` — it is the "crashed before the first
    fsync" case and simply starts fresh.
    """

    def __init__(self, path: os.PathLike) -> None:
        self.path = Path(path)
        self._fh = None

    # -- construction --------------------------------------------------------

    @classmethod
    def create(
        cls, path: os.PathLike, header: Mapping[str, object]
    ) -> "ChecksumLog":
        """Start a fresh log at ``path`` (truncating any previous one)."""
        fab = iofabric.active()
        log = cls(path)
        fab.makedirs_durable(log.path.parent)
        log._fh = fab.open(log.path, "w")
        record = dict(header)
        record["kind"] = _HEADER_KIND
        log._write_record(record)
        # The header fsync covered the file's *data*; the file's directory
        # entry needs its own fsync or the whole log can vanish on power
        # loss even though its first appends were "durable".  Only then is
        # the header durable — the ack comes after both.
        fab.fsync_dir(log.path.parent)
        log._ack(record)
        return log

    @classmethod
    def resume(
        cls, path: os.PathLike, header: Mapping[str, object]
    ) -> Tuple["ChecksumLog", List[Dict[str, object]]]:
        """Reopen ``path`` for appending, returning its surviving records.

        ``header`` is the identity this reader expects; a log whose header
        disagrees on any of its fields raises
        :class:`~repro.errors.JournalError` rather than mixing records
        written by different code (or for a different workload) into one
        replay.  The returned records exclude the header.
        """
        fab = iofabric.active()
        target = Path(path)
        if not target.exists():
            return cls.create(path, header), []
        log = cls(path)
        records, valid_bytes = log._read_records()
        if not records:
            # A crash during create() can legally leave an empty file or a
            # torn prefix of the header line (which never contains its
            # trailing newline).  That is the "nothing durable yet" case —
            # start fresh.  Anything with a complete line is foreign data
            # and stays an error.
            if b"\n" not in target.read_bytes():
                return cls.create(path, header), []
            raise JournalError(
                f"log {target} has no valid header; delete it to start over"
            )
        if records[0].get("kind") != _HEADER_KIND:
            raise JournalError(
                f"log {target} has no valid header; delete it to start over"
            )
        have_header = records[0]
        for field, want in header.items():
            have = have_header.get(field)
            if have != want:
                raise JournalError(
                    f"log {target} was written for {field}={have!r} but "
                    f"this run expects {want!r}; delete it to start over"
                )
        # Truncate any torn tail so future appends land on a clean boundary.
        if valid_bytes < target.stat().st_size:
            fab.truncate(target, valid_bytes)
        log._fh = fab.open(target, "a")
        return log, records[1:]

    # -- I/O -----------------------------------------------------------------

    def _read_records(self) -> Tuple[List[Dict[str, object]], int]:
        """Parse the valid prefix: (records, byte length of that prefix)."""
        records: List[Dict[str, object]] = []
        valid_bytes = 0
        with open(self.path, "rb") as fh:
            for raw in fh:
                if not raw.endswith(b"\n"):
                    break  # torn final line (no newline made it to disk)
                try:
                    line = raw.decode("utf-8")
                    digest, body = line.rstrip("\n").split(" ", 1)
                    if checksum(body) != digest:
                        break
                    records.append(json.loads(body))
                except (UnicodeDecodeError, ValueError):
                    break
                valid_bytes += len(raw)
        return records, valid_bytes

    def _write_record(self, record: Mapping[str, object]) -> None:
        """Write + fsync one record without acknowledging it durable."""
        if self._fh is None:
            raise JournalError(f"log {self.path} is not open for append")
        fab = iofabric.active()
        body = json.dumps(record, sort_keys=True, separators=(",", ":"))
        self._fh.write(f"{checksum(body)} {body}\n")
        fab.fsync(self._fh)

    def _ack(self, record: Mapping[str, object]) -> None:
        # The ack names what was just promised durable, so the durability
        # linter and the crash-state checker can map it back to a concrete
        # record.
        info = {"path": str(self.path)}
        for key in ("kind", "job_id", "state", "seq"):
            if key in record:
                info[key] = str(record[key])
        iofabric.active().ack("wal.append", **info)

    def append(self, record: Mapping[str, object]) -> None:
        """Durably append one record (flushed + fsync'd before returning)."""
        self._write_record(record)
        self._ack(record)

    def close(self) -> None:
        """Close the underlying file (append after close raises)."""
        if self._fh is not None:
            self._fh.close()
            self._fh = None

    def __enter__(self) -> "ChecksumLog":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()
