"""Evaluation harness: one runner per paper table/figure, reporting, CLI."""

from .experiments import (
    BETA_SWEEP,
    WORDLENGTHS,
    ExperimentResult,
    ExperimentRow,
    MethodResult,
    Table1Row,
    best_mrpf,
    clear_cache,
    run_figure6,
    run_figure7,
    run_figure8,
    run_summary,
    run_table1,
)
from .export import result_records, to_csv, to_json
from .harness import (
    EXPERIMENTS,
    PAPER_CLAIMS,
    SweepOutcome,
    paper_comparison,
    run_experiment,
    run_sweep,
)
from .plots import ascii_bar_chart, figure_chart
from .report import format_experiment, format_table

__all__ = [
    "BETA_SWEEP",
    "EXPERIMENTS",
    "ExperimentResult",
    "ExperimentRow",
    "MethodResult",
    "PAPER_CLAIMS",
    "SweepOutcome",
    "Table1Row",
    "WORDLENGTHS",
    "ascii_bar_chart",
    "best_mrpf",
    "clear_cache",
    "figure_chart",
    "format_experiment",
    "format_table",
    "paper_comparison",
    "result_records",
    "run_experiment",
    "run_figure6",
    "run_figure7",
    "run_figure8",
    "run_summary",
    "run_sweep",
    "run_table1",
    "to_csv",
    "to_json",
]
