"""Crash-resilient supervised execution over the parallel sweep engine.

:func:`repro.eval.parallel.run_sweep_parallel` assumes a well-behaved world:
every worker lives to return its :class:`~repro.eval.parallel.TaskOutcome`,
and the parent survives to fold them.  A worker taken out by the OOM killer
(or any SIGKILL) raises :class:`~concurrent.futures.process.BrokenProcessPool`
and aborts the whole sweep, discarding every completed point; a killed
parent loses everything not yet in the disk cache.  For sweeps that run for
hours, both are unacceptable.  This module supervises the precompute phase:

* **Journaling** — every terminal :class:`TaskOutcome` is appended to a
  per-sweep write-ahead log (:class:`SweepJournal`): one checksummed JSON
  line per record, flushed and ``fsync``'d before the outcome is considered
  durable.  ``resume=True`` replays the journal — discarding a torn tail
  from a mid-write crash — hydrates the in-memory cache from completed
  points, and schedules only what is left.

* **Worker-loss recovery** — tasks are submitted individually; when the
  pool breaks, the executor is rebuilt after an exponential backoff and the
  lost tasks are requeued with a bounded retry budget.  Attribution is
  conservative (a broken pool fails every in-flight future, so innocent
  bystanders of a poison task also burn an attempt), which is exactly what
  bounds the damage: a task that exceeds ``max_retries`` lost attempts is
  **quarantined** — recorded in the report with ``quarantined=True`` instead
  of retried forever or allowed to crash the sweep.

* **Chaos validation** — a :class:`~repro.robust.ProcessFaultPlan` threads
  deterministic process-level faults (real worker SIGKILLs, straggler
  sleeps, cache-write corruption/ENOSPC) through the workers, so the
  supervisor itself is tested under replayable fault sequences.

The replay phase is untouched: experiments still run serially in the parent
over warm caches, so supervised output remains byte-identical to a serial
run — quarantined or failed points are simply recomputed inline, exactly as
the unsupervised engine does.
"""

from __future__ import annotations

import os
import random
import time
from collections import deque
from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor
from concurrent.futures import wait as _futures_wait
from concurrent.futures.process import BrokenProcessPool
from dataclasses import asdict, replace
from pathlib import Path
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from .. import obs
from ..errors import ReproError, SupervisorError, SweepAborted
from ..fastpath import msdtables as fast_tables
from ..obs import span as obs_span
from ..robust.chaos import ProcessFaultPlan
from . import cache as disk_cache
from . import experiments
from .parallel import (
    ParallelSweepReport,
    SweepTask,
    TaskOutcome,
    _compute_task,
    _fold_results,
    _memory_key,
    _partition_tasks,
    _record_sweep_metrics,
    _resolve_experiment_ids,
    _stage_timings,
    plan_tasks,
)
from .wal import ChecksumLog

__all__ = [
    "JOURNAL_FORMAT_VERSION",
    "SweepJournal",
    "decorrelated_backoff",
    "run_sweep_supervised",
    "sweep_signature",
    "task_key",
]

#: Bump when the journal line format or record schema changes; a resumed
#: journal with a different format is rejected, never guessed at.
JOURNAL_FORMAT_VERSION = 1

_HEADER_KIND = "header"
_OUTCOME_KIND = "outcome"


def task_key(task: SweepTask) -> str:
    """Stable string identity of a design point.

    Used to key chaos-plan decisions (which must agree between parent and
    workers) and readable enough to name tasks in reports and logs.
    """
    return "|".join(str(v) for v in (
        task.filter_index, task.wordlength, task.scaling,
        task.representation, task.method, task.depth_limit,
    ))


def sweep_signature(
    experiment_ids: Sequence[str],
    filter_indices: Optional[Sequence[int]] = None,
    wordlengths: Optional[Sequence[int]] = None,
) -> str:
    """Content hash identifying one sweep's task universe and code version.

    Folded into the journal filename and header so a ``--resume`` can only
    replay outcomes produced by the *same* sweep shape under the *same*
    code (:func:`~repro.eval.cache.cache_key` mixes in the version tag).
    """
    return disk_cache.cache_key({
        "experiments": list(experiment_ids),
        "filters": (
            list(filter_indices) if filter_indices is not None else None
        ),
        "wordlengths": (
            list(wordlengths) if wordlengths is not None else None
        ),
    })


def _encode_outcome(outcome: TaskOutcome) -> Dict[str, object]:
    record = asdict(outcome)
    record["kind"] = _OUTCOME_KIND
    return record


def _decode_outcome(record: Dict[str, object]) -> TaskOutcome:
    task = SweepTask(**record["task"])
    return TaskOutcome(
        task=task,
        payload=record["payload"],
        error_type=record["error_type"],
        error=record["error"],
        elapsed_s=record["elapsed_s"],
        traceback=record.get("traceback"),
        attempts=record.get("attempts", 1),
        quarantined=record.get("quarantined", False),
        duration_s=record.get("duration_s", 0.0),
    )


class SweepJournal:
    """Append-only, fsync'd, checksummed WAL of sweep task outcomes.

    A thin typed wrapper over :class:`~repro.eval.wal.ChecksumLog` (which
    owns the line format, header validation, and torn-tail truncation): this
    class contributes only the outcome record schema, the journal naming
    convention, and the header identity binding a file to one sweep
    signature under one code version.
    """

    def __init__(self, log: ChecksumLog) -> None:
        self._log = log
        self.path = log.path

    # -- construction --------------------------------------------------------

    @classmethod
    def _header(cls, signature: str) -> Dict[str, object]:
        return {
            "format": JOURNAL_FORMAT_VERSION,
            "signature": signature,
            "version": disk_cache.version_tag(),
        }

    @classmethod
    def path_for(cls, directory: os.PathLike, signature: str) -> Path:
        """Where the journal for ``signature`` lives under ``directory``."""
        return Path(directory) / f"sweep-{signature[:16]}.wal"

    @classmethod
    def create(cls, directory: os.PathLike, signature: str) -> "SweepJournal":
        """Start a fresh journal (truncating any previous one)."""
        return cls(ChecksumLog.create(
            cls.path_for(directory, signature), cls._header(signature)
        ))

    @classmethod
    def resume(
        cls, directory: os.PathLike, signature: str
    ) -> Tuple["SweepJournal", List[TaskOutcome]]:
        """Reopen a journal for appending, returning its replayed outcomes.

        A missing journal is not an error — the "interrupted before the
        first fsync" case — it simply starts fresh.  A journal whose header
        disagrees on format, signature, or code version raises
        :class:`~repro.errors.JournalError` rather than mixing results
        computed by different code into one sweep.
        """
        log, records = ChecksumLog.resume(
            cls.path_for(directory, signature), cls._header(signature)
        )
        outcomes = [
            _decode_outcome(r) for r in records
            if r.get("kind") == _OUTCOME_KIND
        ]
        return cls(log), outcomes

    # -- I/O -----------------------------------------------------------------

    def append(self, outcome: TaskOutcome) -> None:
        """Durably record one terminal task outcome (flushed + fsync'd)."""
        self._log.append(_encode_outcome(outcome))

    def close(self) -> None:
        """Close the underlying file (append after close raises)."""
        self._log.close()

    def __enter__(self) -> "SweepJournal":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


class _NullJournal:
    """Journal stand-in when no ``journal_dir`` was given: records nothing."""

    path = None

    def append(self, outcome: TaskOutcome) -> None:
        pass

    def close(self) -> None:
        pass


def decorrelated_backoff(
    previous_s: float,
    base_s: float,
    factor: float,
    cap_s: float,
    rng: random.Random,
) -> float:
    """Next pool-rebuild delay under decorrelated jitter.

    A deterministic exponential schedule makes every recovering worker (and
    every concurrent sweep sharing a host) restart in lockstep, re-creating
    the very resource spike that broke the pool.  Decorrelated jitter (the
    AWS "decorrelated" variant) spreads rebuilds over ``[base_s,
    min(cap_s, previous_s * factor)]``: the *upper envelope* still grows
    exponentially from the previous delay, but the actual draw is uniform
    inside the window, so two supervisors with identical histories diverge.
    ``base_s <= 0`` disables backoff entirely (returns 0.0).
    """
    if base_s <= 0.0:
        return 0.0
    lower = min(base_s, cap_s)
    upper = min(cap_s, max(base_s, previous_s * factor))
    if upper <= lower:
        return lower
    return rng.uniform(lower, upper)


# -- supervised precompute ---------------------------------------------------


def _worker_init_supervised(
    cache_dir: Optional[str],
    chaos: Optional[ProcessFaultPlan],
    obs_args: Optional[Tuple[str, bool]] = None,
    msd_snapshot: Optional[Tuple] = None,
) -> None:
    """Pool initializer: disk cache, chaos arming, obs, warm MSD tables."""
    disk_cache.configure(cache_dir)
    obs.worker_configure(obs_args)
    fast_tables.restore_tables(msd_snapshot)
    if chaos is not None:
        injector = chaos.cache_injector()
        if injector is not None:
            disk_cache.install_fault_injector(injector)


def _effective_deadline(
    deadline_s: Optional[float], deadline_at: Optional[float]
) -> Optional[float]:
    """Per-task budget recomputed at task start from the job-level clock.

    The whole-sweep ``deadline_at`` (wall-clock epoch, comparable across
    processes) caps each task's deadline at the job's *remaining* time, so
    late tasks get smaller budgets and an N-task sweep cannot run
    ``N x deadline_s`` past its job deadline.  The floor keeps an
    already-over-deadline task failing fast instead of dividing by zero.
    """
    if deadline_at is None:
        return deadline_s
    remaining = deadline_at - time.time()
    if deadline_s is not None:
        remaining = min(deadline_s, remaining)
    return max(0.05, remaining)


def _worker_run_supervised(
    args: Tuple[
        SweepTask, Optional[float], int, Optional[ProcessFaultPlan],
        Optional[float],
    ],
) -> TaskOutcome:
    task, deadline_s, attempt, chaos, deadline_at = args
    if chaos is not None:
        chaos.apply_worker_faults(task_key(task), attempt)
    outcome = _compute_task(task, _effective_deadline(deadline_s, deadline_at))
    obs.worker_checkpoint()
    return outcome


def _quarantine_outcome(task: SweepTask, attempts: int) -> TaskOutcome:
    return TaskOutcome(
        task=task,
        payload=None,
        error_type="WorkerLost",
        error=(
            f"task {task_key(task)} was in flight for {attempts} broken "
            f"pools; quarantined as a suspected worker killer"
        ),
        elapsed_s=0.0,
        attempts=attempts,
        quarantined=True,
    )


def _precompute_in_process(
    pending: Sequence[SweepTask],
    deadline_s: Optional[float],
    journal,
    chaos: Optional[ProcessFaultPlan],
    deadline_at: Optional[float] = None,
    check_abort: Optional[Callable[[], Optional[str]]] = None,
) -> List[TaskOutcome]:
    """``jobs=1`` path: no pool to lose, but journaling still applies.

    Worker-kill faults are *not* fired here — they would SIGKILL the parent
    itself, which is the scenario the journal (not the supervisor loop)
    protects against; slow and cache-write faults still fire.
    """
    injector = chaos.cache_injector() if chaos is not None else None
    previous = (
        disk_cache.install_fault_injector(injector)
        if injector is not None else None
    )
    results: List[TaskOutcome] = []
    try:
        for task in pending:
            if check_abort is not None:
                reason = check_abort()
                if reason is not None:
                    raise SweepAborted(reason)
            if chaos is not None:
                delay = chaos.slow_delay(task_key(task))
                if delay > 0.0:
                    time.sleep(delay)
            outcome = _compute_task(
                task, _effective_deadline(deadline_s, deadline_at)
            )
            journal.append(outcome)
            results.append(outcome)
    finally:
        if injector is not None:
            disk_cache.install_fault_injector(previous)
    return results


def _run_wave(
    batch: Sequence[SweepTask],
    workers: int,
    worker_dir: Optional[str],
    deadline_s: Optional[float],
    attempts: Dict[SweepTask, int],
    chaos: Optional[ProcessFaultPlan],
    journal,
    results: List[TaskOutcome],
    deadline_at: Optional[float] = None,
    check_abort: Optional[Callable[[], Optional[str]]] = None,
) -> List[SweepTask]:
    """Submit one batch to a fresh pool; returns the tasks lost to a break.

    Completed outcomes (including worker-side failures, which arrive as
    error-carrying :class:`TaskOutcome`\\ s, and submission-side errors such
    as unpicklable arguments) are journaled and appended to ``results``
    as they complete; only tasks whose future died with
    :class:`BrokenProcessPool` are returned for the caller to triage.

    ``check_abort`` is polled between completions; a non-``None`` reason
    raises :class:`~repro.errors.SweepAborted` after cancelling every
    not-yet-started future (in-flight tasks still finish inside their own
    per-task deadline, so the overshoot past an abort is bounded by one
    task budget, not the whole remaining batch).
    """
    lost: List[SweepTask] = []
    abort_reason: Optional[str] = None
    # The wave span is open when worker_args() snapshots the trace context
    # below, so every worker's sweep.task spans link to *this* wave.
    with obs_span(
        "sweep.wave", workers=workers, batch=len(batch)
    ) as wave_span:
        executor = ProcessPoolExecutor(
            max_workers=workers,
            initializer=_worker_init_supervised,
            initargs=(
                worker_dir, chaos, obs.worker_args(),
                fast_tables.table_snapshot(),
            ),
        )
        future_map = {
            executor.submit(
                _worker_run_supervised,
                (task, deadline_s, attempts[task], chaos, deadline_at),
            ): task
            for task in batch
        }
        try:
            outstanding = set(future_map)
            while outstanding:
                if check_abort is not None:
                    abort_reason = check_abort()
                    if abort_reason is not None:
                        break
                done, outstanding = _futures_wait(
                    outstanding,
                    timeout=0.25 if check_abort is not None else None,
                    return_when=FIRST_COMPLETED,
                )
                for future in done:
                    task = future_map[future]
                    try:
                        outcome = future.result()
                    except BrokenProcessPool:
                        lost.append(task)
                    except Exception as exc:  # noqa: BLE001 — e.g. pickling
                        outcome = TaskOutcome(
                            task=task,
                            payload=None,
                            error_type=type(exc).__name__,
                            error=str(exc),
                            elapsed_s=0.0,
                            attempts=attempts[task] + 1,
                        )
                        journal.append(outcome)
                        results.append(outcome)
                    else:
                        outcome = replace(
                            outcome, attempts=attempts[task] + 1
                        )
                        journal.append(outcome)
                        results.append(outcome)
        finally:
            executor.shutdown(wait=True, cancel_futures=True)
        wave_span.set_tag("lost", len(lost))
    if abort_reason is not None:
        raise SweepAborted(abort_reason)
    return lost


def _precompute_supervised(
    pending: Sequence[SweepTask],
    jobs: int,
    deadline_s: Optional[float],
    journal,
    chaos: Optional[ProcessFaultPlan],
    max_retries: int,
    backoff_s: float,
    backoff_factor: float,
    max_backoff_s: float,
    backoff_rng: Optional[random.Random] = None,
    deadline_at: Optional[float] = None,
    check_abort: Optional[Callable[[], Optional[str]]] = None,
) -> Tuple[List[TaskOutcome], int, int]:
    """Pool execution with worker-loss recovery and poison attribution.

    Returns ``(results, retries, pool_rebuilds)``.  Fresh tasks run in
    shared waves at full width.  A broken pool fails *every* in-flight
    future, so a shared-wave loss cannot tell the poison task from innocent
    bystanders; lost tasks are therefore re-probed in **isolation** — one
    task, one worker, one pool — where a second break implicates exactly
    that task.  Each loss adds a strike to the task's ledger; a task
    exceeding ``max_retries`` strikes is quarantined.  Innocents collect at
    most the one shared-wave strike, so with ``max_retries >= 1`` only a
    repeatedly-killing task can be quarantined.  Executor rebuilds are
    spaced by :func:`decorrelated_backoff` to ride out transient resource
    pressure (the OOM-killer case) without recovering supervisors
    restarting in lockstep.
    """
    active = disk_cache.active_cache()
    worker_dir = str(active.root) if active is not None else None
    attempts: Dict[SweepTask, int] = {task: 0 for task in pending}
    queue = deque(sorted(pending))
    suspects: deque = deque()
    results: List[TaskOutcome] = []
    retries = 0
    pool_rebuilds = 0
    rng = backoff_rng if backoff_rng is not None else random.Random()
    previous_delay = backoff_s

    def strike(task: SweepTask) -> None:
        nonlocal retries
        attempts[task] += 1
        if attempts[task] > max_retries:
            outcome = _quarantine_outcome(task, attempts[task])
            journal.append(outcome)
            results.append(outcome)
        else:
            retries += 1
            suspects.append(task)

    def backoff() -> None:
        nonlocal previous_delay
        previous_delay = decorrelated_backoff(
            previous_delay, backoff_s, backoff_factor, max_backoff_s, rng
        )
        if previous_delay > 0.0:
            time.sleep(previous_delay)

    while queue or suspects:
        # Isolation probes first: settle every suspect before committing a
        # full-width pool that one of them could break again.
        while suspects:
            task = suspects.popleft()
            lost = _run_wave(
                [task], 1, worker_dir, deadline_s, attempts, chaos,
                journal, results, deadline_at, check_abort,
            )
            if lost:
                pool_rebuilds += 1
                with obs_span(
                    "supervisor.recover", kind="isolation", lost=1,
                    rebuilds=pool_rebuilds,
                ):
                    strike(task)
                    backoff()
        if queue:
            batch = sorted(queue)
            queue.clear()
            lost = _run_wave(
                batch, min(jobs, len(batch)), worker_dir, deadline_s,
                attempts, chaos, journal, results, deadline_at, check_abort,
            )
            if lost:
                pool_rebuilds += 1
                with obs_span(
                    "supervisor.recover", kind="wave", lost=len(lost),
                    rebuilds=pool_rebuilds,
                ):
                    for task in sorted(lost):
                        strike(task)
                    backoff()
    return results, retries, pool_rebuilds


def run_sweep_supervised(
    experiment_ids: Optional[Sequence[str]] = None,
    jobs: Optional[int] = None,
    cache_dir: Optional[os.PathLike] = None,
    robust: bool = True,
    filter_indices: Optional[Sequence[int]] = None,
    wordlengths: Optional[Sequence[int]] = None,
    task_deadline_s: Optional[float] = None,
    replay: bool = True,
    journal_dir: Optional[os.PathLike] = None,
    resume: bool = False,
    max_retries: int = 2,
    backoff_s: float = 0.05,
    backoff_factor: float = 2.0,
    max_backoff_s: float = 2.0,
    chaos: Optional[ProcessFaultPlan] = None,
    backoff_rng: Optional[random.Random] = None,
    deadline_at: Optional[float] = None,
    should_stop: Optional[Callable[[], Optional[str]]] = None,
) -> ParallelSweepReport:
    """Run a sweep under supervision; results still match serial bytes.

    Superset of :func:`~repro.eval.parallel.run_sweep_parallel`: same
    planning, cache layering, and replay semantics, plus journaling
    (``journal_dir``/``resume``), bounded worker-loss recovery
    (``max_retries``, ``backoff_*``), and optional process-level fault
    injection (``chaos``).  The returned
    :class:`~repro.eval.parallel.ParallelSweepReport` carries the recovery
    counters and any quarantined tasks.

    ``deadline_at`` is a whole-sweep wall-clock bound (``time.time()``
    epoch): each task's effective deadline is recomputed at task start as
    ``min(task_deadline_s, deadline_at - now)``, and the parent re-checks
    the clock between task completions, raising
    :class:`~repro.errors.SweepAborted` once it passes.  ``should_stop``
    is polled at the same checkpoints and aborts with its returned reason
    when non-``None`` (e.g. a job service observing a cancelled job).
    Aborting never loses journaled outcomes — a resumed run skips them.
    """
    from .harness import run_sweep

    ids = _resolve_experiment_ids(experiment_ids)
    if jobs is None:
        jobs = os.cpu_count() or 1
    if jobs < 1:
        raise ReproError(f"jobs must be >= 1, got {jobs}")
    if max_retries < 0:
        raise SupervisorError(f"max_retries must be >= 0, got {max_retries}")
    if backoff_s < 0.0 or max_backoff_s < 0.0 or backoff_factor < 1.0:
        raise SupervisorError(
            "backoff_s/max_backoff_s must be >= 0 and backoff_factor >= 1"
        )
    if resume and journal_dir is None:
        raise SupervisorError("resume=True requires journal_dir")

    check_abort: Optional[Callable[[], Optional[str]]] = None
    if deadline_at is not None or should_stop is not None:
        def check_abort() -> Optional[str]:
            if deadline_at is not None and time.time() >= deadline_at:
                return (
                    f"sweep deadline passed "
                    f"({time.time() - deadline_at:.1f}s over)"
                )
            if should_stop is not None:
                return should_stop()
            return None

    started = time.monotonic()
    if cache_dir is not None:
        disk_cache.configure(cache_dir)

    tasks = plan_tasks(ids, filter_indices, wordlengths)
    signature = sweep_signature(ids, filter_indices, wordlengths)

    journal = _NullJournal()
    resumed_outcomes: List[TaskOutcome] = []
    if journal_dir is not None:
        if resume:
            journal, resumed_outcomes = SweepJournal.resume(
                journal_dir, signature
            )
        else:
            journal = SweepJournal.create(journal_dir, signature)

    # Hydrate the in-memory cache from journaled completions, then let the
    # ordinary partition count them as precached.  Failed or quarantined
    # journal records are *not* replayed — a crash environment is exactly
    # when transient failures happen, so those points get a fresh chance.
    tasks_resumed = 0
    task_set = set(tasks)
    seen: set = set()
    for outcome in resumed_outcomes:
        if outcome.task not in task_set or outcome.task in seen:
            continue
        if outcome.ok:
            seen.add(outcome.task)
            tasks_resumed += 1
            key = _memory_key(outcome.task)
            if key not in experiments._CACHE:
                experiments._CACHE[key] = (
                    disk_cache.decode_method_result(outcome.payload)
                )
                experiments._MEMORY_STATS.stores += 1
    if resume and journal.path is not None:
        obs.event(
            "journal.resume",
            journal=str(journal.path),
            replayed=len(resumed_outcomes),
            resumed=tasks_resumed,
        )

    pending, precached = _partition_tasks(tasks)

    precompute_started = time.monotonic()
    retries = 0
    pool_rebuilds = 0
    try:
        if not pending:
            results: List[TaskOutcome] = []
        elif jobs > 1:
            with obs_span(
                "sweep.precompute", jobs=jobs, pending=len(pending),
                supervised=True,
            ):
                results, retries, pool_rebuilds = _precompute_supervised(
                    pending, jobs, task_deadline_s, journal, chaos,
                    max_retries, backoff_s, backoff_factor, max_backoff_s,
                    backoff_rng, deadline_at, check_abort,
                )
            obs.drain_spill()
        else:
            with obs_span(
                "sweep.precompute", jobs=1, pending=len(pending),
                supervised=True,
            ):
                results = _precompute_in_process(
                    pending, task_deadline_s, journal, chaos,
                    deadline_at, check_abort,
                )
    finally:
        journal.close()
    precompute_s = time.monotonic() - precompute_started

    _fold_results(results)
    stage_timings = _stage_timings(results)

    # Last checkpoint before the (undeadlined, serial) replay phase: an
    # abort that fired while the final tasks drained must not be absorbed
    # into a full replay over cold points.
    if check_abort is not None:
        reason = check_abort()
        if reason is not None:
            raise SweepAborted(reason)

    replay_started = time.monotonic()
    outcomes: Tuple = ()
    if replay:
        with obs_span("sweep.replay", experiments=len(ids)):
            outcomes = run_sweep(
                ids, robust=robust, filter_indices=filter_indices,
                wordlengths=wordlengths,
            )
    replay_s = time.monotonic() - replay_started

    report = ParallelSweepReport(
        outcomes=outcomes,
        tasks=tuple(results),
        jobs=jobs,
        tasks_planned=len(tasks),
        tasks_precached=precached,
        precompute_s=precompute_s,
        replay_s=replay_s,
        total_s=time.monotonic() - started,
        stage_timings=stage_timings,
        cache=experiments.cache_info(),
        retries=retries,
        pool_rebuilds=pool_rebuilds,
        tasks_resumed=tasks_resumed,
        journal_path=str(journal.path) if journal.path is not None else None,
    )
    _record_sweep_metrics(report)
    return report
