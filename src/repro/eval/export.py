"""Machine-readable export of experiment results (CSV / JSON).

The ASCII reports are for terminals; these exporters feed plotting scripts
and spreadsheets.  No third-party dependencies: the CSV dialect is plain
RFC-4180-ish, JSON uses the standard library.
"""

from __future__ import annotations

import csv
import io
import json
from typing import Any, Dict, List, Sequence

from .experiments import ExperimentResult

__all__ = ["to_csv", "to_json", "result_records", "sweep_records", "sweep_to_json"]


def result_records(result: ExperimentResult) -> List[Dict[str, Any]]:
    """Flatten an experiment into one record per (design point, method)."""
    records: List[Dict[str, Any]] = []
    for row in result.rows:
        for method, mr in row.results.items():
            record: Dict[str, Any] = {
                "experiment": result.experiment_id,
                "filter": row.filter_name,
                "num_taps": row.num_taps,
                "num_unique_taps": row.num_unique_taps,
                "wordlength": row.wordlength,
                "scaling": row.scaling,
                "method": method,
                "adders": mr.adders,
                "depth": mr.depth,
                "cla_weighted": mr.cla_weighted,
            }
            if mr.seed_size is not None:
                record["seed_roots"], record["seed_solution"] = mr.seed_size
            records.append(record)
    for row in result.table1_rows:
        records.append({
            "experiment": result.experiment_id,
            "filter": row.filter_name,
            "design_method": row.method,
            "band": row.band,
            "order": row.order,
            "ripple_db": row.ripple_db,
            "atten_db": row.atten_db,
            "seed_spt_roots": row.seed_spt[0],
            "seed_spt_solution": row.seed_spt[1],
            "seed_sm_roots": row.seed_sm[0],
            "seed_sm_solution": row.seed_sm[1],
        })
    return records


def to_csv(result: ExperimentResult) -> str:
    """Render the experiment's records as CSV text (header included)."""
    records = result_records(result)
    if not records:
        return ""
    fieldnames: List[str] = []
    for record in records:
        for key in record:
            if key not in fieldnames:
                fieldnames.append(key)
    buffer = io.StringIO()
    writer = csv.DictWriter(buffer, fieldnames=fieldnames, restval="")
    writer.writeheader()
    writer.writerows(records)
    return buffer.getvalue()


def to_json(result: ExperimentResult, indent: int = 2) -> str:
    """Render the experiment (records + summary) as JSON text."""
    payload = {
        "experiment": result.experiment_id,
        "title": result.title,
        "records": result_records(result),
        "summary": dict(result.summary),
    }
    return json.dumps(payload, indent=indent, sort_keys=False)


def sweep_records(outcomes: Sequence[Any]) -> List[Dict[str, Any]]:
    """Flatten sweep outcomes into deterministic records.

    Timing fields (``elapsed_s``) are deliberately excluded so that two runs
    of the same sweep — serial or parallel, cold or warm cache — serialize
    to *identical bytes*; the equivalence tests and the benchmark gate's
    byte-identity check rely on this.
    """
    records: List[Dict[str, Any]] = []
    for outcome in outcomes:
        record: Dict[str, Any] = {
            "experiment": outcome.experiment_id,
            "ok": outcome.ok,
            "error_type": outcome.error_type,
            "error": outcome.error,
        }
        if outcome.result is not None:
            record["title"] = outcome.result.title
            record["records"] = result_records(outcome.result)
            record["summary"] = dict(outcome.result.summary)
        records.append(record)
    return records


def sweep_to_json(outcomes: Sequence[Any], indent: int = 2) -> str:
    """Deterministic JSON for a whole sweep (see :func:`sweep_records`)."""
    return json.dumps(
        {"sweep": sweep_records(outcomes)}, indent=indent, sort_keys=True
    )
