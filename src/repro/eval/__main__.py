"""Command-line entry point: ``python -m repro.eval <experiment>``.

Examples::

    python -m repro.eval fig6
    python -m repro.eval table1
    python -m repro.eval all --filters 0 1 2 --wordlengths 8 12
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from .harness import EXPERIMENTS, paper_comparison, run_experiment
from .export import to_csv, to_json
from .plots import figure_chart
from .report import format_experiment


def main(argv: Optional[List[str]] = None) -> int:
    """CLI entry point; returns a process exit code."""
    parser = argparse.ArgumentParser(
        prog="python -m repro.eval",
        description="Regenerate the paper's tables and figures.",
    )
    parser.add_argument(
        "experiment",
        choices=sorted(EXPERIMENTS) + ["all"],
        help="which experiment to run",
    )
    parser.add_argument(
        "--filters",
        type=int,
        nargs="+",
        default=None,
        metavar="IDX",
        help="restrict to these benchmark filter indices (0-11)",
    )
    parser.add_argument(
        "--csv",
        metavar="PATH",
        default=None,
        help="also write the results as CSV to PATH",
    )
    parser.add_argument(
        "--json",
        metavar="PATH",
        default=None,
        help="also write the results as JSON to PATH",
    )
    parser.add_argument(
        "--chart",
        action="store_true",
        help="also render the figure as an ASCII bar chart",
    )
    parser.add_argument(
        "--wordlengths",
        type=int,
        nargs="+",
        default=None,
        metavar="W",
        help="restrict coefficient wordlengths (default 8 12 16 20)",
    )
    parser.add_argument(
        "--jobs",
        type=int,
        default=None,
        metavar="N",
        help="precompute design points across N worker processes "
             "(results are byte-identical to a serial run)",
    )
    parser.add_argument(
        "--cache-dir",
        metavar="DIR",
        default=None,
        help="persistent result cache shared across runs and workers",
    )
    parser.add_argument(
        "--task-deadline",
        type=float,
        default=None,
        metavar="SECONDS",
        help="per-design-point solver budget during parallel precompute",
    )
    args = parser.parse_args(argv)

    experiment_ids = (
        sorted(EXPERIMENTS) if args.experiment == "all" else [args.experiment]
    )
    if args.jobs is not None or args.cache_dir is not None:
        from .parallel import run_sweep_parallel

        report = run_sweep_parallel(
            experiment_ids,
            jobs=args.jobs,
            cache_dir=args.cache_dir,
            filter_indices=args.filters,
            wordlengths=args.wordlengths,
            task_deadline_s=args.task_deadline,
            replay=False,
        )
        stats = report.stats()
        print(
            f"[precomputed {stats['tasks_computed']} design points "
            f"with {report.jobs} jobs in {report.precompute_s:.2f}s; "
            f"{stats['tasks_precached']}/{stats['tasks_planned']} were "
            f"already cached; {stats['tasks_failed']} failed]"
        )
    for experiment_id in experiment_ids:
        result = run_experiment(
            experiment_id,
            filter_indices=args.filters,
            wordlengths=args.wordlengths,
        )
        print(format_experiment(result))
        if args.chart and result.rows:
            print()
            print(figure_chart(result))
        if args.csv:
            with open(args.csv, "a" if len(experiment_ids) > 1 else "w") as fh:
                fh.write(to_csv(result))
            print(f"[csv written to {args.csv}]")
        if args.json:
            with open(args.json, "w") as fh:
                fh.write(to_json(result))
            print(f"[json written to {args.json}]")
        comparison = paper_comparison(result)
        if comparison:
            print()
            print("paper vs measured:")
            for metric, paper_value, measured in comparison:
                print(f"  {metric}: paper={paper_value:.2f} measured={measured:.2f}")
        print()
    return 0


if __name__ == "__main__":
    sys.exit(main())
