"""Command-line entry point: ``python -m repro.eval <experiment>``.

Examples::

    python -m repro.eval fig6
    python -m repro.eval table1
    python -m repro.eval all --filters 0 1 2 --wordlengths 8 12
    python -m repro.eval all --jobs 4 --cache-dir .cache \\
        --journal-dir .journal --resume --max-retries 3
    python -m repro.eval fig6 --trace trace.jsonl --metrics metrics.prom
    python -m repro.eval stats --trace trace.jsonl
    python -m repro.eval timeline --trace trace.jsonl --job job-abc123
    python -m repro.eval critical-path --trace merged.jsonl --job job-abc123
    python -m repro.eval export-chrome --trace trace.jsonl --output t.json
    python -m repro.eval verify --filters 0 1 --wordlengths 8 --mutants 40

Exit codes map the error taxonomy so schedulers and scripts can branch on
*why* a run ended without parsing stderr:

====  =====================================================================
code  meaning
====  =====================================================================
0     success
1     library error (any other :class:`~repro.errors.ReproError`)
2     usage error (argparse: unknown experiment, bad flag combination)
3     a solver budget was exhausted (:class:`~repro.errors.BudgetExceeded`)
4     every degradation tier failed (:class:`~repro.errors.DegradationError`)
5     sweep finished but the supervisor quarantined poison tasks
6     verify: a structural invariant audit failed
7     verify: a fixed-point width or overflow check failed
8     verify: an equivalence check (exhaustive/differential/C model) failed
9     verify: the mutation kill-rate gate failed
====  =====================================================================
"""

from __future__ import annotations

import argparse
import os
import sys
from typing import List, Optional

from .. import obs
from ..errors import BudgetExceeded, DegradationError, ReproError
from .harness import EXPERIMENTS, paper_comparison, run_experiment
from .export import to_csv, to_json
from .plots import figure_chart
from .report import format_experiment

__all__ = [
    "EXIT_OK",
    "EXIT_FAILURE",
    "EXIT_USAGE",
    "EXIT_BUDGET",
    "EXIT_DEGRADATION",
    "EXIT_PARTIAL",
    "EXIT_VERIFY_STRUCTURE",
    "EXIT_VERIFY_FIXEDPOINT",
    "EXIT_VERIFY_EQUIVALENCE",
    "EXIT_VERIFY_MUTATION",
    "EXIT_CRASHSIM",
    "build_parser",
    "main",
]

EXIT_OK = 0
EXIT_FAILURE = 1
EXIT_USAGE = 2  # argparse's own exit code, listed here for completeness
EXIT_BUDGET = 3
EXIT_DEGRADATION = 4
EXIT_PARTIAL = 5
EXIT_VERIFY_STRUCTURE = 6
EXIT_VERIFY_FIXEDPOINT = 7
EXIT_VERIFY_EQUIVALENCE = 8
EXIT_VERIFY_MUTATION = 9
EXIT_CRASHSIM = 10

#: First-failure exit code per verification check (the C-model diff is an
#: equivalence check, so its failures share that code).
_VERIFY_EXIT_CODES = {
    "structure": EXIT_VERIFY_STRUCTURE,
    "fixedpoint": EXIT_VERIFY_FIXEDPOINT,
    "equivalence": EXIT_VERIFY_EQUIVALENCE,
    "cmodel": EXIT_VERIFY_EQUIVALENCE,
    "mutation": EXIT_VERIFY_MUTATION,
}


def build_parser() -> argparse.ArgumentParser:
    """The CLI's argument parser (exposed for tests and docs tooling)."""
    parser = argparse.ArgumentParser(
        prog="python -m repro.eval",
        description="Regenerate the paper's tables and figures.",
    )
    parser.add_argument(
        "experiment",
        choices=sorted(EXPERIMENTS) + [
            "all", "stats", "timeline", "critical-path", "export-chrome",
            "verify", "serve", "export", "submit", "watch", "crashsim"
        ],
        help="which experiment to run ('stats' renders the per-phase time "
             "breakdown of a trace recorded earlier with --trace; "
             "'timeline' renders the span tree chronologically; "
             "'critical-path' extracts which span segments bound the "
             "wall-clock; 'export-chrome' converts a trace for "
             "chrome://tracing / Perfetto; 'verify' "
             "runs the full hardware verification audit over synthesized "
             "benchmark filters; 'serve' starts the synthesis job service; "
             "'export' emits one artifact for a single design point; "
             "'submit' sends a sweep to a running service via the resilient "
             "client; 'watch' long-polls an existing job to completion; "
             "'crashsim' runs the deterministic crash-consistency "
             "certification sweep over the durability layers)",
    )
    parser.add_argument(
        "--filters",
        type=int,
        nargs="+",
        default=None,
        metavar="IDX",
        help="restrict to these benchmark filter indices (0-11)",
    )
    parser.add_argument(
        "--csv",
        metavar="PATH",
        default=None,
        help="also write the results as CSV to PATH",
    )
    parser.add_argument(
        "--json",
        metavar="PATH",
        default=None,
        help="also write the results as JSON to PATH",
    )
    parser.add_argument(
        "--chart",
        action="store_true",
        help="also render the figure as an ASCII bar chart",
    )
    parser.add_argument(
        "--wordlengths",
        type=int,
        nargs="+",
        default=None,
        metavar="W",
        help="restrict coefficient wordlengths (default 8 12 16 20)",
    )
    parser.add_argument(
        "--jobs",
        type=int,
        default=None,
        metavar="N",
        help="precompute design points across N worker processes "
             "(results are byte-identical to a serial run)",
    )
    parser.add_argument(
        "--chunk-size",
        type=int,
        default=None,
        metavar="N",
        help="tasks handed to a worker per dispatch during parallel "
             "precompute (default: auto-sized from task count and pool "
             "width)",
    )
    parser.add_argument(
        "--cache-dir",
        metavar="DIR",
        default=None,
        help="persistent result cache shared across runs and workers",
    )
    parser.add_argument(
        "--task-deadline",
        type=float,
        default=None,
        metavar="SECONDS",
        help="per-design-point solver budget during parallel precompute",
    )
    parser.add_argument(
        "--journal-dir",
        metavar="DIR",
        default=None,
        help="journal every completed design point to a crash-safe WAL "
             "in DIR (enables the supervised engine and --resume)",
    )
    parser.add_argument(
        "--resume",
        action="store_true",
        help="replay completed points from the journal and continue an "
             "interrupted sweep (requires --journal-dir)",
    )
    parser.add_argument(
        "--max-retries",
        type=int,
        default=None,
        metavar="N",
        help="requeue a task at most N times after worker loss before "
             "quarantining it (supervised engine; default 2)",
    )
    parser.add_argument(
        "--trace",
        metavar="FILE",
        default=None,
        help="record a JSONL phase trace to FILE (for the analysis "
             "subcommands stats/timeline/critical-path/export-chrome: the "
             "trace to read instead — concatenate per-process files to "
             "analyze a whole distributed job)",
    )
    parser.add_argument(
        "--metrics",
        metavar="FILE",
        default=None,
        help="write a Prometheus text metrics exposition to FILE when "
             "the run finishes",
    )
    parser.add_argument(
        "--job",
        metavar="JOB_ID",
        default=None,
        help="analysis subcommands: restrict to the trace of this service "
             "job (matched via its service.job span)",
    )
    parser.add_argument(
        "--allow-torn-tail",
        action="store_true",
        help="analysis subcommands: tolerate one torn final line per "
             "trace file (the tail a SIGKILL'd process left mid-write)",
    )
    parser.add_argument(
        "--profile-span",
        metavar="NAME",
        default=None,
        help="attach a sampled cProfile capture to every span named NAME "
             "(requires --trace; .pstats files land in --profile-dir)",
    )
    parser.add_argument(
        "--profile-dir",
        metavar="DIR",
        default=None,
        help="where --profile-span writes its .pstats captures "
             "(default: alongside the trace file)",
    )
    parser.add_argument(
        "--profile-every",
        metavar="N",
        type=int,
        default=1,
        help="capture every Nth matching span instead of all of them "
             "(sampling keeps profiler overhead bounded on hot spans)",
    )
    parser.add_argument(
        "--log-level",
        choices=("debug", "info", "warning", "error"),
        default=None,
        help="route the repro logger hierarchy to stderr at this level",
    )
    verify_group = parser.add_argument_group("verify options")
    verify_group.add_argument(
        "--mutants",
        type=int,
        default=0,
        metavar="N",
        help="verify: also run a mutation campaign of N seeded faults per "
             "design and enforce the kill-rate gate (default 0 = skip)",
    )
    verify_group.add_argument(
        "--exhaustive-bits",
        type=int,
        default=8,
        metavar="BITS",
        help="verify: input wordlength for the exhaustive sweep (default 8)",
    )
    verify_group.add_argument(
        "--input-bits",
        type=int,
        default=16,
        metavar="BITS",
        help="verify: input wordlength for fixed-point and differential "
             "checks (default 16)",
    )
    verify_group.add_argument(
        "--seed",
        type=int,
        default=0,
        metavar="N",
        help="verify/crashsim: seed for random stimulus, mutant drawing, "
             "and crash-state sampling (default 0)",
    )
    verify_group.add_argument(
        "--cmodel",
        action="store_true",
        help="verify: also diff the compiled C model (skipped without a C "
             "compiler on PATH)",
    )
    export_group = parser.add_argument_group("export options")
    export_group.add_argument(
        "--format",
        choices=("verilog", "c", "dot"),
        default="verilog",
        dest="export_format",
        help="export: which artifact to emit (default verilog)",
    )
    export_group.add_argument(
        "--output",
        metavar="PATH",
        default=None,
        help="export: write the artifact to PATH instead of stdout",
    )
    export_group.add_argument(
        "--scaling",
        choices=("uniform", "maximal"),
        default="maximal",
        help="export: quantization scaling scheme (default maximal)",
    )
    export_group.add_argument(
        "--representation",
        choices=("csd", "sm"),
        default="csd",
        help="export: coefficient digit representation (default csd)",
    )
    serve_group = parser.add_argument_group("serve options")
    serve_group.add_argument(
        "--host",
        default="127.0.0.1",
        help="serve: bind address (default 127.0.0.1)",
    )
    serve_group.add_argument(
        "--port",
        type=int,
        default=8177,
        metavar="N",
        help="serve: bind port; 0 picks a free one (default 8177)",
    )
    serve_group.add_argument(
        "--data-dir",
        metavar="DIR",
        default=None,
        help="serve: durable state root (job WAL, sweep journals, results)",
    )
    serve_group.add_argument(
        "--max-queue-depth",
        type=int,
        default=16,
        metavar="N",
        help="serve: total queued jobs before shedding with 429 (default 16)",
    )
    serve_group.add_argument(
        "--max-tenant-depth",
        type=int,
        default=8,
        metavar="N",
        help="serve: queued jobs per tenant before shedding (default 8)",
    )
    serve_group.add_argument(
        "--max-inflight",
        type=int,
        default=1,
        metavar="N",
        help="serve: jobs running concurrently (default 1)",
    )
    serve_group.add_argument(
        "--max-task-deadline",
        type=float,
        default=120.0,
        metavar="SECONDS",
        help="serve: ceiling on the per-task solver budget a request may "
             "ask for; larger requests are clamped (default 120)",
    )
    serve_group.add_argument(
        "--max-job-deadline",
        type=float,
        default=1800.0,
        metavar="SECONDS",
        help="serve: ceiling on a job's wall-clock deadline (default 1800)",
    )
    serve_group.add_argument(
        "--breaker-threshold",
        type=int,
        default=3,
        metavar="N",
        help="serve: pool rebuilds inside the window that open the circuit "
             "breaker (default 3)",
    )
    serve_group.add_argument(
        "--breaker-cooldown",
        type=float,
        default=30.0,
        metavar="SECONDS",
        help="serve: how long an open breaker sheds before probing "
             "(default 30)",
    )
    serve_group.add_argument(
        "--drain-grace",
        type=float,
        default=30.0,
        metavar="SECONDS",
        help="serve: how long SIGTERM waits for running jobs (default 30)",
    )
    # Chaos knobs for the fault-injection suite; deliberately undocumented.
    serve_group.add_argument(
        "--chaos-seed", type=int, default=None, help=argparse.SUPPRESS
    )
    serve_group.add_argument(
        "--chaos-kill-rate", type=float, default=0.0, help=argparse.SUPPRESS
    )
    client_group = parser.add_argument_group("client options (submit/watch)")
    client_group.add_argument(
        "--url",
        default="http://127.0.0.1:8177",
        help="submit/watch: service base URL (default http://127.0.0.1:8177)",
    )
    client_group.add_argument(
        "--tenant",
        default="cli",
        help="submit: tenant the job is accounted against (default 'cli')",
    )
    client_group.add_argument(
        "--experiments",
        nargs="+",
        metavar="EXP",
        default=None,
        help="submit: experiments the job should sweep (default: fig6)",
    )
    client_group.add_argument(
        "--job-id",
        default=None,
        help="watch: the job to follow to completion",
    )
    client_group.add_argument(
        "--client-budget",
        type=float,
        default=None,
        metavar="SECONDS",
        help="submit/watch: overall client deadline budget across retries "
             "and long-polls (default 300)",
    )
    client_group.add_argument(
        "--watch",
        action="store_true",
        help="submit: after submitting, follow the job to completion "
             "(exit code reflects its final state)",
    )
    crashsim_group = parser.add_argument_group("crashsim options")
    crashsim_group.add_argument(
        "--layers",
        nargs="+",
        metavar="LAYER",
        default=None,
        help="crashsim: durability layers to certify (default: all of "
             "wal, journal, store, cache)",
    )
    crashsim_group.add_argument(
        "--cap",
        type=int,
        default=None,
        metavar="N",
        help="crashsim: check at most N crash states per layer, sampled "
             "deterministically from --seed (default: check every state)",
    )
    crashsim_group.add_argument(
        "--min-states",
        type=int,
        default=0,
        metavar="N",
        help="crashsim: fail unless at least N crash states were "
             "enumerated across all layers (coverage floor, default 0)",
    )
    crashsim_group.add_argument(
        "--scratch",
        default=None,
        metavar="DIR",
        help="crashsim: directory for materialized crash states (default: "
             "a fresh temp dir, removed afterwards)",
    )
    return parser


#: Subcommands that *read* an existing trace instead of recording one.
_ANALYSIS_COMMANDS = ("stats", "timeline", "critical-path", "export-chrome")


def _load_analysis_records(args: argparse.Namespace):
    """Shared front half of every analysis subcommand.

    Loads ``--trace`` (tolerating a killed process's torn tail only when
    asked) and, with ``--job``, narrows to that job's trace id so a merged
    multi-process file analyzes as one job's story.
    """
    from ..obs import report as obs_report

    if args.trace is None:
        raise ReproError(
            f"the {args.experiment} subcommand needs --trace FILE pointing "
            "at a trace recorded by an earlier run"
        )
    records = obs.load_trace(
        args.trace, allow_torn_tail=args.allow_torn_tail
    )
    if args.job is not None:
        trace_id = obs_report.trace_id_for_job(records, args.job)
        if trace_id is None:
            raise ReproError(
                f"no service.job span tagged job_id={args.job!r} in "
                f"{args.trace}"
            )
        records = obs_report.filter_trace(records, trace_id)
    return records


def _run_stats(args: argparse.Namespace) -> int:
    """The ``stats`` subcommand: per-phase breakdown of a recorded trace."""
    records = _load_analysis_records(args)
    for problem in obs.validate_trace(records):
        print(f"warning: {problem}", file=sys.stderr)
    print(obs.format_breakdown(obs.phase_breakdown(records)))
    return EXIT_OK


def _run_timeline(args: argparse.Namespace) -> int:
    """The ``timeline`` subcommand: the span forest in wall-clock order."""
    from ..obs import report as obs_report

    records = _load_analysis_records(args)
    rows = obs_report.build_timeline(records)
    print(obs_report.format_timeline(rows))
    return EXIT_OK if rows else EXIT_FAILURE


def _run_critical_path(args: argparse.Namespace) -> int:
    """The ``critical-path`` subcommand: what bounded the wall-clock.

    Exits 1 when the trace yields no path — a CI gate that asserts a
    non-empty critical path can rely on the exit code alone.
    """
    from ..obs import report as obs_report

    records = _load_analysis_records(args)
    result = obs_report.critical_path(records)
    print(obs_report.format_critical_path(result))
    return EXIT_OK if result["segments"] else EXIT_FAILURE


def _run_export_chrome(args: argparse.Namespace) -> int:
    """The ``export-chrome`` subcommand: chrome://tracing / Perfetto JSON."""
    import json as json_mod

    from ..obs import report as obs_report

    records = _load_analysis_records(args)
    payload = obs_report.to_chrome_trace(records)
    if args.output is not None:
        with open(args.output, "w", encoding="utf-8") as fh:
            json_mod.dump(payload, fh, sort_keys=True)
        print(
            f"[chrome trace with {len(payload['traceEvents'])} events "
            f"written to {args.output}]"
        )
    else:
        json_mod.dump(payload, sys.stdout, sort_keys=True)
        sys.stdout.write("\n")
    return EXIT_OK


def _run_verify(args: argparse.Namespace) -> int:
    """The ``verify`` subcommand: full audit of synthesized benchmark filters.

    Synthesizes each selected (filter, wordlength) design point the same way
    the experiments do (maximal scaling, best-β MRPF) and runs the complete
    :func:`repro.verify.full_audit` scorecard on it.  Returns the exit code
    of the *first failing check* (codes 6-9); all designs and checks are
    still run and printed so one report shows every failure.
    """
    from ..filters.benchmarks import TABLE1_SPECS, benchmark_filter
    from ..quantize import ScalingScheme, quantize
    from ..verify import full_audit
    from .experiments import best_mrpf

    indices = (
        list(args.filters)
        if args.filters is not None
        else list(range(len(TABLE1_SPECS)))
    )
    wordlengths = list(args.wordlengths) if args.wordlengths else [8]
    exit_code = EXIT_OK
    audited = failed = 0
    for index in indices:
        designed = benchmark_filter(index)
        for wordlength in wordlengths:
            q = quantize(designed.folded, wordlength, ScalingScheme.MAXIMAL)
            architecture = best_mrpf(q.integers, wordlength)
            report = full_audit(
                architecture.netlist,
                architecture.tap_names,
                architecture.coefficients,
                input_bits=args.input_bits,
                expected_adder_count=architecture.adder_count,
                exhaustive_bits=args.exhaustive_bits,
                mutants=args.mutants,
                seed=args.seed,
                include_cmodel=args.cmodel,
            )
            audited += 1
            verdict = "ok" if report.ok else "FAILED"
            print(f"{designed.name} W={wordlength} "
                  f"({architecture.adder_count} adders): {verdict}")
            for line in report.summary().splitlines():
                print(f"  {line}")
            if not report.ok:
                failed += 1
                if exit_code == EXIT_OK:
                    first = report.failures[0]
                    exit_code = _VERIFY_EXIT_CODES.get(
                        first.check, EXIT_FAILURE
                    )
    print(f"[verified {audited} design points; {failed} failed]")
    return exit_code


def _run_export(args: argparse.Namespace) -> int:
    """The ``export`` subcommand: one artifact for one design point.

    Shares :func:`repro.service.artifacts.generate_artifact` with the job
    service's artifact endpoint, so the bytes written here are identical to
    the bytes the service serves for the same design point — the chaos
    suite relies on that to prove served artifacts are trustworthy.
    """
    from ..service.artifacts import fetch_artifact
    from . import cache as disk_cache

    if args.filters is None or len(args.filters) != 1:
        raise ReproError("export needs exactly one --filters index")
    if args.wordlengths is None or len(args.wordlengths) != 1:
        raise ReproError("export needs exactly one --wordlengths value")
    from ..numrep import Representation
    from ..quantize import ScalingScheme

    if args.cache_dir is not None:
        disk_cache.configure(args.cache_dir)
    text = fetch_artifact(
        args.filters[0],
        args.wordlengths[0],
        args.export_format,
        scaling=ScalingScheme(args.scaling),
        representation=Representation(args.representation),
    )
    if args.output is not None:
        with open(args.output, "w", encoding="utf-8") as fh:
            fh.write(text)
        print(f"[{args.export_format} written to {args.output}]")
    else:
        sys.stdout.write(text)
    return EXIT_OK


def _run_serve(args: argparse.Namespace) -> int:
    """The ``serve`` subcommand: run the synthesis job service until SIGTERM."""
    from pathlib import Path

    from ..service import BudgetPolicy, ServiceConfig, make_server, run_forever

    if args.data_dir is None:
        raise ReproError("serve needs --data-dir DIR for durable job state")
    chaos = None
    if args.chaos_seed is not None:
        from ..robust.chaos import ProcessFaultPlan

        chaos = ProcessFaultPlan(
            seed=args.chaos_seed, kill_rate=args.chaos_kill_rate
        )
    policy = BudgetPolicy(
        default_task_deadline_s=min(30.0, args.max_task_deadline),
        max_task_deadline_s=args.max_task_deadline,
        default_job_deadline_s=min(300.0, args.max_job_deadline),
        max_job_deadline_s=args.max_job_deadline,
    )
    config = ServiceConfig(
        data_dir=Path(args.data_dir),
        cache_dir=args.cache_dir,
        host=args.host,
        port=args.port,
        sweep_jobs=args.jobs if args.jobs is not None else 2,
        max_inflight=args.max_inflight,
        max_queue_depth=args.max_queue_depth,
        max_queue_depth_per_tenant=args.max_tenant_depth,
        budgets=policy,
        breaker_threshold=args.breaker_threshold,
        breaker_cooldown_s=args.breaker_cooldown,
        drain_grace_s=args.drain_grace,
        max_retries=args.max_retries if args.max_retries is not None else 2,
        chaos=chaos,
    )
    server, service = make_server(config)
    host, port = server.server_address[:2]

    def _announce():
        # Flushed line tests (and humans) wait for before sending requests
        # or signals; printed only once the SIGTERM handler is installed.
        print(f"[serving on http://{host}:{port}]", flush=True)

    return run_forever(server, service, ready=_announce)


#: Terminal job states mapped onto the CLI's exit-code taxonomy: an
#: expired job is a budget outcome (3), like a local budget exhaustion.
_JOB_EXIT_CODES = {
    "completed": EXIT_OK,
    "expired": EXIT_BUDGET,
    "failed": EXIT_FAILURE,
    "cancelled": EXIT_FAILURE,
}


def _watch_to_exit(client, job_id: str, budget_s) -> int:
    """Follow ``job_id`` to a terminal state and map it to an exit code."""
    from ..errors import ClientDeadlineError

    try:
        view = client.wait_for(job_id, budget_s=budget_s)
    except ClientDeadlineError as exc:
        last = exc.last_state or {}
        print(
            f"error: client budget exhausted after {exc.elapsed_s:.1f}s; "
            f"last observed state: {last.get('state', 'unknown')}",
            file=sys.stderr,
        )
        return EXIT_BUDGET
    state = view["state"]
    line = f"[job {job_id} {state}"
    if view.get("error"):
        line += f": {view['error_type']}: {view['error']}"
    print(line + "]")
    return _JOB_EXIT_CODES.get(state, EXIT_FAILURE)


def _run_submit(args: argparse.Namespace) -> int:
    """The ``submit`` subcommand: send a sweep through the resilient client."""
    from ..service.client import ServiceClient

    client = ServiceClient(args.url)
    spec = {"experiments": list(args.experiments or ["fig6"])}
    if args.filters is not None:
        spec["filters"] = list(args.filters)
    if args.wordlengths is not None:
        spec["wordlengths"] = list(args.wordlengths)
    view = client.submit(
        spec, tenant=args.tenant, budget_s=args.client_budget
    )
    print(f"[job {view['job_id']} {view['state']}]")
    if not args.watch:
        return EXIT_OK
    return _watch_to_exit(client, view["job_id"], args.client_budget)


def _run_watch(args: argparse.Namespace) -> int:
    """The ``watch`` subcommand: long-poll one job to its terminal state."""
    from ..service.client import ServiceClient

    if args.job_id is None:
        raise ReproError("watch needs --job-id (as printed by submit)")
    client = ServiceClient(args.url)
    return _watch_to_exit(client, args.job_id, args.client_budget)


def _run(args: argparse.Namespace) -> int:
    experiment_ids = (
        sorted(EXPERIMENTS) if args.experiment == "all" else [args.experiment]
    )
    supervised = (
        args.journal_dir is not None
        or args.resume
        or args.max_retries is not None
    )
    quarantined = 0
    if supervised:
        from .supervisor import run_sweep_supervised

        report = run_sweep_supervised(
            experiment_ids,
            jobs=args.jobs,
            cache_dir=args.cache_dir,
            filter_indices=args.filters,
            wordlengths=args.wordlengths,
            task_deadline_s=args.task_deadline,
            replay=False,
            journal_dir=args.journal_dir,
            resume=args.resume,
            max_retries=args.max_retries if args.max_retries is not None else 2,
        )
        stats = report.stats()
        quarantined = stats["tasks_quarantined"]
        print(
            f"[supervised: {stats['tasks_computed']} design points with "
            f"{report.jobs} jobs in {report.precompute_s:.2f}s; "
            f"{stats['tasks_precached']}/{stats['tasks_planned']} cached "
            f"({stats['tasks_resumed']} from journal); "
            f"{stats['tasks_failed']} failed, {quarantined} quarantined, "
            f"{stats['retries']} retries, "
            f"{stats['pool_rebuilds']} pool rebuilds]"
        )
        print(
            f"[cache: {stats['cache_put_errors']} put errors, "
            f"{stats['cache_quarantined']} quarantined entries]"
        )
        for outcome in report.quarantined_tasks:
            print(f"[quarantined: {outcome.error}]", file=sys.stderr)
    elif args.jobs is not None or args.cache_dir is not None:
        from .parallel import run_sweep_parallel

        report = run_sweep_parallel(
            experiment_ids,
            jobs=args.jobs,
            cache_dir=args.cache_dir,
            filter_indices=args.filters,
            wordlengths=args.wordlengths,
            task_deadline_s=args.task_deadline,
            replay=False,
            chunk_size=args.chunk_size,
        )
        stats = report.stats()
        pool_note = (
            f"pool chunk size {report.chunk_size}" if report.pool_used
            else f"in-process ({report.fallback_reason or 'nothing pending'})"
        )
        print(
            f"[precomputed {stats['tasks_computed']} design points "
            f"with {report.jobs} jobs in {report.precompute_s:.2f}s; "
            f"{stats['tasks_precached']}/{stats['tasks_planned']} were "
            f"already cached; {stats['tasks_failed']} failed; {pool_note}]"
        )
        print(
            f"[cache: {stats['cache_put_errors']} put errors, "
            f"{stats['cache_quarantined']} quarantined entries]"
        )
    for experiment_id in experiment_ids:
        result = run_experiment(
            experiment_id,
            filter_indices=args.filters,
            wordlengths=args.wordlengths,
        )
        print(format_experiment(result))
        if args.chart and result.rows:
            print()
            print(figure_chart(result))
        if args.csv:
            with open(args.csv, "a" if len(experiment_ids) > 1 else "w") as fh:
                fh.write(to_csv(result))
            print(f"[csv written to {args.csv}]")
        if args.json:
            with open(args.json, "w") as fh:
                fh.write(to_json(result))
            print(f"[json written to {args.json}]")
        comparison = paper_comparison(result)
        if comparison:
            print()
            print("paper vs measured:")
            for metric, paper_value, measured in comparison:
                print(f"  {metric}: paper={paper_value:.2f} measured={measured:.2f}")
        print()
    return EXIT_PARTIAL if quarantined else EXIT_OK


def _run_crashsim(args: argparse.Namespace) -> int:
    """The ``crashsim`` subcommand: deterministic crash-state certification.

    Exit codes: :data:`EXIT_OK` when every enumerated crash state recovers
    cleanly (and the coverage floor holds), :data:`EXIT_CRASHSIM` when any
    durability invariant or the ordering linter fails, or when fewer than
    ``--min-states`` states were enumerated.
    """
    import json as json_mod
    import shutil
    import tempfile
    from pathlib import Path

    from ..robust.crashsim import certify

    if args.scratch is not None:
        scratch = Path(args.scratch)
        scratch.mkdir(parents=True, exist_ok=True)
        cleanup = False
    else:
        scratch = Path(tempfile.mkdtemp(prefix="crashsim-"))
        cleanup = True
    try:
        try:
            report = certify.run_certification(
                scratch, layers=args.layers, seed=args.seed, cap=args.cap,
            )
        except ValueError as exc:  # unknown --layers value
            raise ReproError(str(exc)) from exc
        print(certify.format_report(report))
        for layer in report.layers:
            if layer.capped:
                print(
                    f"note: {layer.name} capped to {layer.states_checked} "
                    f"of {layer.states_enumerated} states "
                    f"(seed={report.seed}, deterministic sample)"
                )
        if args.json is not None:
            with open(args.json, "w", encoding="utf-8") as fh:
                json_mod.dump(report.as_dict(), fh, indent=2, sort_keys=True)
            print(f"[report written to {args.json}]")
        if report.states_enumerated < args.min_states:
            print(
                f"error: enumerated {report.states_enumerated} crash "
                f"states, below the --min-states floor of {args.min_states}",
                file=sys.stderr,
            )
            return EXIT_CRASHSIM
        return EXIT_OK if report.ok else EXIT_CRASHSIM
    finally:
        if cleanup:
            shutil.rmtree(scratch, ignore_errors=True)


def main(argv: Optional[List[str]] = None) -> int:
    """CLI entry point; returns a process exit code (see module docstring)."""
    parser = build_parser()
    args = parser.parse_args(argv)
    if args.resume and args.journal_dir is None:
        parser.error("--resume requires --journal-dir")
    if args.log_level is not None:
        obs.setup_logging(args.log_level)
    # Analysis subcommands *read* an existing trace; everything else may
    # record one.
    observing = args.experiment not in _ANALYSIS_COMMANDS and (
        args.trace is not None or args.metrics is not None
    )
    if observing:
        if args.profile_span is not None:
            # Attach before configure(): configure wires the live profiler
            # into the tracer it builds.
            profile_dir = args.profile_dir
            if profile_dir is None and args.trace is not None:
                profile_dir = os.path.dirname(args.trace) or "."
            if profile_dir is None:
                profile_dir = "."
            obs.enable_profile(
                args.profile_span, profile_dir, every=args.profile_every
            )
        obs.configure(trace_path=args.trace, metrics_path=args.metrics)
    try:
        if args.experiment == "stats":
            return _run_stats(args)
        if args.experiment == "timeline":
            return _run_timeline(args)
        if args.experiment == "critical-path":
            return _run_critical_path(args)
        if args.experiment == "export-chrome":
            return _run_export_chrome(args)
        if args.experiment == "verify":
            return _run_verify(args)
        if args.experiment == "serve":
            return _run_serve(args)
        if args.experiment == "export":
            return _run_export(args)
        if args.experiment == "submit":
            return _run_submit(args)
        if args.experiment == "watch":
            return _run_watch(args)
        if args.experiment == "crashsim":
            return _run_crashsim(args)
        return _run(args)
    except BudgetExceeded as exc:
        print(f"error: solver budget exhausted: {exc}", file=sys.stderr)
        return EXIT_BUDGET
    except DegradationError as exc:
        print(f"error: degradation cascade failed: {exc}", file=sys.stderr)
        return EXIT_DEGRADATION
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return EXIT_FAILURE
    finally:
        if observing:
            for kind, path in sorted(obs.finalize().items()):
                print(f"[{kind} written to {path}]")


if __name__ == "__main__":
    try:
        sys.exit(main())
    except BrokenPipeError:
        # ``repro.eval timeline ... | head`` closes stdout early; swap the
        # fd for /dev/null so interpreter shutdown does not re-raise, and
        # exit with the conventional SIGPIPE status instead of a traceback.
        os.dup2(os.open(os.devnull, os.O_WRONLY), sys.stdout.fileno())
        sys.exit(128 + 13)
