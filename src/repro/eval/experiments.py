"""Experiment definitions — one runner per table/figure of the paper.

Every runner returns an :class:`ExperimentResult` whose rows carry the raw
adder counts per (filter, wordlength, method); normalization (the figures plot
complexity normalized to the simple or CSE implementation) happens in the
accessors so both views are always available.

β handling: the paper treats β as a technology knob without publishing the
value behind its figures.  The runners sweep ``BETA_SWEEP`` and keep, per
design point, the β minimizing the lowered adder count — the choice a designer
(or the paper's authors) would make, and itself the subject of
``benchmarks/bench_ablation_beta.py``.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Dict, List, Optional, Sequence, Tuple

from ..baselines import (
    synthesize_cse_filter,
    synthesize_mst_diff,
    synthesize_simple,
)
from ..core import MrpOptions, MrpfArchitecture, lower_plan, optimize
from ..core.mrp import trivial_plan
from ..filters import DesignedFilter, benchmark_suite
from ..graph import build_colored_graph
from ..hwcost import CARRY_LOOKAHEAD, weighted_adder_cost
from ..numrep import Representation
from ..obs import metrics as obs_metrics
from ..quantize import ScalingScheme, quantize
from .. import errors
from . import cache as disk_cache

if TYPE_CHECKING:  # pragma: no cover - import would cycle at runtime
    from ..robust.budget import SolverBudget

__all__ = [
    "BETA_SWEEP",
    "WORDLENGTHS",
    "MethodResult",
    "ExperimentRow",
    "Table1Row",
    "ExperimentResult",
    "best_mrpf",
    "run_figure6",
    "run_figure7",
    "run_figure8",
    "run_table1",
    "run_summary",
    "cache_info",
    "clear_cache",
]

BETA_SWEEP: Tuple[float, ...] = (0.0, 0.3, 0.5, 0.7)
WORDLENGTHS: Tuple[int, ...] = (8, 12, 16, 20)

# (filter_index, wordlength, scaling, representation, method, compression)
_CACHE: Dict[Tuple, "MethodResult"] = {}
_MEMORY_STATS = disk_cache.CacheStats()


def clear_cache() -> None:
    """Drop all memoized synthesis results and reset in-memory statistics.

    Only the in-memory layer is dropped; the persistent layer (if one is
    configured via :func:`repro.eval.cache.configure`) is cleared separately
    with :func:`repro.eval.cache.clear_cache`.
    """
    _CACHE.clear()
    _MEMORY_STATS.hits = _MEMORY_STATS.misses = _MEMORY_STATS.stores = 0


def cache_info() -> Dict[str, object]:
    """Statistics for both cache layers (memory always, disk when active).

    The top-level ``put_errors`` and ``quarantined`` keys are *uniform*:
    always present and summed across layers (both 0 when no disk cache is
    configured), so report consumers never need to probe for the optional
    ``disk`` sub-dict before aggregating failure counts.
    """
    from ..fastpath import fastpath_info

    info: Dict[str, object] = {
        "memory_entries": len(_CACHE),
        "memory": _MEMORY_STATS.as_dict(),
        "put_errors": _MEMORY_STATS.put_errors,
        "quarantined": _MEMORY_STATS.quarantined,
        "fastpath": fastpath_info(),
    }
    active = disk_cache.active_cache()
    if active is not None:
        info["disk_dir"] = str(active.root)
        info["disk"] = active.stats.as_dict()
        info["disk_quarantine"] = active.quarantined_entries()
        info["put_errors"] = (
            _MEMORY_STATS.put_errors + active.stats.put_errors
        )
        info["quarantined"] = (
            _MEMORY_STATS.quarantined + active.stats.quarantined
        )
    return info


@dataclass(frozen=True)
class MethodResult:
    """Complexity of one method at one design point."""

    method: str
    adders: int
    depth: int
    cla_weighted: float
    seed_size: Optional[Tuple[int, int]] = None  # (roots, solution) for MRP


@dataclass(frozen=True)
class ExperimentRow:
    """One (filter, wordlength, scaling) design point with all its methods."""

    filter_name: str
    num_taps: int
    num_unique_taps: int
    wordlength: int
    scaling: str
    results: Dict[str, MethodResult]

    def normalized(self, method: str, baseline: str) -> float:
        """Adder count of ``method`` divided by ``baseline`` (figure y-axis)."""
        base = self.results[baseline].adders
        if base == 0:
            return 0.0 if self.results[method].adders == 0 else float("inf")
        return self.results[method].adders / base

    def adders_per_tap(self, method: str) -> float:
        """Multiplier adders per (folded) tap — the §5 "0.3 adders" figure."""
        return self.results[method].adders / self.num_unique_taps


@dataclass(frozen=True)
class Table1Row:
    """One row of Table 1: spec summary + SEED sizes per representation."""

    filter_name: str
    method: str
    band: str
    order: int
    passband: Tuple[float, float]
    stopband: Tuple[float, float]
    ripple_db: float
    atten_db: float
    seed_spt: Tuple[int, int]
    seed_sm: Tuple[int, int]


@dataclass(frozen=True)
class ExperimentResult:
    """Everything one figure/table run produced."""

    experiment_id: str
    title: str
    rows: Tuple = ()
    table1_rows: Tuple[Table1Row, ...] = ()
    summary: Dict[str, float] = field(default_factory=dict)


def _quantized(designed: DesignedFilter, wordlength: int, scaling: ScalingScheme):
    return quantize(designed.folded, wordlength, scaling)


def best_mrpf(
    coefficients: Sequence[int],
    wordlength: int,
    representation: Representation = Representation.CSD,
    depth_limit: Optional[int] = None,
    seed_compression: str = "none",
    betas: Sequence[float] = BETA_SWEEP,
    budget: Optional["SolverBudget"] = None,
) -> MrpfArchitecture:
    """Sweep β, lower each plan, return the cheapest architecture.

    The SIDC graph is built once and shared across the sweep — it does not
    depend on β.  The all-roots trivial plan participates as a floor, so the
    result is never worse than the (fundamental-sharing) simple baseline.

    An optional cooperative ``budget`` is threaded through the graph build
    and every per-β cover/forest optimization; on exhaustion the in-flight
    solver raises :class:`~repro.errors.BudgetExceeded` (sweep shards use
    this so one pathological instance fails fast instead of stalling the
    worker).
    """
    from ..core.sidc import normalize_taps

    vertices, _ = normalize_taps([int(c) for c in coefficients])
    graph = (
        build_colored_graph(vertices, wordlength, representation, budget=budget)
        if len(vertices) > 1
        else None
    )
    # The all-roots plan is a guaranteed floor: lowering it reproduces the
    # simple implementation (with fundamental reuse), so the returned
    # architecture can never lose to the per-tap baseline.
    base_options = MrpOptions(
        representation=representation, depth_limit=depth_limit
    )
    best = lower_plan(trivial_plan(coefficients, base_options), seed_compression)
    for beta in betas:
        options = MrpOptions(
            beta=beta, representation=representation, depth_limit=depth_limit
        )
        plan = optimize(
            coefficients, wordlength, options, graph=graph, budget=budget
        )
        architecture = lower_plan(plan, seed_compression)
        if architecture.adder_count < best.adder_count:
            best = architecture
    return best


def _content_key(
    integers: Sequence[int],
    wordlength: int,
    method: str,
    representation: Representation,
    depth_limit: Optional[int],
    input_bits: int,
) -> str:
    """Disk-cache key: every input that affects the MethodResult, by content.

    ``BETA_SWEEP`` is included because :func:`best_mrpf` folds it into the
    result; a code change to the sweep must orphan old entries.
    """
    return disk_cache.cache_key({
        "kind": "method_result",
        "coefficients": [int(c) for c in integers],
        "wordlength": wordlength,
        "method": method,
        "representation": representation.value,
        "depth_limit": depth_limit,
        "input_bits": input_bits,
        "betas": list(BETA_SWEEP),
    })


def _method_result(
    designed: DesignedFilter,
    filter_index: int,
    wordlength: int,
    scaling: ScalingScheme,
    method: str,
    representation: Representation = Representation.CSD,
    depth_limit: Optional[int] = None,
    input_bits: int = 16,
    budget: Optional["SolverBudget"] = None,
) -> MethodResult:
    key = (filter_index, wordlength, scaling.value, representation.value,
           method, depth_limit)
    cached = _CACHE.get(key)
    if cached is not None:
        _MEMORY_STATS.hits += 1
        obs_metrics.counter("repro_cache_hits_total", layer="memory").inc()
        return cached
    _MEMORY_STATS.misses += 1
    obs_metrics.counter("repro_cache_misses_total", layer="memory").inc()
    q = _quantized(designed, wordlength, scaling)
    integers = q.integers
    persistent = disk_cache.active_cache()
    content_key = None
    if persistent is not None:
        content_key = _content_key(
            integers, wordlength, method, representation, depth_limit,
            input_bits,
        )
        payload = persistent.get(content_key)
        if payload is not None:
            result = disk_cache.decode_method_result(payload)
            _CACHE[key] = result
            _MEMORY_STATS.stores += 1
            obs_metrics.counter(
                "repro_cache_stores_total", layer="memory"
            ).inc()
            return result
    seed_size: Optional[Tuple[int, int]] = None
    if method == "simple":
        arch = synthesize_simple(integers, representation)
        netlist, names = arch.netlist, arch.tap_names
        adders, depth = arch.adder_count, arch.adder_depth
    elif method == "cse":
        arch = synthesize_cse_filter(integers, representation)
        netlist, names = arch.netlist, arch.tap_names
        adders, depth = arch.adder_count, arch.adder_depth
    elif method == "mst_diff":
        arch = synthesize_mst_diff(integers, wordlength, verify=False)
        netlist, names = arch.netlist, arch.tap_names
        adders, depth = arch.adder_count, arch.adder_depth
        seed_size = arch.plan.seed_size
    elif method in ("mrpf", "mrpf_cse", "mrpf_recursive"):
        compression = {
            "mrpf": "none", "mrpf_cse": "cse", "mrpf_recursive": "recursive"
        }[method]
        arch = best_mrpf(
            integers, wordlength, representation,
            depth_limit=depth_limit, seed_compression=compression,
            budget=budget,
        )
        netlist, names = arch.netlist, arch.tap_names
        adders, depth = arch.adder_count, arch.adder_depth
        seed_size = arch.plan.seed_size
    else:
        raise errors.ReproError(f"unknown method {method!r}")
    # REPRO_VERIFY_GATE arms the independent release audit on every freshly
    # synthesized design point.  An env var (rather than a parameter) so the
    # gate reaches fork-inherited sweep workers and the supervised runner
    # without plumbing through every call chain; cache hits above are skipped
    # deliberately — a cached result was audited when it was first computed.
    if os.environ.get("REPRO_VERIFY_GATE"):
        from ..verify import release_audit

        release_audit(netlist, names, list(integers), input_bits=input_bits)
    result = MethodResult(
        method=method,
        adders=adders,
        depth=depth,
        cla_weighted=weighted_adder_cost(netlist, input_bits, CARRY_LOOKAHEAD),
        seed_size=seed_size,
    )
    _CACHE[key] = result
    _MEMORY_STATS.stores += 1
    obs_metrics.counter("repro_cache_stores_total", layer="memory").inc()
    if persistent is not None and content_key is not None:
        # A failed persist (ENOSPC, permissions, chaos fault) must never
        # fail the computation that succeeded — the result is already in
        # hand; only durability is lost, and the counter records it.
        try:
            persistent.put(content_key, disk_cache.encode_method_result(result))
        except OSError:
            persistent.stats.put_errors += 1
            obs_metrics.counter("repro_cache_put_errors_total").inc()
    return result


def _build_rows(
    scaling: ScalingScheme,
    methods: Sequence[str],
    wordlengths: Sequence[int],
    filter_indices: Optional[Sequence[int]],
    representation: Representation = Representation.CSD,
) -> List[ExperimentRow]:
    suite = benchmark_suite()
    indices = list(filter_indices) if filter_indices is not None else list(
        range(len(suite))
    )
    rows: List[ExperimentRow] = []
    for index in indices:
        designed = suite[index]
        for wordlength in wordlengths:
            results = {
                method: _method_result(
                    designed, index, wordlength, scaling, method, representation
                )
                for method in methods
            }
            rows.append(
                ExperimentRow(
                    filter_name=designed.name,
                    num_taps=designed.spec.numtaps,
                    num_unique_taps=designed.num_unique_taps,
                    wordlength=wordlength,
                    scaling=scaling.value,
                    results=results,
                )
            )
    return rows


def _average(values: Sequence[float]) -> float:
    return sum(values) / len(values) if values else 0.0


def run_figure6(
    wordlengths: Sequence[int] = WORDLENGTHS,
    filter_indices: Optional[Sequence[int]] = None,
) -> ExperimentResult:
    """Figure 6: MRPF vs simple (SPT digits), *uniformly scaled* coefficients."""
    rows = _build_rows(
        ScalingScheme.UNIFORM, ("simple", "mrpf"), wordlengths, filter_indices
    )
    normalized = [row.normalized("mrpf", "simple") for row in rows]
    w16 = [
        row.adders_per_tap("mrpf")
        for row in rows
        if row.wordlength == 16 and row.num_unique_taps >= 20
    ]
    return ExperimentResult(
        experiment_id="fig6",
        title="Figure 6 — uniformly scaled: MRPF vs simple (SPT)",
        rows=tuple(rows),
        summary={
            "mean_normalized_complexity": _average(normalized),
            "mean_reduction": 1.0 - _average(normalized),
            "adders_per_tap_w16_large_filters": _average(w16),
        },
    )


def run_figure7(
    wordlengths: Sequence[int] = WORDLENGTHS,
    filter_indices: Optional[Sequence[int]] = None,
) -> ExperimentResult:
    """Figure 7: MRPF vs simple (SPT digits), *maximally scaled* coefficients."""
    rows = _build_rows(
        ScalingScheme.MAXIMAL, ("simple", "mrpf"), wordlengths, filter_indices
    )
    small = [
        row.normalized("mrpf", "simple") for row in rows if row.wordlength <= 12
    ]
    large = [
        row.normalized("mrpf", "simple") for row in rows if row.wordlength >= 16
    ]
    normalized = [row.normalized("mrpf", "simple") for row in rows]
    return ExperimentResult(
        experiment_id="fig7",
        title="Figure 7 — maximally scaled: MRPF vs simple (SPT)",
        rows=tuple(rows),
        summary={
            "mean_normalized_complexity": _average(normalized),
            "mean_reduction": 1.0 - _average(normalized),
            "mean_reduction_w8_w12": 1.0 - _average(small),
            "mean_reduction_w16_w20": 1.0 - _average(large),
        },
    )


def run_figure8(
    scaling: ScalingScheme,
    wordlengths: Sequence[int] = WORDLENGTHS,
    filter_indices: Optional[Sequence[int]] = None,
) -> ExperimentResult:
    """Figure 8: MRPF+CSE vs CSE (CSD), for the given scaling scheme."""
    rows = _build_rows(
        scaling, ("simple", "cse", "mrpf_cse"), wordlengths, filter_indices
    )
    vs_cse = [row.normalized("mrpf_cse", "cse") for row in rows]
    vs_simple = [row.normalized("mrpf_cse", "simple") for row in rows]
    suffix = "a" if scaling is ScalingScheme.UNIFORM else "b"
    return ExperimentResult(
        experiment_id=f"fig8{suffix}",
        title=(
            f"Figure 8({suffix}) — {scaling.value} scaling: MRPF+CSE vs CSE (CSD)"
        ),
        rows=tuple(rows),
        summary={
            "mean_normalized_vs_cse": _average(vs_cse),
            "mean_reduction_vs_cse": 1.0 - _average(vs_cse),
            "mean_reduction_vs_simple": 1.0 - _average(vs_simple),
        },
    )


def run_table1(
    wordlength: int = 16,
    depth_limit: int = 3,
    filter_indices: Optional[Sequence[int]] = None,
) -> ExperimentResult:
    """Table 1: filter specs + SEED sizes for SPT(CSD) and SM digits.

    Uses the paper's reported configuration: 16-bit maximally scaled
    coefficients, spanning-tree depth constraint of 3.
    """
    suite = benchmark_suite()
    indices = list(filter_indices) if filter_indices is not None else list(
        range(len(suite))
    )
    table_rows: List[Table1Row] = []
    for index in indices:
        designed = suite[index]
        seeds = {}
        # Through _method_result (not best_mrpf directly) so Table-1 SEED
        # sizes share both cache layers and the parallel precompute path.
        for representation in (Representation.CSD, Representation.SM):
            seeds[representation] = _method_result(
                designed, index, wordlength, ScalingScheme.MAXIMAL, "mrpf",
                representation=representation, depth_limit=depth_limit,
            ).seed_size
        spec = designed.spec
        table_rows.append(
            Table1Row(
                filter_name=spec.name,
                method=spec.method.abbreviation,
                band=spec.band.abbreviation,
                order=spec.order,
                passband=spec.passband,
                stopband=spec.stopband,
                ripple_db=spec.ripple_db,
                atten_db=spec.atten_db,
                seed_spt=seeds[Representation.CSD],
                seed_sm=seeds[Representation.SM],
            )
        )
    return ExperimentResult(
        experiment_id="table1",
        title=(
            f"Table 1 — filter specs and SEED sizes "
            f"(W={wordlength}, maximal scaling, depth<={depth_limit})"
        ),
        table1_rows=tuple(table_rows),
    )


def run_summary(
    wordlengths: Sequence[int] = WORDLENGTHS,
    filter_indices: Optional[Sequence[int]] = None,
) -> ExperimentResult:
    """§5 aggregate claims, including the CLA-weighted complexity numbers."""
    fig6 = run_figure6(wordlengths, filter_indices)
    fig7 = run_figure7(wordlengths, filter_indices)
    fig8a = run_figure8(ScalingScheme.UNIFORM, wordlengths, filter_indices)
    fig8b = run_figure8(ScalingScheme.MAXIMAL, wordlengths, filter_indices)

    def cla_reduction(rows, method: str, baseline: str) -> float:
        ratios = [
            row.results[method].cla_weighted / row.results[baseline].cla_weighted
            for row in rows
            if row.results[baseline].cla_weighted > 0
        ]
        return 1.0 - _average(ratios)

    summary = {
        "fig6_mean_reduction_vs_simple": fig6.summary["mean_reduction"],
        "fig7_mean_reduction_vs_simple": fig7.summary["mean_reduction"],
        "fig8a_mean_reduction_vs_cse": fig8a.summary["mean_reduction_vs_cse"],
        "fig8b_mean_reduction_vs_cse": fig8b.summary["mean_reduction_vs_cse"],
        "fig8a_mean_reduction_vs_simple": fig8a.summary["mean_reduction_vs_simple"],
        "fig8b_mean_reduction_vs_simple": fig8b.summary["mean_reduction_vs_simple"],
        "cla_reduction_vs_simple_uniform": cla_reduction(
            fig8a.rows, "mrpf_cse", "simple"
        ),
        "cla_reduction_vs_cse_uniform": cla_reduction(
            fig8a.rows, "mrpf_cse", "cse"
        ),
        "cla_reduction_vs_cse_maximal": cla_reduction(
            fig8b.rows, "mrpf_cse", "cse"
        ),
    }
    return ExperimentResult(
        experiment_id="summary",
        title="§5 aggregate claims (adder counts and CLA-weighted complexity)",
        summary=summary,
    )
