"""Persistent, content-addressed result cache for the evaluation engine.

The in-memory ``experiments._CACHE`` dies with the process and is keyed by
*position* (benchmark index).  This module adds a second, durable layer keyed
by *content*: a stable SHA-256 over the quantized coefficients, every option
that affects the synthesis result, and a code-relevant version tag — so a
result can never be served to a design point it was not computed for, and
bumping :data:`CACHE_SCHEMA_VERSION` (or the package version) invalidates
every stale entry at once.

Entries are one JSON file each, sharded by key prefix, written atomically
(tmp + rename) so concurrent writers — the process-pool workers of
:mod:`repro.eval.parallel` — can share one directory without locks: both
sides compute identical bytes for identical keys, so a lost race is merely a
wasted write.

The active cache is process-global (:func:`configure` / :func:`active_cache`)
because the memoization sits under :func:`repro.eval.experiments._method_result`,
deep below the experiment runners' call graph.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
import logging
import os
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Dict, Iterator, Mapping, Optional

from ..errors import ReproError
from ..obs import metrics as obs_metrics
from ..robust.crashsim import fabric as iofabric

logger = logging.getLogger(__name__)

__all__ = [
    "CACHE_SCHEMA_VERSION",
    "CacheStats",
    "DiskCache",
    "QUARANTINE_DIR",
    "active_cache",
    "cache_key",
    "clear_cache",
    "configure",
    "install_fault_injector",
    "version_tag",
]

#: Subdirectory (under the cache root) holding corrupt entries moved aside
#: by :meth:`DiskCache.get` — preserved for forensics, never served.
QUARANTINE_DIR = "quarantine"

#: Bump when the cached payload's meaning changes (new fields, changed
#: semantics of an existing one) to orphan every previously written entry.
CACHE_SCHEMA_VERSION = 1


def version_tag() -> str:
    """The code-relevant version folded into every cache key.

    The fast-path :data:`~repro.fastpath.KERNEL_VERSION` is mixed in so a
    fixed kernel bug cannot keep serving results computed by the broken
    kernel — bumping it orphans every entry, exactly like a schema bump.
    """
    from .. import __version__
    from ..fastpath import KERNEL_VERSION

    return f"{__version__}+schema{CACHE_SCHEMA_VERSION}+k{KERNEL_VERSION}"


def cache_key(payload: Mapping[str, Any]) -> str:
    """Stable content hash of a key payload (version tag included).

    The payload must be JSON-serializable; canonical serialization
    (sorted keys, no whitespace) makes the hash independent of dict
    construction order.
    """
    tagged = dict(payload)
    tagged["__version__"] = version_tag()
    canonical = json.dumps(
        tagged, sort_keys=True, separators=(",", ":"), allow_nan=False
    )
    return hashlib.sha256(canonical.encode("utf-8")).hexdigest()


@dataclass
class CacheStats:
    """Hit/miss/store counters for one cache layer."""

    hits: int = 0
    misses: int = 0
    stores: int = 0
    quarantined: int = 0
    put_errors: int = 0

    @property
    def lookups(self) -> int:
        """Total get() calls observed."""
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        """Fraction of lookups served from the cache (0.0 when unused)."""
        return self.hits / self.lookups if self.lookups else 0.0

    def as_dict(self) -> Dict[str, float]:
        """Plain-dict view for reports and JSON export."""
        return {
            "hits": self.hits,
            "misses": self.misses,
            "stores": self.stores,
            "quarantined": self.quarantined,
            "put_errors": self.put_errors,
            "hit_rate": self.hit_rate,
        }


class DiskCache:
    """A directory of content-addressed JSON entries.

    Layout: ``<root>/<key[:2]>/<key>.json`` — the two-character shard keeps
    directory listings tractable for large sweeps.
    """

    def __init__(self, directory: os.PathLike) -> None:
        self.root = Path(directory)
        self.root.mkdir(parents=True, exist_ok=True)
        self.stats = CacheStats()

    def _path(self, key: str, suffix: str = "json") -> Path:
        if len(key) < 3 or not all(c in "0123456789abcdef" for c in key):
            raise ReproError(f"malformed cache key {key!r}")
        return self.root / key[:2] / f"{key}.{suffix}"

    @property
    def quarantine_dir(self) -> Path:
        """Where corrupt entries are moved aside (may not exist yet)."""
        return self.root / QUARANTINE_DIR

    def _quarantine(self, path: Path) -> None:
        """Move a corrupt entry into ``quarantine/``, preserving its bytes.

        A crashed or chaos-faulted writer leaves evidence worth keeping;
        silently unlinking it would destroy the only forensic record.  A
        numeric suffix keeps repeated corruptions of the same key apart.
        """
        target_dir = self.quarantine_dir
        try:
            target_dir.mkdir(parents=True, exist_ok=True)
            target = target_dir / path.name
            suffix = 0
            while target.exists():
                suffix += 1
                target = target_dir / f"{path.name}.{suffix}"
            iofabric.active().replace(path, target)
        except OSError:
            # Quarantine is best-effort: on a sick filesystem fall back to
            # unlinking so the corrupt entry at least stops shadowing puts.
            try:
                iofabric.active().unlink(path)
            except OSError:
                return
        self.stats.quarantined += 1
        obs_metrics.counter("repro_cache_quarantined_total").inc()
        logger.warning("quarantined corrupt cache entry %s", path.name)

    def quarantined_entries(self) -> int:
        """Number of corrupt entries currently held in ``quarantine/``."""
        if not self.quarantine_dir.is_dir():
            return 0
        return sum(1 for p in self.quarantine_dir.iterdir() if p.is_file())

    def get(self, key: str) -> Optional[Dict[str, Any]]:
        """Return the stored payload for ``key``, or ``None`` on a miss.

        A corrupt entry (truncated write from a killed process, manual
        tampering, simulated filesystem corruption) counts as a miss and is
        moved to ``quarantine/`` for post-mortem inspection.
        """
        path = self._path(key)
        try:
            with open(path, "r", encoding="utf-8") as fh:
                payload = json.load(fh)
        except FileNotFoundError:
            self.stats.misses += 1
            obs_metrics.counter("repro_cache_misses_total", layer="disk").inc()
            return None
        except (json.JSONDecodeError, OSError):
            self.stats.misses += 1
            obs_metrics.counter("repro_cache_misses_total", layer="disk").inc()
            self._quarantine(path)
            return None
        self.stats.hits += 1
        obs_metrics.counter("repro_cache_hits_total", layer="disk").inc()
        return payload

    def put(self, key: str, payload: Mapping[str, Any]) -> None:
        """Atomically persist ``payload`` under ``key``."""
        injector = _FAULT_INJECTOR
        fault = injector.draw_put(key) if injector is not None else None
        if fault == "enospc":
            raise injector.enospc_error(key)
        fab = iofabric.active()
        path = self._path(key)
        fab.makedirs_durable(path.parent)
        # Deliberately no file fsync: the cache is best-effort (an entry
        # lost to a crash is recomputed); atomic rename alone guarantees a
        # reader never sees a torn entry *while the system stays up*, and
        # the integrity check quarantines anything a crash tears.
        fh, tmp = fab.mkstemp(path.parent, prefix=".tmp-", suffix=".json")
        try:
            with fh:
                body = json.dumps(payload, sort_keys=True, separators=(",", ":"))
                if fault == "truncate":
                    body = body[: max(1, len(body) // 2)]
                fh.write(body)
            fab.replace(tmp, path)
        except BaseException:
            try:
                fab.unlink(tmp)
            except OSError:
                pass
            raise
        self.stats.stores += 1
        obs_metrics.counter("repro_cache_stores_total", layer="disk").inc()

    # -- text artifacts ------------------------------------------------------
    #
    # Generated artifacts (Verilog, C models, DOT graphs) are content-
    # addressed text, not JSON payloads; wrapping kilobytes of RTL in a JSON
    # string would double-escape every quote and newline.  They share the
    # same sharding, atomic-rename discipline, and chaos fault injection as
    # JSON entries, with a sha256 trailer line standing in for JSON's
    # implicit parse check: a torn write from a killed process fails the
    # digest check and is quarantined rather than served.

    _TEXT_TRAILER = "// repro-cache-sha256: "

    def get_text(self, key: str) -> Optional[str]:
        """Return the stored text artifact for ``key``, or ``None`` on a miss.

        A corrupt artifact (missing or mismatching integrity trailer) counts
        as a miss and is moved to ``quarantine/``, exactly like a corrupt
        JSON entry.
        """
        path = self._path(key, "txt")
        try:
            stored = path.read_text(encoding="utf-8")
        except FileNotFoundError:
            self.stats.misses += 1
            obs_metrics.counter("repro_cache_misses_total", layer="disk").inc()
            return None
        except (OSError, UnicodeDecodeError):
            self.stats.misses += 1
            obs_metrics.counter("repro_cache_misses_total", layer="disk").inc()
            self._quarantine(path)
            return None
        body, sep, digest = stored.rpartition(self._TEXT_TRAILER)
        if not sep or hashlib.sha256(
            body.encode("utf-8")
        ).hexdigest() != digest.strip():
            self.stats.misses += 1
            obs_metrics.counter("repro_cache_misses_total", layer="disk").inc()
            self._quarantine(path)
            return None
        self.stats.hits += 1
        obs_metrics.counter("repro_cache_hits_total", layer="disk").inc()
        return body

    def put_text(self, key: str, text: str) -> None:
        """Atomically persist the text artifact ``text`` under ``key``."""
        injector = _FAULT_INJECTOR
        fault = injector.draw_put(key) if injector is not None else None
        if fault == "enospc":
            raise injector.enospc_error(key)
        digest = hashlib.sha256(text.encode("utf-8")).hexdigest()
        body = f"{text}{self._TEXT_TRAILER}{digest}\n"
        if fault == "truncate":
            body = body[: max(1, len(body) // 2)]
        fab = iofabric.active()
        path = self._path(key, "txt")
        fab.makedirs_durable(path.parent)
        # Same best-effort discipline as put(): no file fsync, the sha256
        # trailer catches (and quarantines) anything a crash tears.
        fh, tmp = fab.mkstemp(path.parent, prefix=".tmp-", suffix=".txt")
        try:
            with fh:
                fh.write(body)
            fab.replace(tmp, path)
        except BaseException:
            try:
                fab.unlink(tmp)
            except OSError:
                pass
            raise
        self.stats.stores += 1
        obs_metrics.counter("repro_cache_stores_total", layer="disk").inc()

    def _shards(self) -> Iterator[Path]:
        """The two-hex-character shard directories (quarantine excluded)."""
        for shard in self.root.iterdir():
            if (
                shard.is_dir()
                and len(shard.name) == 2
                and all(c in "0123456789abcdef" for c in shard.name)
            ):
                yield shard

    def keys(self) -> Iterator[str]:
        """Iterate over every stored key (filesystem order, not sorted)."""
        for shard in self._shards():
            for entry in shard.glob("*.json"):
                yield entry.stem

    def __len__(self) -> int:
        return sum(1 for _ in self.keys())

    def clear(self) -> int:
        """Remove every live entry, JSON and text artifact alike
        (quarantined ones stay); returns the count."""
        removed = 0
        for shard in list(self._shards()):
            for pattern in ("*.json", "*.txt"):
                for entry in list(shard.glob(pattern)):
                    entry.unlink()
                    removed += 1
            try:
                shard.rmdir()
            except OSError:
                pass
        return removed


# --- process-global active cache -------------------------------------------

_ACTIVE: Optional[DiskCache] = None

# Consulted by DiskCache.put; anything with draw_put(key) / enospc_error(key)
# qualifies (canonically repro.robust.chaos.CacheFaultInjector).  Kept here,
# not on the cache instance, so pool workers can arm it from their
# initializer regardless of which DiskCache object they construct.
_FAULT_INJECTOR: Optional[Any] = None


def install_fault_injector(injector: Optional[Any]) -> Optional[Any]:
    """Arm (or with ``None`` disarm) chaos faults for every cache write.

    Returns the previously installed injector so tests can restore it.
    """
    global _FAULT_INJECTOR
    previous = _FAULT_INJECTOR
    _FAULT_INJECTOR = injector
    return previous


def configure(directory: Optional[os.PathLike]) -> Optional[DiskCache]:
    """Install (or, with ``None``, uninstall) the process-wide disk cache.

    Returns the installed cache so callers can inspect ``.stats``.
    """
    global _ACTIVE
    _ACTIVE = DiskCache(directory) if directory is not None else None
    return _ACTIVE


def active_cache() -> Optional[DiskCache]:
    """The currently installed disk cache, if any."""
    return _ACTIVE


def clear_cache(directory: Optional[os.PathLike] = None) -> int:
    """Clear the given cache directory, or the active one; returns entry count.

    Clearing never uninstalls the cache — subsequent results repopulate it.
    """
    if directory is not None:
        return DiskCache(directory).clear()
    if _ACTIVE is not None:
        return _ACTIVE.clear()
    return 0


# --- MethodResult (de)serialization ----------------------------------------


def encode_method_result(result: Any) -> Dict[str, Any]:
    """JSON-safe dict form of an ``experiments.MethodResult``."""
    payload = dataclasses.asdict(result)
    if payload.get("seed_size") is not None:
        payload["seed_size"] = list(payload["seed_size"])
    return payload


def decode_method_result(payload: Mapping[str, Any]) -> Any:
    """Inverse of :func:`encode_method_result`."""
    from .experiments import MethodResult

    seed_size = payload.get("seed_size")
    return MethodResult(
        method=payload["method"],
        adders=int(payload["adders"]),
        depth=int(payload["depth"]),
        cla_weighted=float(payload["cla_weighted"]),
        seed_size=tuple(seed_size) if seed_size is not None else None,
    )
