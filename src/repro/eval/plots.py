"""ASCII chart rendering for the reproduced figures (no plotting deps).

The paper's figures are bar charts of normalized complexity per example and
wordlength; these helpers render the same series as terminal bar charts so
``python -m repro.eval fig6 --chart`` visually mirrors Figure 6.
"""

from __future__ import annotations

from typing import Dict, List, Sequence

from .experiments import ExperimentResult

__all__ = ["ascii_bar_chart", "figure_chart"]

_FULL = "#"


def ascii_bar_chart(
    labels: Sequence[str],
    values: Sequence[float],
    width: int = 50,
    title: str = "",
    max_value: float = None,
) -> str:
    """Horizontal bar chart; bar length proportional to value."""
    if len(labels) != len(values):
        raise ValueError("labels and values must have the same length")
    if not values:
        return title
    peak = max_value if max_value is not None else max(values)
    peak = max(peak, 1e-12)
    label_width = max(len(label) for label in labels)
    lines: List[str] = []
    if title:
        lines.append(title)
    for label, value in zip(labels, values):
        bar = _FULL * max(0, round(width * value / peak))
        lines.append(f"{label.rjust(label_width)} |{bar} {value:.3f}")
    return "\n".join(lines)


def figure_chart(
    result: ExperimentResult,
    method: str = None,
    baseline: str = None,
    width: int = 50,
) -> str:
    """Render a figure run as per-wordlength bar charts of normalized complexity.

    Mirrors the paper's figure layout: one group per wordlength, one bar per
    example filter, height = complexity normalized to the baseline (1.0 = no
    improvement).
    """
    if not result.rows:
        return result.title
    methods = list(result.rows[0].results)
    if baseline is None:
        baseline = "cse" if "cse" in methods and "mrpf_cse" in methods else "simple"
    if method is None:
        method = "mrpf_cse" if "mrpf_cse" in methods else "mrpf"

    by_wordlength: Dict[int, List] = {}
    for row in result.rows:
        by_wordlength.setdefault(row.wordlength, []).append(row)

    sections: List[str] = [result.title, ""]
    for wordlength in sorted(by_wordlength):
        rows = by_wordlength[wordlength]
        labels = [row.filter_name for row in rows]
        values = [row.normalized(method, baseline) for row in rows]
        sections.append(
            ascii_bar_chart(
                labels,
                values,
                width=width,
                title=f"W = {wordlength}  ({method} / {baseline})",
                max_value=1.0,
            )
        )
        sections.append("")
    return "\n".join(sections).rstrip() + "\n"
