"""Architecture metrics: adders, depth, bit widths, registers.

These are the raw numbers behind every figure in the paper: the multiplier
block's adder count (complexity), its adder depth (speed), the bit widths
each adder must carry (area/power weighting for the CLA cost model), and the
structural register count of the TDF delay line.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence

from .netlist import ShiftAddNetlist

__all__ = ["NetlistStats", "analyze", "node_bitwidths"]


@dataclass(frozen=True)
class NetlistStats:
    """Summary statistics of one multiplier-block netlist."""

    adders: int
    depth: int
    num_outputs: int
    num_zero_outputs: int
    structural_registers: int
    max_node_bits: int
    total_adder_bits: int

    @property
    def adders_per_tap(self) -> float:
        """The paper's Figure-6 y-axis: multiplier adders per filter tap."""
        if self.num_outputs == 0:
            return 0.0
        return self.adders / self.num_outputs


def node_bitwidths(netlist: ShiftAddNetlist, input_bits: int) -> List[int]:
    """Worst-case signed bit width of each node for an ``input_bits`` input.

    A node computing ``value * x`` needs ``bits(|value|) + input_bits`` bits
    (plus the sign handled by two's complement growth).
    """
    widths = []
    for node in netlist.nodes:
        widths.append(abs(node.value).bit_length() + input_bits)
    return widths


def analyze(
    netlist: ShiftAddNetlist,
    tap_names: Sequence[str],
    input_bits: int = 16,
) -> NetlistStats:
    """Compute the full statistics bundle for a filter netlist."""
    outputs = netlist.tap_refs(tap_names)
    zero_outputs = sum(1 for ref in outputs if ref is None)
    widths = node_bitwidths(netlist, input_bits)
    adder_widths = widths[1:]  # node 0 is the input, not an adder
    return NetlistStats(
        adders=netlist.adder_count,
        depth=netlist.max_depth,
        num_outputs=len(outputs),
        num_zero_outputs=zero_outputs,
        structural_registers=max(0, len(outputs) - 1),
        max_node_bits=max(widths) if widths else 0,
        total_adder_bits=sum(adder_widths),
    )
