"""Netlist optimization passes: dead-code elimination, dedup, rebalancing.

Synthesis builds constant multiplications as *linear* digit chains (depth =
adders), which is faithful to the paper's accounting but wasteful in delay:
a k-term chain can be a ceil(log2 k)-deep balanced tree at the same adder
count.  This pass rebuilds a netlist:

* nodes unreachable from any output are dropped (dead-code elimination);
* shared nodes (fanout >= 2, or feeding an output) are materialized, with
  duplicate odd fundamentals merged through the new netlist's table;
* every materialized node's cone of single-use adders is flattened to its
  leaf terms and rebuilt as a balanced adder tree.

Output values are preserved exactly; adder count never increases; depth never
increases and typically shrinks toward the log bound.  All three invariants
are property-tested.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

from ..errors import NetlistError
from ..numrep import odd_normalize
from ..obs import span as obs_span
from .netlist import ShiftAddNetlist
from .nodes import INPUT_ID, Ref

__all__ = ["optimize_netlist", "reachable_nodes"]


def reachable_nodes(netlist: ShiftAddNetlist) -> List[int]:
    """Ids of nodes reachable from the outputs (always includes the input)."""
    alive = {INPUT_ID}
    pending = [
        ref.node for ref in netlist.outputs.values() if ref is not None
    ]
    while pending:
        node_id = pending.pop()
        if node_id in alive:
            continue
        alive.add(node_id)
        node = netlist.node(node_id)
        pending.extend(op.node for op in node.operands)
    return sorted(alive)


def optimize_netlist(
    netlist: ShiftAddNetlist, dedup: bool = True
) -> ShiftAddNetlist:
    """Return an optimized copy of ``netlist`` with identical outputs.

    With ``dedup`` (default) duplicate odd fundamentals are merged, which can
    only reduce adders but may reroute an output through a deeper shared
    node; with ``dedup=False`` the pass is purely structural (dead-code
    elimination + rebalancing) and guarantees depth never increases.
    """
    with obs_span(
        "netlist.optimize", nodes=len(netlist.nodes), dedup=dedup
    ):
        return _optimize_netlist(netlist, dedup)


def _optimize_netlist(netlist: ShiftAddNetlist, dedup: bool) -> ShiftAddNetlist:
    alive = set(reachable_nodes(netlist))

    # Fanout among live nodes + output references decides what materializes.
    fanout: Dict[int, int] = {node_id: 0 for node_id in alive}
    for node_id in alive:
        for op in netlist.node(node_id).operands:
            fanout[op.node] += 1
    output_nodes = {
        ref.node for ref in netlist.outputs.values() if ref is not None
    }
    shared = {
        node_id
        for node_id in alive
        if node_id == INPUT_ID
        or fanout[node_id] >= 2
        or node_id in output_nodes
    }

    rebuilt = ShiftAddNetlist()
    new_ref: Dict[int, Ref] = {INPUT_ID: rebuilt.input}
    for node_id in sorted(alive):
        if node_id not in shared or node_id == INPUT_ID:
            continue
        leaves = _collect_leaves(netlist, node_id, shared)
        value = netlist.value_of(node_id)
        if dedup:
            existing = _lookup(rebuilt, value)
            if existing is not None:
                new_ref[node_id] = existing
                continue
        new_ref[node_id] = _build_balanced(rebuilt, leaves, new_ref, value)

    for name, ref in netlist.outputs.items():
        if ref is None:
            rebuilt.mark_output(name, None)
            continue
        base = new_ref[ref.node]
        rebuilt.mark_output(
            name,
            Ref(node=base.node, shift=base.shift + ref.shift,
                sign=base.sign * ref.sign),
        )
    rebuilt.validate()
    for name, value in netlist.output_values().items():
        if rebuilt.output_values()[name] != value:
            raise NetlistError(
                f"optimization changed output {name!r}: "
                f"{rebuilt.output_values()[name]} != {value}"
            )
    return rebuilt


def _collect_leaves(
    netlist: ShiftAddNetlist, root_id: int, shared: set
) -> List[Ref]:
    """Flatten ``root_id``'s cone down to input/shared-node terms.

    The root itself is expanded unconditionally (it is the node being
    rebuilt); recursion stops at the input and at other shared nodes, whose
    rebuilt refs the balanced-tree builder substitutes later.
    """
    root = netlist.node(root_id)
    stack = [Ref(node=op.node, shift=op.shift, sign=op.sign)
             for op in root.operands]
    leaves: List[Ref] = []
    while stack:
        current = stack.pop()
        current_node = netlist.node(current.node)
        if current_node.is_input or current.node in shared:
            leaves.append(current)
            continue
        for op in current_node.operands:
            stack.append(
                Ref(
                    node=op.node,
                    shift=op.shift + current.shift,
                    sign=op.sign * current.sign,
                )
            )
    return leaves


def _lookup(rebuilt: ShiftAddNetlist, value: int) -> Optional[Ref]:
    """Find ``value`` among the rebuilt netlist's odd fundamentals."""
    if value == 0:
        return None
    sign = 1 if value > 0 else -1
    odd, shift = odd_normalize(abs(value))
    node_id = rebuilt.lookup_fundamental(odd)
    if node_id is None:
        return None
    return Ref(node=node_id, shift=shift, sign=sign)


def _build_balanced(
    rebuilt: ShiftAddNetlist,
    leaves: Sequence[Ref],
    new_ref: Dict[int, Ref],
    expected_value: int,
) -> Ref:
    """Sum the leaf terms with a balanced binary adder tree."""
    terms: List[Ref] = []
    for leaf in leaves:
        base = new_ref[leaf.node]
        terms.append(
            Ref(node=base.node, shift=base.shift + leaf.shift,
                sign=base.sign * leaf.sign)
        )
    # Depth-aware (Huffman-style) combining: always merge the two shallowest
    # terms, so a deep shared leaf joins the tree last and the final depth is
    # minimal for the given leaf depths.
    import heapq

    depths = rebuilt.depths()
    heap: List[Tuple[int, int, Ref]] = []
    for order, term in enumerate(
        sorted(terms, key=lambda r: (r.node, r.shift, r.sign))
    ):
        heapq.heappush(heap, (depths[term.node], order, term))
    counter = len(heap)
    while len(heap) > 1:
        depth_a, _, a = heapq.heappop(heap)
        depth_b, _, b = heapq.heappop(heap)
        combined = rebuilt.add(a, b)
        counter += 1
        heapq.heappush(heap, (max(depth_a, depth_b) + 1, counter, combined))
    result = heap[0][2]
    if rebuilt.ref_value(result) != expected_value:
        raise NetlistError(
            f"rebalanced cone computes {rebuilt.ref_value(result)}, "
            f"expected {expected_value}"
        )
    return result
