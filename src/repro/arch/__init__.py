"""Architecture IR: shift-add netlists, simulation, metrics, RTL export."""

from .metrics import NetlistStats, analyze, node_bitwidths
from .netlist import ShiftAddNetlist
from .optimize import optimize_netlist, reachable_nodes
from .scheduler import Schedule, alap_schedule, asap_schedule, list_schedule
from .cmodel import emit_c_model
from .dot import to_dot
from .nodes import INPUT_ID, Node, Ref
from .simulate import (
    evaluate_nodes,
    evaluate_ref,
    simulate_tdf_filter,
    tap_products,
    verify_against_convolution,
)
from .testbench import emit_testbench
from .verilog import emit_verilog, output_width

__all__ = [
    "INPUT_ID",
    "NetlistStats",
    "Node",
    "Ref",
    "Schedule",
    "ShiftAddNetlist",
    "alap_schedule",
    "analyze",
    "asap_schedule",
    "evaluate_nodes",
    "evaluate_ref",
    "list_schedule",
    "node_bitwidths",
    "optimize_netlist",
    "reachable_nodes",
    "simulate_tdf_filter",
    "tap_products",
    "emit_c_model",
    "emit_testbench",
    "emit_verilog",
    "output_width",
    "to_dot",
    "verify_against_convolution",
]
