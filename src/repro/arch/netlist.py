"""Shift-add netlist: builder, fundamental reuse, constant chains, validation.

The netlist is the lowered form of every architecture in this library — the
simple per-tap implementation, CSE networks, and MRPF's SEED + overhead
structure all become instances of :class:`ShiftAddNetlist`.  That shared IR is
what makes the complexity comparisons apples-to-apples and lets one simulator
and one RTL emitter serve every method.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

from ..errors import NetlistError
from ..numrep import Representation, encode, odd_normalize
from .nodes import INPUT_ID, Node, Ref

__all__ = ["ShiftAddNetlist"]


class ShiftAddNetlist:
    """A growing shift-add DAG with named tap outputs.

    Nodes are append-only; ids are dense and topologically ordered by
    construction.  A *fundamental table* maps each odd positive value already
    computed somewhere in the DAG to its node, so repeated constants are
    reused instead of rebuilt — the hardware sharing that all the paper's
    methods exploit.
    """

    def __init__(self) -> None:
        self._nodes: List[Node] = [Node(id=INPUT_ID, value=1)]
        self._fundamentals: Dict[int, int] = {1: INPUT_ID}
        self._outputs: Dict[str, Optional[Ref]] = {}

    # ------------------------------------------------------------------ nodes

    @property
    def nodes(self) -> Tuple[Node, ...]:
        """All nodes in id (topological) order."""
        return tuple(self._nodes)

    @property
    def input(self) -> Ref:
        """Reference to the input node (fundamental 1)."""
        return Ref(node=INPUT_ID)

    def node(self, node_id: int) -> Node:
        """Look up a node by id."""
        try:
            return self._nodes[node_id]
        except IndexError:
            raise NetlistError(f"no node with id {node_id}") from None

    def value_of(self, node_id: int) -> int:
        """Declared fundamental of the node with this id."""
        return self.node(node_id).value

    def ref_value(self, ref: Ref) -> int:
        """The integer multiple of x this reference carries."""
        return ref.value(self.value_of(ref.node))

    @property
    def adder_count(self) -> int:
        """Number of adder/subtractor nodes (the paper's complexity metric)."""
        return len(self._nodes) - 1

    def add(self, a: Ref, b: Ref, label: str = "") -> Ref:
        """Append the adder ``a + b`` (signs/shifts inside the refs).

        Returns a plain reference to the new node.  Raises if the result
        would be zero (degenerate hardware).
        """
        value = self.ref_value(a) + self.ref_value(b)
        node = Node(id=len(self._nodes), value=value, a=a, b=b, label=label)
        self._nodes.append(node)
        odd, shift = odd_normalize(abs(value))
        # Remember the cheapest place this odd fundamental exists: an exact
        # (unshifted, positive) node wins over wiring arithmetic elsewhere.
        if value == odd and odd not in self._fundamentals:
            self._fundamentals[odd] = node.id
        return Ref(node=node.id)

    # ------------------------------------------------------- constant building

    def lookup_fundamental(self, odd_value: int) -> Optional[int]:
        """Node id computing exactly ``odd_value`` (odd, positive), if any."""
        return self._fundamentals.get(odd_value)

    def ensure_constant(
        self,
        value: int,
        representation: Representation = Representation.CSD,
        label: str = "",
    ) -> Ref:
        """Return a ref carrying ``value * x``, building a digit chain if needed.

        The constant is normalized to its odd positive fundamental first; the
        surrounding shift and sign become free wiring on the returned ref.
        An existing node for the fundamental is reused.
        """
        if value == 0:
            raise NetlistError("cannot materialize the constant 0")
        sign = 1 if value > 0 else -1
        odd, shift = odd_normalize(abs(value))
        existing = self._fundamentals.get(odd)
        if existing is None:
            node_ref = self._build_digit_chain(odd, representation, label)
            existing = node_ref.node
        return Ref(node=existing, shift=shift, sign=sign)

    def _build_digit_chain(
        self, odd_value: int, representation: Representation, label: str
    ) -> Ref:
        """Left-to-right accumulation of the signed digits of ``odd_value``."""
        digits = encode(odd_value, representation)
        terms = digits.terms  # ascending (position, digit)
        if not terms:
            raise NetlistError("empty digit string for a nonzero constant")
        acc = Ref(node=INPUT_ID, shift=terms[0][0], sign=terms[0][1])
        for position, digit in terms[1:]:
            acc = self.add(
                acc,
                Ref(node=INPUT_ID, shift=position, sign=digit),
                label=label,
            )
        if self.ref_value(acc) != odd_value:
            raise NetlistError(
                f"digit chain built {self.ref_value(acc)}, wanted {odd_value}"
            )
        return acc

    # ---------------------------------------------------------------- outputs

    def mark_output(self, name: str, ref: Optional[Ref]) -> None:
        """Declare a named tap output; ``None`` denotes a zero tap."""
        if name in self._outputs:
            raise NetlistError(f"output {name!r} already declared")
        self._outputs[name] = ref

    @property
    def outputs(self) -> Dict[str, Optional[Ref]]:
        """Copy of the named-output map."""
        return dict(self._outputs)

    def output_values(self) -> Dict[str, int]:
        """Integer coefficient carried by each named output (0 for zero taps)."""
        return {
            name: (0 if ref is None else self.ref_value(ref))
            for name, ref in self._outputs.items()
        }

    def tap_refs(self, names: Sequence[str]) -> List[Optional[Ref]]:
        """Outputs in the given order (for tap-ordered simulation)."""
        missing = [n for n in names if n not in self._outputs]
        if missing:
            raise NetlistError(f"unknown outputs {missing!r}")
        return [self._outputs[n] for n in names]

    # ------------------------------------------------------------- validation

    def validate(self, expected_outputs: Optional[Sequence[str]] = None) -> None:
        """Total structural + functional self-check of the whole DAG.

        Verifies topological id ordering, operand ranges, that every node's
        declared fundamental matches what its operands compute, that every
        named output (and every fundamental-table entry) resolves inside the
        DAG to the value it claims, and — when ``expected_outputs`` is given
        — that every one of those names has actually been marked.  A netlist
        that passes cannot make :meth:`outputs`, :meth:`tap_refs`, or the
        simulator trip over a dangling reference later.
        """
        if not self._nodes or not self._nodes[0].is_input:
            raise NetlistError("node 0 must be the input")
        for expected_id, node in enumerate(self._nodes):
            if node.id != expected_id:
                raise NetlistError(f"node ids not dense at {expected_id}")
            node.check_value(self.value_of)
        for name, ref in self._outputs.items():
            if ref is not None and not 0 <= ref.node < len(self._nodes):
                raise NetlistError(f"output {name!r} references unknown node")
        for odd_value, node_id in self._fundamentals.items():
            if not 0 <= node_id < len(self._nodes):
                raise NetlistError(
                    f"fundamental {odd_value} maps to unknown node {node_id}"
                )
            if self._nodes[node_id].value != odd_value:
                raise NetlistError(
                    f"fundamental table files node {node_id} under "
                    f"{odd_value} but it computes {self._nodes[node_id].value}"
                )
        if expected_outputs is not None:
            missing = [n for n in expected_outputs if n not in self._outputs]
            if missing:
                raise NetlistError(
                    f"expected outputs {missing!r} were never marked"
                )

    # ---------------------------------------------------------------- queries

    def depth_of(self, node_id: int) -> int:
        """Adder depth of a node (input = 0)."""
        depths = self.depths()
        return depths[node_id]

    def depths(self) -> List[int]:
        """Adder depth of every node, computed in one topological pass."""
        depths = [0] * len(self._nodes)
        for node in self._nodes[1:]:
            depths[node.id] = 1 + max(depths[node.a.node], depths[node.b.node])
        return depths

    @property
    def max_depth(self) -> int:
        """Critical adder depth over the outputs (0 if no adders used)."""
        depths = self.depths()
        used = [
            depths[ref.node] for ref in self._outputs.values() if ref is not None
        ]
        if not used:
            return max(depths, default=0)
        return max(used)

    def fundamentals(self) -> Dict[int, int]:
        """Copy of the odd-fundamental table (value -> node id)."""
        return dict(self._fundamentals)

    def __len__(self) -> int:
        return len(self._nodes)
