"""Shift-add DAG node types — the architecture IR.

A multiplierless filter's multiplier block is a DAG whose single input is the
data sample ``x(n)`` and whose every internal node is one two-input
adder/subtractor fed by shifted versions of earlier nodes:

    node = a_sign * (a << a_shift)  +  b_sign * (b << b_shift)

Because the network is linear in ``x``, each node computes ``value * x`` for a
fixed integer *fundamental* ``value`` — stored on the node and validated
against its operands.  References into the DAG are ``(node, shift, sign)``
triples (:class:`Ref`), capturing that shifts and sign flips are free wiring.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

from ..errors import NetlistError

__all__ = ["Ref", "Node", "INPUT_ID"]

INPUT_ID = 0


@dataclass(frozen=True)
class Ref:
    """A wired view of a node: ``sign * (node_value << shift)``."""

    node: int
    shift: int = 0
    sign: int = 1

    def __post_init__(self) -> None:
        if self.shift < 0:
            raise NetlistError(f"negative wiring shift {self.shift}")
        if self.sign not in (-1, 1):
            raise NetlistError(f"wiring sign must be ±1, got {self.sign}")

    def value(self, node_value: int) -> int:
        """The integer this reference contributes, given its node's value."""
        return self.sign * (node_value << self.shift)

    def shifted(self, extra: int) -> "Ref":
        """Same reference, shifted left by ``extra`` more positions."""
        return Ref(node=self.node, shift=self.shift + extra, sign=self.sign)

    def negated(self) -> "Ref":
        """Same reference with the sign flipped."""
        return Ref(node=self.node, shift=self.shift, sign=-self.sign)


@dataclass(frozen=True)
class Node:
    """One adder/subtractor (or the input) of the shift-add DAG.

    The input node has ``a is None and b is None`` and fundamental 1.  Every
    other node combines two earlier refs; structural validity (operand ids
    smaller than own id, fundamental consistency) is enforced on creation.
    """

    id: int
    value: int
    a: Optional[Ref] = None
    b: Optional[Ref] = None
    label: str = ""

    def __post_init__(self) -> None:
        if self.id == INPUT_ID:
            if self.a is not None or self.b is not None or self.value != 1:
                raise NetlistError("input node must have value 1 and no operands")
            return
        if self.a is None or self.b is None:
            raise NetlistError(f"node {self.id} must have two operands")
        for operand in (self.a, self.b):
            if operand.node >= self.id:
                raise NetlistError(
                    f"node {self.id} references non-earlier node {operand.node}"
                )
        if self.value == 0:
            raise NetlistError(f"node {self.id} computes the useless value 0")

    @property
    def is_input(self) -> bool:
        """True for the input node (id 0)."""
        return self.id == INPUT_ID

    @property
    def operands(self) -> Tuple[Ref, ...]:
        """The two operand refs (empty for the input)."""
        if self.is_input:
            return ()
        return (self.a, self.b)

    def check_value(self, value_of: "callable") -> None:
        """Verify the declared fundamental against the operand values."""
        if self.is_input:
            return
        computed = self.a.value(value_of(self.a.node)) + self.b.value(
            value_of(self.b.node)
        )
        if computed != self.value:
            raise NetlistError(
                f"node {self.id} declares {self.value} but computes {computed}"
            )
