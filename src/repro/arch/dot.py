"""Graphviz export of shift-add netlists, for inspection and documentation."""

from __future__ import annotations

from typing import Optional, Sequence

from .netlist import ShiftAddNetlist
from .nodes import Ref

__all__ = ["to_dot"]


def _edge_label(ref: Ref) -> str:
    parts = []
    if ref.shift:
        parts.append(f"<<{ref.shift}")
    if ref.sign < 0:
        parts.append("-")
    return " ".join(parts)


def to_dot(
    netlist: ShiftAddNetlist,
    tap_names: Optional[Sequence[str]] = None,
    graph_name: str = "shift_add",
) -> str:
    """Render the DAG as Graphviz dot text (inputs at top, taps at bottom)."""
    lines = [f"digraph {graph_name} {{", "    rankdir=TB;"]
    lines.append('    n0 [label="x(n)", shape=invtriangle];')
    for node in netlist.nodes[1:]:
        label = f"n{node.id}\\n={node.value}"
        if node.label:
            label += f"\\n{node.label}"
        lines.append(f'    n{node.id} [label="{label}", shape=box];')
        for ref in node.operands:
            edge_label = _edge_label(ref)
            attr = f' [label="{edge_label}"]' if edge_label else ""
            lines.append(f"    n{ref.node} -> n{node.id}{attr};")
    names = tap_names if tap_names is not None else sorted(netlist.outputs)
    for name in names:
        ref = netlist.outputs[name]
        if ref is None:
            continue
        out_id = f"out_{name}"
        lines.append(f'    {out_id} [label="{name}", shape=ellipse];')
        edge_label = _edge_label(ref)
        attr = f' [label="{edge_label}"]' if edge_label else ""
        lines.append(f"    n{ref.node} -> {out_id}{attr};")
    lines.append("}")
    return "\n".join(lines) + "\n"
