"""Resource-constrained scheduling of shift-add netlists.

A fully parallel MRPF spends one physical adder per netlist node; area-
constrained designs instead *fold* the computation onto ``k`` adders over
multiple cycles (Parhi, the paper's reference [7]).  This module provides the
classical scheduling trio:

* **ASAP** — every operation as early as dependencies allow (length = adder
  depth, the unconstrained lower bound);
* **ALAP** — as late as a target latency allows (slack = ALAP - ASAP);
* **list scheduling** — minimum-slack-first priority under a ``k``-adder
  budget, the standard high-level-synthesis heuristic.

Schedules are validated structurally (dependencies, resource budget) and
support the folding trade-off study in ``examples/`` and the scheduler tests.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from ..errors import SynthesisError
from .netlist import ShiftAddNetlist
from .nodes import INPUT_ID

__all__ = ["Schedule", "asap_schedule", "alap_schedule", "list_schedule"]


@dataclass(frozen=True)
class Schedule:
    """Cycle assignment for every adder node (input pinned to cycle 0)."""

    cycle_of_node: Tuple[int, ...]
    num_adders: Optional[int]  # None = unconstrained

    @property
    def makespan(self) -> int:
        """Total cycles (latest adder cycle; 0 for an adder-free netlist)."""
        return max(self.cycle_of_node, default=0)

    def adders_busy(self, cycle: int) -> int:
        """How many physical adders this cycle uses (node 0 is the input)."""
        return sum(
            1 for node_id, c in enumerate(self.cycle_of_node)
            if node_id != INPUT_ID and c == cycle
        )

    def validate(self, netlist: ShiftAddNetlist) -> None:
        """Check dependency and resource feasibility against the netlist."""
        if len(self.cycle_of_node) != len(netlist):
            raise SynthesisError("schedule length != netlist length")
        if self.cycle_of_node[INPUT_ID] != 0:
            raise SynthesisError("input must be scheduled at cycle 0")
        for node in netlist.nodes[1:]:
            cycle = self.cycle_of_node[node.id]
            if cycle < 1:
                raise SynthesisError(f"adder {node.id} scheduled before cycle 1")
            for op in node.operands:
                if op.node != INPUT_ID and self.cycle_of_node[op.node] >= cycle:
                    raise SynthesisError(
                        f"node {node.id} (cycle {cycle}) depends on node "
                        f"{op.node} (cycle {self.cycle_of_node[op.node]})"
                    )
        if self.num_adders is not None:
            for cycle in range(1, self.makespan + 1):
                busy = self.adders_busy(cycle)
                if busy > self.num_adders:
                    raise SynthesisError(
                        f"cycle {cycle} uses {busy} adders, budget {self.num_adders}"
                    )


def asap_schedule(netlist: ShiftAddNetlist) -> Schedule:
    """Unconstrained earliest schedule; makespan == adder depth."""
    cycles = [0] * len(netlist)
    for node in netlist.nodes[1:]:
        cycles[node.id] = 1 + max(
            cycles[node.a.node], cycles[node.b.node]
        )
    return Schedule(cycle_of_node=tuple(cycles), num_adders=None)


def alap_schedule(
    netlist: ShiftAddNetlist, latency: Optional[int] = None
) -> Schedule:
    """Latest schedule meeting ``latency`` (default: the ASAP makespan)."""
    asap = asap_schedule(netlist)
    if latency is None:
        latency = asap.makespan
    if latency < asap.makespan:
        raise SynthesisError(
            f"latency {latency} below the critical path {asap.makespan}"
        )
    cycles = [latency] * len(netlist)
    cycles[INPUT_ID] = 0
    consumers: Dict[int, List[int]] = {node.id: [] for node in netlist.nodes}
    for node in netlist.nodes[1:]:
        consumers[node.a.node].append(node.id)
        consumers[node.b.node].append(node.id)
    for node in reversed(netlist.nodes[1:]):
        following = [cycles[c] for c in consumers[node.id]]
        cycles[node.id] = min(following) - 1 if following else latency
    return Schedule(cycle_of_node=tuple(cycles), num_adders=None)


def list_schedule(netlist: ShiftAddNetlist, num_adders: int) -> Schedule:
    """Minimum-slack-first list scheduling under a ``num_adders`` budget."""
    if num_adders < 1:
        raise SynthesisError(f"need at least one adder, got {num_adders}")
    asap = asap_schedule(netlist)
    alap = alap_schedule(netlist)
    slack = [
        alap.cycle_of_node[i] - asap.cycle_of_node[i]
        for i in range(len(netlist))
    ]

    cycles = [0] * len(netlist)
    scheduled = {INPUT_ID}
    pending = [node.id for node in netlist.nodes[1:]]
    usage: Dict[int, int] = {}
    current_cycle = 1
    while pending:
        ready = [
            node_id for node_id in pending
            if all(
                op.node in scheduled and
                (op.node == INPUT_ID or cycles[op.node] < current_cycle)
                for op in netlist.node(node_id).operands
            )
        ]
        ready.sort(key=lambda node_id: (slack[node_id], node_id))
        placed_any = False
        for node_id in ready:
            if usage.get(current_cycle, 0) >= num_adders:
                break
            cycles[node_id] = current_cycle
            usage[current_cycle] = usage.get(current_cycle, 0) + 1
            scheduled.add(node_id)
            pending.remove(node_id)
            placed_any = True
        current_cycle += 1
        if not placed_any and not ready and current_cycle > 4 * len(netlist) + 4:
            raise SynthesisError("list scheduler failed to make progress")
    schedule = Schedule(cycle_of_node=tuple(cycles), num_adders=num_adders)
    schedule.validate(netlist)
    return schedule
