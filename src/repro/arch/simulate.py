"""Bit-accurate simulation of shift-add netlists and the filters built on them.

Simulation is *exact*: every intermediate value lives in an unbounded Python
``int``, so there is no rounding, no wrap-around, and no saturation anywhere
in these functions — an MRPF architecture can be checked for functional
equivalence against plain convolution by the quantized coefficients, the
strongest correctness statement available for an architectural
transformation.  The flip side is that exactness here says *nothing* about
finite registers: a netlist that passes these checks can still overflow in
hardware if the RTL declares too few bits.  Finite-wordlength semantics
(wrap/saturate/error modes, per-site overflow attribution, minimal safe
widths) live in :mod:`repro.verify.fixedpoint`, which layers them over the
same netlist walk; :func:`verify_against_convolution` bridges the two via
its optional ``wordlength`` argument.

Two levels:

* node level — evaluate every adder from its operand terms for one input
  sample (NOT via the ``value * x`` shortcut), optionally cross-checking
  linearity against the declared fundamentals;
* filter level — feed the tap products into a cycle-accurate transposed
  direct form register chain, with optional extra pipeline latency.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

from ..errors import SimulationError
from .netlist import ShiftAddNetlist
from .nodes import Ref

__all__ = [
    "evaluate_nodes",
    "evaluate_ref",
    "tap_products",
    "simulate_tdf_filter",
    "verify_against_convolution",
]


def evaluate_nodes(
    netlist: ShiftAddNetlist, sample: int, check_linearity: bool = False
) -> List[int]:
    """Evaluate every node's output for one input ``sample``.

    Adds shifted operand terms exactly as the hardware would.  With
    ``check_linearity`` each output is compared against ``value * sample``
    (they must match — the network is linear by construction) and a
    :class:`SimulationError` is raised on divergence.
    """
    outputs: List[int] = [0] * len(netlist)
    outputs[0] = sample
    for node in netlist.nodes[1:]:
        result = node.a.value(outputs[node.a.node]) + node.b.value(
            outputs[node.b.node]
        )
        outputs[node.id] = result
        if check_linearity and result != node.value * sample:
            raise SimulationError(
                f"node {node.id}: computed {result}, "
                f"expected {node.value} * {sample}"
            )
    return outputs


def evaluate_ref(
    netlist: ShiftAddNetlist, ref: Optional[Ref], node_outputs: Sequence[int]
) -> int:
    """Output carried by a reference given precomputed node outputs."""
    if ref is None:
        return 0
    return ref.value(node_outputs[ref.node])


def tap_products(
    netlist: ShiftAddNetlist,
    tap_names: Sequence[str],
    sample: int,
    check_linearity: bool = False,
) -> List[int]:
    """All tap products ``c_i * sample`` for one input sample, in tap order."""
    outputs = evaluate_nodes(netlist, sample, check_linearity)
    return [
        evaluate_ref(netlist, ref, outputs)
        for ref in netlist.tap_refs(tap_names)
    ]


def simulate_tdf_filter(
    netlist: ShiftAddNetlist,
    tap_names: Sequence[str],
    samples: Sequence[int],
    pipeline_latency: int = 0,
    check_linearity: bool = False,
) -> List[int]:
    """Cycle-accurate TDF filter run over an input block.

    Each cycle forms every tap product of the current sample through the
    shift-add network and folds it into the TDF register chain.  A nonzero
    ``pipeline_latency`` models registers inserted in the multiplier block:
    products reach the accumulation chain that many cycles late, delaying the
    whole response (the output stream is preceded by that many zeros).
    """
    if pipeline_latency < 0:
        raise SimulationError("pipeline latency cannot be negative")
    num_taps = len(tap_names)
    if num_taps == 0:
        raise SimulationError("a filter needs at least one tap output")
    registers = [0] * (num_taps - 1)
    product_delay: List[List[int]] = []
    outputs: List[int] = []
    for sample in samples:
        products = tap_products(netlist, tap_names, sample, check_linearity)
        product_delay.append(products)
        if len(product_delay) <= pipeline_latency:
            outputs.append(0)
            continue
        current = product_delay.pop(0)
        y = current[0] + (registers[0] if registers else 0)
        for k in range(len(registers)):
            incoming = registers[k + 1] if k + 1 < len(registers) else 0
            registers[k] = current[k + 1] + incoming
        outputs.append(y)
    return outputs


def verify_against_convolution(
    netlist: ShiftAddNetlist,
    tap_names: Sequence[str],
    coefficients: Sequence[int],
    samples: Sequence[int],
    wordlength: Optional[int] = None,
) -> None:
    """Assert the netlist filter equals direct convolution by ``coefficients``.

    Raises :class:`SimulationError` with the first mismatching cycle.  This
    is the end-to-end functional check run by the integration tests for every
    synthesis method.

    By default the comparison is exact (unbounded integers).  Passing a
    ``wordlength`` additionally re-runs the stimulus through the
    finite-wordlength simulator at that input width with overflow as an
    error — so the same call also proves the design's exported register
    widths never overflow on this stimulus
    (:class:`~repro.errors.OverflowViolation`, a ``SimulationError``
    subclass, names the exact site and cycle otherwise).
    """
    declared = netlist.output_values()
    for name, coefficient in zip(tap_names, coefficients):
        if declared[name] != coefficient:
            raise SimulationError(
                f"output {name!r} carries {declared[name]}, "
                f"expected coefficient {coefficient}"
            )
    simulated = simulate_tdf_filter(netlist, tap_names, samples)
    reference = _convolve_exact(coefficients, samples)
    for cycle, (got, want) in enumerate(zip(simulated, reference)):
        if got != want:
            raise SimulationError(
                f"cycle {cycle}: netlist produced {got}, convolution {want}"
            )
    if wordlength is not None:
        # Imported lazily: repro.verify builds on this module.
        from ..verify.fixedpoint import simulate_tdf_fixed

        simulate_tdf_fixed(
            netlist, tap_names, samples,
            input_bits=wordlength, overflow="error",
        )


def _convolve_exact(coefficients: Sequence[int], samples: Sequence[int]) -> List[int]:
    """Exact integer convolution, same-length output."""
    out = []
    for n in range(len(samples)):
        acc = 0
        for i, c in enumerate(coefficients):
            if n - i < 0:
                break
            acc += c * samples[n - i]
        out.append(acc)
    return out
