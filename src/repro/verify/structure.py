"""Structural invariant auditor for shift-add netlists.

:meth:`~repro.arch.netlist.ShiftAddNetlist.validate` is a *builder-side*
self-check: it trusts the netlist's own accessors and runs while the DAG is
being grown.  This module is the *verifier-side* counterpart — a standalone
audit that reads the raw node/output/fundamental state, assumes nothing the
constructors enforce (mutation testing deliberately bypasses them via
``object.__setattr__``), and proves every structural invariant from first
principles:

* the DAG is acyclic and ids are dense and topologically ordered;
* every operand reference is well-formed (in-range node, non-negative
  shift, sign ±1) and every declared fundamental equals what the operands
  actually compute;
* the odd-fundamental table indexes only nodes that compute exactly the
  odd positive value they are filed under;
* every named output resolves to a live node (or an explicit zero tap),
  and fanout/orphan accounting is exact;
* the audited adder count equals the netlist's reported count (and the
  caller's expectation, when given);
* the critical adder depth over the outputs honors the depth bound
  (Table 1's depth-3 constraint).

Violations raise the typed :class:`~repro.errors.VerificationError`
taxonomy; the happy path returns a :class:`StructureReport` with the
audited numbers so callers can cross-check them against reported metrics.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from ..arch.netlist import ShiftAddNetlist
from ..arch.nodes import INPUT_ID
from ..errors import (
    AcyclicityViolation,
    AdderCountMismatch,
    DanglingRefViolation,
    DepthViolation,
    FundamentalViolation,
    StructureViolation,
)

__all__ = ["StructureReport", "audit_structure"]


@dataclass(frozen=True)
class StructureReport:
    """The audited facts of one netlist (all recomputed, none trusted)."""

    num_nodes: int
    num_adders: int
    max_output_depth: int
    fanout: Tuple[int, ...]
    orphans: Tuple[int, ...]
    num_outputs: int
    num_zero_outputs: int
    fundamentals_checked: int


def _check_ref(ref, node_id: int, what: str, limit: int) -> None:
    """Well-formedness of one reference, reading raw attributes only."""
    if not isinstance(ref.node, int) or not 0 <= ref.node < limit:
        raise DanglingRefViolation(
            f"{what} references node {ref.node!r} outside the DAG "
            f"(valid ids 0..{limit - 1})"
        )
    if node_id >= 0 and ref.node >= node_id:
        raise AcyclicityViolation(
            f"{what} references node {ref.node}, which is not earlier than "
            f"its own node {node_id} — the DAG ordering is broken"
        )
    if not isinstance(ref.shift, int) or ref.shift < 0:
        raise StructureViolation(f"{what} carries invalid shift {ref.shift!r}")
    if ref.sign not in (-1, 1):
        raise StructureViolation(f"{what} carries invalid sign {ref.sign!r}")


def audit_structure(
    netlist: ShiftAddNetlist,
    tap_names: Optional[Sequence[str]] = None,
    depth_limit: Optional[int] = None,
    expected_adder_count: Optional[int] = None,
) -> StructureReport:
    """Audit every structural invariant of ``netlist``; return the facts.

    ``tap_names`` (when given) must all be marked outputs — a netlist with
    an unmarked tap is a wiring bug the simulator would only hit at run
    time.  ``depth_limit`` enforces the architecture's declared adder-depth
    bound over the *output-reachable* DAG.  ``expected_adder_count`` is the
    count a report claims (e.g. ``MrpfArchitecture.adder_count``); the
    audit recounts and refuses a mismatch.
    """
    nodes = netlist.nodes
    if not nodes:
        raise StructureViolation("netlist has no nodes at all")

    # -- node table: dense ids, topological operands, exact fundamentals --
    head = nodes[0]
    if head.id != INPUT_ID or head.a is not None or head.b is not None:
        raise StructureViolation("node 0 must be the operand-less input node")
    if head.value != 1:
        raise StructureViolation(
            f"input node must carry fundamental 1, found {head.value!r}"
        )
    computed: List[int] = [0] * len(nodes)
    computed[0] = 1
    audited_adders = 0
    for expected_id, node in enumerate(nodes):
        if node.id != expected_id:
            raise StructureViolation(
                f"node ids are not dense: position {expected_id} holds "
                f"id {node.id}"
            )
        if expected_id == 0:
            continue
        if node.a is None or node.b is None:
            raise StructureViolation(f"adder node {node.id} lacks an operand")
        _check_ref(node.a, node.id, f"node {node.id} operand a", len(nodes))
        _check_ref(node.b, node.id, f"node {node.id} operand b", len(nodes))
        value = node.a.value(computed[node.a.node]) + node.b.value(
            computed[node.b.node]
        )
        if value != node.value:
            raise StructureViolation(
                f"node {node.id} declares fundamental {node.value} but its "
                f"operands compute {value}"
            )
        if value == 0:
            raise StructureViolation(
                f"node {node.id} computes the degenerate value 0"
            )
        computed[node.id] = value
        audited_adders += 1

    # -- reported vs audited adder count --
    if netlist.adder_count != audited_adders:
        raise AdderCountMismatch(
            f"netlist reports {netlist.adder_count} adders but the audit "
            f"counted {audited_adders}"
        )
    if expected_adder_count is not None and expected_adder_count != audited_adders:
        raise AdderCountMismatch(
            f"caller expected {expected_adder_count} adders but the audit "
            f"counted {audited_adders}"
        )

    # -- fundamental table: every entry odd, positive, exactly computed --
    fundamentals: Dict[int, int] = netlist.fundamentals()
    for odd_value, node_id in fundamentals.items():
        if not isinstance(node_id, int) or not 0 <= node_id < len(nodes):
            raise FundamentalViolation(
                f"fundamental {odd_value} maps to nonexistent node {node_id!r}"
            )
        if not isinstance(odd_value, int) or odd_value <= 0 or odd_value % 2 == 0:
            raise FundamentalViolation(
                f"fundamental table key {odd_value!r} is not an odd positive "
                "integer"
            )
        if computed[node_id] != odd_value:
            raise FundamentalViolation(
                f"fundamental table files node {node_id} under {odd_value} "
                f"but the node computes {computed[node_id]}"
            )

    # -- outputs: every ref live, every required tap marked --
    outputs = netlist.outputs
    if tap_names is not None:
        missing = [name for name in tap_names if name not in outputs]
        if missing:
            raise DanglingRefViolation(
                f"required tap outputs {missing!r} were never marked"
            )
    num_zero = 0
    for name, ref in outputs.items():
        if ref is None:
            num_zero += 1
            continue
        _check_ref(ref, -1, f"output {name!r}", len(nodes))

    # -- fanout / orphan accounting (reverse reachability from outputs) --
    fanout = [0] * len(nodes)
    for node in nodes[1:]:
        fanout[node.a.node] += 1
        fanout[node.b.node] += 1
    live = [False] * len(nodes)
    stack = [ref.node for ref in outputs.values() if ref is not None]
    for root in stack:
        fanout[root] += 1
    while stack:
        node_id = stack.pop()
        if live[node_id]:
            continue
        live[node_id] = True
        node = nodes[node_id]
        if node.a is not None:
            stack.append(node.a.node)
        if node.b is not None:
            stack.append(node.b.node)
    orphans = tuple(node.id for node in nodes[1:] if not live[node.id])

    # -- depth bound over the output-reachable DAG --
    depths = [0] * len(nodes)
    for node in nodes[1:]:
        depths[node.id] = 1 + max(depths[node.a.node], depths[node.b.node])
    used = [depths[ref.node] for ref in outputs.values() if ref is not None]
    max_output_depth = max(used) if used else 0
    if depth_limit is not None and max_output_depth > depth_limit:
        raise DepthViolation(
            f"audited output adder depth {max_output_depth} exceeds the "
            f"declared bound {depth_limit}"
        )

    return StructureReport(
        num_nodes=len(nodes),
        num_adders=audited_adders,
        max_output_depth=max_output_depth,
        fanout=tuple(fanout),
        orphans=orphans,
        num_outputs=len(outputs),
        num_zero_outputs=num_zero,
        fundamentals_checked=len(fundamentals),
    )
