"""Bit-accurate finite-wordlength evaluation of shift-add filters.

:mod:`repro.arch.simulate` is exact — unbounded Python integers — which
proves *architectural* equivalence but says nothing about the hardware's
finite registers.  This module layers a configurable fixed-point semantics
over the same netlist walk:

* every DAG node, tap product, TDF register, and the output adder is
  evaluated at a declared signed width with ``wrap`` (two's-complement
  truncation, what plain Verilog arithmetic does), ``saturate``, or
  ``error`` overflow behavior;
* every overflow is attributed to a *site* (``node:7``, ``tap:tap3``,
  ``reg:2``, ``out``) and a cycle, so a width bug points at the exact
  wire;
* :func:`min_node_widths` / :func:`min_accumulator_widths` derive the
  minimal safe widths analytically from the coefficient magnitudes (the
  worst case of a ``input_bits``-bit two's-complement input), giving the
  per-tap-chain accumulator sizing a designer needs;
* :func:`check_export_widths` cross-checks the widths
  :mod:`repro.arch.verilog` actually emits against those bounds — the
  export's semantics audited against the Python model rather than assumed.

The analytic bounds are deliberately derived independently of
:func:`repro.arch.metrics.node_bitwidths` (from ``|value| * 2^(w-1)``
magnitudes, not ``bit_length`` arithmetic) so the two implementations
check each other.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

from ..arch.metrics import node_bitwidths
from ..arch.netlist import ShiftAddNetlist
from ..arch.verilog import output_width
from ..errors import OverflowViolation, VerificationError, WidthContractViolation

__all__ = [
    "OVERFLOW_MODES",
    "FixedPointRun",
    "OverflowEvent",
    "check_export_widths",
    "fit",
    "min_accumulator_widths",
    "min_node_widths",
    "simulate_tdf_fixed",
]

OVERFLOW_MODES = ("wrap", "saturate", "error")


@dataclass(frozen=True)
class OverflowEvent:
    """One finite-wordlength overflow: where, when, and what it held."""

    site: str
    cycle: int
    value: int
    width: int


@dataclass(frozen=True)
class FixedPointRun:
    """A finite-wordlength simulation's outputs plus every overflow seen."""

    outputs: Tuple[int, ...]
    overflows: Tuple[OverflowEvent, ...]

    @property
    def overflowed(self) -> bool:
        """True when at least one site overflowed during the run."""
        return bool(self.overflows)


def fit(value: int, width: int, mode: str = "wrap") -> Tuple[int, bool]:
    """Constrain ``value`` to a signed ``width``-bit register.

    Returns ``(fitted_value, overflowed)``.  ``wrap`` keeps the low
    ``width`` bits two's-complement style; ``saturate`` clamps to the
    representable range; ``error`` returns the raw value (the caller
    raises with site context).
    """
    if width < 1:
        raise VerificationError(f"register width must be >= 1, got {width}")
    if mode not in OVERFLOW_MODES:
        raise VerificationError(
            f"overflow mode must be one of {OVERFLOW_MODES}, got {mode!r}"
        )
    lo = -(1 << (width - 1))
    hi = (1 << (width - 1)) - 1
    if lo <= value <= hi:
        return value, False
    if mode == "saturate":
        return (hi if value > hi else lo), True
    if mode == "error":
        return value, True
    span = 1 << width
    wrapped = ((value - lo) % span) + lo
    return wrapped, True


def min_node_widths(netlist: ShiftAddNetlist, input_bits: int) -> List[int]:
    """Minimal signed width of every DAG node for an ``input_bits`` input.

    Node ``i`` computes ``value_i * x``; the worst-case magnitude over
    two's-complement inputs is ``|value_i| * 2^(input_bits-1)`` (reached at
    the most negative input), needing ``bit_length + 1`` signed bits.
    """
    if input_bits < 1:
        raise VerificationError(f"input_bits must be >= 1, got {input_bits}")
    peak_input = 1 << (input_bits - 1)
    return [
        max(1, (abs(node.value) * peak_input).bit_length() + 1)
        for node in netlist.nodes
    ]


def min_accumulator_widths(
    netlist: ShiftAddNetlist,
    tap_names: Sequence[str],
    input_bits: int,
) -> List[int]:
    """Minimal signed width of each TDF accumulator, output-first.

    Entry 0 is the output adder ``y``; entry ``k >= 1`` is register
    ``r(k-1)`` of the transposed-direct-form chain, which accumulates the
    products of taps ``k..T-1``.  The worst case of register ``k`` is
    therefore the *suffix* coefficient magnitude sum times the peak input —
    the per-tap-chain accumulator sizing rule.
    """
    refs = netlist.tap_refs(tap_names)
    magnitudes = [
        0 if ref is None else abs(netlist.ref_value(ref)) for ref in refs
    ]
    peak_input = 1 << (input_bits - 1)
    widths: List[int] = []
    suffix = sum(magnitudes)
    for magnitude in magnitudes:
        widths.append(max(1, (suffix * peak_input).bit_length() + 1))
        suffix -= magnitude
    return widths


def simulate_tdf_fixed(
    netlist: ShiftAddNetlist,
    tap_names: Sequence[str],
    samples: Sequence[int],
    input_bits: int = 16,
    overflow: str = "wrap",
    node_widths: Optional[Sequence[int]] = None,
    accumulator_width: Optional[int] = None,
) -> FixedPointRun:
    """Cycle-accurate TDF run with finite-wordlength arithmetic everywhere.

    ``node_widths`` defaults to the widths the Verilog export declares
    (:func:`repro.arch.metrics.node_bitwidths`); ``accumulator_width``
    defaults to the export's ``OUT_W`` (:func:`repro.arch.verilog.output_width`)
    — so with defaults this simulates the emitted RTL's arithmetic, not an
    idealized machine.  In ``"error"`` mode the first overflow raises
    :class:`~repro.errors.OverflowViolation` carrying its site and cycle;
    otherwise all overflows are recorded in the returned run.
    """
    if overflow not in OVERFLOW_MODES:
        raise VerificationError(
            f"overflow mode must be one of {OVERFLOW_MODES}, got {overflow!r}"
        )
    if not tap_names:
        raise VerificationError("a filter needs at least one tap output")
    widths = (
        list(node_widths)
        if node_widths is not None
        else node_bitwidths(netlist, input_bits)
    )
    if len(widths) != len(netlist):
        raise VerificationError(
            f"{len(widths)} node widths for {len(netlist)} nodes"
        )
    acc_width = (
        accumulator_width
        if accumulator_width is not None
        else output_width(netlist, tap_names, input_bits)
    )
    refs = netlist.tap_refs(tap_names)
    num_taps = len(tap_names)
    registers = [0] * (num_taps - 1)
    events: List[OverflowEvent] = []

    def constrain(value: int, width: int, site: str, cycle: int) -> int:
        fitted, overflowed = fit(value, width, overflow)
        if overflowed:
            if overflow == "error":
                raise OverflowViolation(
                    f"value {value} overflows the {width}-bit register at "
                    f"{site} on cycle {cycle}",
                    site=site,
                    cycle=cycle,
                )
            events.append(
                OverflowEvent(site=site, cycle=cycle, value=value, width=width)
            )
        return fitted

    outputs: List[int] = []
    for cycle, sample in enumerate(samples):
        node_out: List[int] = [0] * len(netlist)
        node_out[0] = constrain(int(sample), widths[0], "node:0", cycle)
        for node in netlist.nodes[1:]:
            raw = node.a.value(node_out[node.a.node]) + node.b.value(
                node_out[node.b.node]
            )
            node_out[node.id] = constrain(
                raw, widths[node.id], f"node:{node.id}", cycle
            )
        products: List[int] = []
        for name, ref in zip(tap_names, refs):
            raw = 0 if ref is None else ref.value(node_out[ref.node])
            products.append(constrain(raw, acc_width, f"tap:{name}", cycle))
        y = constrain(
            products[0] + (registers[0] if registers else 0),
            acc_width, "out", cycle,
        )
        for k in range(len(registers)):
            incoming = registers[k + 1] if k + 1 < len(registers) else 0
            registers[k] = constrain(
                products[k + 1] + incoming, acc_width, f"reg:{k}", cycle
            )
        outputs.append(y)
    return FixedPointRun(outputs=tuple(outputs), overflows=tuple(events))


def check_export_widths(
    netlist: ShiftAddNetlist,
    tap_names: Sequence[str],
    input_bits: int = 16,
) -> None:
    """Prove the Verilog export's declared widths can never overflow.

    Compares :func:`repro.arch.metrics.node_bitwidths` (what ``emit_verilog``
    sizes each node wire to) and :func:`repro.arch.verilog.output_width`
    (its ``OUT_W``) against this module's independently derived minimal
    safe widths.  An export width below the analytic bound means the RTL
    can silently truncate where the Python model would not — raised as
    :class:`~repro.errors.WidthContractViolation`.
    """
    declared = node_bitwidths(netlist, input_bits)
    required = min_node_widths(netlist, input_bits)
    for node_id, (have, need) in enumerate(zip(declared, required)):
        if have < need:
            raise WidthContractViolation(
                f"export declares {have} bits for node {node_id} but the "
                f"model requires {need} bits at input width {input_bits}"
            )
    declared_out = output_width(netlist, tap_names, input_bits)
    required_out = max(
        min_accumulator_widths(netlist, tap_names, input_bits), default=1
    )
    if declared_out < required_out:
        raise WidthContractViolation(
            f"export declares OUT_W={declared_out} but full-precision TDF "
            f"accumulation requires {required_out} bits at input width "
            f"{input_bits}"
        )
