"""Mutation-based fault injection: prove the verifier catches real faults.

A verifier that has never seen a broken netlist is an unfalsified claim.
This module seeds :class:`~repro.robust.chaos.NetlistMutator` faults —
flipped shifts, inverted edge signs, rewired operands and outputs,
corrupted fundamentals, and *consistently rebuilt* wrong filters that no
structural check can distinguish from a correct one — into known-good
netlists and runs the full audit against every mutant.

The kill-rate gate (:func:`assert_kill_rate`, default ≥95%) is the
verification layer's own release criterion: a drop means a class of
hardware fault would sail through to RTL undetected.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence, Tuple

from ..arch.netlist import ShiftAddNetlist
from ..errors import MutationGateError, VerificationError
from ..obs import metrics as obs_metrics
from ..obs import span as obs_span
from ..robust.chaos import MUTATION_OPERATORS, NetlistMutator
from .equivalence import differential_equivalence
from .structure import audit_structure

__all__ = [
    "DEFAULT_KILL_THRESHOLD",
    "MutantOutcome",
    "MutationReport",
    "assert_kill_rate",
    "run_mutation_campaign",
]

DEFAULT_KILL_THRESHOLD = 0.95


@dataclass(frozen=True)
class MutantOutcome:
    """One mutant's fate: what was broken and which check noticed."""

    index: int
    description: str
    killed: bool
    killed_by: Optional[str] = None  # "structure" | "equivalence"
    error_type: Optional[str] = None
    error: Optional[str] = None


@dataclass(frozen=True)
class MutationReport:
    """Aggregate of one mutation campaign against one netlist."""

    outcomes: Tuple[MutantOutcome, ...]
    seed: int

    @property
    def total(self) -> int:
        """Number of mutants injected."""
        return len(self.outcomes)

    @property
    def killed(self) -> int:
        """Number of mutants some audit caught."""
        return sum(1 for outcome in self.outcomes if outcome.killed)

    @property
    def kill_rate(self) -> float:
        """Killed fraction (1.0 for an empty campaign — nothing escaped)."""
        if not self.outcomes:
            return 1.0
        return self.killed / self.total

    @property
    def escaped(self) -> Tuple[MutantOutcome, ...]:
        """The mutants every audit missed — the verifier's blind spots."""
        return tuple(o for o in self.outcomes if not o.killed)


def _audit_mutant(
    mutant: ShiftAddNetlist,
    tap_names: Sequence[str],
    coefficients: Sequence[int],
    input_bits: int,
    depth_limit: Optional[int],
) -> Tuple[Optional[str], Optional[BaseException]]:
    """Run the structural then functional audits; report who killed it."""
    try:
        audit_structure(mutant, tap_names, depth_limit=depth_limit)
    except VerificationError as exc:
        return "structure", exc
    try:
        differential_equivalence(
            mutant, tap_names, coefficients,
            input_bits=input_bits, random_blocks=1, block_len=24,
        )
    except VerificationError as exc:
        return "equivalence", exc
    except Exception as exc:  # noqa: BLE001 — a crash on a mutant is a catch
        return "equivalence", exc
    return None, None


def run_mutation_campaign(
    netlist: ShiftAddNetlist,
    tap_names: Sequence[str],
    coefficients: Sequence[int],
    mutants: int = 50,
    seed: int = 0,
    input_bits: int = 16,
    depth_limit: Optional[int] = None,
    operators: Tuple[str, ...] = MUTATION_OPERATORS,
) -> MutationReport:
    """Inject ``mutants`` seeded faults and audit every one.

    The baseline netlist must itself audit green — a campaign against an
    already-broken design would count its pre-existing bug as a kill of
    every mutant.  Emits a ``verify.mutation`` span and per-outcome
    ``repro_verify_mutants_total`` counters.
    """
    with obs_span("verify.mutation", mutants=mutants, seed=seed) as sp:
        audit_structure(netlist, tap_names, depth_limit=depth_limit)
        differential_equivalence(
            netlist, tap_names, coefficients,
            input_bits=input_bits, random_blocks=1, block_len=24,
        )
        mutator = NetlistMutator(seed=seed, operators=operators)
        outcomes = []
        for index, (description, mutant) in enumerate(
            mutator.mutants(netlist, mutants)
        ):
            killed_by, error = _audit_mutant(
                mutant, tap_names, coefficients, input_bits, depth_limit
            )
            killed = killed_by is not None
            obs_metrics.counter(
                "repro_verify_mutants_total",
                outcome="killed" if killed else "escaped",
            ).inc()
            outcomes.append(
                MutantOutcome(
                    index=index,
                    description=description,
                    killed=killed,
                    killed_by=killed_by,
                    error_type=type(error).__name__ if error else None,
                    error=str(error) if error else None,
                )
            )
        report = MutationReport(outcomes=tuple(outcomes), seed=seed)
        sp.set_tag("killed", report.killed)
        sp.set_tag("kill_rate", round(report.kill_rate, 4))
        return report


def assert_kill_rate(
    report: MutationReport,
    threshold: float = DEFAULT_KILL_THRESHOLD,
) -> None:
    """The gate: raise :class:`~repro.errors.MutationGateError` below it."""
    if not 0.0 <= threshold <= 1.0:
        raise VerificationError(
            f"kill-rate threshold must be in [0, 1], got {threshold}"
        )
    if report.kill_rate < threshold:
        escaped = tuple(o.description for o in report.escaped)
        raise MutationGateError(
            f"mutation kill rate {report.kill_rate:.1%} "
            f"({report.killed}/{report.total}) is below the "
            f"{threshold:.0%} gate; escaped: {escaped!r}",
            escaped=escaped,
        )
