"""Equivalence proving: netlist vs golden convolution vs compiled C model.

Three escalating strengths of the same claim — the optimized shift-add
netlist computes *exactly* the filter the coefficients describe:

* :func:`exhaustive_equivalence` — for small input wordlengths, sweep every
  representable two's-complement sample through the multiplier block and
  prove each tap product equals ``coefficient * x``.  Because the block is
  combinational and the TDF chain is exact addition, per-sample exhaustion
  over the block *is* exhaustive over all input sequences — a complete
  proof, not a sampling argument.
* :func:`differential_equivalence` — corner vectors (impulse, step,
  alternating sign, max magnitude) plus seeded-random blocks through the
  cycle-accurate simulator, diffed against golden direct convolution.
* :func:`cmodel_equivalence` — the same stimulus through the *compiled*
  C model (:mod:`repro.arch.cmodel`), catching emission bugs the Python
  model cannot see.  Skipped (returns ``None``) when no C compiler is on
  PATH, so library code never hard-depends on a toolchain.

All divergences raise :class:`~repro.errors.EquivalenceViolation` naming
the vector and cycle, so a failure is immediately reproducible.
"""

from __future__ import annotations

import random
import shutil
import subprocess
import tempfile
from pathlib import Path
from typing import Dict, List, Optional, Sequence

from ..arch.cmodel import emit_c_model
from ..arch.netlist import ShiftAddNetlist
from ..arch.simulate import evaluate_nodes, simulate_tdf_filter
from ..errors import EquivalenceViolation, VerificationError

__all__ = [
    "EXHAUSTIVE_MAX_BITS",
    "cmodel_equivalence",
    "corner_vectors",
    "differential_equivalence",
    "exhaustive_equivalence",
    "golden_convolution",
]

#: Exhaustive sweeps above this input width are refused — 2^12 node walks
#: is the knee where "complete proof" stops being interactive.
EXHAUSTIVE_MAX_BITS = 12


def golden_convolution(
    coefficients: Sequence[int], samples: Sequence[int]
) -> List[int]:
    """Exact direct-form convolution — the golden reference (same length)."""
    out: List[int] = []
    for n in range(len(samples)):
        acc = 0
        for i, c in enumerate(coefficients):
            if n - i < 0:
                break
            acc += c * samples[n - i]
        out.append(acc)
    return out


def corner_vectors(num_taps: int, input_bits: int = 16) -> Dict[str, List[int]]:
    """The named corner stimuli, each long enough to flush the tap chain.

    ``impulse`` and ``negative_impulse`` exercise the full impulse
    response at peak magnitude; ``step`` accumulates the maximal running
    sum; ``alternating`` swings every register through its full range each
    cycle (the classic worst case for wrap-around bugs); ``max_magnitude``
    holds the most negative representable input — the asymmetric
    two's-complement corner.
    """
    if num_taps < 1:
        raise VerificationError("corner vectors need at least one tap")
    if input_bits < 1:
        raise VerificationError(f"input_bits must be >= 1, got {input_bits}")
    hi = (1 << (input_bits - 1)) - 1
    lo = -(1 << (input_bits - 1))
    length = num_taps + 4
    return {
        "impulse": [hi] + [0] * (length - 1),
        "negative_impulse": [lo] + [0] * (length - 1),
        "step": [hi] * length,
        "alternating": [hi if i % 2 == 0 else lo for i in range(length)],
        "max_magnitude": [lo] * length,
    }


def _check_declared(
    netlist: ShiftAddNetlist,
    tap_names: Sequence[str],
    coefficients: Sequence[int],
) -> None:
    if len(tap_names) != len(coefficients):
        raise VerificationError(
            f"{len(tap_names)} tap names for {len(coefficients)} coefficients"
        )
    declared = netlist.output_values()
    for name, coefficient in zip(tap_names, coefficients):
        carried = declared.get(name)
        if carried != int(coefficient):
            raise EquivalenceViolation(
                f"output {name!r} carries {carried}, expected coefficient "
                f"{coefficient}"
            )


def exhaustive_equivalence(
    netlist: ShiftAddNetlist,
    tap_names: Sequence[str],
    coefficients: Sequence[int],
    input_bits: int = 8,
) -> int:
    """Prove every tap product for *every* ``input_bits``-bit sample.

    Returns the number of samples swept.  A complete proof for the
    multiplier block (and hence, by linearity of the exact TDF chain, for
    every input sequence at that wordlength).
    """
    if not 1 <= input_bits <= EXHAUSTIVE_MAX_BITS:
        raise VerificationError(
            f"exhaustive sweep supports 1..{EXHAUSTIVE_MAX_BITS} input bits, "
            f"got {input_bits}"
        )
    _check_declared(netlist, tap_names, coefficients)
    refs = netlist.tap_refs(tap_names)
    lo = -(1 << (input_bits - 1))
    hi = 1 << (input_bits - 1)
    count = 0
    for sample in range(lo, hi):
        outputs = evaluate_nodes(netlist, sample, check_linearity=True)
        for name, ref, coefficient in zip(tap_names, refs, coefficients):
            product = 0 if ref is None else ref.value(outputs[ref.node])
            if product != coefficient * sample:
                raise EquivalenceViolation(
                    f"tap {name!r} computes {product} for sample {sample}, "
                    f"expected {coefficient} * {sample} = "
                    f"{coefficient * sample}"
                )
        count += 1
    return count


def differential_equivalence(
    netlist: ShiftAddNetlist,
    tap_names: Sequence[str],
    coefficients: Sequence[int],
    input_bits: int = 16,
    random_blocks: int = 2,
    block_len: int = 48,
    seed: int = 0,
    extra_vectors: Optional[Dict[str, Sequence[int]]] = None,
) -> int:
    """Corner + seeded-random differential test vs golden convolution.

    Returns the total number of cycles compared.  ``extra_vectors`` lets a
    caller append regression stimuli (e.g. a previously escaping input).
    """
    _check_declared(netlist, tap_names, coefficients)
    vectors: Dict[str, List[int]] = dict(
        corner_vectors(len(tap_names), input_bits)
    )
    rng = random.Random(seed)
    lo = -(1 << (input_bits - 1))
    hi = (1 << (input_bits - 1)) - 1
    for block in range(random_blocks):
        vectors[f"random_{block}"] = [
            rng.randint(lo, hi) for _ in range(block_len)
        ]
    if extra_vectors:
        for name, stimulus in extra_vectors.items():
            vectors[name] = [int(x) for x in stimulus]
    cycles = 0
    for name, stimulus in vectors.items():
        got = simulate_tdf_filter(netlist, tap_names, stimulus)
        want = golden_convolution(coefficients, stimulus)
        for cycle, (g, w) in enumerate(zip(got, want)):
            if g != w:
                raise EquivalenceViolation(
                    f"vector {name!r} cycle {cycle}: netlist produced {g}, "
                    f"golden convolution {w}"
                )
        cycles += len(stimulus)
    return cycles


def _find_compiler() -> Optional[str]:
    return shutil.which("gcc") or shutil.which("cc")


def cmodel_equivalence(
    netlist: ShiftAddNetlist,
    tap_names: Sequence[str],
    coefficients: Sequence[int],
    input_bits: int = 16,
    seed: int = 0,
    workdir: Optional[Path] = None,
) -> Optional[int]:
    """Compile the emitted C model and diff it against the Python simulator.

    Returns the number of cycles compared, or ``None`` when no C compiler
    is available (the caller records the check as skipped, never failed).
    Uses the corner vectors plus one seeded-random block as stimulus.
    """
    compiler = _find_compiler()
    if compiler is None:
        return None
    _check_declared(netlist, tap_names, coefficients)
    vectors = corner_vectors(len(tap_names), input_bits)
    rng = random.Random(seed)
    lo = -(1 << (input_bits - 1))
    hi = (1 << (input_bits - 1)) - 1
    vectors["random_0"] = [rng.randint(lo, hi) for _ in range(48)]
    stimulus: List[int] = []
    for block in vectors.values():
        stimulus.extend(block)
        stimulus.extend([0] * len(tap_names))  # flush between vectors
    source = emit_c_model(netlist, tap_names, input_bits=input_bits)

    def run(workspace: Path) -> int:
        c_file = workspace / "filter.c"
        binary = workspace / "filter"
        c_file.write_text(source)
        try:
            subprocess.run(
                [compiler, "-O2", "-o", str(binary), str(c_file)],
                check=True, capture_output=True,
            )
            result = subprocess.run(
                [str(binary)],
                input=" ".join(str(x) for x in stimulus),
                capture_output=True, text=True, check=True, timeout=60,
            )
        except (subprocess.CalledProcessError, subprocess.TimeoutExpired) as exc:
            raise EquivalenceViolation(
                f"C model failed to compile or run: {exc}"
            ) from exc
        got = [int(line) for line in result.stdout.split()]
        want = simulate_tdf_filter(netlist, tap_names, stimulus)
        if len(got) != len(want):
            raise EquivalenceViolation(
                f"C model emitted {len(got)} samples, simulator {len(want)}"
            )
        for cycle, (g, w) in enumerate(zip(got, want)):
            if g != w:
                raise EquivalenceViolation(
                    f"C model diverges from the Python model at cycle "
                    f"{cycle}: C={g}, Python={w}"
                )
        return len(want)

    if workdir is not None:
        return run(Path(workdir))
    with tempfile.TemporaryDirectory(prefix="repro-verify-cmodel-") as tmp:
        return run(Path(tmp))
