"""Independent hardware verification for synthesized shift-add filters.

:mod:`repro.verify` is the adversary of the synthesis pipeline: it trusts
nothing the builders enforce and re-proves every claim a
:class:`~repro.core.transform.MrpfArchitecture` makes, from first
principles, through four escalating checks:

* **structure** (:mod:`repro.verify.structure`) — DAG acyclicity, dense
  ids, operand well-formedness, fundamental-table consistency, fanout and
  orphan accounting, reported-vs-audited adder counts, depth bounds;
* **fixedpoint** (:mod:`repro.verify.fixedpoint`) — bit-accurate
  finite-wordlength simulation with wrap/saturate/error overflow modes,
  minimal safe node and accumulator widths, and a cross-check of the
  widths the Verilog export actually declares;
* **equivalence** (:mod:`repro.verify.equivalence`) — exhaustive
  small-wordlength sweeps, corner vectors, and seeded-random differential
  testing of netlist vs golden convolution vs the compiled C model;
* **mutation** (:mod:`repro.verify.mutation`) — seeded fault injection
  that proves the *other three checks* actually catch broken hardware
  (kill-rate gate ≥95%).

Two front doors: :func:`full_audit` runs everything and returns a
:class:`VerificationReport` (per-check pass/fail/skip, nothing raised
unless asked); :func:`release_audit` is the cheap always-on gate the
robust synthesis path runs before releasing a result — it raises the
first :class:`~repro.errors.VerificationError` it proves.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Optional, Sequence, Tuple

from ..arch.netlist import ShiftAddNetlist
from ..errors import VerificationError
from ..obs import metrics as obs_metrics
from ..obs import span as obs_span
from .equivalence import (
    EXHAUSTIVE_MAX_BITS,
    cmodel_equivalence,
    corner_vectors,
    differential_equivalence,
    exhaustive_equivalence,
    golden_convolution,
)
from .fixedpoint import (
    OVERFLOW_MODES,
    FixedPointRun,
    OverflowEvent,
    check_export_widths,
    fit,
    min_accumulator_widths,
    min_node_widths,
    simulate_tdf_fixed,
)
from .mutation import (
    DEFAULT_KILL_THRESHOLD,
    MutantOutcome,
    MutationReport,
    assert_kill_rate,
    run_mutation_campaign,
)
from .structure import StructureReport, audit_structure

__all__ = [
    "EXHAUSTIVE_MAX_BITS",
    "OVERFLOW_MODES",
    "DEFAULT_KILL_THRESHOLD",
    "CheckResult",
    "FixedPointRun",
    "MutantOutcome",
    "MutationReport",
    "OverflowEvent",
    "StructureReport",
    "VerificationReport",
    "assert_kill_rate",
    "audit_architecture",
    "audit_structure",
    "check_export_widths",
    "cmodel_equivalence",
    "corner_vectors",
    "differential_equivalence",
    "exhaustive_equivalence",
    "fit",
    "full_audit",
    "golden_convolution",
    "min_accumulator_widths",
    "min_node_widths",
    "release_audit",
    "run_mutation_campaign",
    "simulate_tdf_fixed",
]


@dataclass(frozen=True)
class CheckResult:
    """Outcome of one named verification check."""

    check: str
    status: str  # "passed" | "failed" | "skipped"
    detail: str = ""
    error_type: Optional[str] = None
    wall_s: float = 0.0

    @property
    def passed(self) -> bool:
        return self.status == "passed"


@dataclass(frozen=True)
class VerificationReport:
    """Everything :func:`full_audit` proved (or failed to) about one design."""

    checks: Tuple[CheckResult, ...] = field(default_factory=tuple)

    @property
    def ok(self) -> bool:
        """True when no check failed (skips don't count against a design)."""
        return all(c.status != "failed" for c in self.checks)

    @property
    def failures(self) -> Tuple[CheckResult, ...]:
        return tuple(c for c in self.checks if c.status == "failed")

    def check(self, name: str) -> CheckResult:
        """Look up one check by name."""
        for result in self.checks:
            if result.check == name:
                return result
        raise KeyError(f"no check named {name!r} in this report")

    def summary(self) -> str:
        """One line per check — the CLI's report body."""
        lines = []
        for c in self.checks:
            mark = {"passed": "PASS", "failed": "FAIL", "skipped": "SKIP"}[
                c.status
            ]
            detail = f"  {c.detail}" if c.detail else ""
            lines.append(f"[{mark}] {c.check}{detail}")
        return "\n".join(lines)


def _run_check(check: str, thunk) -> CheckResult:
    """Execute one check under a span; fold its outcome into a result."""
    with obs_span(f"verify.{check}") as sp:
        start = time.perf_counter()
        try:
            detail = thunk()
        except VerificationError as exc:
            sp.set_tag("outcome", "failed")
            obs_metrics.counter(
                "repro_verify_checks_total", check=check, outcome="failed"
            ).inc()
            return CheckResult(
                check=check,
                status="failed",
                detail=str(exc),
                error_type=type(exc).__name__,
                wall_s=time.perf_counter() - start,
            )
        if detail is None:
            status, text = "skipped", "prerequisite unavailable"
        else:
            status, text = "passed", str(detail)
        sp.set_tag("outcome", status)
        obs_metrics.counter(
            "repro_verify_checks_total", check=check, outcome=status
        ).inc()
        return CheckResult(
            check=check,
            status=status,
            detail=text,
            wall_s=time.perf_counter() - start,
        )


def full_audit(
    netlist: ShiftAddNetlist,
    tap_names: Sequence[str],
    coefficients: Sequence[int],
    input_bits: int = 16,
    depth_limit: Optional[int] = None,
    expected_adder_count: Optional[int] = None,
    exhaustive_bits: int = 8,
    mutants: int = 0,
    seed: int = 0,
    include_cmodel: bool = False,
) -> VerificationReport:
    """Run every verification check; return the full scorecard.

    Never raises on a failing *design* — failures are recorded per check so
    the caller sees the whole picture (the CLI maps them to exit codes).
    ``mutants=0`` skips the mutation campaign (it verifies the verifier,
    not the design, and costs the most); ``include_cmodel`` gates the
    compiled-C diff, which needs a toolchain.
    """
    checks = []

    def structure() -> str:
        report = audit_structure(
            netlist,
            tap_names,
            depth_limit=depth_limit,
            expected_adder_count=expected_adder_count,
        )
        return (
            f"{report.num_adders} adders, depth {report.max_output_depth}, "
            f"{len(report.orphans)} orphans"
        )

    checks.append(_run_check("structure", structure))

    def fixedpoint() -> str:
        check_export_widths(netlist, tap_names, input_bits=input_bits)
        stimulus = []
        for vector in corner_vectors(len(tap_names), input_bits).values():
            stimulus.extend(vector)
            stimulus.extend([0] * len(tap_names))
        simulate_tdf_fixed(
            netlist, tap_names, stimulus,
            input_bits=input_bits, overflow="error",
        )
        return (
            f"export widths safe at {input_bits}-bit input, "
            f"{len(stimulus)} corner cycles overflow-free"
        )

    checks.append(_run_check("fixedpoint", fixedpoint))

    def equivalence() -> str:
        swept = exhaustive_equivalence(
            netlist, tap_names, coefficients, input_bits=exhaustive_bits
        )
        cycles = differential_equivalence(
            netlist, tap_names, coefficients,
            input_bits=input_bits, seed=seed,
        )
        return (
            f"{swept} samples exhausted at {exhaustive_bits} bits, "
            f"{cycles} differential cycles"
        )

    checks.append(_run_check("equivalence", equivalence))

    if include_cmodel:

        def cmodel() -> Optional[str]:
            cycles = cmodel_equivalence(
                netlist, tap_names, coefficients,
                input_bits=input_bits, seed=seed,
            )
            if cycles is None:
                return None  # no C compiler on PATH -> skipped
            return f"{cycles} cycles diffed against the compiled C model"

        checks.append(_run_check("cmodel", cmodel))

    if mutants > 0:

        def mutation() -> str:
            report = run_mutation_campaign(
                netlist, tap_names, coefficients,
                mutants=mutants, seed=seed, input_bits=input_bits,
                depth_limit=depth_limit,
            )
            assert_kill_rate(report)
            return (
                f"killed {report.killed}/{report.total} mutants "
                f"({report.kill_rate:.1%})"
            )

        checks.append(_run_check("mutation", mutation))

    return VerificationReport(checks=tuple(checks))


def release_audit(
    netlist: ShiftAddNetlist,
    tap_names: Sequence[str],
    coefficients: Sequence[int],
    input_bits: int = 16,
    depth_limit: Optional[int] = None,
) -> None:
    """The always-on gate: cheap, raising, run before any result ships.

    Structure audit + export-width contract + overflow-free corner vectors
    + corner/random differential equivalence.  Deliberately excludes the
    exhaustive sweep, C model, and mutation campaign — those are CI-depth
    checks; this one runs on every synthesized filter in the hot path.
    Raises the first :class:`~repro.errors.VerificationError` proved.
    """
    with obs_span("verify.release", taps=len(tap_names)) as sp:
        audit_structure(netlist, tap_names, depth_limit=depth_limit)
        check_export_widths(netlist, tap_names, input_bits=input_bits)
        stimulus = []
        for vector in corner_vectors(len(tap_names), input_bits).values():
            stimulus.extend(vector)
            stimulus.extend([0] * len(tap_names))
        simulate_tdf_fixed(
            netlist, tap_names, stimulus,
            input_bits=input_bits, overflow="error",
        )
        differential_equivalence(
            netlist, tap_names, coefficients,
            input_bits=input_bits, random_blocks=1, block_len=32,
        )
        sp.set_tag("outcome", "passed")


def audit_architecture(
    architecture,
    input_bits: int = 16,
    depth_limit: Optional[int] = None,
    exhaustive_bits: int = 8,
    mutants: int = 0,
    seed: int = 0,
    include_cmodel: bool = False,
) -> VerificationReport:
    """:func:`full_audit` over a :class:`~repro.core.transform.MrpfArchitecture`."""
    return full_audit(
        architecture.netlist,
        architecture.tap_names,
        architecture.coefficients,
        input_bits=input_bits,
        depth_limit=depth_limit,
        expected_adder_count=architecture.adder_count,
        exhaustive_bits=exhaustive_bits,
        mutants=mutants,
        seed=seed,
        include_cmodel=include_cmodel,
    )
