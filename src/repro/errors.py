"""Exception hierarchy for the :mod:`repro` package.

All library-raised exceptions derive from :class:`ReproError` so callers can
catch everything coming out of the library with a single ``except`` clause
while still distinguishing the failure domains below.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the :mod:`repro` library."""


class EncodingError(ReproError):
    """A number could not be encoded in the requested digit representation."""


class QuantizationError(ReproError):
    """Coefficient quantization failed (empty taps, zero vector, bad width)."""


class FilterDesignError(ReproError):
    """A filter specification could not be realized."""


class GraphError(ReproError):
    """The SIDC colored graph or one of its derived structures is invalid."""


class SynthesisError(ReproError):
    """MRP/CSE synthesis could not produce a valid architecture."""


class NetlistError(ReproError):
    """A shift-add netlist failed structural or functional validation."""


class SimulationError(ReproError):
    """Bit-accurate simulation detected an inconsistency."""


class BudgetExceeded(ReproError):
    """A cooperative solver exhausted its :class:`~repro.robust.SolverBudget`.

    Raised from a solver's budget checkpoint when the wall-clock deadline
    passes or the node/iteration cap is hit, so unbounded searches become
    interruptible instead of hanging.  ``partial`` optionally carries the
    best feasible result found before exhaustion (e.g. an incumbent
    :class:`~repro.graph.CoverSolution` or a partially improved coefficient
    vector) so degradation tiers can reuse it instead of recomputing.
    """

    def __init__(self, message: str, partial: object = None) -> None:
        super().__init__(message)
        self.partial = partial


class CoverBudgetError(BudgetExceeded, GraphError):
    """The exact-cover branch and bound ran out of budget mid-search.

    Subclasses both :class:`BudgetExceeded` (it is a budget exhaustion) and
    :class:`GraphError` (historical contract of the exact solver).  When a
    complete-but-unproven cover was already found, ``partial`` holds it.
    """


class SupervisorError(ReproError):
    """The supervised sweep layer was misconfigured or cannot proceed.

    Raised for contract violations of :mod:`repro.eval.supervisor` — e.g.
    ``resume=True`` without a journal directory, or a negative retry
    budget — never for worker-side failures, which are always folded into
    :class:`~repro.eval.TaskOutcome` records instead of raised.
    """


class JournalError(SupervisorError):
    """A sweep journal is unreadable or belongs to a different sweep/version.

    The write-ahead log replayed by ``--resume`` carries a header binding it
    to one sweep signature and one code version; resuming against a journal
    written by different code (whose cached results could be stale) or for a
    different sweep raises this instead of silently mixing results.
    """


class DegradationError(SynthesisError):
    """Every tier of the robust synthesis cascade failed.

    ``attempts`` holds the full :class:`~repro.robust.AttemptRecord` history
    (tier, perturbed options, failing stage, error) for post-mortem triage.
    """

    def __init__(self, message: str, attempts: tuple = ()) -> None:
        super().__init__(message)
        self.attempts = tuple(attempts)
