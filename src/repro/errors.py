"""Exception hierarchy for the :mod:`repro` package.

All library-raised exceptions derive from :class:`ReproError` so callers can
catch everything coming out of the library with a single ``except`` clause
while still distinguishing the failure domains below.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the :mod:`repro` library."""


class EncodingError(ReproError):
    """A number could not be encoded in the requested digit representation."""


class QuantizationError(ReproError):
    """Coefficient quantization failed (empty taps, zero vector, bad width)."""


class FilterDesignError(ReproError):
    """A filter specification could not be realized."""


class GraphError(ReproError):
    """The SIDC colored graph or one of its derived structures is invalid."""


class SynthesisError(ReproError):
    """MRP/CSE synthesis could not produce a valid architecture."""


class NetlistError(ReproError):
    """A shift-add netlist failed structural or functional validation."""


class SimulationError(ReproError):
    """Bit-accurate simulation detected an inconsistency."""


class BudgetExceeded(ReproError):
    """A cooperative solver exhausted its :class:`~repro.robust.SolverBudget`.

    Raised from a solver's budget checkpoint when the wall-clock deadline
    passes or the node/iteration cap is hit, so unbounded searches become
    interruptible instead of hanging.  ``partial`` optionally carries the
    best feasible result found before exhaustion (e.g. an incumbent
    :class:`~repro.graph.CoverSolution` or a partially improved coefficient
    vector) so degradation tiers can reuse it instead of recomputing.
    """

    def __init__(self, message: str, partial: object = None) -> None:
        super().__init__(message)
        self.partial = partial


class CoverBudgetError(BudgetExceeded, GraphError):
    """The exact-cover branch and bound ran out of budget mid-search.

    Subclasses both :class:`BudgetExceeded` (it is a budget exhaustion) and
    :class:`GraphError` (historical contract of the exact solver).  When a
    complete-but-unproven cover was already found, ``partial`` holds it.
    """


class SupervisorError(ReproError):
    """The supervised sweep layer was misconfigured or cannot proceed.

    Raised for contract violations of :mod:`repro.eval.supervisor` — e.g.
    ``resume=True`` without a journal directory, or a negative retry
    budget — never for worker-side failures, which are always folded into
    :class:`~repro.eval.TaskOutcome` records instead of raised.
    """


class SweepAborted(SupervisorError):
    """A supervised sweep stopped early at its caller's request.

    Raised between task completions when the job-level ``deadline_at``
    passes or the ``should_stop`` callback given to
    :func:`~repro.eval.supervisor.run_sweep_supervised` returns a reason
    (e.g. the owning service job was cancelled or expired).  Every outcome
    journaled before the abort is durable, so a later resumed run skips
    the finished work — aborting loses time, never results.
    """


class JournalError(SupervisorError):
    """A sweep journal is unreadable or belongs to a different sweep/version.

    The write-ahead log replayed by ``--resume`` carries a header binding it
    to one sweep signature and one code version; resuming against a journal
    written by different code (whose cached results could be stale) or for a
    different sweep raises this instead of silently mixing results.
    """


class ServiceError(ReproError):
    """Base of the :mod:`repro.service` taxonomy.

    Every failure the synthesis job service can signal to a caller is a
    subclass, so the HTTP layer can map exception type to status code while
    a plain ``except ServiceError`` still catches the whole family.
    """


class SpecError(ServiceError):
    """A submitted job spec is malformed or names unknown work (HTTP 400)."""


class AdmissionRejected(ServiceError):
    """The service is shedding load and refused to accept a job (HTTP 429).

    ``retry_after_s`` is the server's estimate — derived from observed job
    durations and current queue depth — of when capacity will free up; it
    becomes the response's ``Retry-After`` header.
    """

    def __init__(self, message: str, retry_after_s: float = 1.0) -> None:
        super().__init__(message)
        self.retry_after_s = retry_after_s


class CircuitOpen(AdmissionRejected):
    """The worker-pool circuit breaker is open (HTTP 503).

    Raised when repeated ``BrokenProcessPool`` rebuilds within the breaker
    window indicate the execution substrate itself is sick — admitting more
    work would only feed the failure.  ``retry_after_s`` is the remaining
    cooldown.
    """


class JobStateError(ServiceError):
    """A job lifecycle operation is illegal in the job's current state.

    Raised for transitions outside the state machine (e.g. completing a
    job that was already cancelled) and for requests that need a state the
    job is not in (fetching the result of a still-running job maps this to
    HTTP 409/404 at the API layer).
    """


class StoreUnavailable(ServiceError):
    """The durable job store cannot accept writes right now (HTTP 503).

    Raised when a WAL append fails (ENOSPC, I/O error) *before* the job
    was acknowledged: the in-memory state is rolled back, the client gets
    a 503 with ``Retry-After``, and nothing claims durability it does not
    have.  Mirrors the disk cache's non-fatal ``put_errors`` philosophy —
    a full disk degrades the service, it does not crash it.
    """

    def __init__(self, message: str, retry_after_s: float = 5.0) -> None:
        super().__init__(message)
        self.retry_after_s = retry_after_s


class ClientError(ServiceError):
    """Base of the :mod:`repro.service.client` taxonomy.

    Everything the resilient client can raise after exhausting its own
    retry discipline is a subclass, so callers can ``except ClientError``
    for "the service interaction failed for good" while still branching on
    deadline vs breaker vs server-rejection below.
    """


class ClientDeadlineError(ClientError):
    """The client's overall deadline budget ran out mid-operation.

    Raised instead of silently hanging when the remaining budget cannot
    cover the next attempt (including a server ``Retry-After`` longer than
    what is left).  ``last_state`` carries the most recent job view (or
    error payload) the client managed to fetch, so a caller that timed out
    waiting still learns where the job stood; ``elapsed_s`` is how long the
    operation ran before giving up.
    """

    def __init__(
        self,
        message: str,
        last_state: object = None,
        elapsed_s: float = 0.0,
    ) -> None:
        super().__init__(message)
        self.last_state = last_state
        self.elapsed_s = elapsed_s


class ClientCircuitOpen(ClientError):
    """The client-side circuit breaker is open; the call was not attempted.

    After ``breaker_threshold`` consecutive transport-level failures the
    client stops hammering a dead or dying endpoint for a cooldown period,
    mirroring the server's admission breaker.  ``retry_after_s`` is the
    remaining cooldown.
    """

    def __init__(self, message: str, retry_after_s: float = 1.0) -> None:
        super().__init__(message)
        self.retry_after_s = retry_after_s


class ServerRejected(ClientError):
    """The server answered with a non-retryable error status (4xx).

    Carries the decoded error payload so callers see the server's own
    taxonomy (``error_type`` is the server-side exception class name, e.g.
    ``"SpecError"`` for a 400 or ``"JobStateError"`` for a 404/409).
    """

    def __init__(
        self,
        message: str,
        status: int,
        error_type: str = "",
        payload: object = None,
    ) -> None:
        super().__init__(message)
        self.status = status
        self.error_type = error_type
        self.payload = payload


class VerificationError(ReproError):
    """Base of the :mod:`repro.verify` taxonomy.

    Every failure the independent hardware-verification layer can detect is
    a subclass, so a release gate can branch on *which* audit tripped
    (structure vs fixed-point vs equivalence vs the mutation gate) while a
    plain ``except VerificationError`` still catches the whole family.
    """


class StructureViolation(VerificationError, NetlistError):
    """A netlist failed the structural invariant audit.

    Dual-inherits :class:`NetlistError` so callers of the historical
    ``validate()`` contract keep catching structural corruption without
    knowing about the verification layer.
    """


class AcyclicityViolation(StructureViolation):
    """A node references itself, a later node, or a nonexistent node."""


class FundamentalViolation(StructureViolation):
    """The odd-fundamental table disagrees with the nodes it indexes."""


class DepthViolation(StructureViolation):
    """The audited adder depth exceeds the declared depth bound."""


class AdderCountMismatch(StructureViolation):
    """The reported adder count differs from the audited count."""


class DanglingRefViolation(StructureViolation):
    """An output or operand reference points outside the DAG, or a
    required tap output was never marked."""


class OverflowViolation(VerificationError, SimulationError):
    """Finite-wordlength evaluation overflowed at a specific site.

    Dual-inherits :class:`SimulationError`: an overflow is a simulation
    inconsistency first, so pre-existing ``except SimulationError`` paths
    (e.g. the robust cascade's quarantine logic) treat it correctly.
    """

    def __init__(self, message: str, site: str = "", cycle: int = -1) -> None:
        super().__init__(message)
        self.site = site
        self.cycle = cycle


class WidthContractViolation(VerificationError):
    """The RTL export declares a narrower width than the model requires."""


class EquivalenceViolation(VerificationError, SimulationError):
    """The netlist's response diverged from the golden reference."""


class MutationGateError(VerificationError):
    """The mutation campaign's kill rate fell below the release threshold.

    ``escaped`` carries the mutant descriptions that survived every audit,
    for triage of the verifier's blind spot.
    """

    def __init__(self, message: str, escaped: tuple = ()) -> None:
        super().__init__(message)
        self.escaped = tuple(escaped)


class DegradationError(SynthesisError):
    """Every tier of the robust synthesis cascade failed.

    ``attempts`` holds the full :class:`~repro.robust.AttemptRecord` history
    (tier, perturbed options, failing stage, error) for post-mortem triage.
    """

    def __init__(self, message: str, attempts: tuple = ()) -> None:
        super().__init__(message)
        self.attempts = tuple(attempts)
