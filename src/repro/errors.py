"""Exception hierarchy for the :mod:`repro` package.

All library-raised exceptions derive from :class:`ReproError` so callers can
catch everything coming out of the library with a single ``except`` clause
while still distinguishing the failure domains below.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the :mod:`repro` library."""


class EncodingError(ReproError):
    """A number could not be encoded in the requested digit representation."""


class QuantizationError(ReproError):
    """Coefficient quantization failed (empty taps, zero vector, bad width)."""


class FilterDesignError(ReproError):
    """A filter specification could not be realized."""


class GraphError(ReproError):
    """The SIDC colored graph or one of its derived structures is invalid."""


class SynthesisError(ReproError):
    """MRP/CSE synthesis could not produce a valid architecture."""


class NetlistError(ReproError):
    """A shift-add netlist failed structural or functional validation."""


class SimulationError(ReproError):
    """Bit-accurate simulation detected an inconsistency."""
