"""Tiered degradation for MRPF synthesis: exact → greedy → trivial.

The MRP flow chains NP-hard searches whose running time explodes
unpredictably with tap count and wordlength.  :func:`synthesize` wraps the
whole plan→lower→verify pipeline in a cascade of tiers:

1. **exact** — plan with the branch-and-bound exact cover (optimal SEED
   selection).  On budget exhaustion the solver's incumbent cover — a
   complete cover whose optimality is merely unproven — is reused instead of
   being thrown away.
2. **greedy** — the paper's greedy weighted set cover (polynomial).
3. **trivial** — the all-roots per-tap plan, which always succeeds and
   reproduces the simple baseline.

Within each tier, a failed attempt is retried with *perturbed* options —
varying ``beta``, ``max_shift``, and the digit representation — because many
synthesis failures are instance-specific (a pathological cover, a degenerate
forest) and a nearby configuration sails through.

Every architecture released by :func:`synthesize` is re-verified against
exact convolution **of the caller's coefficient vector** (not the plan's own
record, which a fault may have corrupted); an attempt whose architecture
fails that self-check is *quarantined* into the attempt report rather than
returned.  If every tier fails, a :class:`~repro.errors.DegradationError`
carrying the full attempt history is raised — the cascade never hangs and
never returns an unverified architecture.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, replace
from typing import Iterator, List, Optional, Sequence, Tuple

from ..arch.simulate import verify_against_convolution
from ..core.mrp import MrpOptions, MrpPlan, optimize, trivial_plan
from ..core.sidc import normalize_taps
from ..core.transform import VERIFY_SAMPLES, MrpfArchitecture, lower_plan
from ..errors import CoverBudgetError, DegradationError, SynthesisError
from ..graph import exact_weighted_set_cover
from ..numrep import Representation
from ..obs import metrics as obs_metrics
from ..obs import span as obs_span
from .budget import SolverBudget

__all__ = [
    "TIERS",
    "STAGES",
    "AttemptRecord",
    "RobustConfig",
    "RobustResult",
    "synthesize",
]

TIERS = ("exact", "greedy", "trivial")
STAGES = ("plan", "lower", "verify")


@dataclass(frozen=True)
class RobustConfig:
    """Knobs of the degradation cascade.

    ``deadline_s`` bounds the *whole* cascade: once it passes, remaining
    expensive tiers are skipped and only the final tier's base attempt runs
    (the trivial tier is cheap, so total wall clock stays close to the
    deadline).  ``max_nodes`` caps each cover-solver attempt.
    ``max_retries`` is the number of *perturbed* retries per tier beyond the
    base attempt.  ``exact_max_universe`` guards the exact tier the same way
    :func:`~repro.graph.exact_weighted_set_cover` does.

    ``release_audit`` (default on) runs the independent
    :func:`repro.verify.release_audit` — structure invariants, export width
    contract, overflow-free corner vectors, differential equivalence —
    after the convolution self-check; an architecture failing it is
    quarantined exactly like a convolution mismatch.
    ``release_audit_input_bits`` is the input wordlength that audit assumes.
    """

    tiers: Tuple[str, ...] = TIERS
    deadline_s: Optional[float] = None
    max_nodes: Optional[int] = 500_000
    max_retries: int = 2
    seed_compression: str = "none"
    exact_max_universe: int = 18
    verify_samples: Tuple[int, ...] = VERIFY_SAMPLES
    release_audit: bool = True
    release_audit_input_bits: int = 16

    def __post_init__(self) -> None:
        if not self.tiers:
            raise SynthesisError("RobustConfig needs at least one tier")
        unknown = [t for t in self.tiers if t not in TIERS]
        if unknown:
            raise SynthesisError(
                f"unknown tiers {unknown!r}; choose from {TIERS}"
            )
        if self.max_retries < 0:
            raise SynthesisError(
                f"max_retries must be >= 0, got {self.max_retries}"
            )
        if self.deadline_s is not None and self.deadline_s < 0:
            raise SynthesisError(
                f"deadline_s must be >= 0, got {self.deadline_s}"
            )


@dataclass(frozen=True)
class AttemptRecord:
    """One attempt of the cascade: where it ran and how it ended.

    ``outcome`` is ``"ok"`` (verified and released), ``"failed"`` (died
    before producing an architecture), or ``"quarantined"`` (produced an
    architecture that failed the convolution self-check — reported, never
    returned).  ``stage`` is the pipeline stage reached (``"done"`` for ok).
    """

    tier: str
    stage: str
    outcome: str
    beta: float
    max_shift: Optional[int]
    representation: str
    error_type: Optional[str] = None
    error: Optional[str] = None
    elapsed_s: float = 0.0
    #: Wall time of this attempt as measured by the tracer's ``synth.attempt``
    #: span (monotonic fallback when tracing is off).  ``elapsed_s`` is kept
    #: for backward compatibility; the two agree up to clock granularity.
    duration_s: float = 0.0


@dataclass(frozen=True)
class RobustResult:
    """What :func:`synthesize` released, and the full story of getting there."""

    architecture: MrpfArchitecture
    tier: str
    attempts: Tuple[AttemptRecord, ...]
    elapsed_s: float
    warnings: Tuple[str, ...] = ()

    @property
    def degraded(self) -> bool:
        """True when at least one attempt failed before the released one."""
        return len(self.attempts) > 1

    @property
    def num_attempts(self) -> int:
        """Total attempts made, including the successful one."""
        return len(self.attempts)

    @property
    def quarantined(self) -> Tuple[AttemptRecord, ...]:
        """Attempts whose architecture failed the self-check."""
        return tuple(a for a in self.attempts if a.outcome == "quarantined")


def _perturbations(
    base: MrpOptions, wordlength: int, max_retries: int
) -> Iterator[MrpOptions]:
    """The deterministic retry schedule: base first, then nearby configs.

    Perturbs one knob at a time — β toward the corners, the other digit
    representation, then a halved shift range — so a failure tied to any
    single knob is escaped within a few retries.
    """
    yield base
    emitted = 0
    variants: List[MrpOptions] = []
    for beta in (0.25, 0.75, 0.0, 1.0):
        if abs(beta - base.beta) > 1e-9:
            variants.append(replace(base, beta=beta))
    other_rep = (
        Representation.SM
        if base.representation == Representation.CSD
        else Representation.CSD
    )
    variants.append(replace(base, representation=other_rep))
    shift = base.max_shift if base.max_shift is not None else wordlength
    if shift > 1:
        variants.append(replace(base, max_shift=shift // 2))
    for options in variants:
        if emitted >= max_retries:
            return
        emitted += 1
        yield options


def _exact_cover_fn(config: RobustConfig, budget: SolverBudget,
                    warnings: List[str]):
    """Cover solver for the exact tier, with incumbent reuse on exhaustion."""

    def cover(universe, sets, costs, options):
        try:
            return exact_weighted_set_cover(
                universe, sets, costs,
                max_universe=config.exact_max_universe,
                budget=budget,
            )
        except CoverBudgetError as exc:
            incumbent = exc.partial
            if incumbent is not None:
                warnings.append(
                    "exact cover budget exhausted; reusing the incumbent "
                    f"cover ({len(incumbent.colors)} colors, optimality "
                    "unproven)"
                )
                return incumbent
            raise

    return cover


def _plan_tier(
    tier: str,
    coefficients: Tuple[int, ...],
    wordlength: int,
    options: MrpOptions,
    config: RobustConfig,
    budget: SolverBudget,
    warnings: List[str],
) -> MrpPlan:
    if tier == "trivial":
        return trivial_plan(coefficients, options)
    if tier == "greedy":
        return optimize(coefficients, wordlength, options, budget=budget)
    return optimize(
        coefficients, wordlength, options, budget=budget,
        cover_fn=_exact_cover_fn(config, budget, warnings),
    )


def synthesize(
    coefficients: Sequence[int],
    wordlength: int,
    options: Optional[MrpOptions] = None,
    config: Optional[RobustConfig] = None,
    chaos=None,
    budget: Optional[SolverBudget] = None,
) -> RobustResult:
    """Synthesize ``coefficients`` through the degradation cascade.

    Returns a :class:`RobustResult` whose architecture has been verified
    against exact convolution of the *requested* coefficients.  Raises
    :class:`~repro.errors.DegradationError` (with the attempt history) only
    when every tier and every perturbed retry failed.

    ``chaos`` is an optional :class:`~repro.robust.ChaosHarness`; when given,
    its fault hooks run at every stage boundary — production callers leave it
    ``None``.

    ``budget`` supplies an *external* overall budget for the cascade instead
    of one derived from ``config.deadline_s`` — a sweep worker passes the
    same budget to every call so its whole shard, not each instance, is
    bounded (``config.deadline_s`` is ignored in that case).
    """
    cfg = config or RobustConfig()
    base_options = options or MrpOptions()
    coefficients = tuple(int(c) for c in coefficients)
    started = time.monotonic()
    overall = (budget or SolverBudget(deadline_s=cfg.deadline_s)).start()
    attempts: List[AttemptRecord] = []
    warnings: List[str] = []
    samples = list(cfg.verify_samples)
    last_tier = cfg.tiers[-1]
    vertices, _ = normalize_taps(coefficients)

    for tier in cfg.tiers:
        if tier == "exact" and len(vertices) > cfg.exact_max_universe:
            warnings.append(
                f"{len(vertices)} primary coefficients exceed "
                f"exact_max_universe={cfg.exact_max_universe}; "
                "skipping the exact tier"
            )
            continue
        if overall.exhausted and tier != last_tier:
            warnings.append(
                f"deadline reached after {overall.elapsed_s:.3f}s; "
                f"skipping tier {tier!r}"
            )
            continue
        for index, tier_options in enumerate(
            _perturbations(base_options, wordlength, cfg.max_retries)
        ):
            if index > 0 and overall.exhausted:
                warnings.append(
                    f"deadline reached; abandoning retries of tier {tier!r}"
                )
                break
            attempt_budget = SolverBudget(
                deadline_s=overall.remaining_s, max_nodes=cfg.max_nodes
            )
            architecture, record = _run_attempt(
                tier, coefficients, wordlength, tier_options,
                cfg, attempt_budget, chaos, samples, warnings,
            )
            attempts.append(record)
            if architecture is not None:
                return RobustResult(
                    architecture=architecture,
                    tier=tier,
                    attempts=tuple(attempts),
                    elapsed_s=time.monotonic() - started,
                    warnings=tuple(warnings),
                )
    raise DegradationError(
        f"all {len(attempts)} attempts across tiers {cfg.tiers!r} failed "
        f"for {len(coefficients)} taps (last error: "
        f"{attempts[-1].error_type}: {attempts[-1].error})",
        attempts=tuple(attempts),
    )


def _run_attempt(
    tier: str,
    coefficients: Tuple[int, ...],
    wordlength: int,
    options: MrpOptions,
    config: RobustConfig,
    budget: SolverBudget,
    chaos,
    samples: List[int],
    warnings: List[str],
):
    """One plan→lower→verify attempt; never raises (records instead)."""
    stage = "plan"
    attempt_started = time.monotonic()

    with obs_span(
        "synth.attempt",
        tier=tier,
        beta=options.beta,
        representation=options.representation.value,
    ) as sp:

        def record(outcome: str, stage_name: str,
                   error: Optional[BaseException]):
            duration = sp.elapsed() or (time.monotonic() - attempt_started)
            sp.set_tag("outcome", outcome)
            obs_metrics.counter(
                "repro_degrade_attempts_total", tier=tier, outcome=outcome
            ).inc()
            return AttemptRecord(
                tier=tier,
                stage=stage_name,
                outcome=outcome,
                beta=options.beta,
                max_shift=options.max_shift,
                representation=options.representation.value,
                error_type=type(error).__name__ if error is not None else None,
                error=str(error) if error is not None else None,
                elapsed_s=time.monotonic() - attempt_started,
                duration_s=duration,
            )

        try:
            if chaos is not None:
                chaos.before("plan", budget)
            plan = _plan_tier(
                tier, coefficients, wordlength, options, config, budget,
                warnings
            )
            if chaos is not None:
                plan = chaos.transform("plan", plan)

            stage = "lower"
            if chaos is not None:
                chaos.before("lower", budget)
            architecture = lower_plan(plan, config.seed_compression)
            if chaos is not None:
                architecture = chaos.transform("lower", architecture)

            stage = "verify"
            if chaos is not None:
                chaos.before("verify", budget)
                architecture = chaos.transform("verify", architecture)
            if tuple(architecture.coefficients) != coefficients:
                raise SynthesisError(
                    "architecture reports coefficients "
                    f"{architecture.coefficients!r} instead of the requested "
                    f"{coefficients!r}"
                )
            verify_against_convolution(
                architecture.netlist, architecture.tap_names,
                list(coefficients), samples,
            )
            if config.release_audit:
                # Imported lazily: repro.verify pulls in the mutation engine,
                # which lives next door in repro.robust.chaos.
                from ..verify import release_audit

                release_audit(
                    architecture.netlist, architecture.tap_names,
                    list(coefficients),
                    input_bits=config.release_audit_input_bits,
                )
            return architecture, record("ok", "done", None)
        except Exception as exc:  # noqa: BLE001 — chaos injects arbitrary faults
            outcome = "quarantined" if stage == "verify" else "failed"
            return None, record(outcome, stage, exc)
