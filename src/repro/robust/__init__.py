"""Resilient synthesis: solver budgets, tiered degradation, chaos testing.

The production-facing entry point is :func:`synthesize`, which runs the
exact → greedy → trivial tier cascade with retry-with-perturbation and
releases only convolution-verified architectures.  :class:`SolverBudget`
makes every NP-hard search in the library interruptible;
:class:`ChaosHarness` injects deterministic faults to prove the cascade
catches and reroutes every failure mode.
"""

from ..errors import BudgetExceeded, CoverBudgetError, DegradationError
from .budget import SolverBudget
from .chaos import (
    FAULT_CLASSES,
    MUTATION_OPERATORS,
    PROCESS_FAULT_CLASSES,
    CacheFaultInjector,
    ChaosFault,
    ChaosHarness,
    Injection,
    NetlistMutator,
    ProcessFaultPlan,
    StoreFaultInjector,
    clone_netlist,
)
from .netchaos import (
    NET_FAULT_CLASSES,
    NetChaosProxy,
    NetFaultPlan,
    NetInjection,
)
from .degrade import (
    STAGES,
    TIERS,
    AttemptRecord,
    RobustConfig,
    RobustResult,
    synthesize,
)

__all__ = [
    "AttemptRecord",
    "BudgetExceeded",
    "CacheFaultInjector",
    "ChaosFault",
    "ChaosHarness",
    "CoverBudgetError",
    "DegradationError",
    "FAULT_CLASSES",
    "Injection",
    "MUTATION_OPERATORS",
    "NET_FAULT_CLASSES",
    "NetChaosProxy",
    "NetFaultPlan",
    "NetInjection",
    "NetlistMutator",
    "PROCESS_FAULT_CLASSES",
    "ProcessFaultPlan",
    "StoreFaultInjector",
    "RobustConfig",
    "RobustResult",
    "STAGES",
    "SolverBudget",
    "TIERS",
    "clone_netlist",
    "synthesize",
]
