"""Deterministic crash-consistency certification for the durability layers.

Sampled chaos (seeded SIGKILLs, fault-injecting proxies) certifies recovery
from the crash states a random seed happened to visit.  This subpackage
provides the stronger, deterministic guarantee in the ALICE style
(Pillai et al., OSDI'14): record every filesystem operation a workload
issues through a pluggable IO fabric, cut the operation log at every
prefix point, materialize the set of *legal* on-disk states at each cut
(unsynced writes dropped or torn, renames rolled back when their directory
entry was never fsync'd), and run the real recovery path against every
state, asserting the layer's invariants.

Pieces:

* :mod:`.fabric` — the :class:`IoFabric` protocol, the :class:`RealIo`
  passthrough default, the recording :class:`SimDisk`, and the chaos
  wrappers (:class:`BrokenFsyncFabric`, :class:`FaultPointFabric`).
  Threaded under :class:`repro.eval.wal.ChecksumLog` (and through it the
  :class:`repro.eval.supervisor.SweepJournal`), the
  :class:`repro.service.store.JobStore`, and the
  :class:`repro.eval.cache.DiskCache`.
* :mod:`.model` — the abstract filesystem model: replay an op log,
  enumerate legal crash states at a cut, materialize a state to disk.
* :mod:`.lint` — the durability-ordering linter: fails any execution
  where an acknowledgement is reachable before the covering fsync.
* :mod:`.workloads` / :mod:`.certify` — per-layer workload drivers and
  the certification sweep behind ``python -m repro.eval crashsim``
  (imported lazily: they pull in the evaluation and service layers).
"""

from __future__ import annotations

from .fabric import (
    BrokenFsyncFabric,
    FabricFile,
    FaultPointFabric,
    IoFabric,
    IoOp,
    RealIo,
    SimDisk,
    active,
    install,
    scope,
)
from .lint import LintViolation, lint_durability
from .model import CrashState, ReplayState, enumerate_states, replay

__all__ = [
    "BrokenFsyncFabric",
    "CrashState",
    "FabricFile",
    "FaultPointFabric",
    "IoFabric",
    "IoOp",
    "LintViolation",
    "RealIo",
    "ReplayState",
    "SimDisk",
    "active",
    "enumerate_states",
    "install",
    "lint_durability",
    "replay",
    "scope",
]


def __getattr__(name: str):
    # certify/workloads import the evaluation and service layers, which
    # themselves import this package's fabric — loading them lazily keeps
    # ``import repro.robust.crashsim`` (and through it ``repro.eval.wal``)
    # cycle-free.
    if name in ("certify", "workloads"):
        import importlib

        return importlib.import_module(f".{name}", __name__)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
