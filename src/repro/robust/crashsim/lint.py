"""The durability-ordering linter.

An acknowledgement — an ``append()`` returning, an HTTP 2xx becoming
reachable — is a promise that what it acknowledges survives any crash
from that instant on.  The linter checks the promise *structurally*: it
replays the op log and, at every ``ack`` op, verifies that each path the
ack names is fully durable — its data fsync'd, its directory entry
fsync'd, every ancestor directory's entry fsync'd.  Delete one fsync from
a layer and the covering ack becomes a violation, without needing the
crash-state enumerator to stumble on the losing state (though it will:
the two checks are deliberately redundant).

Acks name their scope via ``info`` keys ending in ``path`` (``path``,
``result_path``, ...); values the recording fabric resolved into the
sandbox are checked, anything else is ignored.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence

from .fabric import IoOp
from .model import ReplayState

__all__ = ["LintViolation", "lint_durability"]


@dataclass(frozen=True)
class LintViolation:
    """An ack reachable before the fsync that should cover it."""

    index: int
    label: str
    path: str
    reason: str

    def __str__(self) -> str:
        return (
            f"op[{self.index}] ack {self.label!r} not covered for "
            f"{self.path!r}: {self.reason}"
        )


def lint_durability(ops: Sequence[IoOp]) -> List[LintViolation]:
    """Return every uncovered ack in the op log (empty = clean)."""
    state = ReplayState()
    violations: List[LintViolation] = []
    for op in ops:
        if op.kind == "ack":
            for key, value in op.info:
                if not key.endswith("path"):
                    continue
                if "/" not in value and value not in state.live_ns:
                    # Not a recorded sandbox path — out of scope.
                    continue
                durable, reason = state.is_durable(value)
                if not durable:
                    violations.append(
                        LintViolation(
                            index=op.index,
                            label=op.label,
                            path=value,
                            reason=reason,
                        )
                    )
        state.apply(op)
    return violations
