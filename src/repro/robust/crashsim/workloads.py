"""Per-layer workload drivers for the certification sweep.

Each workload is a pair of functions sharing a context dict:

* ``record(root)`` drives the *real* layer (the production classes, not
  mocks) while a recording fabric is active, producing the op log the
  enumerator cuts.  Everything that could vary between runs — clocks,
  temp names — is pinned, so the op log (and through it the CI report's
  state counts) is identical on every run.
* ``check(state_dir, context, acks)`` runs the *real* recovery path
  against one materialized crash state and returns invariant violations
  (empty list = this state recovers correctly).  The acks recorded before
  the cut say exactly which promises recovery must keep: the drivers
  issue their operations in a fixed order, so "k-th ack reached" maps
  deterministically to "k-th durable fact promised".

Invariants checked (per the service's durability contract):

* **wal/journal** — resume never raises, never loses an acked record,
  surviving records are byte-exact, and the file is reusable for appends;
* **store** — restart never raises, every acked job exists, no job is
  ever recovered as ``running`` (duplicate-execution guard), a job
  recovered ``completed`` has its byte-identical result file;
* **cache** — open/get never raise and never return bytes that differ
  from what was put: a torn entry is a miss (quarantined), never served.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass
from pathlib import Path
from typing import Callable, Dict, List, Mapping, Sequence, Tuple

from ...errors import JobStateError, JournalError
from ...eval.cache import DiskCache
from ...eval.supervisor import SweepJournal
from ...eval.wal import ChecksumLog
from ...service.store import JobSpec, JobState, JobStore

__all__ = ["LayerWorkload", "WORKLOADS"]

Ack = Tuple[str, Tuple[Tuple[str, str], ...]]


@dataclass(frozen=True)
class LayerWorkload:
    """One durability layer's recorded run + recovery invariant checker."""

    name: str
    description: str
    record: Callable[[Path], Dict[str, object]]
    check: Callable[[Path, Mapping[str, object], Sequence[Ack]], List[str]]


class _FakeClock:
    """Deterministic stand-in for ``time.time`` (one tick per call)."""

    def __init__(self, start: float = 1_000.0) -> None:
        self.now = start

    def __call__(self) -> float:
        self.now += 1.0
        return self.now


def _count_acks(acks: Sequence[Ack], label: str, **wanted: str) -> int:
    """How many acks carry ``label`` and every ``wanted`` info field."""
    count = 0
    for got, info in acks:
        if got != label:
            continue
        fields = dict(info)
        if all(fields.get(k) == v for k, v in wanted.items()):
            count += 1
    return count


# -- ChecksumLog ---------------------------------------------------------------

_WAL_HEADER = {"format": 1, "suite": "crashsim"}
_WAL_RECORDS = [{"seq": i, "payload": f"record-{i}"} for i in range(16)]


def _wal_record(root: Path) -> Dict[str, object]:
    path = root / "wal" / "certify.wal"
    log = ChecksumLog.create(path, _WAL_HEADER)
    for record in _WAL_RECORDS[:6]:
        log.append(record)
    log.close()
    # A clean reopen mid-history: resume must tolerate every crash state
    # *and* the post-resume appends must be enumerable too.
    log, _ = ChecksumLog.resume(path, _WAL_HEADER)
    for record in _WAL_RECORDS[6:]:
        log.append(record)
    log.close()
    return {"path": str(path)}


def _wal_check(
    state_dir: Path, context: Mapping[str, object], acks: Sequence[Ack]
) -> List[str]:
    problems: List[str] = []
    path = state_dir / "wal" / "certify.wal"
    # Every non-header append was acked with its ``seq``; records are
    # appended in seq order, so "k data acks" promises the first k records.
    promised = sum(
        1 for label, info in acks
        if label == "wal.append" and "seq" in dict(info)
    )
    try:
        log, records = ChecksumLog.resume(path, _WAL_HEADER)
        log.close()
    except JournalError as exc:
        return [f"wal: resume raised on a legal crash state: {exc}"]
    except OSError as exc:
        return [f"wal: resume crashed: {exc}"]
    if len(records) < promised:
        problems.append(
            f"wal: {promised} records were acked durable but only "
            f"{len(records)} survived"
        )
    for i, record in enumerate(records[:promised]):
        if record != _WAL_RECORDS[i]:
            problems.append(
                f"wal: acked record {i} corrupted: {record!r}"
            )
    return problems


# -- SweepJournal --------------------------------------------------------------

def _journal_outcomes():
    from ...eval.parallel import SweepTask, TaskOutcome

    tasks = [
        SweepTask(
            filter_index=i % 4, wordlength=8 + 2 * (i // 4), scaling="none",
            representation="msd", method="mrpf",
        )
        for i in range(8)
    ]
    return [
        TaskOutcome(
            task=task,
            payload={"adders": 10 + i, "depth": 3},
            error_type=None,
            error=None,
            elapsed_s=0.5,
            duration_s=0.5,
        )
        for i, task in enumerate(tasks)
    ]


def _journal_signature() -> str:
    from ...eval.supervisor import sweep_signature

    return sweep_signature(["fig6"], [0], [8])


def _journal_record(root: Path) -> Dict[str, object]:
    directory = root / "journal"
    signature = _journal_signature()
    journal = SweepJournal.create(directory, signature)
    outcomes = _journal_outcomes()
    journal.append(outcomes[0])
    journal.close()
    # The --resume path: reopen, then journal the remaining outcomes.
    journal, _ = SweepJournal.resume(directory, signature)
    for outcome in outcomes[1:]:
        journal.append(outcome)
    journal.close()
    return {"signature": signature}


def _journal_check(
    state_dir: Path, context: Mapping[str, object], acks: Sequence[Ack]
) -> List[str]:
    problems: List[str] = []
    signature = str(context["signature"])
    promised = _count_acks(acks, "wal.append", kind="outcome")
    try:
        journal, outcomes = SweepJournal.resume(
            state_dir / "journal", signature
        )
        journal.close()
    except JournalError as exc:
        return [f"journal: --resume raised on a legal crash state: {exc}"]
    except OSError as exc:
        return [f"journal: --resume crashed: {exc}"]
    expected = _journal_outcomes()
    if len(outcomes) < promised:
        problems.append(
            f"journal: {promised} outcomes were acked durable but only "
            f"{len(outcomes)} survived"
        )
    for i, outcome in enumerate(outcomes[:promised]):
        if outcome != expected[i]:
            problems.append(f"journal: acked outcome {i} corrupted")
    return problems


# -- JobStore ------------------------------------------------------------------

_STORE_SPECS = [
    {"experiments": ["fig6"], "filters": [i], "wordlengths": [8]}
    for i in range(4)
]
_STORE_RESULT = '{"sweep": [], "status": "ok"}'


def _store_record(root: Path) -> Dict[str, object]:
    store = JobStore(root / "store", clock=_FakeClock())
    specs = [JobSpec.from_dict(s) for s in _STORE_SPECS]
    records = [store.submit(s, "tenant", 30.0, 300.0)[0] for s in specs]
    first, second, third, fourth = (r.job_id for r in records)
    # First job runs to completion with a durable result.
    store.transition(first, JobState.RUNNING)
    store.write_result(first, _STORE_RESULT)
    store.transition(first, JobState.COMPLETED)
    # Second fails mid-run; third is cancelled while queued; fourth stays
    # queued — together they cover every recovery-relevant lifecycle arc.
    store.transition(second, JobState.RUNNING)
    store.transition(second, JobState.FAILED, error="boom", error_type="X")
    store.transition(third, JobState.CANCELLED)
    store.close()
    # A mid-history restart: recovery (requeue + compaction) is itself a
    # recorded workload whose crash states must all be recoverable.
    store = JobStore(root / "store", clock=_FakeClock(1_500.0))
    store.transition(fourth, JobState.RUNNING)
    store.close()
    return {"first": first, "second": second, "fourth": fourth}


def _store_check(
    state_dir: Path, context: Mapping[str, object], acks: Sequence[Ack]
) -> List[str]:
    problems: List[str] = []
    first = str(context["first"])
    second = str(context["second"])
    first_acked = _count_acks(acks, "wal.append", job_id=first) > 0
    second_acked = _count_acks(acks, "wal.append", job_id=second) > 0
    completed_acked = (
        _count_acks(acks, "wal.append", job_id=first, state="completed") > 0
    )
    result_acked = _count_acks(acks, "store.result") > 0
    try:
        store = JobStore(state_dir / "store", clock=_FakeClock(2_000.0))
    except Exception as exc:  # noqa: BLE001 - any crash is the finding
        return [f"store: restart crashed on a legal crash state: {exc!r}"]
    try:
        if first_acked:
            try:
                record = store.get(first)
            except JobStateError:
                problems.append(
                    f"store: acknowledged job {first} lost after restart"
                )
                record = None
            if record is not None:
                if record.state == JobState.RUNNING:
                    problems.append(
                        "store: job recovered as 'running' (would "
                        "double-execute)"
                    )
                if completed_acked and record.state != JobState.COMPLETED:
                    problems.append(
                        f"store: completed ack was durable but job "
                        f"recovered as {record.state!r}"
                    )
                if record.state == JobState.COMPLETED:
                    try:
                        text = store.read_result(first)
                    except JobStateError as exc:
                        problems.append(
                            f"store: completed job's result missing: {exc}"
                        )
                    else:
                        if text != _STORE_RESULT:
                            problems.append(
                                "store: completed job's result is not "
                                "byte-identical"
                            )
        if second_acked:
            try:
                store.get(second)
            except JobStateError:
                problems.append(
                    f"store: acknowledged job {second} lost after restart"
                )
        if result_acked:
            result_path = state_dir / "store" / "results" / f"{first}.json"
            if result_path.exists():
                if result_path.read_text(encoding="utf-8") != _STORE_RESULT:
                    problems.append(
                        "store: acked result file present but torn"
                    )
            else:
                problems.append(
                    "store: acked result file vanished after restart"
                )
        for record in store.list_jobs():
            if record.state == JobState.RUNNING:
                problems.append(
                    f"store: duplicate running record {record.job_id}"
                )
    finally:
        store.close()
    return problems


# -- DiskCache -----------------------------------------------------------------

def _cache_key(tag: str) -> str:
    return hashlib.sha256(tag.encode()).hexdigest()


_CACHE_JSON_KEYS = [_cache_key(f"crashsim-json-{i}") for i in range(4)]
_CACHE_TEXT_KEYS = [_cache_key(f"crashsim-text-{i}") for i in range(2)]
_CACHE_PAYLOADS = [
    {"adders": 12 + i, "depth": 3, "method": "mrpf"} for i in range(4)
]
_CACHE_TEXTS = [
    f"module adder_{i}(input a, b);\nendmodule\n" for i in range(2)
]


def _cache_record(root: Path) -> Dict[str, object]:
    cache = DiskCache(root / "cache")
    for key, payload in zip(_CACHE_JSON_KEYS, _CACHE_PAYLOADS):
        cache.put(key, payload)
    for key, text in zip(_CACHE_TEXT_KEYS, _CACHE_TEXTS):
        cache.put_text(key, text)
    # Overwrite with identical bytes: the lost-race path workers exercise.
    cache.put(_CACHE_JSON_KEYS[0], _CACHE_PAYLOADS[0])
    return {}


def _cache_check(
    state_dir: Path, context: Mapping[str, object], acks: Sequence[Ack]
) -> List[str]:
    problems: List[str] = []
    try:
        cache = DiskCache(state_dir / "cache")
        payloads = [cache.get(key) for key in _CACHE_JSON_KEYS]
        texts = [cache.get_text(key) for key in _CACHE_TEXT_KEYS]
    except Exception as exc:  # noqa: BLE001 - any crash is the finding
        return [f"cache: open/get crashed on a legal crash state: {exc!r}"]
    # The cache is best-effort: absence is always legal, corruption never.
    for i, payload in enumerate(payloads):
        if payload is not None and payload != _CACHE_PAYLOADS[i]:
            problems.append(
                f"cache: served a corrupt JSON entry for key {i}: "
                f"{json.dumps(payload)[:80]}"
            )
    for i, text in enumerate(texts):
        if text is not None and text != _CACHE_TEXTS[i]:
            problems.append(f"cache: served a corrupt text artifact {i}")
    return problems


WORKLOADS: Dict[str, LayerWorkload] = {
    "wal": LayerWorkload(
        name="wal",
        description="ChecksumLog create/append/resume/append",
        record=_wal_record,
        check=_wal_check,
    ),
    "journal": LayerWorkload(
        name="journal",
        description="SweepJournal outcome log + --resume replay",
        record=_journal_record,
        check=_journal_check,
    ),
    "store": LayerWorkload(
        name="store",
        description="JobStore submit/run/complete + result artifact",
        record=_store_record,
        check=_store_check,
    ),
    "cache": LayerWorkload(
        name="cache",
        description="DiskCache JSON + text artifact puts",
        record=_cache_record,
        check=_cache_check,
    ),
}
