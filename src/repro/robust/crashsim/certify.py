"""The certification sweep: enumerate, materialize, recover, assert.

One layer's certification is four mechanical steps:

1. run the layer's real workload under a recording :class:`SimDisk`;
2. lint the op log — every ack must already be covered by its fsyncs;
3. enumerate every legal crash state (:func:`.model.enumerate_states`),
   deterministically capped per cut-family when asked (hash-seeded
   sampling via the repo-wide ``_stable_unit`` convention, logged when it
   triggers, so two CI runs check the *same* subset);
4. materialize each state into a scratch directory and run the layer's
   real recovery path against it, collecting invariant violations.

Zero violations across every enumerated state *is* the certificate: the
layer recovers correctly from every crash the kernel could legally
expose, not just the ones a random seed happened to visit.
"""

from __future__ import annotations

import contextlib
import logging
import shutil
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, Iterable, Iterator, List, Optional

from ..chaos import _stable_unit
from .fabric import SimDisk, scope
from .lint import lint_durability
from .model import enumerate_states
from .workloads import WORKLOADS

__all__ = [
    "CertificationReport",
    "LayerReport",
    "certify_layer",
    "format_report",
    "run_certification",
]


@dataclass
class LayerReport:
    """Coverage and verdict for one durability layer."""

    name: str
    description: str
    ops: int
    acks: int
    states_enumerated: int
    states_checked: int
    capped: bool
    lint_violations: List[str] = field(default_factory=list)
    invariant_violations: List[str] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.lint_violations and not self.invariant_violations

    def as_dict(self) -> Dict[str, object]:
        return {
            "name": self.name,
            "description": self.description,
            "ops": self.ops,
            "acks": self.acks,
            "states_enumerated": self.states_enumerated,
            "states_checked": self.states_checked,
            "capped": self.capped,
            "lint_violations": list(self.lint_violations),
            "invariant_violations": list(self.invariant_violations),
            "ok": self.ok,
        }


@dataclass
class CertificationReport:
    """The full sweep's verdict across all requested layers."""

    seed: int
    cap: Optional[int]
    layers: List[LayerReport] = field(default_factory=list)

    @property
    def states_enumerated(self) -> int:
        return sum(layer.states_enumerated for layer in self.layers)

    @property
    def states_checked(self) -> int:
        return sum(layer.states_checked for layer in self.layers)

    @property
    def violations(self) -> List[str]:
        out: List[str] = []
        for layer in self.layers:
            out.extend(f"[lint:{layer.name}] {v}" for v in layer.lint_violations)
            out.extend(
                f"[{layer.name}] {v}" for v in layer.invariant_violations
            )
        return out

    @property
    def ok(self) -> bool:
        return all(layer.ok for layer in self.layers)

    def as_dict(self) -> Dict[str, object]:
        return {
            "seed": self.seed,
            "cap": self.cap,
            "states_enumerated": self.states_enumerated,
            "states_checked": self.states_checked,
            "ok": self.ok,
            "violations": self.violations,
            "layers": [layer.as_dict() for layer in self.layers],
        }


@contextlib.contextmanager
def _quiet_recovery_logs() -> Iterator[None]:
    """Silence expected recovery-path warnings during state checking.

    Quarantining a torn cache entry is the *correct* outcome being
    certified; thousands of warning lines about it would bury the report.
    """
    noisy = logging.getLogger("repro.eval.cache")
    previous = noisy.disabled
    noisy.disabled = True
    try:
        yield
    finally:
        noisy.disabled = previous


def certify_layer(
    name: str,
    scratch: Path,
    seed: int = 0,
    cap: Optional[int] = None,
) -> LayerReport:
    """Certify one durability layer; see the module docstring for the steps.

    ``cap`` bounds the number of *checked* states; the selection is a
    deterministic function of ``seed`` and each state's content digest
    (``_stable_unit``), so a capped run is replayable, never a lottery.
    """
    workload = WORKLOADS[name]
    record_root = scratch / name / "record"
    record_root.mkdir(parents=True, exist_ok=True)
    fab = SimDisk(record_root)
    with scope(fab):
        context = workload.record(record_root)

    lint_violations = [str(v) for v in lint_durability(fab.ops)]
    states = enumerate_states(fab.ops)
    enumerated = len(states)
    capped = cap is not None and enumerated > cap
    if capped:
        states = sorted(
            states,
            key=lambda s: _stable_unit(seed, f"crashsim:{name}", s.digest),
        )[:cap]
        states.sort(key=lambda s: (s.cut, s.variant))

    invariant_violations: List[str] = []
    acks = sum(1 for op in fab.ops if op.kind == "ack")
    with _quiet_recovery_logs():
        for i, state in enumerate(states):
            state_dir = scratch / name / f"state-{i:05d}"
            state.materialize(state_dir)
            try:
                problems = workload.check(state_dir, context, state.acks)
            except Exception as exc:  # noqa: BLE001 - checker crash = finding
                problems = [
                    f"{name}: recovery checker crashed on cut={state.cut} "
                    f"variant={state.variant}: {exc!r}"
                ]
            for problem in problems:
                invariant_violations.append(
                    f"cut={state.cut} variant={state.variant}: {problem}"
                )
            shutil.rmtree(state_dir, ignore_errors=True)

    return LayerReport(
        name=name,
        description=workload.description,
        ops=len(fab.ops),
        acks=acks,
        states_enumerated=enumerated,
        states_checked=len(states),
        capped=capped,
        lint_violations=lint_violations,
        invariant_violations=invariant_violations,
    )


def run_certification(
    scratch: Path,
    layers: Optional[Iterable[str]] = None,
    seed: int = 0,
    cap: Optional[int] = None,
) -> CertificationReport:
    """Certify every requested layer (all four by default)."""
    wanted = list(layers) if layers is not None else sorted(WORKLOADS)
    unknown = [name for name in wanted if name not in WORKLOADS]
    if unknown:
        raise ValueError(
            f"unknown crashsim layers {unknown}; "
            f"available: {sorted(WORKLOADS)}"
        )
    report = CertificationReport(seed=seed, cap=cap)
    for name in wanted:
        report.layers.append(certify_layer(name, scratch, seed=seed, cap=cap))
    return report


def format_report(report: CertificationReport) -> str:
    """Human-readable certification summary (also used as the CI summary)."""
    lines = [
        "crash-consistency certification",
        f"  seed={report.seed} cap={report.cap if report.cap else 'none'}",
        "",
        f"  {'layer':<10} {'ops':>5} {'acks':>5} {'states':>7} "
        f"{'checked':>8} {'capped':>7}  verdict",
    ]
    for layer in report.layers:
        lines.append(
            f"  {layer.name:<10} {layer.ops:>5} {layer.acks:>5} "
            f"{layer.states_enumerated:>7} {layer.states_checked:>8} "
            f"{'yes' if layer.capped else 'no':>7}  "
            f"{'OK' if layer.ok else 'VIOLATIONS'}"
        )
    lines.append(
        f"  {'total':<10} {'':>5} {'':>5} {report.states_enumerated:>7} "
        f"{report.states_checked:>8}"
    )
    if report.violations:
        lines.append("")
        lines.append(f"  {len(report.violations)} violation(s):")
        for violation in report.violations:
            lines.append(f"    - {violation}")
    else:
        lines.append("")
        lines.append(
            f"  zero invariant violations across "
            f"{report.states_checked} crash states"
        )
    return "\n".join(lines)
