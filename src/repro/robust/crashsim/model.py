"""The abstract filesystem model behind crash-state enumeration.

A :class:`SimDisk` recording is a linear op log.  This module replays that
log into an abstract state that separates what is *durable* (survives any
crash) from what is merely *pending* (issued but not yet covered by an
fsync), then enumerates the legal on-disk states a crash at each prefix
point could leave behind:

* pending **data** ops (writes, truncates) on an inode persist as a prefix,
  and the final persisted write may additionally be torn at any byte;
* pending **metadata** ops (entry creation, rename, unlink, mkdir) in a
  directory persist as an *ordered prefix* of that directory's op sequence
  — the conservative ext4-ordered model, which also keeps a rename from
  ever being applied before the link of its source entry;
* data and metadata persistence are independent, so an applied
  ``os.replace`` whose source data was never fsync'd yields the classic
  *torn rename*: the destination exists with only the durable portion of
  the source's bytes.

Unflushed (pre-``flush``) writes are treated like flushed-but-unsynced
ones — a superset of reality that can only *add* crash states, never hide
one, because every invariant is of the form "acknowledged data must
survive" (extra survivors cannot violate it).

The enumeration is targeted rather than exhaustive: per cut it emits the
four data×metadata corner states, every per-directory metadata prefix,
and byte-torn variants of each inode's final pending write, deduplicated
by content digest.  The full cross-product is astronomically larger but
adds only states sandwiched between corners that the invariants treat
identically.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field
from pathlib import Path, PurePosixPath
from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple

from .fabric import IoOp

__all__ = ["CrashState", "ReplayState", "enumerate_states", "replay"]


class _Inode:
    """One file's content: a durable base plus pending (unsynced) data ops."""

    __slots__ = ("durable", "pending")

    def __init__(self, durable: bytes = b"") -> None:
        self.durable = durable
        # Each entry is ("write", bytes) or ("truncate", int).
        self.pending: List[Tuple[str, object]] = []

    def content(self, applied: int, torn_at: Optional[int] = None) -> bytes:
        """Content after the first ``applied`` pending ops persist.

        ``torn_at`` tears the last applied op (a write) at that byte.
        """
        data = self.durable
        for i, (kind, arg) in enumerate(self.pending[:applied]):
            if kind == "write":
                chunk = arg  # type: ignore[assignment]
                if torn_at is not None and i == applied - 1:
                    chunk = chunk[:torn_at]
                data += chunk
            else:  # truncate
                size = int(arg)  # type: ignore[arg-type]
                data = data[:size].ljust(size, b"\x00")
        return data


def _parent(path: str) -> str:
    parent = PurePosixPath(path).parent.as_posix()
    return parent


@dataclass(frozen=True)
class _MetaOp:
    """One pending directory-entry mutation, ordered within its directory."""

    kind: str  # "link" | "replace" | "unlink" | "mkdir"
    path: str
    dst: str = ""
    inode: Optional[_Inode] = None


class ReplayState:
    """The abstract state after replaying a prefix of an op log."""

    def __init__(self) -> None:
        # Entries whose existence survives any crash.
        self.durable_ns: Dict[str, _Inode] = {}
        self.durable_dirs: Set[str] = {"."}
        # Per-directory ordered pending metadata.
        self.pending_meta: Dict[str, List[_MetaOp]] = {}
        # The everything-applied view, used to resolve paths during replay.
        self.live_ns: Dict[str, _Inode] = {}
        self.live_dirs: Set[str] = {"."}

    # -- replay -------------------------------------------------------------

    def _ensure_parents(self, path: str) -> None:
        """Directories never recorded were created before the recording —
        import them as durable."""
        parent = _parent(path)
        while parent not in self.live_dirs:
            self.live_dirs.add(parent)
            self.durable_dirs.add(parent)
            parent = _parent(parent)

    def _pending_for(self, path: str) -> List[_MetaOp]:
        return self.pending_meta.setdefault(_parent(path), [])

    def apply(self, op: IoOp) -> None:
        if op.kind == "exists":
            self._ensure_parents(op.path)
            inode = _Inode(durable=op.data)
            self.durable_ns[op.path] = inode
            self.live_ns[op.path] = inode
        elif op.kind == "create":
            self._ensure_parents(op.path)
            if op.existed and op.path in self.live_ns:
                # w-mode reopen: O_TRUNC is a data op on the existing inode.
                self.live_ns[op.path].pending.append(("truncate", 0))
            else:
                inode = _Inode()
                self.live_ns[op.path] = inode
                self._pending_for(op.path).append(
                    _MetaOp("link", op.path, inode=inode)
                )
        elif op.kind == "write":
            inode = self.live_ns.get(op.path)
            if inode is None:  # write to an un-journaled pre-existing file
                self._ensure_parents(op.path)
                inode = _Inode()
                self.live_ns[op.path] = inode
                self.durable_ns[op.path] = inode
            inode.pending.append(("write", op.data))
        elif op.kind == "truncate":
            inode = self.live_ns.get(op.path)
            if inode is not None:
                inode.pending.append(("truncate", op.size))
        elif op.kind == "fsync":
            inode = self.live_ns.get(op.path)
            if inode is not None:
                inode.durable = inode.content(len(inode.pending))
                inode.pending.clear()
        elif op.kind == "mkdir":
            self._ensure_parents(op.path)
            self.live_dirs.add(op.path)
            self._pending_for(op.path).append(_MetaOp("mkdir", op.path))
        elif op.kind == "replace":
            inode = self.live_ns.pop(op.path, None)
            if inode is None:
                inode = _Inode()
            self.live_ns[op.dst] = inode
            self._pending_for(op.dst).append(
                _MetaOp("replace", op.path, dst=op.dst, inode=inode)
            )
        elif op.kind == "unlink":
            self.live_ns.pop(op.path, None)
            self._pending_for(op.path).append(_MetaOp("unlink", op.path))
        elif op.kind == "fsync_dir":
            for meta in self.pending_meta.pop(op.path, []):
                _apply_meta(meta, self.durable_ns, self.durable_dirs)
            # Syncing d makes d's entries durable; entries *of d itself*
            # pending in d's parent are untouched (makedirs_durable exists
            # precisely because of this).
        # "ack" has no filesystem effect.

    # -- queries (used by the linter) ---------------------------------------

    def is_durable(self, path: str) -> Tuple[bool, str]:
        """Whether ``path`` fully survives any crash right now."""
        if path not in self.durable_ns:
            return False, "directory entry not durable (missing dir fsync)"
        parent = _parent(path)
        while parent != ".":
            if parent not in self.durable_dirs:
                return False, (
                    f"ancestor directory {parent!r} not durable"
                )
            parent = _parent(parent)
        if self.durable_ns[path].pending:
            return False, "unsynced data (missing file fsync)"
        return True, ""

    def pending_dirs(self) -> Dict[str, List[_MetaOp]]:
        return {d: list(ops) for d, ops in self.pending_meta.items() if ops}

    def pending_inodes(self) -> Dict[str, _Inode]:
        return {
            path: inode
            for path, inode in self.live_ns.items()
            if inode.pending
        }


def _apply_meta(
    meta: _MetaOp, ns: Dict[str, _Inode], dirs: Set[str]
) -> None:
    if meta.kind == "link":
        ns[meta.path] = meta.inode  # type: ignore[assignment]
    elif meta.kind == "mkdir":
        dirs.add(meta.path)
    elif meta.kind == "replace":
        ns.pop(meta.path, None)
        ns[meta.dst] = meta.inode  # type: ignore[assignment]
    elif meta.kind == "unlink":
        ns.pop(meta.path, None)


def replay(ops: Sequence[IoOp], upto: Optional[int] = None) -> ReplayState:
    """Replay the first ``upto`` ops (all of them by default)."""
    state = ReplayState()
    for op in ops if upto is None else ops[:upto]:
        state.apply(op)
    return state


Ack = Tuple[str, Tuple[Tuple[str, str], ...]]


@dataclass(frozen=True)
class CrashState:
    """One legal on-disk state a crash could leave behind.

    ``acks`` are the acknowledgements issued *before* the cut — the
    promises recovery from this state must keep.  Two identical trees with
    different ack sets are distinct states: an empty directory is benign
    before the first ack and a data-loss bug after it.
    """

    cut: int
    variant: str
    files: Tuple[Tuple[str, bytes], ...]
    dirs: Tuple[str, ...]
    acks: Tuple[Ack, ...] = ()
    digest: str = field(default="", compare=False)

    @staticmethod
    def build(
        cut: int,
        variant: str,
        files: Dict[str, bytes],
        dirs: Iterable[str],
        acks: Tuple[Ack, ...] = (),
    ) -> "CrashState":
        file_items = tuple(sorted(files.items()))
        dir_items = tuple(sorted(dirs))
        h = hashlib.sha256()
        for path, data in file_items:
            h.update(path.encode())
            h.update(b"\x00")
            h.update(hashlib.sha256(data).digest())
        for d in dir_items:
            h.update(b"\x01")
            h.update(d.encode())
        for label, info in acks:
            h.update(b"\x02")
            h.update(label.encode())
            for k, v in info:
                h.update(f"{k}={v}".encode())
        return CrashState(
            cut=cut,
            variant=variant,
            files=file_items,
            dirs=dir_items,
            acks=acks,
            digest=h.hexdigest(),
        )

    def materialize(self, target: Path) -> None:
        """Write this state into ``target`` (which must be empty/new)."""
        target.mkdir(parents=True, exist_ok=True)
        for d in self.dirs:
            if d != ".":
                (target / d).mkdir(parents=True, exist_ok=True)
        for path, data in self.files:
            full = target / path
            full.parent.mkdir(parents=True, exist_ok=True)
            full.write_bytes(data)


def _materialize_abstract(
    state: ReplayState,
    meta_applied: Dict[str, int],
    data_applied: Dict[int, int],
    torn: Optional[Tuple[int, int]] = None,
) -> Tuple[Dict[str, bytes], Set[str]]:
    """Resolve one persistence choice into concrete files + dirs.

    ``meta_applied`` maps directory → how many of its pending metadata ops
    persisted; ``data_applied`` maps ``id(inode)`` → how many pending data
    ops persisted; ``torn`` optionally tears inode ``torn[0]``'s last
    applied write at byte ``torn[1]``.
    """
    ns: Dict[str, _Inode] = dict(state.durable_ns)
    dirs: Set[str] = set(state.durable_dirs)
    for directory in sorted(state.pending_meta):
        count = meta_applied.get(directory, 0)
        for meta in state.pending_meta[directory][:count]:
            _apply_meta(meta, ns, dirs)
    files: Dict[str, bytes] = {}
    for path, inode in ns.items():
        # An entry whose ancestor directory vanished vanishes with it.
        parent = _parent(path)
        lost = False
        while parent != ".":
            if parent not in dirs:
                lost = True
                break
            parent = _parent(parent)
        if lost:
            continue
        applied = data_applied.get(id(inode), 0)
        torn_at = torn[1] if torn is not None and torn[0] == id(inode) else None
        files[path] = inode.content(applied, torn_at=torn_at)
    return files, dirs


def enumerate_states(
    ops: Sequence[IoOp],
    cuts: Optional[Iterable[int]] = None,
) -> List[CrashState]:
    """Enumerate distinct legal crash states across prefix cuts of ``ops``.

    By default every cut ``0..len(ops)`` is visited.  Per cut the targeted
    variant families are:

    * the four corners — pending data × pending metadata, each none/all;
    * every proper prefix of each directory's pending metadata (others
      fully applied), which surfaces order-dependent rename/link windows;
    * byte-torn variants of each inode's final pending write (metadata and
      all other data fully applied) at the start, middle, and last byte.

    States are deduplicated by content digest; the returned list is ordered
    by (cut, variant) and contains one representative per digest.
    """
    all_ops = list(ops)
    cut_points = list(cuts) if cuts is not None else range(len(all_ops) + 1)
    seen: Set[str] = set()
    out: List[CrashState] = []
    state = ReplayState()
    replayed = 0
    acks: List[Ack] = []

    def emit(cut: int, variant: str, meta, data, torn=None) -> None:
        files, dirs = _materialize_abstract(state, meta, data, torn)
        cs = CrashState.build(cut, variant, files, dirs, acks=tuple(acks))
        if cs.digest not in seen:
            seen.add(cs.digest)
            out.append(cs)

    for cut in sorted(set(cut_points)):
        cut = min(cut, len(all_ops))
        while replayed < cut:
            op = all_ops[replayed]
            state.apply(op)
            if op.kind == "ack":
                acks.append((op.label, op.info))
            replayed += 1
        pending_dirs = state.pending_dirs()
        pending_inodes = state.pending_inodes()
        meta_all = {d: len(v) for d, v in pending_dirs.items()}
        data_all = {
            id(inode): len(inode.pending)
            for inode in pending_inodes.values()
        }
        # Corners.
        emit(cut, "corner:meta=0,data=0", {}, {})
        emit(cut, "corner:meta=all,data=0", meta_all, {})
        emit(cut, "corner:meta=0,data=all", {}, data_all)
        emit(cut, "corner:meta=all,data=all", meta_all, data_all)
        # Per-directory metadata prefixes.
        for directory, metas in pending_dirs.items():
            for j in range(1, len(metas)):
                meta = dict(meta_all)
                meta[directory] = j
                emit(
                    cut,
                    f"dirprefix:{directory}:{j}",
                    meta,
                    data_all,
                )
        # Torn final writes.
        for path, inode in pending_inodes.items():
            kind, arg = inode.pending[-1]
            if kind != "write":
                continue
            length = len(arg)  # type: ignore[arg-type]
            for torn_at in sorted({0, length // 2, max(length - 1, 0)}):
                if torn_at >= length:
                    continue
                emit(
                    cut,
                    f"torn:{path}:{torn_at}",
                    meta_all,
                    data_all,
                    torn=(id(inode), torn_at),
                )
    return out
