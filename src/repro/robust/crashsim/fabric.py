"""The pluggable IO fabric under every durability layer.

Every ``open``/``write``/``fsync``/``replace``/``unlink``/``mkdir``/
``fsync-dir`` a durability layer performs goes through the process-global
*active fabric*:

* :class:`RealIo` (the default) passes straight through to ``os`` /
  ``tempfile`` — zero recording, production behavior.
* :class:`SimDisk` performs the same real IO inside a sandbox root **and**
  journals every operation as an :class:`IoOp`, producing the op log the
  crash-state enumerator (:mod:`.model`) and the durability-ordering
  linter (:mod:`.lint`) consume.  Temp names are deterministic so a
  recorded run is byte-replayable.
* :class:`BrokenFsyncFabric` deliberately swallows matching fsyncs — the
  "remove one fsync" probe that proves the certifier catches a real
  durability hole.
* :class:`FaultPointFabric` raises ``ENOSPC`` at a chosen operation — the
  mid-compaction / mid-artifact-write fault the store tests inject.

Workloads additionally mark acknowledgement points with :meth:`IoFabric.ack`
(the moment an ``append()`` returns or an HTTP 2xx becomes reachable); acks
are recorded ops, so the linter can check that every ack is *covered* by
the fsyncs before it.
"""

from __future__ import annotations

import contextlib
import errno
import os
import tempfile
import threading
from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable, IO, List, Optional, Tuple

__all__ = [
    "BrokenFsyncFabric",
    "FabricFile",
    "FaultPointFabric",
    "IoFabric",
    "IoOp",
    "RealIo",
    "SimDisk",
    "active",
    "install",
    "scope",
]


@dataclass(frozen=True)
class IoOp:
    """One journaled filesystem operation (paths sandbox-relative, POSIX).

    ``kind`` is one of ``create`` (a new file's directory entry, or a
    ``w``-mode truncating reopen when ``existed``), ``write`` (appended
    ``data`` bytes), ``truncate`` (to ``size`` bytes), ``fsync`` (file
    data durable), ``mkdir``, ``replace`` (``path`` renamed onto ``dst``),
    ``unlink``, ``fsync_dir`` (the directory's pending entries durable),
    ``exists`` (a file predating the recording, imported as durable), or
    ``ack`` (a workload acknowledgement point, not an IO at all).
    """

    index: int
    kind: str
    path: str = ""
    data: bytes = b""
    dst: str = ""
    size: int = -1
    existed: bool = False
    label: str = ""
    info: Tuple[Tuple[str, str], ...] = ()


class FabricFile:
    """A write-intercepting file handle handed out by a recording fabric."""

    def __init__(
        self,
        fh: IO,
        path: Path,
        on_write: Optional[Callable[[Path, bytes], None]] = None,
    ) -> None:
        self._fh = fh
        self.fabric_path = path
        self._on_write = on_write

    def write(self, data) -> int:
        if self._on_write is not None:
            raw = data.encode("utf-8") if isinstance(data, str) else bytes(data)
            self._on_write(self.fabric_path, raw)
        return self._fh.write(data)

    def flush(self) -> None:
        self._fh.flush()

    def fileno(self) -> int:
        return self._fh.fileno()

    def close(self) -> None:
        self._fh.close()

    @property
    def closed(self) -> bool:
        return self._fh.closed

    def __enter__(self) -> "FabricFile":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


class IoFabric:
    """Protocol-by-inheritance: the operation vocabulary of a fabric.

    :class:`RealIo` is the canonical implementation; wrappers subclass or
    delegate.  All paths are accepted as ``str``/``Path``.
    """

    def open(self, path: os.PathLike, mode: str = "w"):  # pragma: no cover
        raise NotImplementedError

    def mkstemp(self, directory, prefix, suffix):  # pragma: no cover
        raise NotImplementedError

    def fsync(self, fh) -> None:  # pragma: no cover
        raise NotImplementedError

    def truncate(self, path, size: int) -> None:  # pragma: no cover
        raise NotImplementedError

    def replace(self, src, dst) -> None:  # pragma: no cover
        raise NotImplementedError

    def unlink(self, path) -> None:  # pragma: no cover
        raise NotImplementedError

    def mkdir(self, path) -> None:  # pragma: no cover
        raise NotImplementedError

    def makedirs_durable(self, path) -> None:
        """Create missing directory levels, fsyncing each new level's parent.

        A directory whose own entry was never fsync'd into *its* parent can
        vanish on power loss, taking everything inside with it — so every
        level this call actually creates is followed by an fsync of the
        directory it was created in.
        """
        target = Path(path)
        missing: List[Path] = []
        probe = target
        while not probe.exists() and probe != probe.parent:
            missing.append(probe)
            probe = probe.parent
        for directory in reversed(missing):
            self.mkdir(directory)
            self.fsync_dir(directory.parent)

    def fsync_dir(self, path) -> None:  # pragma: no cover
        raise NotImplementedError

    def ack(self, label: str, **info: str) -> None:
        """Mark an acknowledgement point (recorded fabrics journal it)."""

    def exists(self, path) -> bool:
        return Path(path).exists()


class RealIo(IoFabric):
    """Passthrough fabric: plain ``os``/``tempfile`` calls, no recording."""

    name = "real"

    def open(self, path: os.PathLike, mode: str = "w"):
        if "b" in mode:
            return open(path, mode)
        return open(path, mode, encoding="utf-8")

    def mkstemp(self, directory, prefix, suffix):
        fd, name = tempfile.mkstemp(
            dir=str(directory), prefix=prefix, suffix=suffix
        )
        return os.fdopen(fd, "w", encoding="utf-8"), name

    def fsync(self, fh) -> None:
        fh.flush()
        os.fsync(fh.fileno())

    def truncate(self, path, size: int) -> None:
        with open(path, "r+b") as fh:
            fh.truncate(size)

    def replace(self, src, dst) -> None:
        os.replace(src, dst)

    def unlink(self, path) -> None:
        os.unlink(path)

    def mkdir(self, path) -> None:
        Path(path).mkdir(exist_ok=True)

    def fsync_dir(self, path) -> None:
        """Flush a directory's entries (no-op where unsupported)."""
        try:
            fd = os.open(str(path), os.O_RDONLY)
        except OSError:
            return
        try:
            os.fsync(fd)
        except OSError:
            pass
        finally:
            os.close(fd)


class SimDisk(RealIo):
    """A recording fabric: real IO inside ``root`` plus an op journal.

    Operations on paths outside ``root`` pass through unrecorded, so a
    workload's durable tree can be journaled while its caches or scratch
    files elsewhere stay invisible.  Temp names are deterministic
    (``<prefix>simNNNN<suffix>``) so two recordings of the same workload
    produce identical op logs — the property the CI coverage report's
    stable state counts rest on.
    """

    name = "simdisk"

    def __init__(self, root: os.PathLike) -> None:
        self.root = Path(root).resolve()
        self.ops: List[IoOp] = []
        self._tmp_counter = 0
        self._lock = threading.Lock()

    # -- recording helpers ---------------------------------------------------

    def _rel(self, path) -> Optional[str]:
        try:
            return Path(path).resolve().relative_to(self.root).as_posix()
        except ValueError:
            return None

    def _record(self, kind: str, **kwargs) -> None:
        with self._lock:
            self.ops.append(IoOp(index=len(self.ops), kind=kind, **kwargs))

    def _on_write(self, path: Path, data: bytes) -> None:
        rel = self._rel(path)
        if rel is not None and data:
            self._record("write", path=rel, data=data)

    def _import_untracked(self, path: Path, rel: str) -> None:
        """A file that predates the recording: journal it as fully durable."""
        known = {
            op.path for op in self.ops if op.kind in ("create", "exists")
        } | {op.dst for op in self.ops if op.kind == "replace"}
        if rel not in known:
            self._record("exists", path=rel, data=path.read_bytes())

    # -- the fabric vocabulary ----------------------------------------------

    def open(self, path: os.PathLike, mode: str = "w"):
        target = Path(path)
        rel = self._rel(target)
        if rel is None:
            return super().open(target, mode)
        existed = target.exists()
        if existed:
            self._import_untracked(target, rel)
        fh = super().open(target, mode)
        if mode.startswith(("w", "x")):
            self._record("create", path=rel, existed=existed)
        elif mode.startswith("a") and not existed:
            self._record("create", path=rel, existed=False)
        return FabricFile(fh, target, on_write=self._on_write)

    def mkstemp(self, directory, prefix, suffix):
        rel_dir = self._rel(directory)
        if rel_dir is None:
            return super().mkstemp(directory, prefix, suffix)
        with self._lock:
            self._tmp_counter += 1
            counter = self._tmp_counter
        name = Path(directory) / f"{prefix}sim{counter:04d}{suffix}"
        fd = os.open(str(name), os.O_CREAT | os.O_EXCL | os.O_WRONLY, 0o600)
        fh = os.fdopen(fd, "w", encoding="utf-8")
        self._record("create", path=self._rel(name), existed=False)
        return FabricFile(fh, name, on_write=self._on_write), str(name)

    def fsync(self, fh) -> None:
        super().fsync(fh)
        path = getattr(fh, "fabric_path", None)
        if path is not None:
            rel = self._rel(path)
            if rel is not None:
                self._record("fsync", path=rel)

    def truncate(self, path, size: int) -> None:
        rel = self._rel(path)
        if rel is not None:
            self._import_untracked(Path(path), rel)
        super().truncate(path, size)
        if rel is not None:
            self._record("truncate", path=rel, size=size)

    def replace(self, src, dst) -> None:
        rel_src, rel_dst = self._rel(src), self._rel(dst)
        super().replace(src, dst)
        if rel_src is not None and rel_dst is not None:
            self._record("replace", path=rel_src, dst=rel_dst)

    def unlink(self, path) -> None:
        rel = self._rel(path)
        super().unlink(path)
        if rel is not None:
            self._record("unlink", path=rel)

    def mkdir(self, path) -> None:
        rel = self._rel(path)
        existed = Path(path).is_dir()
        super().mkdir(path)
        if rel is not None and not existed:
            self._record("mkdir", path=rel)

    def fsync_dir(self, path) -> None:
        super().fsync_dir(path)
        rel = self._rel(path)
        if rel is not None:
            self._record("fsync_dir", path=rel)
        elif Path(path).resolve() == self.root:
            self._record("fsync_dir", path=".")

    def ack(self, label: str, **info: str) -> None:
        def normalize(value) -> str:
            # In-root paths are journaled sandbox-relative so the linter
            # can match them against the abstract model's namespace.
            text = str(value)
            if os.sep in text or "/" in text:
                rel = self._rel(text)
                if rel is not None:
                    return rel
            return text

        self._record(
            "ack",
            label=label,
            info=tuple(sorted((k, normalize(v)) for k, v in info.items())),
        )


class _Delegating(IoFabric):
    """Base for wrappers: forward every operation to an inner fabric."""

    def __init__(self, inner: IoFabric) -> None:
        self.inner = inner

    def open(self, path, mode="w"):
        return self.inner.open(path, mode)

    def mkstemp(self, directory, prefix, suffix):
        return self.inner.mkstemp(directory, prefix, suffix)

    def fsync(self, fh):
        self.inner.fsync(fh)

    def truncate(self, path, size):
        self.inner.truncate(path, size)

    def replace(self, src, dst):
        self.inner.replace(src, dst)

    def unlink(self, path):
        self.inner.unlink(path)

    def mkdir(self, path):
        self.inner.mkdir(path)

    def fsync_dir(self, path):
        self.inner.fsync_dir(path)

    def ack(self, label, **info):
        self.inner.ack(label, **info)


class BrokenFsyncFabric(_Delegating):
    """Swallow fsyncs whose path contains ``match`` — the planted bug.

    The swallowed fsync is neither executed nor recorded, exactly as if a
    developer deleted the call: the durability-ordering linter must flag
    the now-uncovered ack, and the crash-state enumerator must find a
    state that loses an acknowledged record.
    """

    def __init__(self, inner: IoFabric, match: str, dirs: bool = False) -> None:
        super().__init__(inner)
        self.match = match
        self.dirs = dirs
        self.swallowed = 0

    def fsync(self, fh) -> None:
        path = str(getattr(fh, "fabric_path", ""))
        if self.match in path:
            self.swallowed += 1
            return
        self.inner.fsync(fh)

    def fsync_dir(self, path) -> None:
        if self.dirs and self.match in str(path):
            self.swallowed += 1
            return
        self.inner.fsync_dir(path)


class FaultPointFabric(_Delegating):
    """Raise ``ENOSPC`` when ``predicate(kind, path)`` first matches.

    ``kind`` is the op vocabulary name (``write``/``replace``/...); the
    fault fires once (arm again by resetting :attr:`fired`), so a retry
    after the failure exercises the recovery path against a healthy disk.
    """

    def __init__(
        self, inner: IoFabric, predicate: Callable[[str, str], bool]
    ) -> None:
        super().__init__(inner)
        self.predicate = predicate
        self.fired = False

    def _maybe_fail(self, kind: str, path) -> None:
        if not self.fired and self.predicate(kind, str(path)):
            self.fired = True
            raise OSError(errno.ENOSPC, os.strerror(errno.ENOSPC), str(path))

    def open(self, path, mode="w"):
        self._maybe_fail("open", path)
        return self.inner.open(path, mode)

    def mkstemp(self, directory, prefix, suffix):
        self._maybe_fail("mkstemp", directory)
        return self.inner.mkstemp(directory, prefix, suffix)

    def fsync(self, fh) -> None:
        self._maybe_fail("fsync", getattr(fh, "fabric_path", ""))
        self.inner.fsync(fh)

    def replace(self, src, dst) -> None:
        self._maybe_fail("replace", dst)
        self.inner.replace(src, dst)


# --- the process-global active fabric ---------------------------------------

_REAL = RealIo()
_ACTIVE: IoFabric = _REAL


def active() -> IoFabric:
    """The fabric every durability layer routes its IO through."""
    return _ACTIVE


def install(fabric: Optional[IoFabric]) -> IoFabric:
    """Install ``fabric`` (``None`` restores the passthrough default).

    Returns the previously active fabric so callers can restore it.
    """
    global _ACTIVE
    previous = _ACTIVE
    _ACTIVE = fabric if fabric is not None else _REAL
    return previous


@contextlib.contextmanager
def scope(fabric: IoFabric):
    """Make ``fabric`` active for the duration of the block."""
    previous = install(fabric)
    try:
        yield fabric
    finally:
        install(previous)
